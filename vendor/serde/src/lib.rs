//! Offline shim for `serde`.
//!
//! The real serde abstracts over data formats; this workspace only ever
//! serializes to and from JSON (via `serde_json`), so the shim collapses the
//! abstraction: [`Serialize`] writes JSON text directly and [`Deserialize`]
//! reads from a parsed [`json::Value`]. The `#[derive(Serialize,
//! Deserialize)]` macros (re-exported from the sibling `serde_derive`
//! proc-macro crate) generate impls against these traits, honouring
//! `#[serde(default)]` on struct fields.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// Serialize `self` as JSON text appended to `out`.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Construct `Self` from a parsed JSON value.
pub trait Deserialize: Sized {
    /// Decode from a JSON value.
    fn deserialize_json(value: &Value) -> Result<Self, Error>;
}

/// Deserialization module mirroring `serde::de`.
pub mod de {
    /// In real serde, owned deserialization; here every `Deserialize` is
    /// already owned, so this is a blanket alias.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Append a JSON object key (quoted + colon) — used by derived impls.
pub fn write_key(out: &mut String, key: &str) {
    json::write_json_string(out, key);
    out.push(':');
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(value: &Value) -> Result<Self, Error> {
                let n = value.as_f64().ok_or_else(|| Error::new(concat!("expected number for ", stringify!($t))))?;
                if n.fract() != 0.0 {
                    return Err(Error::new(concat!("expected integer for ", stringify!($t))));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::new(concat!("number out of range for ", stringify!($t))));
                }
                Ok(n as $t)
            }
        }
    )*};
}

serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{:?}` prints the shortest string that round-trips.
                    out.push_str(&format!("{self:?}"));
                } else {
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::new(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::write_json_string(out, self);
    }
}

impl Deserialize for String {
    fn deserialize_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

/// `&'static str` deserializes by leaking — acceptable for the config
/// structs (e.g. device names) that hold static marketing strings.
impl Deserialize for &'static str {
    fn deserialize_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => items.iter().map(T::deserialize_json).collect(),
            _ => Err(Error::new("expected array")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::deserialize_json(&items[0])?, B::deserialize_json(&items[1])?))
            }
            _ => Err(Error::new("expected 2-element array")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_key(out, k);
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Obj(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::deserialize_json(v)?))).collect()
            }
            _ => Err(Error::new("expected object")),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn serialize_json(&self, out: &mut String) {
        // Deterministic output: sort keys.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        out.push('{');
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_key(out, k);
            self[k.as_str()].serialize_json(out);
        }
        out.push('}');
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn deserialize_json(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Obj(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::deserialize_json(v)?))).collect()
            }
            _ => Err(Error::new("expected object")),
        }
    }
}
