//! JSON value model, parser, and string writer shared by the `serde` shim
//! and the `serde_json` facade.
//!
//! Numbers are held as `f64`; every value this workspace serializes
//! (config integers, cost floats) is far below the 2^53 exactness limit.
//! Object entries preserve insertion order.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Numeric view (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this value is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Find a key among object entries — helper for derived impls.
pub fn find<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A JSON parse or decode error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error with a static or formatted message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Append `s` as a quoted, escaped JSON string.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(Error::new("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(entries)),
                _ => return Err(Error::new("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: decode a following \uXXXX low half.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::new("lone high surrogate"));
                            }
                            let low = self.hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined).ok_or_else(|| Error::new("bad surrogate"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| Error::new("bad codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::new("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::new("bad utf8")),
                    };
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| Error::new("bad utf8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::new("eof in \\u"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| Error::new("bad hex"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Value::Num).map_err(|_| Error::new(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": "x\ny"}, "e": true}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Arr(vec![Value::Num(1.0), Value::Num(2.5), Value::Num(-300.0)])
        );
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("e").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}é");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{1}é"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
    }
}
