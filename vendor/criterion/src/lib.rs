//! Offline shim for the `criterion` crate.
//!
//! A small wall-clock harness exposing the API surface the workspace's
//! benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. No statistics machinery —
//! each benchmark warms up briefly, then reports the median of a handful of
//! timed batches as ns/iter.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for benches importing `criterion::black_box`.
pub use std::hint::black_box;

/// Identifier for a parameterised benchmark case.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `group/name/param` style id.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { repr: format!("{name}/{param}") }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { repr: param.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: Vec<f64>,
    warm_up: Duration,
    measure: Duration,
}

impl Bencher {
    fn new(warm_up: Duration, measure: Duration) -> Self {
        Bencher { samples: Vec::new(), warm_up, measure }
    }

    /// Time the closure: warm up, pick a batch size targeting ~1ms per
    /// batch, then record batch means until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((1e-3 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples.push(dt / batch as f64);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let med = s[s.len() / 2];
        let lo = s[0];
        let hi = s[s.len() - 1];
        println!("{label:<48} time: [{} {} {}]", fmt_time(lo), fmt_time(med), fmt_time(hi));
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warm_up: Duration::from_millis(60), measure: Duration::from_millis(240) }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.warm_up, self.measure);
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into() }
    }
}

/// A named collection of parameterised benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sampling is time-budgeted
    /// rather than count-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark one case with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.parent.warm_up, self.parent.measure);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Benchmark one named case.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.parent.warm_up, self.parent.measure);
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c =
            Criterion { warm_up: Duration::from_millis(2), measure: Duration::from_millis(5) };
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_with_input() {
        let mut c =
            Criterion { warm_up: Duration::from_millis(1), measure: Duration::from_millis(3) };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
