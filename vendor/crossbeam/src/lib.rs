//! Offline shim for the `crossbeam` crate.
//!
//! Only the `channel` module surface the workspace uses is provided:
//! `bounded`/`unbounded` constructors and `Sender`/`Receiver` with
//! `send`/`recv`/`try_recv`/`recv_timeout`/`iter`. Implemented over
//! `std::sync::mpsc`, with a unified `Sender` type covering both the
//! rendezvous/bounded (`SyncSender`) and unbounded (`Sender`) variants the
//! way crossbeam's single `Sender` does.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel (unified over bounded/unbounded).
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking on a full bounded channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Unbounded(s) => s.send(value),
                Tx::Bounded(s) => s.send(value),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocking iterator over received messages.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    /// Create a bounded channel with the given capacity (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn unbounded_roundtrip_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_try_recv() {
        let (tx, rx) = bounded(1);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
    }
}
