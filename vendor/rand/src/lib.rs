//! Offline shim for the `rand` crate (0.9-style API).
//!
//! Provides exactly the surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random_range` over integer and
//! float ranges — backed by xoshiro256** seeded through SplitMix64. The
//! stream differs from upstream `rand`, which is fine: every caller in this
//! repo relies on *determinism for a given seed*, never on upstream's exact
//! stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (0.0f64..1.0).sample_from(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if width == 0 {
                    // Full u128 wrap can't happen for <=64-bit types + 1 unless
                    // the range spans the whole domain of a 128-bit type; for
                    // our 64-bit-max types width==0 means the full domain.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty, $bits:expr);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                // Uniform in [0, 1) with $bits mantissa bits, then affine map.
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Affine rounding can land exactly on `end`; fold back inside.
                if v >= self.end { self.start } else { v.max(self.start) }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / ((1u64 << $bits) - 1) as $t;
                (lo + unit * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}

float_sample_range!(f32, 24; f64, 53);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic per seed; not upstream's stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(5usize..=500);
            assert!((5..=500).contains(&v));
            let f: f64 = rng.random_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let g: f32 = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from 10k");
        }
    }
}
