//! Offline shim for the `rayon` crate.
//!
//! Implements the slice-parallelism surface the kernels use —
//! `par_iter[_mut]`, `par_chunks[_mut]`, plus the `zip`/`enumerate`/
//! `for_each` adapters — with *real* parallelism: work is split into
//! contiguous shards and driven on `std::thread::scope` threads, one per
//! available core. There is no work stealing; transformer kernels split
//! into near-equal rows, so static sharding loses little to rayon proper.
//!
//! Design: a parallel iterator here is a splittable, indexed producer
//! (`len` + `split_at` + sequential drain). `for_each` recursively splits
//! to a per-thread shard and drains each shard on its own scoped thread.

use std::num::NonZeroUsize;

/// A splittable indexed producer of items.
///
/// `Item` values must be `Send` so shards can be driven on other threads.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Exact number of remaining items.
    fn len(&self) -> usize;

    /// Whether no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into `[0, index)` and `[index, len)` halves.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Pop the next item (sequential drain within one shard).
    fn next_item(&mut self) -> Option<Self::Item>;

    /// Pair this iterator with another, yielding item pairs
    /// (truncates to the shorter side, like rayon).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attach the item index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self, offset: 0 }
    }

    /// Apply `f` to every item, in parallel across available cores.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let threads = available_threads().min(self.len().max(1));
        if threads <= 1 {
            drain(self, &f);
            return;
        }
        // Split into `threads` near-equal contiguous shards.
        let total = self.len();
        let mut shards = Vec::with_capacity(threads);
        let mut rest = self;
        for t in (1..threads).rev() {
            let remaining = rest.len();
            let keep = remaining - remaining / (t + 1);
            let (head, tail) = rest.split_at(keep);
            shards.push(tail);
            rest = head;
        }
        shards.push(rest);
        debug_assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), total);
        std::thread::scope(|scope| {
            let f = &f;
            for shard in shards {
                scope.spawn(move || drain(shard, f));
            }
        });
    }
}

fn drain<P: ParallelIterator, F: Fn(P::Item)>(mut p: P, f: &F) {
    while let Some(item) = p.next_item() {
        f(item);
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Immutable chunk producer (`par_chunks`).
pub struct Chunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(mid);
        (Chunks { slice: l, size: self.size }, Chunks { slice: r, size: self.size })
    }

    fn next_item(&mut self) -> Option<Self::Item> {
        if self.slice.is_empty() {
            return None;
        }
        let cut = self.size.min(self.slice.len());
        let (head, tail) = self.slice.split_at(cut);
        self.slice = tail;
        Some(head)
    }
}

/// Mutable chunk producer (`par_chunks_mut`).
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(mid);
        (ChunksMut { slice: l, size: self.size }, ChunksMut { slice: r, size: self.size })
    }

    fn next_item(&mut self) -> Option<Self::Item> {
        if self.slice.is_empty() {
            return None;
        }
        let cut = self.size.min(self.slice.len());
        let slice = std::mem::take(&mut self.slice);
        let (head, tail) = slice.split_at_mut(cut);
        self.slice = tail;
        Some(head)
    }
}

/// Immutable element producer (`par_iter`).
pub struct Iter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index.min(self.slice.len()));
        (Iter { slice: l }, Iter { slice: r })
    }

    fn next_item(&mut self) -> Option<Self::Item> {
        let (head, tail) = self.slice.split_first()?;
        self.slice = tail;
        Some(head)
    }
}

/// Mutable element producer (`par_iter_mut`).
pub struct IterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = index.min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(mid);
        (IterMut { slice: l }, IterMut { slice: r })
    }

    fn next_item(&mut self) -> Option<Self::Item> {
        let slice = std::mem::take(&mut self.slice);
        let (head, tail) = slice.split_first_mut()?;
        self.slice = tail;
        Some(head)
    }
}

/// Pairwise combination of two producers.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn next_item(&mut self) -> Option<Self::Item> {
        // Check both sides before popping either, so an uneven zip never
        // consumes an item it can't pair.
        if self.a.is_empty() || self.b.is_empty() {
            return None;
        }
        Some((self.a.next_item()?, self.b.next_item()?))
    }
}

/// Index-attaching adapter.
pub struct Enumerate<P> {
    inner: P,
    offset: usize,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let split = index.min(self.inner.len());
        let (l, r) = self.inner.split_at(index);
        (
            Enumerate { inner: l, offset: self.offset },
            Enumerate { inner: r, offset: self.offset + split },
        )
    }

    fn next_item(&mut self) -> Option<Self::Item> {
        let item = self.inner.next_item()?;
        let i = self.offset;
        self.offset += 1;
        Some((i, item))
    }
}

/// `par_chunks`/`par_iter` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> Chunks<'_, T>;
    /// Parallel iterator over elements.
    fn par_iter(&self) -> Iter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> Chunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        Chunks { slice: self, size }
    }

    fn par_iter(&self) -> Iter<'_, T> {
        Iter { slice: self }
    }
}

/// `par_chunks_mut`/`par_iter_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
    /// Parallel iterator over mutable elements.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ChunksMut { slice: self, size }
    }

    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }
}

/// Everything call sites need in scope.
pub mod prelude {
    pub use crate::{ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_mut_covers_all_rows() {
        let mut data = vec![0u64; 1024 * 7];
        data.par_chunks_mut(7).enumerate().for_each(|(i, row)| {
            for v in row {
                *v = i as u64;
            }
        });
        for (i, chunk) in data.chunks(7).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as u64));
        }
    }

    #[test]
    fn zip_pairs_matching_chunks() {
        let src = (0..100).collect::<Vec<i64>>();
        let mut dst = vec![0i64; 100];
        dst.par_chunks_mut(9).zip(src.par_chunks(9)).for_each(|(d, s)| {
            d.copy_from_slice(s);
        });
        assert_eq!(dst, src);
    }

    #[test]
    fn iter_mut_zip_iter() {
        let src = vec![1.0f32; 333];
        let mut dst = vec![1.0f32; 333];
        dst.par_iter_mut().zip(src.par_iter()).for_each(|(d, &s)| *d += s);
        assert!(dst.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn ragged_tail_chunk_is_processed() {
        let mut data = [0i32; 10];
        data.par_chunks_mut(4).for_each(|c| {
            let n = c.len() as i32;
            c.iter_mut().for_each(|v| *v = n);
        });
        assert_eq!(&data[8..], &[2, 2]);
    }
}
