//! Offline facade for `serde_json`, delegating to the JSON core inside the
//! vendored `serde` shim (`serde::json`).

pub use serde::json::{parse, Error, Value};

use serde::{Deserialize, Serialize};

/// Serialize to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::deserialize_json(&parse(s)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::new("input is not utf-8"))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        id: usize,
        scale: f64,
        label: String,
        #[serde(default)]
        extra: Option<Vec<u32>>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mode {
        Fast,
        Careful,
    }

    #[test]
    fn struct_roundtrip() {
        let s = Sample { id: 7, scale: 0.125, label: "a\"b".into(), extra: Some(vec![1, 2]) };
        let json = to_string(&s).unwrap();
        let back: Sample = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn default_field_tolerates_missing_key() {
        let back: Sample = from_str(r#"{"id": 1, "scale": 2.0, "label": "x"}"#).unwrap();
        assert_eq!(back.extra, None);
    }

    #[test]
    fn missing_required_field_errors() {
        assert!(from_str::<Sample>(r#"{"id": 1}"#).is_err());
    }

    #[test]
    fn unit_enum_roundtrip() {
        let json = to_string(&Mode::Careful).unwrap();
        assert_eq!(json, "\"Careful\"");
        assert_eq!(from_str::<Mode>(&json).unwrap(), Mode::Careful);
        assert!(from_str::<Mode>("\"Nope\"").is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let v = to_vec(&Mode::Fast).unwrap();
        assert_eq!(from_slice::<Mode>(&v).unwrap(), Mode::Fast);
    }
}
