//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the offline `serde`
//! shim — no `syn`/`quote`, just direct token-stream walking.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields, honouring `#[serde(default)]` per field;
//! - enums whose variants are all unit (serialized as the variant name).
//!
//! Anything else panics at expansion time with a clear message, which is a
//! compile error at the deriving site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    has_default: bool,
}

enum Shape {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

/// Derive the shim's `Serialize` (JSON-direct).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::write_key(out, \"{0}\");\n\
                     ::serde::Serialize::serialize_json(&self.{0}, out);\n",
                    f.name
                ));
            }
            body.push_str("out.push('}');");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\",\n")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
                         let tag = match self {{\n{arms}}};\n\
                         ::serde::json::write_json_string(out, tag);\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Serialize impl")
}

/// Derive the shim's `Deserialize` (from a parsed JSON `Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let missing = if f.has_default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::serde::json::Error::new(\
                             \"missing field '{}' in {}\"))",
                            f.name, name
                        )
                    };
                    format!(
                        "{0}: match ::serde::json::find(obj, \"{0}\") {{\n\
                             ::std::option::Option::Some(x) => ::serde::Deserialize::deserialize_json(x)?,\n\
                             ::std::option::Option::None => {missing},\n\
                         }},\n",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_json(v: &::serde::json::Value)\n\
                         -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
                         let obj = v.as_object().ok_or_else(||\n\
                             ::serde::json::Error::new(\"expected object for {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_json(v: &::serde::json::Value)\n\
                         -> ::std::result::Result<Self, ::serde::json::Error> {{\n\
                         match v.as_str() {{\n\
                             ::std::option::Option::Some(tag) => match tag {{\n{arms}\
                                 other => ::std::result::Result::Err(::serde::json::Error::new(\n\
                                     ::std::format!(\"unknown {name} variant '{{other}}'\"))),\n\
                             }},\n\
                             ::std::option::Option::None => ::std::result::Result::Err(\n\
                                 ::serde::json::Error::new(\"expected string for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive generated invalid Deserialize impl")
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected 'struct' or 'enum', found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type {name})");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("serde_derive: no braced body on {name} (tuple/unit not supported)"),
        }
    };
    match kind.as_str() {
        "struct" => Shape::Struct { name, fields: parse_named_fields(body) },
        "enum" => Shape::Enum { name, variants: parse_unit_variants(body) },
        other => panic!("serde_derive: unsupported item kind '{other}'"),
    }
}

/// Advance past leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`); record whether any was `#[serde(default)]`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if attr_is_serde_default(&g.stream()) {
                        has_default = true;
                    }
                    *i += 2;
                } else {
                    panic!("serde_derive: stray '#'");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return has_default,
        }
    }
}

/// Does this attribute body (`serde(default)` etc.) mark a defaultable field?
fn attr_is_serde_default(stream: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.get(1) {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let has_default = skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde_derive: tuple structs are not supported (field {name})"),
        }
        // Skip the type: consume until a ',' at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, has_default });
    }
    fields
}

fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                panic!("serde_derive shim: only unit enum variants are supported ({name})")
            }
            Some(other) => panic!("serde_derive: unexpected token after variant {name}: {other}"),
        }
        variants.push(name);
    }
    variants
}
