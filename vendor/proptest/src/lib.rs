//! Offline shim for `proptest`.
//!
//! Implements the strategy/macro surface the workspace's property tests use
//! — `proptest!` with `#![proptest_config]`, range and tuple strategies,
//! `Just`, `prop_oneof!`, `prop::bool::ANY`, `prop::collection::vec`, and
//! `prop_map` — as plain random-case generation. There is **no shrinking**:
//! a failing case panics with the assert message; seeds derive
//! deterministically from (module path, test name, case index), so failures
//! reproduce run to run.

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case generator (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one test case, seeded from test identity + case index.
    pub fn for_case(module: &str, name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in module.bytes().chain([b':']).chain(name.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

/// What one generated case did — `prop_assume!` rejects surface here.
pub enum CaseOutcome {
    /// Body ran to completion.
    Pass,
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always produce a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Box a strategy as a trait object (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice among equally-weighted strategies.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Build from boxed options (non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_below(self.options.len());
        self.options[i].new_value(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % width;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let draw = (rng.next_u64() as u128) % width;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty, $bits:expr);*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                let v = self.start + unit * (self.end - self.start);
                if v >= self.end { self.start } else { v.max(self.start) }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / ((1u64 << $bits) - 1) as $t;
                (lo + unit * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}

float_strategy!(f32, 24; f64, 53);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// The `prop::` namespace (`prop::bool::ANY`, `prop::collection::vec`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform over `{true, false}`.
        pub struct Any;

        /// The canonical boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn new_value(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Things usable as a vec-length specification.
        pub trait SizeRange {
            /// Draw a length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
            }
        }

        /// Generate `Vec`s whose elements come from `element`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        /// Vec strategy with a fixed or ranged length.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }
}

/// Declare property tests. Each case re-generates every argument; failures
/// panic immediately (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut prop_rng =
                        $crate::TestRng::for_case(module_path!(), stringify!($name), case);
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut prop_rng);)+
                    // Closure so `prop_assume!` can skip the case via return.
                    #[allow(clippy::redundant_closure_call)]
                    let _outcome: $crate::CaseOutcome = (move || {
                        { $body }
                        $crate::CaseOutcome::Pass
                    })();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Assert within a property (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::CaseOutcome::Reject;
        }
    };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strat)),+])
    };
}

/// Everything property tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, bool)> {
        (1usize..10, prop::bool::ANY).prop_map(|(a, b)| (a * 2, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect bounds; doc-comment attrs pass through the macro.
        #[test]
        fn ranges_in_bounds(a in 5usize..=500, f in -2.0f32..2.0, mut n in 1u64..9) {
            n += 1;
            prop_assert!((5..=500).contains(&a));
            prop_assert!((-2.0..2.0).contains(&f), "f = {f}");
            prop_assert!((2..=9).contains(&n));
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(prop_oneof![Just(1), Just(2)], 0..20)) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn mapped_tuples(p in pair()) {
            prop_assert_eq!(p.0 % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("m", "t", 3);
        let mut b = TestRng::for_case("m", "t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    use super::TestRng;
}
