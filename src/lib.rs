//! # TurboTransformers (Rust reproduction)
//!
//! A from-scratch Rust reproduction of *TurboTransformers: An Efficient GPU
//! Serving System For Transformer Models* (Fang, Yu, Zhao, Zhou — PPoPP 2021).
//!
//! The crate is a facade over the workspace's subsystem crates:
//!
//! - [`tensor`] — dense f32 tensor substrate with blocked, rayon-parallel SGEMM.
//! - [`gpusim`] — a functional + timing simulator of the CUDA execution model
//!   (warps, shuffles, shared-memory barriers, an issue-pipeline scoreboard),
//!   used to study the paper's batch-reduction kernels without a physical GPU.
//! - [`alloc`] — the sequence-length-aware chunked allocator (paper Alg. 1+2)
//!   and its baselines (GSOC, caching, naive).
//! - [`graph`] — computation graph, non-GEMM kernel fusion, tensor lifetimes.
//! - [`kernels`] — real CPU implementations of all transformer ops.
//! - [`model`] — BERT, ALBERT and a Seq2Seq decoder with beam search.
//! - [`runtime`] — the inference runtime tying the above together, plus
//!   baseline runtime variants (PyTorch-like, onnxruntime-like, …).
//! - [`serving`] — message queue, response cache, the DP batch scheduler
//!   (paper Alg. 3) and a discrete-event serving simulator.
//!
//! ## Quickstart
//!
//! ```
//! use turbotransformers::prelude::*;
//!
//! // Build a BERT-base encoder and run a variable-length inference.
//! let cfg = BertConfig::base();
//! let model = Bert::new_random(&cfg, 0xC0FFEE);
//! let runtime = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
//! let input = ids_batch(&[&[101, 7592, 2088, 102]]); // [CLS] hello world [SEP]
//! let out = runtime.run_bert(&model, &input).unwrap();
//! assert_eq!(out.encoder_output.shape().dims(), &[1, 4, cfg.model_dim()]);
//! ```

pub use tt_alloc as alloc;
pub use tt_gpusim as gpusim;
pub use tt_graph as graph;
pub use tt_kernels as kernels;
pub use tt_model as model;
pub use tt_runtime as runtime;
pub use tt_serving as serving;
pub use tt_telemetry as telemetry;
pub use tt_tensor as tensor;

/// The most commonly used types, for `use turbotransformers::prelude::*`.
pub mod prelude {
    pub use tt_gpusim::device::DeviceKind;
    pub use tt_model::albert::{Albert, AlbertConfig};
    pub use tt_model::bert::{Bert, BertConfig};
    pub use tt_model::decoder::{Seq2SeqDecoder, Seq2SeqDecoderConfig};
    pub use tt_model::gpt::{Gpt, GptConfig};
    pub use tt_model::seq2seq::{Seq2SeqConfig, TranslationModel};
    pub use tt_model::{ids_batch, pad_batch};
    pub use tt_runtime::{RuntimeConfig, RuntimeKind, TurboRuntime};
    pub use tt_serving::request::Request;
    pub use tt_serving::scheduler::{BatchScheduler, DpScheduler};
    pub use tt_telemetry::Registry;
    pub use tt_tensor::{Shape, Tensor};
}
