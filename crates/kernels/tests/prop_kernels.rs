//! Property-based tests of the CPU kernels: mathematical invariants that
//! must hold for arbitrary inputs, not just the unit-test vectors.

use proptest::prelude::*;
use tt_kernels as k;

fn finite_rows(rows: usize, cols: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-50.0f32..50.0, rows * cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Softmax rows are probability distributions.
    #[test]
    fn softmax_rows_are_distributions(data in finite_rows(6, 17)) {
        let mut buf = data.clone();
        k::softmax_rows(6, 17, &mut buf);
        for row in buf.chunks(17) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sums to {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    /// Softmax preserves the ordering of the inputs within a row.
    #[test]
    fn softmax_is_monotone(data in finite_rows(1, 24)) {
        let mut buf = data.clone();
        k::softmax_rows(1, 24, &mut buf);
        for i in 0..24 {
            for j in 0..24 {
                if data[i] < data[j] {
                    prop_assert!(buf[i] <= buf[j] + 1e-6);
                }
            }
        }
    }

    /// Softmax is invariant under per-row shifts.
    #[test]
    fn softmax_shift_invariance(data in finite_rows(1, 16), shift in -100.0f32..100.0) {
        let mut a = data.clone();
        let mut b: Vec<f32> = data.iter().map(|v| v + shift).collect();
        k::softmax_rows(1, 16, &mut a);
        k::softmax_rows(1, 16, &mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// The one-pass Var(x)=E(x²)−E²(x) LayerNorm agrees with the two-pass
    /// reference for arbitrary inputs in a sane range.
    #[test]
    fn layernorm_formulas_agree(data in finite_rows(4, 33)) {
        let gamma = vec![1.3f32; 33];
        let beta = vec![-0.2f32; 33];
        let mut one = vec![0.0; data.len()];
        let mut two = vec![0.0; data.len()];
        k::layer_norm(4, 33, &data, &gamma, &beta, 1e-5, &mut one);
        k::layer_norm_two_pass(4, 33, &data, &gamma, &beta, 1e-5, &mut two);
        for (a, b) in one.iter().zip(two.iter()) {
            prop_assert!((a - b).abs() < 2e-3, "{a} vs {b}");
        }
    }

    /// LayerNorm output (γ=1, β=0) has zero mean and unit variance.
    #[test]
    fn layernorm_normalizes(data in finite_rows(3, 40)) {
        // Skip degenerate near-constant rows where var ≈ eps dominates.
        let gamma = vec![1.0f32; 40];
        let beta = vec![0.0f32; 40];
        let mut out = vec![0.0; data.len()];
        k::layer_norm(3, 40, &data, &gamma, &beta, 1e-6, &mut out);
        for (orow, irow) in out.chunks(40).zip(data.chunks(40)) {
            let in_var: f32 = {
                let m: f32 = irow.iter().sum::<f32>() / 40.0;
                irow.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / 40.0
            };
            if in_var < 1e-3 {
                continue;
            }
            let mean: f32 = orow.iter().sum::<f32>() / 40.0;
            let var: f32 = orow.iter().map(|v| v * v).sum::<f32>() / 40.0;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
            prop_assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    /// Head split followed by merge is the identity for any geometry.
    #[test]
    fn split_merge_roundtrip(
        b in 1usize..4,
        s in 1usize..9,
        h in 1usize..5,
        d in 1usize..7,
    ) {
        let n = b * s * h * d;
        let src: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut mid = vec![0.0; n];
        let mut back = vec![0.0; n];
        k::split_heads(b, s, h, d, &src, &mut mid);
        k::merge_heads(b, s, h, d, &mid, &mut back);
        prop_assert_eq!(back, src);
    }

    /// Fused bias+split equals the unfused sequence for any geometry.
    #[test]
    fn fused_bias_split_equivalence(
        b in 1usize..3,
        s in 1usize..7,
        h in 1usize..4,
        d in 1usize..6,
        seed in 0u64..1000,
    ) {
        let n = b * s * h * d;
        let src: Vec<f32> = (0..n).map(|i| ((i as u64 * 31 + seed) % 97) as f32 * 0.1).collect();
        let bias: Vec<f32> = (0..h * d).map(|i| i as f32 * 0.01).collect();
        let mut fused = vec![0.0; n];
        k::add_bias_split_heads(b, s, h, d, &src, &bias, &mut fused);
        let mut biased = src.clone();
        k::add_bias(b * s, h * d, &mut biased, &bias);
        let mut seq = vec![0.0; n];
        k::split_heads(b, s, h, d, &biased, &mut seq);
        prop_assert_eq!(fused, seq);
    }

    /// GELU shape: bounded between `min(x, 0)` and `max(x, 0)` everywhere,
    /// and monotone on `x ≥ 0` (the true GELU is *not* globally monotone —
    /// it dips to ≈ −0.17 near x ≈ −0.75 and returns to 0 from below).
    #[test]
    fn gelu_shape_properties(x in -20.0f32..20.0, y in 0.0f32..20.0, z in 0.0f32..20.0) {
        prop_assert!(k::gelu_scalar(x) <= x.max(0.0) + 1e-5);
        prop_assert!(k::gelu_scalar(x) >= x.min(0.0) - 1e-5);
        let (lo, hi) = if y < z { (y, z) } else { (z, y) };
        prop_assert!(k::gelu_scalar(lo) <= k::gelu_scalar(hi) + 1e-5);
    }

    /// Fused bias+GELU equals add_bias followed by gelu for any geometry,
    /// including tile-edge column counts (1, SIMD-width ± 1, …).
    #[test]
    fn fused_bias_gelu_equivalence(
        rows in 1usize..5,
        cols_i in 0usize..8,
        seed in 0u64..1000,
    ) {
        let cols = [1usize, 7, 8, 9, 15, 16, 17, 31][cols_i];
        let n = rows * cols;
        let src: Vec<f32> = (0..n).map(|i| ((i as u64 * 37 + seed) % 101) as f32 * 0.08 - 4.0).collect();
        let bias: Vec<f32> = (0..cols).map(|i| (i as f32 - 3.0) * 0.2).collect();
        let mut fused = src.clone();
        k::add_bias_gelu(rows, cols, &mut fused, &bias);
        let mut unfused = src.clone();
        k::add_bias(rows, cols, &mut unfused, &bias);
        k::gelu(&mut unfused);
        for (f, u) in fused.iter().zip(&unfused) {
            prop_assert!((f - u).abs() < 1e-6, "{f} vs {u}");
        }
    }

    /// Fused bias+residual+LayerNorm equals the three-pass composition for
    /// any geometry, including hidden sizes straddling vector widths.
    #[test]
    fn fused_bias_residual_layernorm_equivalence(
        rows in 1usize..5,
        hidden_i in 0usize..7,
        seed in 0u64..1000,
    ) {
        let hidden = [1usize, 7, 8, 9, 16, 17, 33][hidden_i];
        let n = rows * hidden;
        let gen = |mul: u64, off: f32| -> Vec<f32> {
            (0..n).map(|i| ((i as u64 * mul + seed) % 89) as f32 * 0.05 + off).collect()
        };
        let x = gen(13, -2.0);
        let residual = gen(29, -1.0);
        let bias: Vec<f32> = (0..hidden).map(|i| i as f32 * 0.03).collect();
        let gamma = vec![1.1f32; hidden];
        let beta = vec![0.4f32; hidden];
        let mut fused = vec![0.0; n];
        k::add_bias_residual_layer_norm(
            rows, hidden, &x, &bias, &residual, &gamma, &beta, 1e-5, &mut fused,
        );
        let mut sum = x.clone();
        k::add_bias(rows, hidden, &mut sum, &bias);
        k::residual_add(&mut sum, &residual);
        let mut unfused = vec![0.0; n];
        k::layer_norm(rows, hidden, &sum, &gamma, &beta, 1e-5, &mut unfused);
        for (f, u) in fused.iter().zip(&unfused) {
            prop_assert!((f - u).abs() < 1e-4, "{f} vs {u}");
        }
    }

    /// Fused scale+mask+softmax equals scale, additive mask, then softmax,
    /// for any attention geometry including single-key rows.
    #[test]
    fn fused_scale_mask_softmax_equivalence(
        b in 1usize..3,
        h in 1usize..3,
        sq in 1usize..4,
        sk_i in 0usize..6,
        seed in 0u64..1000,
    ) {
        let sk = [1usize, 2, 7, 8, 9, 17][sk_i];
        let n = b * h * sq * sk;
        let scores: Vec<f32> =
            (0..n).map(|i| ((i as u64 * 41 + seed) % 71) as f32 * 0.1 - 3.0).collect();
        // Additive mask: pad the tail keys of each batch when sk allows.
        let mask: Vec<f32> = (0..b * sk)
            .map(|i| if sk > 1 && i % sk == sk - 1 { f32::NEG_INFINITY } else { 0.0 })
            .collect();
        let scale = 0.37f32;
        let mut fused = scores.clone();
        k::scale_mask_softmax(b, h, sq, sk, scale, Some(&mask), &mut fused);
        let mut unfused = scores.clone();
        for v in unfused.iter_mut() {
            *v *= scale;
        }
        for row in 0..b * h * sq {
            let bi = row / (h * sq);
            for (v, &m) in unfused[row * sk..(row + 1) * sk].iter_mut().zip(&mask[bi * sk..]) {
                *v += m;
            }
        }
        k::softmax_rows(b * h * sq, sk, &mut unfused);
        for (f, u) in fused.iter().zip(&unfused) {
            prop_assert!((f - u).abs() < 1e-5, "{f} vs {u}");
        }
    }

    /// scale_mask_softmax gives padded key positions exactly zero weight.
    #[test]
    fn masked_keys_get_zero_probability(
        data in finite_rows(1, 12),
        pad_from in 1usize..12,
    ) {
        let mut mask = vec![0.0f32; 12];
        for m in mask.iter_mut().skip(pad_from) {
            *m = f32::NEG_INFINITY;
        }
        let mut scores = data.clone();
        k::scale_mask_softmax(1, 1, 1, 12, 0.5, Some(&mask), &mut scores);
        for (i, &p) in scores.iter().enumerate() {
            if i >= pad_from {
                prop_assert_eq!(p, 0.0, "padded key {} leaked weight {}", i, p);
            }
        }
        let valid_sum: f32 = scores[..pad_from].iter().sum();
        prop_assert!((valid_sum - 1.0).abs() < 1e-4);
    }
}
