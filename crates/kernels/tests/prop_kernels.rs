//! Property-based tests of the CPU kernels: mathematical invariants that
//! must hold for arbitrary inputs, not just the unit-test vectors.

use proptest::prelude::*;
use tt_kernels as k;

fn finite_rows(rows: usize, cols: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-50.0f32..50.0, rows * cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Softmax rows are probability distributions.
    #[test]
    fn softmax_rows_are_distributions(data in finite_rows(6, 17)) {
        let mut buf = data.clone();
        k::softmax_rows(6, 17, &mut buf);
        for row in buf.chunks(17) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sums to {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    /// Softmax preserves the ordering of the inputs within a row.
    #[test]
    fn softmax_is_monotone(data in finite_rows(1, 24)) {
        let mut buf = data.clone();
        k::softmax_rows(1, 24, &mut buf);
        for i in 0..24 {
            for j in 0..24 {
                if data[i] < data[j] {
                    prop_assert!(buf[i] <= buf[j] + 1e-6);
                }
            }
        }
    }

    /// Softmax is invariant under per-row shifts.
    #[test]
    fn softmax_shift_invariance(data in finite_rows(1, 16), shift in -100.0f32..100.0) {
        let mut a = data.clone();
        let mut b: Vec<f32> = data.iter().map(|v| v + shift).collect();
        k::softmax_rows(1, 16, &mut a);
        k::softmax_rows(1, 16, &mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// The one-pass Var(x)=E(x²)−E²(x) LayerNorm agrees with the two-pass
    /// reference for arbitrary inputs in a sane range.
    #[test]
    fn layernorm_formulas_agree(data in finite_rows(4, 33)) {
        let gamma = vec![1.3f32; 33];
        let beta = vec![-0.2f32; 33];
        let mut one = vec![0.0; data.len()];
        let mut two = vec![0.0; data.len()];
        k::layer_norm(4, 33, &data, &gamma, &beta, 1e-5, &mut one);
        k::layer_norm_two_pass(4, 33, &data, &gamma, &beta, 1e-5, &mut two);
        for (a, b) in one.iter().zip(two.iter()) {
            prop_assert!((a - b).abs() < 2e-3, "{a} vs {b}");
        }
    }

    /// LayerNorm output (γ=1, β=0) has zero mean and unit variance.
    #[test]
    fn layernorm_normalizes(data in finite_rows(3, 40)) {
        // Skip degenerate near-constant rows where var ≈ eps dominates.
        let gamma = vec![1.0f32; 40];
        let beta = vec![0.0f32; 40];
        let mut out = vec![0.0; data.len()];
        k::layer_norm(3, 40, &data, &gamma, &beta, 1e-6, &mut out);
        for (orow, irow) in out.chunks(40).zip(data.chunks(40)) {
            let in_var: f32 = {
                let m: f32 = irow.iter().sum::<f32>() / 40.0;
                irow.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / 40.0
            };
            if in_var < 1e-3 {
                continue;
            }
            let mean: f32 = orow.iter().sum::<f32>() / 40.0;
            let var: f32 = orow.iter().map(|v| v * v).sum::<f32>() / 40.0;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
            prop_assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    /// Head split followed by merge is the identity for any geometry.
    #[test]
    fn split_merge_roundtrip(
        b in 1usize..4,
        s in 1usize..9,
        h in 1usize..5,
        d in 1usize..7,
    ) {
        let n = b * s * h * d;
        let src: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut mid = vec![0.0; n];
        let mut back = vec![0.0; n];
        k::split_heads(b, s, h, d, &src, &mut mid);
        k::merge_heads(b, s, h, d, &mid, &mut back);
        prop_assert_eq!(back, src);
    }

    /// Fused bias+split equals the unfused sequence for any geometry.
    #[test]
    fn fused_bias_split_equivalence(
        b in 1usize..3,
        s in 1usize..7,
        h in 1usize..4,
        d in 1usize..6,
        seed in 0u64..1000,
    ) {
        let n = b * s * h * d;
        let src: Vec<f32> = (0..n).map(|i| ((i as u64 * 31 + seed) % 97) as f32 * 0.1).collect();
        let bias: Vec<f32> = (0..h * d).map(|i| i as f32 * 0.01).collect();
        let mut fused = vec![0.0; n];
        k::add_bias_split_heads(b, s, h, d, &src, &bias, &mut fused);
        let mut biased = src.clone();
        k::add_bias(b * s, h * d, &mut biased, &bias);
        let mut seq = vec![0.0; n];
        k::split_heads(b, s, h, d, &biased, &mut seq);
        prop_assert_eq!(fused, seq);
    }

    /// GELU shape: bounded between `min(x, 0)` and `max(x, 0)` everywhere,
    /// and monotone on `x ≥ 0` (the true GELU is *not* globally monotone —
    /// it dips to ≈ −0.17 near x ≈ −0.75 and returns to 0 from below).
    #[test]
    fn gelu_shape_properties(x in -20.0f32..20.0, y in 0.0f32..20.0, z in 0.0f32..20.0) {
        prop_assert!(k::gelu_scalar(x) <= x.max(0.0) + 1e-5);
        prop_assert!(k::gelu_scalar(x) >= x.min(0.0) - 1e-5);
        let (lo, hi) = if y < z { (y, z) } else { (z, y) };
        prop_assert!(k::gelu_scalar(lo) <= k::gelu_scalar(hi) + 1e-5);
    }

    /// scale_mask_softmax gives padded key positions exactly zero weight.
    #[test]
    fn masked_keys_get_zero_probability(
        data in finite_rows(1, 12),
        pad_from in 1usize..12,
    ) {
        let mut mask = vec![0.0f32; 12];
        for m in mask.iter_mut().skip(pad_from) {
            *m = f32::NEG_INFINITY;
        }
        let mut scores = data.clone();
        k::scale_mask_softmax(1, 1, 1, 12, 0.5, Some(&mask), &mut scores);
        for (i, &p) in scores.iter().enumerate() {
            if i >= pad_from {
                prop_assert_eq!(p, 0.0, "padded key {} leaked weight {}", i, p);
            }
        }
        let valid_sum: f32 = scores[..pad_from].iter().sum();
        prop_assert!((valid_sum - 1.0).abs() < 1e-4);
    }
}
