//! Head split/merge transposes.
//!
//! Multi-head attention reshapes `[batch, seq, heads·dim]` activations into
//! `[batch, heads, seq, dim]` so that per-head GEMMs see contiguous
//! matrices, and back afterwards. On the GPU these are the transpose
//! kernels the paper fuses with the preceding bias add; here they are the
//! layout primitives of the executor.

use rayon::prelude::*;

use crate::par_threshold;

/// `[batch, seq, heads·dim] → [batch, heads, seq, dim]`.
pub fn split_heads(
    batch: usize,
    seq: usize,
    heads: usize,
    dim: usize,
    src: &[f32],
    dst: &mut [f32],
) {
    let n = batch * seq * heads * dim;
    assert_eq!(src.len(), n, "split_heads src size");
    assert_eq!(dst.len(), n, "split_heads dst size");
    let body = |(out_row, dst_row): (usize, &mut [f32])| {
        // dst_row is one [dim] vector at [b][h][s].
        let b = out_row / (heads * seq);
        let h = (out_row / seq) % heads;
        let s = out_row % seq;
        let src_off = ((b * seq + s) * heads + h) * dim;
        dst_row.copy_from_slice(&src[src_off..src_off + dim]);
    };
    if n >= par_threshold() {
        dst.par_chunks_mut(dim).enumerate().for_each(body);
    } else {
        dst.chunks_mut(dim).enumerate().for_each(body);
    }
}

/// `[batch, heads, seq, dim] → [batch, seq, heads·dim]` — inverse of
/// [`split_heads`].
pub fn merge_heads(
    batch: usize,
    seq: usize,
    heads: usize,
    dim: usize,
    src: &[f32],
    dst: &mut [f32],
) {
    let n = batch * seq * heads * dim;
    assert_eq!(src.len(), n, "merge_heads src size");
    assert_eq!(dst.len(), n, "merge_heads dst size");
    let body = |(out_row, dst_row): (usize, &mut [f32])| {
        // dst_row is one [dim] vector at [b][s][h].
        let b = out_row / (seq * heads);
        let s = (out_row / heads) % seq;
        let h = out_row % heads;
        let src_off = ((b * heads + h) * seq + s) * dim;
        dst_row.copy_from_slice(&src[src_off..src_off + dim]);
    };
    if n >= par_threshold() {
        dst.par_chunks_mut(dim).enumerate().for_each(body);
    } else {
        dst.chunks_mut(dim).enumerate().for_each(body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_places_head_slices() {
        // batch 1, seq 2, heads 2, dim 2:
        // src[s][h][d] = s*100 + h*10 + d.
        let src = vec![
            0.0, 1.0, 10.0, 11.0, // s=0: h0=[0,1], h1=[10,11]
            100.0, 101.0, 110.0, 111.0, // s=1
        ];
        let mut dst = vec![0.0; 8];
        split_heads(1, 2, 2, 2, &src, &mut dst);
        // dst[h][s][d]
        assert_eq!(dst, vec![0.0, 1.0, 100.0, 101.0, 10.0, 11.0, 110.0, 111.0]);
    }

    #[test]
    fn merge_is_inverse_of_split() {
        let (b, s, h, d) = (2, 3, 4, 5);
        let src: Vec<f32> = (0..b * s * h * d).map(|i| i as f32).collect();
        let mut mid = vec![0.0; src.len()];
        let mut back = vec![0.0; src.len()];
        split_heads(b, s, h, d, &src, &mut mid);
        merge_heads(b, s, h, d, &mid, &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn split_merge_round_trip_large_parallel() {
        let (b, s, h, d) = (4, 40, 12, 64); // > default par_threshold() elements
        let src: Vec<f32> = (0..b * s * h * d).map(|i| ((i * 7) % 1001) as f32).collect();
        let mut mid = vec![0.0; src.len()];
        let mut back = vec![0.0; src.len()];
        split_heads(b, s, h, d, &src, &mut mid);
        merge_heads(b, s, h, d, &mid, &mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn single_head_split_is_identity() {
        let src: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let mut dst = vec![0.0; 24];
        split_heads(2, 3, 1, 4, &src, &mut dst);
        assert_eq!(dst, src);
    }
}
