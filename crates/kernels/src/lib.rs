//! # tt-kernels — CPU implementations of the transformer operators
//!
//! Every non-GEMM operator of the paper's runtime, in both *fused* form (the
//! custom kernels of paper Figure 3) and *unfused* form (the fine-grained
//! ops the PyTorch-like baseline launches one by one). These are the real
//! numerics of the reproduction — the GPU timing of the same kernels is
//! modelled separately by `tt-gpusim`, whose algorithmic structure
//! (two-pass reductions, `Var(x) = E(x²) − E²(x)`) these implementations
//! mirror so the functional and timing models describe the same code.
//!
//! Layout conventions (row-major throughout):
//! - token-major activations: `[batch, seq, hidden]`
//! - head-split activations: `[batch, heads, seq, head_dim]`
//! - attention scores/probabilities: `[batch, heads, seq_q, seq_k]`

pub mod activation;
pub mod embedding;
pub mod fused;
pub mod layernorm;
pub mod softmax;
pub mod transpose;

pub use activation::{add_bias, add_bias_gelu, gelu, gelu_scalar, residual_add};
pub use embedding::embed;
pub use fused::{add_bias_residual_layer_norm, add_bias_split_heads};
pub use layernorm::{layer_norm, layer_norm_two_pass};
pub use softmax::{scale_mask_softmax, softmax_rows};
pub use transpose::{merge_heads, split_heads};

/// Parallelism threshold: below this many total elements, rayon dispatch
/// costs more than it saves and kernels run serially.
pub(crate) const PAR_THRESHOLD: usize = 1 << 14;
