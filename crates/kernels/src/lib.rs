//! # tt-kernels — CPU implementations of the transformer operators
//!
//! Every non-GEMM operator of the paper's runtime, in both *fused* form (the
//! custom kernels of paper Figure 3) and *unfused* form (the fine-grained
//! ops the PyTorch-like baseline launches one by one). These are the real
//! numerics of the reproduction — the GPU timing of the same kernels is
//! modelled separately by `tt-gpusim`, whose algorithmic structure
//! (two-pass reductions, `Var(x) = E(x²) − E²(x)`) these implementations
//! mirror so the functional and timing models describe the same code.
//!
//! Layout conventions (row-major throughout):
//! - token-major activations: `[batch, seq, hidden]`
//! - head-split activations: `[batch, heads, seq, head_dim]`
//! - attention scores/probabilities: `[batch, heads, seq_q, seq_k]`

pub mod activation;
pub mod embedding;
pub mod fused;
pub mod layernorm;
pub mod softmax;
pub mod transpose;

pub use activation::{add_bias, add_bias_gelu, gelu, gelu_scalar, residual_add};
pub use embedding::embed;
pub use fused::{add_bias_residual_layer_norm, add_bias_split_heads};
pub use layernorm::{layer_norm, layer_norm_two_pass};
pub use softmax::{scale_mask_softmax, softmax_rows};
pub use transpose::{merge_heads, split_heads};

/// Default parallelism threshold: below this many total elements, rayon
/// dispatch costs more than it saves and kernels run serially.
pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 14;

static PAR_THRESHOLD_CELL: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

/// The serial/parallel crossover in total elements, read once per process.
///
/// Defaults to [`DEFAULT_PAR_THRESHOLD`]; override with the
/// `TT_PAR_THRESHOLD` environment variable to tune the crossover for a
/// machine's core count and dispatch cost (higher = more work stays
/// serial). Invalid or empty values fall back to the default.
pub fn par_threshold() -> usize {
    *PAR_THRESHOLD_CELL.get_or_init(|| {
        std::env::var("TT_PAR_THRESHOLD")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_PAR_THRESHOLD)
    })
}

#[cfg(test)]
mod par_threshold_tests {
    use super::*;

    #[test]
    fn threshold_resolves_to_a_sane_value() {
        // The env var is process-global, so only assert consistency: the
        // cell latches one value and returns it forever after.
        let first = par_threshold();
        assert!(first > 0);
        assert_eq!(first, par_threshold());
    }
}
