//! LayerNorm kernels, in both variance formulations of paper Equation 1.
//!
//! The production kernel [`layer_norm`] uses the paper's one-pass trick
//! `Var(x) = E(x²) − E²(x)` — `Σx` and `Σx²` accumulate in the same sweep,
//! which on the GPU halves reductions and synchronizations (and is what
//! `tt-gpusim`'s `LayerNormAlgo::TurboOnePass` prices). The reference
//! [`layer_norm_two_pass`] computes `E(x − E(x))²` like FasterTransformer;
//! the tests pin the two to agree within f32 tolerance, which is the
//! numerical-safety claim behind the optimization.

use rayon::prelude::*;

use crate::par_threshold;

/// One-pass LayerNorm over the last dimension of `[rows, hidden]`:
/// `out = (x − μ) / √(σ² + eps) · γ + β`.
pub fn layer_norm(
    rows: usize,
    hidden: usize,
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [f32],
) {
    assert_eq!(x.len(), rows * hidden, "layernorm input size");
    assert_eq!(out.len(), rows * hidden, "layernorm output size");
    assert_eq!(gamma.len(), hidden, "gamma size");
    assert_eq!(beta.len(), hidden, "beta size");
    if hidden == 0 {
        return;
    }
    let inv_n = 1.0 / hidden as f32;
    let body = |(row, orow): (&[f32], &mut [f32])| {
        let mut sum = 0.0f32;
        let mut sum_sq = 0.0f32;
        for &v in row {
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum * inv_n;
        // E(x²) − E²(x); clamp at zero — catastrophic cancellation can
        // produce a tiny negative for near-constant rows.
        let var = (sum_sq * inv_n - mean * mean).max(0.0);
        let rstd = 1.0 / (var + eps).sqrt();
        for ((o, &v), (&g, &b)) in orow.iter_mut().zip(row).zip(gamma.iter().zip(beta)) {
            *o = (v - mean) * rstd * g + b;
        }
    };
    if x.len() >= par_threshold() {
        x.par_chunks(hidden).zip(out.par_chunks_mut(hidden)).for_each(body);
    } else {
        x.chunks(hidden).zip(out.chunks_mut(hidden)).for_each(body);
    }
}

/// Two-pass reference LayerNorm computing `E(x − E(x))²` — the
/// FasterTransformer formulation the paper improves on. Serial; used as a
/// numerical oracle and by the ablation bench.
pub fn layer_norm_two_pass(
    rows: usize,
    hidden: usize,
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [f32],
) {
    assert_eq!(x.len(), rows * hidden);
    assert_eq!(out.len(), rows * hidden);
    if hidden == 0 {
        return;
    }
    let inv_n = 1.0 / hidden as f32;
    for (row, orow) in x.chunks(hidden).zip(out.chunks_mut(hidden)) {
        let mean = row.iter().sum::<f32>() * inv_n;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() * inv_n;
        let rstd = 1.0 / (var + eps).sqrt();
        for ((o, &v), (&g, &b)) in orow.iter_mut().zip(row).zip(gamma.iter().zip(beta)) {
            *o = (v - mean) * rstd * g + b;
        }
    }
    let _ = rows;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamma_beta(hidden: usize) -> (Vec<f32>, Vec<f32>) {
        let gamma: Vec<f32> = (0..hidden).map(|i| 1.0 + 0.01 * i as f32).collect();
        let beta: Vec<f32> = (0..hidden).map(|i| -0.5 + 0.02 * i as f32).collect();
        (gamma, beta)
    }

    #[test]
    fn normalized_rows_have_zero_mean_unit_var() {
        let hidden = 64;
        let x: Vec<f32> = (0..hidden).map(|i| (i as f32) * 0.3 - 7.0).collect();
        let gamma = vec![1.0; hidden];
        let beta = vec![0.0; hidden];
        let mut out = vec![0.0; hidden];
        layer_norm(1, hidden, &x, &gamma, &beta, 1e-6, &mut out);
        let mean: f32 = out.iter().sum::<f32>() / hidden as f32;
        let var: f32 = out.iter().map(|v| v * v).sum::<f32>() / hidden as f32;
        assert!(mean.abs() < 1e-5, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
    }

    #[test]
    fn one_pass_matches_two_pass() {
        let (rows, hidden) = (7, 96);
        let x: Vec<f32> = (0..rows * hidden).map(|i| ((i * 37) % 23) as f32 * 0.7 - 8.0).collect();
        let (gamma, beta) = gamma_beta(hidden);
        let mut a = vec![0.0; rows * hidden];
        let mut b = vec![0.0; rows * hidden];
        layer_norm(rows, hidden, &x, &gamma, &beta, 1e-5, &mut a);
        layer_norm_two_pass(rows, hidden, &x, &gamma, &beta, 1e-5, &mut b);
        for (p, q) in a.iter().zip(b.iter()) {
            assert!((p - q).abs() < 1e-4, "variance formulas must agree: {p} vs {q}");
        }
    }

    #[test]
    fn constant_row_is_all_beta() {
        let hidden = 8;
        let x = vec![3.0f32; hidden];
        let (gamma, beta) = gamma_beta(hidden);
        let mut out = vec![0.0; hidden];
        layer_norm(1, hidden, &x, &gamma, &beta, 1e-5, &mut out);
        // var = 0 (clamped) → normalized value 0 → out = beta.
        for (o, b) in out.iter().zip(beta.iter()) {
            assert!((o - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gamma_beta_are_applied() {
        let hidden = 4;
        let x = vec![1.0f32, 2.0, 3.0, 4.0];
        let gamma = vec![2.0f32; hidden];
        let beta = vec![10.0f32; hidden];
        let mut scaled = vec![0.0; hidden];
        layer_norm(1, hidden, &x, &gamma, &beta, 1e-6, &mut scaled);
        let mut plain = vec![0.0; hidden];
        layer_norm(1, hidden, &x, &vec![1.0; hidden], &vec![0.0; hidden], 1e-6, &mut plain);
        for (s, p) in scaled.iter().zip(plain.iter()) {
            assert!((s - (p * 2.0 + 10.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        let (rows, hidden) = (300, 128); // exceeds the default par_threshold()
        let x: Vec<f32> = (0..rows * hidden).map(|i| ((i * 11) % 31) as f32 * 0.2).collect();
        let (gamma, beta) = gamma_beta(hidden);
        let mut par = vec![0.0; rows * hidden];
        let mut ser = vec![0.0; rows * hidden];
        layer_norm(rows, hidden, &x, &gamma, &beta, 1e-5, &mut par);
        layer_norm_two_pass(rows, hidden, &x, &gamma, &beta, 1e-5, &mut ser);
        for (p, q) in par.iter().zip(ser.iter()) {
            assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_hidden_is_noop() {
        let mut out: Vec<f32> = vec![];
        layer_norm(3, 0, &[], &[], &[], 1e-5, &mut out);
    }
}
