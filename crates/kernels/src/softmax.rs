//! Softmax kernels: plain row softmax and the fused scale+mask+softmax of
//! the attention path.

use rayon::prelude::*;

use crate::par_threshold;

/// Numerically-stable softmax over each row of a `[rows, row_len]` matrix,
/// in place.
pub fn softmax_rows(rows: usize, row_len: usize, data: &mut [f32]) {
    assert_eq!(data.len(), rows * row_len, "softmax buffer size");
    if row_len == 0 {
        return;
    }
    let body = |row: &mut [f32]| {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        // All -inf (fully masked) rows sum to 0; emit a uniform distribution
        // rather than NaNs, matching the guard in production kernels.
        if sum > 0.0 {
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        } else {
            let u = 1.0 / row_len as f32;
            for v in row.iter_mut() {
                *v = u;
            }
        }
    };
    if data.len() >= par_threshold() {
        data.par_chunks_mut(row_len).for_each(body);
    } else {
        data.chunks_mut(row_len).for_each(body);
    }
}

/// The fused attention-score kernel: `softmax(scale · scores + mask)` over
/// a `[batch, heads, seq_q, seq_k]` tensor, in place.
///
/// `mask`, when present, is `[batch, seq_k]` with `0.0` for valid positions
/// and `f32::NEG_INFINITY` for padding — exactly the additive zero-padding
/// mask the serving framework applies to batched variable-length requests.
pub fn scale_mask_softmax(
    batch: usize,
    heads: usize,
    seq_q: usize,
    seq_k: usize,
    scale: f32,
    mask: Option<&[f32]>,
    scores: &mut [f32],
) {
    assert_eq!(scores.len(), batch * heads * seq_q * seq_k, "score tensor size");
    if let Some(m) = mask {
        assert_eq!(m.len(), batch * seq_k, "mask is [batch, seq_k]");
    }
    let row_len = seq_k;
    let rows_per_batch = heads * seq_q;
    let body = |(r, row): (usize, &mut [f32])| {
        let b = r / rows_per_batch;
        if scale != 1.0 {
            for v in row.iter_mut() {
                *v *= scale;
            }
        }
        if let Some(m) = mask {
            let mrow = &m[b * seq_k..(b + 1) * seq_k];
            for (v, &mv) in row.iter_mut().zip(mrow.iter()) {
                *v += mv;
            }
        }
        // Inline stable softmax on the prepared row.
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        } else {
            let u = 1.0 / row_len as f32;
            for v in row.iter_mut() {
                *v = u;
            }
        }
    };
    if scores.len() >= par_threshold() {
        scores.par_chunks_mut(row_len).enumerate().for_each(body);
    } else {
        scores.chunks_mut(row_len).enumerate().for_each(body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn rows_sum_to_one() {
        let mut data: Vec<f32> = (0..60).map(|i| (i % 7) as f32 - 3.0).collect();
        softmax_rows(5, 12, &mut data);
        for row in data.chunks(12) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = vec![1001.0f32, 1002.0, 1003.0];
        softmax_rows(1, 3, &mut a);
        softmax_rows(1, 3, &mut b);
        assert_close(&a, &b, 1e-6);
    }

    #[test]
    fn known_values() {
        let mut v = vec![0.0f32, 0.0];
        softmax_rows(1, 2, &mut v);
        assert_close(&v, &[0.5, 0.5], 1e-7);
        let mut v = vec![0.0f32, f32::NEG_INFINITY];
        softmax_rows(1, 2, &mut v);
        assert_close(&v, &[1.0, 0.0], 1e-7);
    }

    #[test]
    fn fully_masked_row_is_uniform_not_nan() {
        let mut v = vec![f32::NEG_INFINITY; 4];
        softmax_rows(1, 4, &mut v);
        assert_close(&v, &[0.25; 4], 1e-7);
    }

    #[test]
    fn scale_mask_matches_manual_pipeline() {
        let (b, h, sq, sk) = (2, 2, 3, 4);
        let scores: Vec<f32> = (0..b * h * sq * sk).map(|i| ((i * 13) % 9) as f32 - 4.0).collect();
        let mut mask = vec![0.0f32; b * sk];
        mask[sk + 3] = f32::NEG_INFINITY; // batch 1, key position 3 padded

        let mut fused = scores.clone();
        scale_mask_softmax(b, h, sq, sk, 0.5, Some(&mask), &mut fused);

        let mut manual = scores.clone();
        for (r, row) in manual.chunks_mut(sk).enumerate() {
            let bi = r / (h * sq);
            for (j, v) in row.iter_mut().enumerate() {
                *v = *v * 0.5 + mask[bi * sk + j];
            }
        }
        softmax_rows(b * h * sq, sk, &mut manual);
        assert_close(&fused, &manual, 1e-6);
    }

    #[test]
    fn masked_positions_get_zero_probability() {
        let (b, h, sq, sk) = (1, 1, 2, 3);
        let mut scores = vec![1.0f32; b * h * sq * sk];
        let mask = vec![0.0, 0.0, f32::NEG_INFINITY];
        scale_mask_softmax(b, h, sq, sk, 1.0, Some(&mask), &mut scores);
        for row in scores.chunks(sk) {
            assert_eq!(row[2], 0.0);
            assert!((row[0] - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn large_input_takes_parallel_path() {
        // Exceeds the default par_threshold(); verify parallel path agrees with serial.
        let rows = 512;
        let len = 64;
        let data: Vec<f32> = (0..rows * len).map(|i| ((i * 31) % 17) as f32 * 0.1).collect();
        let mut par = data.clone();
        softmax_rows(rows, len, &mut par);
        for (r, row) in data.chunks(len).enumerate() {
            let mut serial = row.to_vec();
            softmax_rows(1, len, &mut serial);
            for (x, y) in par[r * len..(r + 1) * len].iter().zip(serial.iter()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut empty: Vec<f32> = vec![];
        softmax_rows(0, 5, &mut empty);
        softmax_rows(5, 0, &mut empty);
    }
}
