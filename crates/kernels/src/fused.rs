//! The remaining fused kernels of paper Figure 3 that combine ops across
//! layout changes: bias+head-split and bias+residual+LayerNorm.

use rayon::prelude::*;

use crate::layernorm::layer_norm;
use crate::par_threshold;

/// Fused `AddBias + SplitHeads`: `dst[b,h,s,d] = src[b,s,h·d] + bias[h·d]`.
///
/// The paper calls this out explicitly: "there is no such API to combine
/// matrix addition and transpose operation in a single CUDA kernel", hence
/// the custom kernel.
pub fn add_bias_split_heads(
    batch: usize,
    seq: usize,
    heads: usize,
    dim: usize,
    src: &[f32],
    bias: &[f32],
    dst: &mut [f32],
) {
    let n = batch * seq * heads * dim;
    assert_eq!(src.len(), n, "add_bias_split_heads src size");
    assert_eq!(dst.len(), n, "add_bias_split_heads dst size");
    assert_eq!(bias.len(), heads * dim, "bias is [heads·dim]");
    let body = |(out_row, dst_row): (usize, &mut [f32])| {
        let b = out_row / (heads * seq);
        let h = (out_row / seq) % heads;
        let s = out_row % seq;
        let src_off = ((b * seq + s) * heads + h) * dim;
        let bias_off = h * dim;
        for (i, d) in dst_row.iter_mut().enumerate() {
            *d = src[src_off + i] + bias[bias_off + i];
        }
    };
    if n >= par_threshold() {
        dst.par_chunks_mut(dim).enumerate().for_each(body);
    } else {
        dst.chunks_mut(dim).enumerate().for_each(body);
    }
}

/// Fused `AddBias + Residual + LayerNorm` — the transformer block epilogue:
/// `out = LayerNorm(x + bias + residual) · γ + β` over `[rows, hidden]`.
#[allow(clippy::too_many_arguments)]
pub fn add_bias_residual_layer_norm(
    rows: usize,
    hidden: usize,
    x: &[f32],
    bias: &[f32],
    residual: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    out: &mut [f32],
) {
    assert_eq!(x.len(), rows * hidden, "input size");
    assert_eq!(residual.len(), rows * hidden, "residual size");
    assert_eq!(bias.len(), hidden, "bias size");
    assert_eq!(out.len(), rows * hidden, "output size");
    // Sum into the output buffer, then normalize it in place via the
    // one-pass LayerNorm (same Var(x)=E(x²)−E²(x) math as the GPU kernel).
    let sum_body = |((orow, xrow), rrow): ((&mut [f32], &[f32]), &[f32])| {
        for ((o, &xv), (&rv, &bv)) in orow.iter_mut().zip(xrow).zip(rrow.iter().zip(bias)) {
            *o = xv + rv + bv;
        }
    };
    if x.len() >= par_threshold() {
        out.par_chunks_mut(hidden)
            .zip(x.par_chunks(hidden))
            .zip(residual.par_chunks(hidden))
            .for_each(sum_body);
    } else {
        out.chunks_mut(hidden)
            .zip(x.chunks(hidden))
            .zip(residual.chunks(hidden))
            .for_each(sum_body);
    }
    let summed = out.to_vec();
    layer_norm(rows, hidden, &summed, gamma, beta, eps, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{add_bias, layer_norm as ln, residual_add, split_heads};

    #[test]
    fn fused_bias_split_matches_sequence() {
        let (b, s, h, d) = (2, 3, 2, 4);
        let src: Vec<f32> = (0..b * s * h * d).map(|i| i as f32 * 0.5).collect();
        let bias: Vec<f32> = (0..h * d).map(|i| i as f32).collect();

        let mut fused = vec![0.0; src.len()];
        add_bias_split_heads(b, s, h, d, &src, &bias, &mut fused);

        let mut biased = src.clone();
        add_bias(b * s, h * d, &mut biased, &bias);
        let mut seq = vec![0.0; src.len()];
        split_heads(b, s, h, d, &biased, &mut seq);
        assert_eq!(fused, seq);
    }

    #[test]
    fn fused_epilogue_matches_sequence() {
        let (rows, hidden) = (4, 8);
        let x: Vec<f32> = (0..rows * hidden).map(|i| ((i * 7) % 13) as f32 * 0.3).collect();
        let res: Vec<f32> = (0..rows * hidden).map(|i| ((i * 5) % 11) as f32 * -0.2).collect();
        let bias: Vec<f32> = (0..hidden).map(|i| i as f32 * 0.1).collect();
        let gamma = vec![1.5f32; hidden];
        let beta = vec![0.25f32; hidden];

        let mut fused = vec![0.0; rows * hidden];
        add_bias_residual_layer_norm(
            rows, hidden, &x, &bias, &res, &gamma, &beta, 1e-6, &mut fused,
        );

        let mut summed = x.clone();
        add_bias(rows, hidden, &mut summed, &bias);
        residual_add(&mut summed, &res);
        let mut want = vec![0.0; rows * hidden];
        ln(rows, hidden, &summed, &gamma, &beta, 1e-6, &mut want);
        for (f, w) in fused.iter().zip(want.iter()) {
            assert!((f - w).abs() < 1e-5, "{f} vs {w}");
        }
    }

    #[test]
    fn large_parallel_path_is_consistent() {
        let (b, s, h, d) = (4, 32, 8, 16); // > default par_threshold()
        let src: Vec<f32> = (0..b * s * h * d).map(|i| ((i * 3) % 101) as f32).collect();
        let bias = vec![1.0f32; h * d];
        let mut out = vec![0.0; src.len()];
        add_bias_split_heads(b, s, h, d, &src, &bias, &mut out);
        // Spot-check against index arithmetic.
        let (bi, hi, si, di) = (3, 5, 17, 9);
        let got = out[(((bi * h) + hi) * s + si) * d + di];
        let want = src[((bi * s + si) * h + hi) * d + di] + 1.0;
        assert_eq!(got, want);
    }
}
