//! Embedding lookup: token + position (+ optional segment) table gather.

/// Gather embeddings for a `[batch, seq]` grid of token ids:
/// `out[b][s] = word[idx[b][s]] + pos[s] (+ seg[seg_ids[b][s]])`.
///
/// Ids are `u32`; out-of-range ids panic (a tokenizer bug upstream, not a
/// data condition).
#[allow(clippy::too_many_arguments)]
pub fn embed(
    batch: usize,
    seq: usize,
    hidden: usize,
    ids: &[u32],
    word_table: &[f32],
    pos_table: &[f32],
    segment: Option<(&[u32], &[f32])>,
    out: &mut [f32],
) {
    assert_eq!(ids.len(), batch * seq, "ids are [batch, seq]");
    assert_eq!(out.len(), batch * seq * hidden, "embedding output size");
    assert!(pos_table.len() >= seq * hidden, "position table too short for seq {seq}");
    if let Some((seg_ids, _)) = segment {
        assert_eq!(seg_ids.len(), batch * seq, "segment ids are [batch, seq]");
    }

    let vocab = word_table.len().checked_div(hidden).unwrap_or(0);
    for b in 0..batch {
        for s in 0..seq {
            let tok = ids[b * seq + s] as usize;
            assert!(tok < vocab, "token id {tok} out of range for vocabulary of {vocab}");
            let w = &word_table[tok * hidden..(tok + 1) * hidden];
            let p = &pos_table[s * hidden..(s + 1) * hidden];
            let dst = &mut out[(b * seq + s) * hidden..(b * seq + s + 1) * hidden];
            match segment {
                Some((seg_ids, seg_table)) => {
                    let g = seg_ids[b * seq + s] as usize;
                    let sg = &seg_table[g * hidden..(g + 1) * hidden];
                    for i in 0..hidden {
                        dst[i] = w[i] + p[i] + sg[i];
                    }
                }
                None => {
                    for i in 0..hidden {
                        dst[i] = w[i] + p[i];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: usize, hidden: usize, base: f32) -> Vec<f32> {
        (0..rows * hidden).map(|i| base + i as f32).collect()
    }

    #[test]
    fn gathers_word_plus_position() {
        let hidden = 2;
        let word = table(4, hidden, 0.0); // word[i] = [2i, 2i+1]
        let pos = table(3, hidden, 100.0);
        let ids = vec![2u32, 0, 3]; // batch 1, seq 3
        let mut out = vec![0.0; 3 * hidden];
        embed(1, 3, hidden, &ids, &word, &pos, None, &mut out);
        assert_eq!(
            out,
            vec![
                4.0 + 100.0,
                5.0 + 101.0, // word 2 + pos 0
                0.0 + 102.0,
                1.0 + 103.0, // word 0 + pos 1
                6.0 + 104.0,
                7.0 + 105.0, // word 3 + pos 2
            ]
        );
    }

    #[test]
    fn segment_embeddings_are_added() {
        let hidden = 1;
        let word = vec![10.0];
        let pos = vec![1.0];
        let seg_table = vec![0.5, 7.0];
        let ids = vec![0u32];
        let seg_ids = vec![1u32];
        let mut out = vec![0.0];
        embed(1, 1, hidden, &ids, &word, &pos, Some((&seg_ids, &seg_table)), &mut out);
        assert_eq!(out, vec![10.0 + 1.0 + 7.0]);
    }

    #[test]
    fn batched_lookup_uses_per_batch_rows() {
        let hidden = 1;
        let word = vec![0.0, 1.0, 2.0, 3.0];
        let pos = vec![100.0, 200.0];
        let ids = vec![1u32, 2, 3, 0]; // batch 2, seq 2
        let mut out = vec![0.0; 4];
        embed(2, 2, hidden, &ids, &word, &pos, None, &mut out);
        assert_eq!(out, vec![101.0, 202.0, 103.0, 200.0]);
    }

    #[test]
    #[should_panic(expected = "position table too short")]
    fn rejects_sequences_beyond_position_table() {
        let mut out = vec![0.0; 4];
        embed(1, 4, 1, &[0, 0, 0, 0], &[0.0], &[0.0; 2], None, &mut out);
    }
}
