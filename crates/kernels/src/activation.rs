//! Elementwise kernels: bias add, GELU, residual add, and their fused
//! combinations.

use rayon::prelude::*;

use crate::par_threshold;

/// BERT's GELU (tanh approximation):
/// `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    const COEFF: f32 = 0.044_715;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + COEFF * x * x * x)).tanh())
}

/// In-place GELU over a buffer.
pub fn gelu(data: &mut [f32]) {
    if data.len() >= par_threshold() {
        data.par_iter_mut().for_each(|v| *v = gelu_scalar(*v));
    } else {
        for v in data.iter_mut() {
            *v = gelu_scalar(*v);
        }
    }
}

/// Add a `[cols]` bias to each row of `[rows, cols]`, in place.
pub fn add_bias(rows: usize, cols: usize, data: &mut [f32], bias: &[f32]) {
    assert_eq!(data.len(), rows * cols, "add_bias data size");
    assert_eq!(bias.len(), cols, "add_bias bias size");
    let body = |row: &mut [f32]| {
        for (v, &b) in row.iter_mut().zip(bias.iter()) {
            *v += b;
        }
    };
    if data.len() >= par_threshold() {
        data.par_chunks_mut(cols).for_each(body);
    } else {
        data.chunks_mut(cols).for_each(body);
    }
}

/// Fused bias + GELU (the FFN inner kernel), in place.
pub fn add_bias_gelu(rows: usize, cols: usize, data: &mut [f32], bias: &[f32]) {
    assert_eq!(data.len(), rows * cols, "add_bias_gelu data size");
    assert_eq!(bias.len(), cols, "add_bias_gelu bias size");
    let body = |row: &mut [f32]| {
        for (v, &b) in row.iter_mut().zip(bias.iter()) {
            *v = gelu_scalar(*v + b);
        }
    };
    if data.len() >= par_threshold() {
        data.par_chunks_mut(cols).for_each(body);
    } else {
        data.chunks_mut(cols).for_each(body);
    }
}

/// `dst += src` (residual connection), in place.
pub fn residual_add(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "residual size mismatch");
    if dst.len() >= par_threshold() {
        dst.par_iter_mut().zip(src.par_iter()).for_each(|(d, &s)| *d += s);
    } else {
        for (d, &s) in dst.iter_mut().zip(src.iter()) {
            *d += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_known_points() {
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu_scalar(-1.0) + 0.1588).abs() < 1e-3);
        // Asymptotics: large positive ≈ identity, large negative ≈ 0.
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_scalar(-10.0).abs() < 1e-4);
    }

    #[test]
    fn add_bias_broadcasts_over_rows() {
        let mut data = vec![0.0f32; 6];
        add_bias(2, 3, &mut data, &[1.0, 2.0, 3.0]);
        assert_eq!(data, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn fused_bias_gelu_matches_sequence() {
        let rows = 3;
        let cols = 5;
        let src: Vec<f32> = (0..15).map(|i| i as f32 * 0.3 - 2.0).collect();
        let bias: Vec<f32> = (0..5).map(|i| i as f32 * 0.1).collect();
        let mut fused = src.clone();
        add_bias_gelu(rows, cols, &mut fused, &bias);
        let mut seq = src.clone();
        add_bias(rows, cols, &mut seq, &bias);
        gelu(&mut seq);
        for (f, s) in fused.iter().zip(seq.iter()) {
            assert!((f - s).abs() < 1e-6, "fusion must not change numerics");
        }
    }

    #[test]
    fn residual_adds_elementwise() {
        let mut d = vec![1.0f32, 2.0, 3.0];
        residual_add(&mut d, &[10.0, 20.0, 30.0]);
        assert_eq!(d, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn parallel_paths_match_serial() {
        let n = crate::par_threshold() + 100; // force the rayon branch
        let src: Vec<f32> = (0..n).map(|i| ((i * 7) % 41) as f32 * 0.1 - 2.0).collect();
        let mut par = src.clone();
        gelu(&mut par);
        for (i, (&p, &s)) in par.iter().zip(src.iter()).enumerate() {
            assert!((p - gelu_scalar(s)).abs() < 1e-7, "mismatch at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "residual size mismatch")]
    fn residual_rejects_mismatched_lengths() {
        let mut d = vec![0.0f32; 3];
        residual_add(&mut d, &[0.0; 4]);
    }
}
