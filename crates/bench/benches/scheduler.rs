//! Criterion benches of the DP batch scheduler (paper Algorithm 3): O(n²)
//! scheduling time must stay negligible next to the multi-millisecond
//! inferences it schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

use tt_serving::request::Request;
use tt_serving::scheduler::{BatchScheduler, DpScheduler, NaiveBatchScheduler};
use tt_serving::CachedCost;

fn queue(n: usize) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(9);
    (0..n).map(|i| Request::new(i, rng.random_range(5..=500), 0.0)).collect()
}

fn costs() -> CachedCost {
    CachedCost::from_fn(512, 20, 8, |len, b| 1.0e-3 + 8.0e-6 * (len * b) as f64)
}

fn bench_dp(c: &mut Criterion) {
    let costs = costs();
    let mut g = c.benchmark_group("dp_schedule");
    for &n in &[8usize, 32, 128, 512] {
        let q = queue(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| black_box(DpScheduler.schedule(q, &costs)))
        });
    }
    g.finish();
}

fn bench_naive(c: &mut Criterion) {
    let costs = costs();
    let q = queue(128);
    c.bench_function("naive_schedule_128", |b| {
        b.iter(|| black_box(NaiveBatchScheduler.schedule(&q, &costs)))
    });
}

criterion_group!(benches, bench_dp, bench_naive);
criterion_main!(benches);
