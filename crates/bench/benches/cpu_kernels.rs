//! Criterion benches of the *real* CPU kernels — the measured counterpart
//! of the simulated kernel study: fused vs unfused op chains, one-pass vs
//! two-pass LayerNorm, SGEMM, and a full BERT layer forward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tt_kernels as k;
use tt_model::bert::{Bert, BertConfig};
use tt_model::ids_batch;
use tt_tensor::{sgemm, GemmSpec};

fn data(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i * 37) % 101) as f32 * 0.07 - 3.0).collect()
}

fn bench_softmax(c: &mut Criterion) {
    let mut g = c.benchmark_group("softmax_rows");
    for &(rows, len) in &[(120usize, 10usize), (1200, 100), (2400, 500)] {
        let src = data(rows * len);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{rows}x{len}")), &src, |b, src| {
            b.iter(|| {
                let mut buf = src.clone();
                k::softmax_rows(rows, len, &mut buf);
                black_box(buf)
            })
        });
    }
    g.finish();
}

fn bench_layernorm_formulas(c: &mut Criterion) {
    let mut g = c.benchmark_group("layernorm");
    let (rows, hidden) = (2560usize, 768usize);
    let src = data(rows * hidden);
    let gamma = vec![1.0f32; hidden];
    let beta = vec![0.0f32; hidden];
    g.bench_function("one_pass_var_trick", |b| {
        b.iter(|| {
            let mut out = vec![0.0f32; src.len()];
            k::layer_norm(rows, hidden, &src, &gamma, &beta, 1e-5, &mut out);
            black_box(out)
        })
    });
    g.bench_function("two_pass_reference", |b| {
        b.iter(|| {
            let mut out = vec![0.0f32; src.len()];
            k::layer_norm_two_pass(rows, hidden, &src, &gamma, &beta, 1e-5, &mut out);
            black_box(out)
        })
    });
    g.finish();
}

fn bench_fused_vs_unfused(c: &mut Criterion) {
    let mut g = c.benchmark_group("bias_residual_layernorm");
    let (rows, hidden) = (2560usize, 768usize);
    let x = data(rows * hidden);
    let res = data(rows * hidden);
    let bias = vec![0.1f32; hidden];
    let gamma = vec![1.0f32; hidden];
    let beta = vec![0.0f32; hidden];
    g.bench_function("fused", |b| {
        b.iter(|| {
            let mut out = vec![0.0f32; x.len()];
            k::add_bias_residual_layer_norm(
                rows, hidden, &x, &bias, &res, &gamma, &beta, 1e-5, &mut out,
            );
            black_box(out)
        })
    });
    g.bench_function("unfused", |b| {
        b.iter(|| {
            let mut tmp = x.clone();
            k::add_bias(rows, hidden, &mut tmp, &bias);
            k::residual_add(&mut tmp, &res);
            let mut out = vec![0.0f32; x.len()];
            k::layer_norm(rows, hidden, &tmp, &gamma, &beta, 1e-5, &mut out);
            black_box(out)
        })
    });
    g.finish();
}

fn bench_sgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("sgemm");
    g.sample_size(20);
    for &(m, kk, n) in &[(128usize, 768usize, 768usize), (512, 768, 3072)] {
        let a = data(m * kk);
        let bb = data(kk * n);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{kk}x{n}")), &(), |b, _| {
            b.iter(|| {
                let mut cbuf = vec![0.0f32; m * n];
                sgemm(GemmSpec::nn(m, kk, n), &a, &bb, &mut cbuf);
                black_box(cbuf)
            })
        });
    }
    g.finish();
}

fn bench_bert_tiny_forward(c: &mut Criterion) {
    let model = Bert::new_random(&BertConfig::tiny(), 3);
    let ids = ids_batch(&[&[1u32; 40][..]]);
    c.bench_function("bert_tiny_forward_len40", |b| {
        b.iter(|| black_box(model.forward(&ids, None)))
    });
}

criterion_group!(
    benches,
    bench_softmax,
    bench_layernorm_formulas,
    bench_fused_vs_unfused,
    bench_sgemm,
    bench_bert_tiny_forward
);
criterion_main!(benches);
