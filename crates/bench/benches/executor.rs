//! Criterion bench of the planned-arena graph executor vs the eager
//! forward pass: the runtime's plumbing (lifetime analysis, offset
//! planning, arena dispatch) must cost little next to the math it
//! orchestrates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tt_alloc::TurboAllocator;
use tt_model::bert::{Bert, BertConfig};
use tt_model::bound::InputBinding;
use tt_model::ids_batch;
use tt_runtime::executor::execute;
use tt_tensor::storage::Arena;

fn bench_executor_vs_eager(c: &mut Criterion) {
    let cfg = BertConfig::tiny();
    let model = Bert::new_random(&cfg, 12);
    let mut g = c.benchmark_group("bert_tiny_inference");
    for &len in &[8usize, 40] {
        let row: Vec<u32> = (0..len as u32).map(|t| t % 90).collect();
        let ids = ids_batch(&[&row]);

        g.bench_with_input(BenchmarkId::new("eager", len), &ids, |b, ids| {
            b.iter(|| black_box(model.forward(ids, None)))
        });

        let bound = model.build_graph(1, len, false);
        g.bench_with_input(BenchmarkId::new("planned_arena", len), &ids, |b, ids| {
            // Warm allocator/arena: the steady-state serving path.
            let mut alloc = TurboAllocator::default();
            let mut arena = Arena::new();
            let inputs = [(InputBinding::TokenIds, ids)];
            let _ = execute(&bound, model.weights(), &inputs, &mut alloc, &mut arena);
            b.iter(|| black_box(execute(&bound, model.weights(), &inputs, &mut alloc, &mut arena)))
        });
    }
    g.finish();
}

fn bench_plan_only(c: &mut Criterion) {
    use tt_graph::lifetime::activation_lifetimes;
    let cfg = BertConfig::base();
    let bound = tt_model::bert::graph_skeleton(&cfg, 1, 200, false);
    let (usages, _) = activation_lifetimes(&bound.graph);
    c.bench_function("lifetimes_plus_plan_bert_base_200", |b| {
        let mut alloc = TurboAllocator::default();
        let _ = alloc.plan(&usages);
        b.iter(|| {
            let (usages, _) = activation_lifetimes(&bound.graph);
            black_box(alloc.plan(&usages))
        })
    });
}

criterion_group!(benches, bench_executor_vs_eager, bench_plan_only);
criterion_main!(benches);
