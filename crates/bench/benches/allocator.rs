//! Criterion benches of the allocator planners: offset-planning time on
//! real BERT-base lifetime records — the "allocation efficiency" axis of
//! paper §4.2 ("lightweight … evoked after knowing the length of each
//! inference").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tt_alloc::caching::CachingAllocator;
use tt_alloc::gsoc::GsocAllocator;
use tt_alloc::sim::replay;
use tt_alloc::{TensorUsage, TurboAllocator, TurboConfig};
use tt_graph::lifetime::activation_lifetimes;
use tt_model::bert::{graph_skeleton, BertConfig};

fn bert_usages(seq: usize) -> Vec<TensorUsage> {
    let bound = graph_skeleton(&BertConfig::base(), 1, seq, false);
    activation_lifetimes(&bound.graph).0
}

fn bench_turbo_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("turbo_plan");
    for &seq in &[40usize, 200, 500] {
        let usages = bert_usages(seq);
        g.bench_with_input(BenchmarkId::from_parameter(seq), &usages, |b, usages| {
            // Warm allocator: steady-state replanning, the serving path.
            let mut alloc = TurboAllocator::new(TurboConfig::default());
            let _ = alloc.plan(usages);
            b.iter(|| black_box(alloc.plan(usages)))
        });
    }
    g.finish();
}

fn bench_gsoc_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("gsoc_plan");
    for &seq in &[40usize, 500] {
        let usages = bert_usages(seq);
        g.bench_with_input(BenchmarkId::from_parameter(seq), &usages, |b, usages| {
            let mut alloc = GsocAllocator::new();
            b.iter(|| black_box(alloc.plan(usages)))
        });
    }
    g.finish();
}

fn bench_caching_replay(c: &mut Criterion) {
    let usages = bert_usages(200);
    c.bench_function("caching_pool_replay_len200", |b| {
        let mut alloc = CachingAllocator::new();
        let _ = replay(&mut alloc, &usages); // warm the pool
        b.iter(|| black_box(replay(&mut alloc, &usages)))
    });
}

criterion_group!(benches, bench_turbo_plan, bench_gsoc_plan, bench_caching_replay);
criterion_main!(benches);
