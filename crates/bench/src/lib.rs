//! # tt-bench — experiment harnesses for every table and figure
//!
//! One binary per experiment of the paper's evaluation (§6); each prints
//! the same rows/series the paper reports, from this reproduction's
//! simulated GPU (see DESIGN.md §4 for the experiment ↔ module index and
//! EXPERIMENTS.md for paper-vs-measured):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table2_reduction_share` | Table 2 — softmax/LayerNorm share of attention |
//! | `figure5_kernel_speedup` | Fig. 5 — batch-reduction kernel speedups |
//! | `figure6_alloc_example` | Fig. 6 — allocator chunk layout, 200→240 |
//! | `figure7_allocator_comparison` | Fig. 7 — footprint + allocation traffic |
//! | `figure8_batching_gain` | Fig. 8 — batching gain vs batch size |
//! | `figure9_scheduler_example` | Fig. 9 — the 5-request scheduling example |
//! | `figure10_variable_length` | Fig. 10 — variable-length latency, 3 models |
//! | `figure11_fixed_length` | Fig. 11 — fixed-length runtime comparison grid |
//! | `figure12_serving_throughput` | Fig. 12 — response vs request throughput |
//! | `table4_serving_latency` | Table 4 — serving latency, 4 systems |
//!
//! Criterion benches (`cargo bench -p tt-bench`) cover the *real* CPU
//! kernels and the ablations DESIGN.md calls out.

pub mod serving_setup;

use std::fmt::Display;

/// Print a markdown table.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n## {title}\n");
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("| {} |", head.join(" | "));
    println!("|{}|", head.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
        println!("| {} |", cells.join(" | "));
    }
}

/// Format seconds as adaptive ms/µs.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{:.1} µs", secs * 1e6)
    }
}

/// Format a ratio as `N.NNx`.
pub fn fmt_speedup(r: f64) -> String {
    format!("{r:.2}x")
}

/// Format a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.2}%", f * 100.0)
}

/// The sequence-length grid of the paper's fixed-length experiments.
pub fn paper_seq_grid() -> Vec<usize> {
    vec![10, 20, 40, 60, 80, 100, 200, 300, 400, 500]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.5 µs");
        assert_eq!(fmt_speedup(1.234), "1.23x");
        assert_eq!(fmt_pct(0.9068), "90.68%");
    }

    #[test]
    fn grid_matches_paper_range() {
        let g = paper_seq_grid();
        assert_eq!(*g.first().unwrap(), 10);
        assert_eq!(*g.last().unwrap(), 500);
    }
}
