//! Shared setup for the serving experiments (paper Fig. 12 and Table 4).
//!
//! The paper serves a BERT classification service on RTX 2060: Poisson
//! arrivals, text lengths "satisfying a normal distribution from 5 to 500",
//! hungry trigger, maximum batch size 20, caching off. Four systems:
//!
//! | name | runtime cost model | scheduler |
//! |---|---|---|
//! | PyTorch-NoBatch | PyTorch-like | one request per batch |
//! | Turbo-NoBatch | Turbo | one request per batch |
//! | Turbo-Naive-Batch | Turbo | whole queue in one padded batch |
//! | Turbo-DP-Batch | Turbo | paper Algorithm 3 |
//!
//! plus the TF-serving baseline (PyTorch-like runtime, every batch padded
//! to the model maximum).

use tt_gpusim::device::DeviceKind;
use tt_model::bert::BertConfig;
use tt_runtime::{RuntimeConfig, RuntimeKind, TurboRuntime};
use tt_serving::request::{LengthDist, Request, WorkloadSpec};
use tt_serving::scheduler::{
    BatchScheduler, DpScheduler, NaiveBatchScheduler, NoBatchScheduler, PadToMaxScheduler,
};
use tt_serving::simulator::{simulate, ServingConfig, ServingReport, Trigger};
use tt_serving::CachedCost;

/// Maximum batch size of the paper's serving experiments.
pub const MAX_BATCH: usize = 20;
/// Maximum sequence length of the workload.
pub const MAX_LEN: usize = 500;
/// Length-bucket granularity of the cost-table warm-up.
pub const BUCKET: usize = 10;
/// The paper's length distribution, "a normal distribution from 5 to 500";
/// the exact parameters are not given — this choice centres the workload
/// where the paper's absolute latencies (Table 4 min ≈ 2.8 ms) put it.
pub const LENGTHS: LengthDist =
    LengthDist::ClampedNormal { mean: 150.0, std: 120.0, lo: 5, hi: MAX_LEN };

/// One serving system under test.
pub struct System {
    /// Display name, matching the paper's legends.
    pub name: &'static str,
    /// Profiled batch-cost table of the system's runtime.
    pub costs: CachedCost,
    /// The batch scheduler.
    pub scheduler: Box<dyn BatchScheduler>,
    /// Whether every batch is padded to the model maximum (TF-serving).
    pub pad_to_max: bool,
}

/// Build the paper's systems (cost tables are warmed on first use; this
/// takes a few seconds for the two runtime variants).
pub fn systems() -> Vec<System> {
    let cfg = BertConfig::base();
    let turbo_rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
    let pytorch_rt =
        TurboRuntime::new(RuntimeConfig::new(RuntimeKind::PyTorchLike, DeviceKind::RTX2060));
    let turbo_costs = CachedCost::warm_up(&turbo_rt, &cfg, MAX_LEN, MAX_BATCH, BUCKET);
    let pytorch_costs = CachedCost::warm_up(&pytorch_rt, &cfg, MAX_LEN, MAX_BATCH, BUCKET);

    vec![
        System {
            name: "TF-serving (pad to max)",
            costs: pytorch_costs.clone(),
            scheduler: Box::new(PadToMaxScheduler),
            pad_to_max: true,
        },
        System {
            name: "PyTorch-NoBatch",
            costs: pytorch_costs,
            scheduler: Box::new(NoBatchScheduler),
            pad_to_max: false,
        },
        System {
            name: "Turbo-NoBatch",
            costs: turbo_costs.clone(),
            scheduler: Box::new(NoBatchScheduler),
            pad_to_max: false,
        },
        System {
            name: "Turbo-Naive-Batch",
            costs: turbo_costs.clone(),
            scheduler: Box::new(NaiveBatchScheduler),
            pad_to_max: false,
        },
        System {
            name: "Turbo-DP-Batch",
            costs: turbo_costs,
            scheduler: Box::new(DpScheduler),
            pad_to_max: false,
        },
    ]
}

/// Generate the Fig. 12 workload for one request rate.
pub fn workload(rate: f64, duration: f64, seed: u64) -> Vec<Request> {
    WorkloadSpec { rate_per_sec: rate, duration, lengths: LENGTHS, seed }.generate()
}

/// Run one (system, rate) cell.
pub fn run_system(system: &System, rate: f64, duration: f64, seed: u64) -> ServingReport {
    let reqs = workload(rate, duration, seed);
    let cfg = ServingConfig {
        scheduler: system.scheduler.as_ref(),
        trigger: Trigger::Hungry,
        pad_to_max: system.pad_to_max,
        cache_capacity: None, // "We turned off the caching optimization."
    };
    simulate(&reqs, &system.costs, &cfg, duration)
}

/// Find a system's saturation point: the highest offered rate it still
/// serves without backlog, by bisection over `lo..hi` req/s.
pub fn saturation_rate(system: &System, lo: f64, hi: f64, duration: f64, seed: u64) -> f64 {
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        let rep = run_system(system, mid, duration, seed);
        if rep.saturated {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}
