//! Paper Table 4: average (min, max) serving latency of the four systems
//! at request rates equal to each system's saturation point.
//!
//! The paper's rows are 60/98/120/144 req/s — the measured saturation rates
//! of PyTorch-NoBatch, Turbo-Naive, Turbo-NoBatch and Turbo-DP on its
//! testbed. This harness recomputes those four anchors from *this*
//! reproduction's saturation points, then tabulates latency for every
//! system at each anchor, `+∞` marking saturated cells exactly as the
//! paper does.

use tt_bench::print_table;
use tt_bench::serving_setup::{run_system, saturation_rate, systems};

fn main() {
    let duration = 30.0;
    let seed = 2026;
    let systems = systems();

    // Anchor rates: saturation of each non-TF system, ascending (the
    // paper's 60/98/120/144 row structure).
    let mut anchors: Vec<(String, f64)> = systems
        .iter()
        .filter(|s| s.name != "TF-serving (pad to max)")
        .map(|s| {
            let r = saturation_rate(s, 10.0, 1600.0, duration, seed);
            (s.name.to_string(), (r / 2.0).round() * 2.0)
        })
        .collect();
    anchors.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("rates are finite"));

    let headers: Vec<String> = std::iter::once("req/s (≈ saturation of)".to_string())
        .chain(
            systems
                .iter()
                .filter(|s| s.name != "TF-serving (pad to max)")
                .map(|s| s.name.to_string()),
        )
        .collect();

    let mut rows = Vec::new();
    for (anchor_name, rate) in &anchors {
        let mut row = vec![format!("{rate:.0} ({anchor_name})")];
        for sys in systems.iter().filter(|s| s.name != "TF-serving (pad to max)") {
            let rep = run_system(sys, *rate, duration, seed);
            if rep.saturated {
                row.push("+∞".to_string());
            } else {
                row.push(format!(
                    "{:.2} ({:.2}, {:.2})",
                    rep.latency.mean() * 1e3,
                    rep.latency.min() * 1e3,
                    rep.latency.max() * 1e3,
                ));
            }
        }
        rows.push(row);
    }

    print_table(
        "Table 4 — serving latency in ms: average (min, max); +∞ = saturated",
        &headers,
        &rows,
    );
    println!("\nPaper reference at its own anchors: PyTorch-NoBatch at 60 req/s:");
    println!("77.71 (10.61, 158.06); Turbo-NoBatch 8.05 (2.76, 20.53); Turbo-DP at 144:");
    println!("38.51 (4.44, 106.65). DP cuts both average and maximum latency wherever");
    println!("two systems are unsaturated at the same rate.");
}
