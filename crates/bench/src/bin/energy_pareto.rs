//! Energy-vs-latency scheduling Pareto sweep: for a range of load points
//! (requests accumulated per scheduling round), compare Algorithm 3 under
//! its two objectives — `latency` (minimize total execution time, the
//! paper's formulation) and `energy` (minimize predicted joules among the
//! batch splits that still meet the SLO, falling back to the latency
//! optimum when nothing fits).
//!
//! Both objectives price the *same* runtime-derived `cached_cost` /
//! `cached_energy` tables, so the comparison isolates the scheduling
//! decision. Per load point and trial the sweep records predicted batch
//! joules, predicted elapsed time and whether the schedule meets the SLO
//! budget, then asserts the energy objective's contract:
//!
//! 1. **Never worse than SLO** — whenever the latency optimum meets the
//!    budget, so does the energy schedule (identical attainment);
//! 2. **Never more joules** — the energy schedule's predicted joules are
//!    ≤ the latency schedule's on every single trial;
//! 3. **Actually saves somewhere** — at ≥ 1 load point the mean saving is
//!    strictly positive at equal SLO attainment.
//!
//! Outputs `results/energy_pareto.md` and `BENCH_energy.json` (single
//! line, machine-readable). `--smoke` runs a scaled-down sweep, asserts
//! the same invariants and writes nothing.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use tt_bench::print_table;
use tt_gpusim::device::DeviceKind;
use tt_model::bert::BertConfig;
use tt_runtime::{RuntimeConfig, TurboRuntime};
use tt_serving::scheduler::{batching_cost, batching_energy, BatchScheduler};
use tt_serving::{CachedCost, DpScheduler, EnergyAwareDpScheduler, LengthDist, Request};

/// Aggregates for one (load point, objective) cell of the sweep.
#[derive(Serialize, Clone, Copy, Default)]
struct ObjectiveStats {
    joules_mean: f64,
    elapsed_ms_mean: f64,
    slo_attainment: f64,
}

#[derive(Serialize)]
struct LoadPoint {
    queue_depth: usize,
    trials: usize,
    latency: ObjectiveStats,
    energy: ObjectiveStats,
    /// Mean predicted joules saved by the energy objective, as a fraction
    /// of the latency objective's joules (positive = energy cheaper).
    joules_saved_pct: f64,
}

#[derive(Serialize)]
struct EnergyBenchReport {
    bench: &'static str,
    model: &'static str,
    device: &'static str,
    slo_ms: f64,
    points: Vec<LoadPoint>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Both passes price BERT-base: the divergence between the objectives
    // lives in the ratio of compute power to idle power, and a tiny config
    // is overhead-dominated — every split costs the same, both objectives
    // agree, and the sweep would be vacuous. Smoke shrinks the grid and
    // trial count, not the model (warm-up prices the cost model, it never
    // executes the network).
    let (max_len, bucket, max_batch, depths, trials): (usize, usize, usize, Vec<usize>, usize) =
        if smoke { (128, 16, 8, vec![4, 8], 3) } else { (256, 16, 16, vec![2, 4, 8, 16, 32], 12) };
    let (cfg, model_name) = (BertConfig::base(), "bert-base");
    let device = DeviceKind::V100;
    println!(
        "energy_pareto: model={model_name} depths={depths:?} trials={trials}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let rt = TurboRuntime::new(RuntimeConfig::turbo(device));
    let costs =
        CachedCost::warm_up(&rt, &cfg, max_len, max_batch, bucket).with_energy_profile(&rt, &cfg);
    let lengths = LengthDist::ClampedNormal {
        mean: max_len as f64 * 0.4,
        std: max_len as f64 * 0.25,
        lo: 5,
        hi: max_len,
    };

    // The SLO budget is derived from the table itself so the sweep is
    // device- and model-portable: 1.25x the latency optimum of a pilot
    // queue at the middle load point — real slack at low load, binding at
    // high load.
    let pilot_depth = depths[depths.len() / 2];
    let pilot = queue(&lengths, pilot_depth, 0xB00F);
    let pilot_batching = DpScheduler.schedule(&pilot, &costs);
    let slo_budget = 1.25 * batching_cost(&pilot, &pilot_batching, &costs);
    println!(
        "slo budget: {:.3} ms (1.25x latency optimum at depth {pilot_depth})",
        slo_budget * 1e3
    );

    let energy_sched = EnergyAwareDpScheduler { slo_budget };
    let mut points = Vec::new();
    for &depth in &depths {
        let mut lat = ObjectiveStats::default();
        let mut en = ObjectiveStats::default();
        for trial in 0..trials {
            let q = queue(&lengths, depth, (depth as u64) << 16 | trial as u64);

            let lat_b = DpScheduler.schedule(&q, &costs);
            let lat_elapsed = batching_cost(&q, &lat_b, &costs);
            let lat_joules = batching_energy(&q, &lat_b, &costs);

            let en_b = energy_sched.schedule(&q, &costs);
            let en_elapsed = batching_cost(&q, &en_b, &costs);
            let en_joules = batching_energy(&q, &en_b, &costs);

            // Contract 1: the energy objective never loses an SLO the
            // latency optimum would have met.
            if lat_elapsed <= slo_budget {
                assert!(
                    en_elapsed <= slo_budget,
                    "depth {depth} trial {trial}: energy schedule broke a feasible SLO \
                     ({en_elapsed:.4}s > {slo_budget:.4}s)"
                );
            }
            // Contract 2: it never predicts more joules — the latency
            // optimum is itself feasible whenever anything is.
            assert!(
                en_joules <= lat_joules * (1.0 + 1e-9),
                "depth {depth} trial {trial}: energy schedule costs more joules \
                 ({en_joules:.4} J > {lat_joules:.4} J)"
            );

            lat.joules_mean += lat_joules;
            lat.elapsed_ms_mean += lat_elapsed * 1e3;
            lat.slo_attainment += f64::from(u8::from(lat_elapsed <= slo_budget));
            en.joules_mean += en_joules;
            en.elapsed_ms_mean += en_elapsed * 1e3;
            en.slo_attainment += f64::from(u8::from(en_elapsed <= slo_budget));
        }
        let n = trials as f64;
        for s in [&mut lat, &mut en] {
            s.joules_mean /= n;
            s.elapsed_ms_mean /= n;
            s.slo_attainment /= n;
        }
        let joules_saved_pct = (1.0 - en.joules_mean / lat.joules_mean) * 100.0;
        points.push(LoadPoint {
            queue_depth: depth,
            trials,
            latency: lat,
            energy: en,
            joules_saved_pct,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.queue_depth.to_string(),
                format!("{:.2}", p.latency.joules_mean),
                format!("{:.2}", p.energy.joules_mean),
                format!("{:+.1}%", p.joules_saved_pct),
                format!("{:.2}", p.latency.elapsed_ms_mean),
                format!("{:.2}", p.energy.elapsed_ms_mean),
                format!("{:.0}%", p.latency.slo_attainment * 100.0),
                format!("{:.0}%", p.energy.slo_attainment * 100.0),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Energy-under-SLO scheduling sweep ({model_name}, slo {:.1} ms)",
            slo_budget * 1e3
        ),
        &["depth", "lat J", "en J", "saved", "lat ms", "en ms", "lat SLO", "en SLO"],
        &rows,
    );
    // Contract 3: the sweep must exhibit the Pareto point the layer exists
    // for — strictly fewer predicted joules at equal SLO attainment.
    let winning = points
        .iter()
        .filter(|p| p.joules_saved_pct > 0.0 && p.energy.slo_attainment >= p.latency.slo_attainment)
        .count();
    println!("\n{winning}/{} load points save joules at equal SLO attainment", points.len());
    assert!(
        winning >= 1,
        "no load point saved joules at equal SLO attainment — the energy objective is inert"
    );

    if smoke {
        println!("smoke OK");
        return;
    }

    let report = EnergyBenchReport {
        bench: "energy_pareto",
        model: "bert-base",
        device: "V100",
        slo_ms: slo_budget * 1e3,
        points,
    };
    write_outputs(&report);
}

/// A deterministic queue of `depth` requests, lengths drawn from `dist`.
fn queue(dist: &LengthDist, depth: usize, seed: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..depth).map(|i| Request::new(i, dist.sample(&mut rng), 0.0)).collect()
}

fn write_outputs(report: &EnergyBenchReport) {
    let mut md = String::new();
    let _ = writeln!(md, "# Energy-under-SLO scheduling sweep (`energy_pareto`)\n");
    let _ = writeln!(
        md,
        "Algorithm 3 under two objectives over the same runtime-priced cost and \
         energy tables (`{}` on a modeled {}): **latency** minimizes total \
         execution time; **energy** minimizes predicted joules among batch \
         splits meeting the {:.1} ms SLO budget, falling back to the latency \
         optimum when nothing fits (see `docs/ENERGY.md`). Each load point is \
         the number of requests accumulated per scheduling round.\n",
        report.model, report.device, report.slo_ms
    );
    let _ = writeln!(
        md,
        "| queue depth | latency J | energy J | joules saved | latency ms | \
         energy ms | latency SLO | energy SLO |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|");
    for p in &report.points {
        let _ = writeln!(
            md,
            "| {} | {:.2} | {:.2} | {:+.1}% | {:.2} | {:.2} | {:.0}% | {:.0}% |",
            p.queue_depth,
            p.latency.joules_mean,
            p.energy.joules_mean,
            p.joules_saved_pct,
            p.latency.elapsed_ms_mean,
            p.energy.elapsed_ms_mean,
            p.latency.slo_attainment * 100.0,
            p.energy.slo_attainment * 100.0,
        );
    }
    let _ = writeln!(
        md,
        "\nThe two objectives price padding differently: a padded token costs \
         the latency objective only time, but costs the energy objective \
         full-power compute joules — and modeled compute draw is several \
         times the idle draw that prices a batch's fixed overhead window. \
         The energy objective therefore spends SLO slack on splits that \
         avoid padded work even when they add overhead windows, cutting \
         predicted joules while every schedule the latency objective could \
         have met still meets its deadline (asserted per trial). Under load \
         the budget binds, the feasible set collapses onto the latency \
         optimum and the two objectives converge — the fallback guarantees \
         the energy objective is never worse than the SLO.\n\n\
         Machine-readable: `BENCH_energy.json` at the repo root."
    );
    let _ = std::fs::create_dir_all("results");
    std::fs::write("results/energy_pareto.md", md).expect("write results/energy_pareto.md");

    let json = serde_json::to_string(report).expect("serialize BENCH_energy.json");
    std::fs::write("BENCH_energy.json", json).expect("write BENCH_energy.json");
    println!("\nwrote results/energy_pareto.md and BENCH_energy.json");
}
