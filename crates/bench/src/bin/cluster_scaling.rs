//! Extension experiment: multi-GPU serving behind a load balancer — the
//! "upper-level load balancer as the one in Nexus" the paper's §5 defers
//! to. Sweeps cluster size and balancer policy over the Fig. 12 workload.

use tt_bench::print_table;
use tt_bench::serving_setup::{systems, workload, LENGTHS};
use tt_serving::cluster::{simulate_cluster, BalancerPolicy, ClusterConfig};
use tt_serving::scheduler::{DpScheduler, NaiveBatchScheduler};

fn main() {
    let duration = 20.0;
    let systems = systems();
    let dp_costs = &systems.iter().find(|s| s.name == "Turbo-DP-Batch").expect("present").costs;
    let _ = LENGTHS; // workload() already applies the Fig. 12 distribution

    // --- cluster size sweep at a fixed heavy load ---
    let rate = 600.0;
    let reqs = workload(rate, duration, 4242);
    let mut rows = Vec::new();
    for servers in [1usize, 2, 4, 8] {
        let rep = simulate_cluster(
            &reqs,
            dp_costs,
            &ClusterConfig {
                servers,
                scheduler: &DpScheduler,
                policy: BalancerPolicy::LeastLoaded,
            },
            duration,
        );
        let util: f64 =
            rep.busy_time.iter().sum::<f64>() / (rep.window * rep.busy_time.len() as f64);
        rows.push(vec![
            servers.to_string(),
            format!("{:.1}", rep.response_throughput),
            format!("{:.1}", rep.latency.mean() * 1e3),
            format!("{:.1}", rep.latency.percentile(99.0) * 1e3),
            format!("{:.0}%", util * 100.0),
            if rep.saturated { "yes" } else { "no" }.to_string(),
        ]);
    }
    print_table(
        &format!("Cluster size sweep at {rate:.0} req/s (Turbo-DP per server, least-loaded)"),
        &["servers", "resp/s", "avg ms", "p99 ms", "utilization", "saturated"],
        &rows,
    );

    // --- balancer policy comparison at 3 servers, near capacity ---
    let rate = 450.0;
    let reqs = workload(rate, duration, 777);
    let mut rows = Vec::new();
    for (policy, name) in [
        (BalancerPolicy::RoundRobin, "round robin"),
        (BalancerPolicy::LeastLoaded, "least loaded"),
        (BalancerPolicy::LengthBands, "length bands"),
    ] {
        for (sched, sched_name) in [
            (&DpScheduler as &dyn tt_serving::scheduler::BatchScheduler, "DP"),
            (&NaiveBatchScheduler, "naive"),
        ] {
            let rep = simulate_cluster(
                &reqs,
                dp_costs,
                &ClusterConfig { servers: 3, scheduler: sched, policy },
                duration,
            );
            rows.push(vec![
                format!("{name} + {sched_name}"),
                format!("{:.1}", rep.response_throughput),
                format!("{:.1}", rep.latency.mean() * 1e3),
                if rep.saturated { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    print_table(
        &format!("Balancer × scheduler at {rate:.0} req/s, 3 servers"),
        &["policy + scheduler", "resp/s", "avg ms", "saturated"],
        &rows,
    );
    println!("\nTwo lessons: the per-server DP scheduler matters far more than the");
    println!("balancer policy, and length-band dispatch — though it homogenizes each");
    println!("queue — loses to least-loaded under this skewed length distribution");
    println!("because the bands carry unequal load. Grouping belongs in the scheduler.");
}
