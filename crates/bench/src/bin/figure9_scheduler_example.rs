//! Paper Figure 9: the batch-scheduler worked example — five requests of
//! lengths {17, 18, 52, 63, 77}. Packing all five into one padded batch is
//! *less* efficient than no batching; the optimal scheme packs three
//! batches and improves response throughput by ~35 %.

use tt_bench::{fmt_time, print_table};
use tt_gpusim::device::DeviceKind;
use tt_model::bert::BertConfig;
use tt_runtime::{RuntimeConfig, TurboRuntime};
use tt_serving::request::Request;
use tt_serving::scheduler::{
    batching_cost, BatchScheduler, DpScheduler, NaiveBatchScheduler, NoBatchScheduler,
};
use tt_serving::CachedCost;

fn main() {
    let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
    let cfg = BertConfig::base();
    // Warm-up the cost table around the example's length range.
    let costs = CachedCost::warm_up(&rt, &cfg, 96, 5, 4);

    let lens = [17usize, 18, 52, 63, 77];
    let queue: Vec<Request> =
        lens.iter().enumerate().map(|(i, &l)| Request::new(i, l, 0.0)).collect();

    let mut rows = Vec::new();
    let mut dp_time = 0.0;
    let mut naive_time = 0.0;
    for sched in [&DpScheduler as &dyn BatchScheduler, &NaiveBatchScheduler, &NoBatchScheduler] {
        let batching = sched.schedule(&queue, &costs);
        let total = batching_cost(&queue, &batching, &costs);
        if sched.name() == "Turbo-DP-Batch" {
            dp_time = total;
        }
        if sched.name() == "Turbo-Naive-Batch" {
            naive_time = total;
        }
        let shape: Vec<String> = batching
            .iter()
            .map(|b| {
                let ls: Vec<String> = b.iter().map(|&i| queue[i].len.to_string()).collect();
                format!("[{}]", ls.join(","))
            })
            .collect();
        rows.push(vec![
            sched.name().to_string(),
            shape.join(" "),
            fmt_time(total),
            format!("{:.1} resp/s", lens.len() as f64 / total),
        ]);
    }

    print_table(
        "Figure 9 — scheduling five requests of lengths {17, 18, 52, 63, 77} (BERT-base, RTX 2060)",
        &["scheduler", "batches (by length)", "total time", "response throughput"],
        &rows,
    );
    println!(
        "\nDP vs single padded batch: +{:.0}% response throughput (paper: +35%).",
        (naive_time / dp_time - 1.0) * 100.0
    );
}
