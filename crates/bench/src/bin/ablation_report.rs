//! Ablation benches for the design choices DESIGN.md §5 calls out:
//!
//! 1. `X` in `warpAllReduceSum_XElem` (1 = classic schedule with merged
//!    boundary; 2 = the paper's figure; 4 = the released code);
//! 2. LayerNorm variance formula (two-pass `E(x−E x)²` vs one-pass
//!    `E(x²)−E²(x)`);
//! 3. allocator chunk size and K_SCALE;
//! 4. allocator release policy (eager paper-literal vs retained);
//! 5. scheduler choice under increasing length variance;
//! 6. hungry vs lazy trigger strategies;
//! 7. DP objective: throughput vs mean latency (extension);
//! 8. activation-memory budget vs batch size (extension — the allocator's
//!    footprint profile feeding the scheduler).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tt_alloc::{TurboAllocator, TurboConfig};
use tt_bench::serving_setup::{self, System};
use tt_bench::{fmt_time, print_table};
use tt_gpusim::device::DeviceKind;
use tt_gpusim::kernels::{layernorm_time, turbo_softmax_launches, BatchShape, LayerNormAlgo};
use tt_gpusim::launch::sequence_time;
use tt_graph::lifetime::activation_lifetimes;
use tt_model::bert::{graph_skeleton, BertConfig};
use tt_serving::request::{LengthDist, Request, WorkloadSpec};
use tt_serving::scheduler::{
    batching_cost, BatchScheduler, DpScheduler, NaiveBatchScheduler, NoBatchScheduler,
};
use tt_serving::simulator::{simulate, ServingConfig, Trigger};
use tt_serving::CachedCost;

fn ablate_xelem() {
    let dev = DeviceKind::V100.config();
    let mut rows = Vec::new();
    for &(batch, seq) in &[(1usize, 100usize), (20, 100), (20, 500)] {
        let shape = BatchShape { rows: batch * 12 * seq, row_len: seq };
        let base = sequence_time(&dev, &turbo_softmax_launches(&dev, shape, 1));
        let mut row = vec![format!("({batch}, {seq})")];
        for x in [1usize, 2, 4, 8] {
            let t = sequence_time(&dev, &turbo_softmax_launches(&dev, shape, x));
            row.push(format!("{} ({:.2}x)", fmt_time(t), base / t));
        }
        rows.push(row);
    }
    print_table(
        "Ablation 1 — softmax time vs XElem batching factor (V100; speedup vs X=1)",
        &["(batch, seq)", "X=1", "X=2", "X=4", "X=8"],
        &rows,
    );
}

fn ablate_layernorm_formula() {
    let dev = DeviceKind::V100.config();
    let mut rows = Vec::new();
    for &(batch, seq) in &[(1usize, 100usize), (20, 100), (20, 500)] {
        let shape = BatchShape { rows: batch * seq, row_len: 768 };
        let two = layernorm_time(&dev, LayerNormAlgo::ClassicTwoPass, shape);
        let one = layernorm_time(&dev, LayerNormAlgo::TurboOnePass, shape);
        rows.push(vec![
            format!("({batch}, {seq})"),
            fmt_time(two),
            fmt_time(one),
            format!("{:.2}x", two / one),
        ]);
    }
    print_table(
        "Ablation 2 — LayerNorm variance formula (V100, hidden 768)",
        &["(batch, seq)", "two-pass E(x−Ex)²", "one-pass E(x²)−E²(x)", "speedup"],
        &rows,
    );
}

fn ablate_chunk_size() {
    let cfg = BertConfig::base();
    let mut rng = StdRng::seed_from_u64(33);
    let lengths: Vec<usize> = (0..40).map(|_| rng.random_range(5..=500)).collect();
    let mut rows = Vec::new();
    for (label, config) in [
        ("0.5 MB chunks", TurboConfig { default_chunk_size: 512 * 1024, ..Default::default() }),
        ("2 MB chunks (paper)", TurboConfig::default()),
        ("8 MB chunks", TurboConfig { default_chunk_size: 8 * 1024 * 1024, ..Default::default() }),
        ("K_SCALE 1.0", TurboConfig { k_scale: 1.0, ..Default::default() }),
        ("K_SCALE 2.0", TurboConfig { k_scale: 2.0, ..Default::default() }),
        ("eager release (paper-literal)", TurboConfig::eager_release()),
    ] {
        let mut alloc = TurboAllocator::new(config);
        let mut new_total = 0usize;
        let mut peak = 0usize;
        let mut chunks = 0usize;
        for &len in &lengths {
            let bound = graph_skeleton(&cfg, 1, len, false);
            let (usages, _) = activation_lifetimes(&bound.graph);
            let _ = alloc.plan(&usages);
            let st = alloc.last_stats();
            new_total += st.new_bytes;
            peak = peak.max(st.footprint);
            chunks += st.new_chunks;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.2} MB", peak as f64 / 1048576.0),
            format!("{:.2} MB", new_total as f64 / lengths.len() as f64 / 1048576.0),
            chunks.to_string(),
        ]);
    }
    print_table(
        "Ablation 3/4 — allocator knobs over 40 variable-length BERT requests",
        &["config", "peak footprint", "avg new bytes/request", "device mallocs"],
        &rows,
    );
}

fn ablate_scheduler_variance() {
    let costs = CachedCost::from_fn(512, 20, 8, |len, b| 1.0e-3 + 8.0e-6 * (len * b) as f64);
    let mut rows = Vec::new();
    for &(label, lo, hi) in &[
        ("low (230..270)", 230usize, 270usize),
        ("medium (100..400)", 100, 400),
        ("high (5..500)", 5, 500),
    ] {
        let mut rng = StdRng::seed_from_u64(5);
        let queue: Vec<Request> =
            (0..20).map(|i| Request::new(i, rng.random_range(lo..=hi), 0.0)).collect();
        let dp = batching_cost(&queue, &DpScheduler.schedule(&queue, &costs), &costs);
        let naive = batching_cost(&queue, &NaiveBatchScheduler.schedule(&queue, &costs), &costs);
        let none = batching_cost(&queue, &NoBatchScheduler.schedule(&queue, &costs), &costs);
        rows.push(vec![
            label.to_string(),
            fmt_time(dp),
            format!("{} ({:.2}x)", fmt_time(naive), naive / dp),
            format!("{} ({:.2}x)", fmt_time(none), none / dp),
        ]);
    }
    print_table(
        "Ablation 5 — scheduler vs length variance (20 queued requests; ratios vs DP)",
        &["length variance", "DP", "naive single batch", "no batching"],
        &rows,
    );
}

fn ablate_latency_objective() {
    use tt_serving::scheduler::{batching_mean_completion, LatencyDpScheduler};
    let costs = CachedCost::from_fn(512, 20, 8, |len, b| 1.0e-3 + 8.0e-6 * (len * b) as f64);
    let mut rng = StdRng::seed_from_u64(21);
    let mut rows = Vec::new();
    for n in [10usize, 20, 40] {
        let queue: Vec<Request> =
            (0..n).map(|i| Request::new(i, rng.random_range(5..=500), 0.0)).collect();
        let tp = DpScheduler.schedule(&queue, &costs);
        let lat = LatencyDpScheduler.schedule(&queue, &costs);
        rows.push(vec![
            n.to_string(),
            format!(
                "{} total / {} mean",
                fmt_time(batching_cost(&queue, &tp, &costs)),
                fmt_time(batching_mean_completion(&queue, &tp, &costs)),
            ),
            format!(
                "{} total / {} mean",
                fmt_time(batching_cost(&queue, &lat, &costs)),
                fmt_time(batching_mean_completion(&queue, &lat, &costs)),
            ),
            format!("{} vs {}", tp.len(), lat.len()),
        ]);
    }
    print_table(
        "Ablation 7 — DP objective: throughput (paper Alg. 3) vs mean latency (extension)",
        &[
            "queue",
            "throughput-DP (total / mean compl.)",
            "latency-DP (total / mean compl.)",
            "batches",
        ],
        &rows,
    );
}

fn ablate_memory_budget() {
    use tt_runtime::{RuntimeConfig, TurboRuntime};
    use tt_serving::scheduler::MemoryAwareDpScheduler;
    let cfg = BertConfig::base();
    let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
    let costs = CachedCost::warm_up(&rt, &cfg, 500, 20, 20).with_memory_profile(&cfg);

    // Similar lengths: the unconstrained DP wants one big batch, so the
    // footprint budget is what decides.
    let mut rng = StdRng::seed_from_u64(44);
    let queue: Vec<Request> =
        (0..20).map(|i| Request::new(i, rng.random_range(400..=500), 0.0)).collect();

    let mut rows = Vec::new();
    for (label, budget) in [
        ("64 MB", 64usize << 20),
        ("128 MB", 128 << 20),
        ("512 MB", 512 << 20),
        ("unlimited", usize::MAX),
    ] {
        let sched = MemoryAwareDpScheduler { budget_bytes: budget };
        let batching = sched.schedule(&queue, &costs);
        let total = batching_cost(&queue, &batching, &costs);
        let largest = batching.iter().map(|b| b.len()).max().unwrap_or(0);
        let peak_mem = batching
            .iter()
            .map(|b| {
                let max_len = b.iter().map(|&i| queue[i].len).max().expect("non-empty");
                costs.batch_memory(max_len, b.len())
            })
            .max()
            .unwrap_or(0);
        rows.push(vec![
            label.to_string(),
            batching.len().to_string(),
            largest.to_string(),
            fmt_time(total),
            format!("{:.1} MB", peak_mem as f64 / 1048576.0),
        ]);
    }
    print_table(
        "Ablation 8 — activation-memory budget vs batching (allocator-profiled footprints)",
        &["budget", "batches", "largest batch", "total time", "peak batch footprint"],
        &rows,
    );
}

fn ablate_trigger() {
    let systems = serving_setup::systems();
    let dp: &System = systems.iter().find(|s| s.name == "Turbo-DP-Batch").expect("DP present");
    let mut rows = Vec::new();
    for &rate in &[40.0f64, 100.0, 160.0] {
        let reqs = WorkloadSpec {
            rate_per_sec: rate,
            duration: 20.0,
            lengths: LengthDist::ClampedNormal { mean: 150.0, std: 120.0, lo: 5, hi: 500 },
            seed: 77,
        }
        .generate();
        let hungry = simulate(
            &reqs,
            &dp.costs,
            &ServingConfig {
                scheduler: dp.scheduler.as_ref(),
                trigger: Trigger::Hungry,
                pad_to_max: false,
                cache_capacity: None,
            },
            20.0,
        );
        let lazy = simulate(
            &reqs,
            &dp.costs,
            &ServingConfig {
                scheduler: dp.scheduler.as_ref(),
                trigger: Trigger::Lazy { timeout: 0.02, slo: 0.2 },
                pad_to_max: false,
                cache_capacity: None,
            },
            20.0,
        );
        rows.push(vec![
            format!("{rate:.0} req/s"),
            format!(
                "{:.1} resp/s / {:.1} ms",
                hungry.response_throughput,
                hungry.latency.mean() * 1e3
            ),
            format!("{:.1} resp/s / {:.1} ms", lazy.response_throughput, lazy.latency.mean() * 1e3),
        ]);
    }
    print_table(
        "Ablation 6 — hungry vs lazy trigger (Turbo-DP; throughput / mean latency)",
        &["offered load", "hungry", "lazy (20 ms timeout, 200 ms SLO)"],
        &rows,
    );
}

fn main() {
    ablate_xelem();
    ablate_layernorm_formula();
    ablate_chunk_size();
    ablate_scheduler_variance();
    ablate_latency_objective();
    ablate_memory_budget();
    ablate_trigger();
}
