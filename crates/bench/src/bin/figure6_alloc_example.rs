//! Paper Figure 6: a memory-allocation example — the chunk layout the
//! sequence-length-aware allocator produces for a BERT inference when the
//! input length changes from 200 to 240 ("we allocate one more chunk and
//! adjust the offsets").

use tt_alloc::{validate_plan, TurboAllocator, TurboConfig};
use tt_bench::print_table;
use tt_graph::lifetime::activation_lifetimes;
use tt_model::bert::{graph_skeleton, BertConfig};

fn show_plan(alloc: &mut TurboAllocator, cfg: &BertConfig, seq: usize) {
    let bound = graph_skeleton(cfg, 1, seq, false);
    let (usages, _) = activation_lifetimes(&bound.graph);
    let plan = alloc.plan(&usages);
    validate_plan(&usages, &plan).expect("plan must be safe");
    let stats = alloc.last_stats();

    println!("\n### Input length {seq}");
    println!(
        "chunks: {}  footprint: {:.2} MB  newly allocated: {:.2} MB  released: {:.2} MB",
        plan.chunk_sizes.len(),
        stats.footprint as f64 / 1048576.0,
        stats.new_bytes as f64 / 1048576.0,
        stats.released_bytes as f64 / 1048576.0,
    );

    // Per-chunk occupancy summary + the first few placements of chunk 0.
    let mut rows = Vec::new();
    for (ci, &size) in plan.chunk_sizes.iter().enumerate() {
        let in_chunk: Vec<_> = plan.assignments.iter().filter(|a| a.chunk == ci).collect();
        let peak = in_chunk.iter().map(|a| a.offset + a.size).max().unwrap_or(0);
        rows.push(vec![
            ci.to_string(),
            format!("{:.2} MB", size as f64 / 1048576.0),
            in_chunk.len().to_string(),
            format!("{:.2} MB", peak as f64 / 1048576.0),
        ]);
    }
    print_table(
        &format!("Chunk occupancy at length {seq}"),
        &["chunk", "size", "tensors", "high-water offset"],
        &rows,
    );
}

fn main() {
    let cfg = BertConfig::base();
    // Paper defaults: 2 MB chunks, K_SCALE 1.2.
    let mut alloc = TurboAllocator::new(TurboConfig::default());

    println!("## Figure 6 — allocator layout as the input length changes 200 → 240 (BERT-base)");
    show_plan(&mut alloc, &cfg, 200);
    show_plan(&mut alloc, &cfg, 240);
    println!("\nPaper reference: \"when the input length changes from 200 to 240, we allocate");
    println!("one more chunk and adjust the offsets\" — compare the chunk counts above.");
}
