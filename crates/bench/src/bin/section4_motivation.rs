//! The paper's §4.1.1 motivating measurements, reproduced:
//!
//! 1. "For a BERT inference on a Tesla V100 … batch 20 and sequence length
//!    128, only **61.8 %** of the time is spent on GEMM kernels, and
//!    **38.2 %** on non-GEMM cores" (PyTorch).
//! 2. "With batch size 1 and sequence length 40, the GPU is completely
//!    **idle 80.64 %** of the time" (launch-overhead-bound PyTorch).
//! 3. After fusion + Turbo kernels, the same shapes are GEMM-dominated.
//!
//! Plus the per-operator profile both runtimes see at each shape.

use tt_bench::{fmt_pct, fmt_time, print_table};
use tt_gpusim::device::DeviceKind;
use tt_graph::fusion::decompose;
use tt_model::bert::{graph_skeleton, BertConfig};
use tt_runtime::cost::{graph_cost, profile_graph, scaled_device};
use tt_runtime::{RuntimeKind, VariantProfile};

fn variant_graph(profile: &VariantProfile, batch: usize, seq: usize) -> tt_graph::Graph {
    let bound = graph_skeleton(&BertConfig::base(), batch, seq, false);
    match profile.fusion {
        tt_runtime::FusionLevel::Fused => bound.graph,
        tt_runtime::FusionLevel::Decomposed => decompose(&bound.graph),
    }
}

fn main() {
    let dev = DeviceKind::V100.config();

    for (kind, label) in [
        (RuntimeKind::PyTorchLike, "PyTorch-like (paper's measurement)"),
        (RuntimeKind::Turbo, "TurboTransformers"),
    ] {
        let profile = kind.profile();
        println!("\n# {label}\n");

        // --- claim 1: GEMM share at (20, 128) ---
        let graph = variant_graph(&profile, 20, 128);
        let cb = graph_cost(&dev, &profile, &graph);
        println!(
            "GEMM share at batch 20, seq 128: {}  (paper PyTorch: 61.8% GEMM / 38.2% non-GEMM)",
            fmt_pct(cb.gemm / cb.total())
        );

        // --- claim 2: launch-bound idleness at (1, 40) ---
        let graph_small = variant_graph(&profile, 1, 40);
        let cb_small = graph_cost(&dev, &profile, &graph_small);
        // Idle fraction: launch gaps as a share of wall time. Each launch
        // contributes the scaled overhead during which no kernel executes.
        let sdev = scaled_device(&dev, &profile);
        let launch_gap = cb_small.launches as f64 * sdev.launch_overhead();
        println!(
            "launch overhead share at batch 1, seq 40: {} of {} across {} launches  (paper PyTorch: GPU idle 80.64%)",
            fmt_pct(launch_gap / (cb_small.total() + profile.per_infer_overhead)),
            fmt_time(cb_small.total()),
            cb_small.launches
        );

        // --- per-operator profile at (20, 128) ---
        let lines = profile_graph(&dev, &profile, &graph);
        let total: f64 = lines.iter().map(|l| l.seconds).sum();
        let rows: Vec<Vec<String>> = lines
            .iter()
            .map(|l| {
                vec![
                    l.kind.clone(),
                    l.count.to_string(),
                    l.launches.to_string(),
                    fmt_time(l.seconds),
                    fmt_pct(l.seconds / total),
                ]
            })
            .collect();
        print_table(
            &format!("per-operator profile, batch 20 / seq 128 ({label})"),
            &["operator", "nodes", "launches", "time", "share"],
            &rows,
        );
    }
}
