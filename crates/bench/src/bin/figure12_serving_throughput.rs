//! Paper Figure 12: response throughput of the serving systems as the
//! offered request throughput grows — each curve rises along y = x until
//! its runtime saturates, then plateaus at service capacity.

use tt_bench::print_table;
use tt_bench::serving_setup::{run_system, saturation_rate, systems};

fn main() {
    let duration = 30.0;
    let seed = 2026;
    let systems = systems();

    let rates = [20.0f64, 40.0, 60.0, 80.0, 100.0, 120.0, 144.0, 200.0, 400.0, 800.0, 1500.0];

    let headers: Vec<String> = std::iter::once("req/s".to_string())
        .chain(systems.iter().map(|s| s.name.to_string()))
        .collect();
    let mut rows = Vec::new();
    for &rate in &rates {
        let mut row = vec![format!("{rate:.0}")];
        for sys in &systems {
            let rep = run_system(sys, rate, duration, seed);
            let mark = if rep.saturated { "*" } else { "" };
            row.push(format!("{:.1}{mark}", rep.response_throughput));
        }
        rows.push(row);
    }
    print_table(
        "Figure 12 — response throughput (resp/s) vs request throughput; * = saturated",
        &headers,
        &rows,
    );

    println!("\nSaturation points (bisection):");
    let mut sat = Vec::new();
    for sys in &systems {
        let s = saturation_rate(sys, 10.0, 1600.0, duration, seed);
        println!("  {:<28} {:>7.1} req/s", sys.name, s);
        sat.push((sys.name, s));
    }
    let get = |name: &str| sat.iter().find(|(n, _)| n.contains(name)).expect("system present").1;
    println!("\nRatios vs paper (paper saturations: PyTorch-NoBatch 60, Turbo-Naive 98, Turbo-NoBatch 120, Turbo-DP 144):");
    println!(
        "  Turbo-NoBatch / PyTorch-NoBatch = {:.2}x   (paper 2.0x)",
        get("Turbo-NoBatch") / get("PyTorch-NoBatch")
    );
    println!(
        "  Turbo-DP / Turbo-NoBatch       = {:.2}x   (paper 1.2x)",
        get("Turbo-DP") / get("Turbo-NoBatch")
    );
    println!(
        "  Turbo-DP / PyTorch-NoBatch     = {:.2}x   (paper 2.4x)",
        get("Turbo-DP") / get("PyTorch-NoBatch")
    );
    println!(
        "  Naive batching vs no batching  = {:.2}x   (paper < 1: naive is *worse*)",
        get("Turbo-Naive-Batch") / get("Turbo-NoBatch")
    );
}
