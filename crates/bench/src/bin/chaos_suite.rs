//! Fault-injection (chaos) suite: boot the full serving stack — live
//! engine, DP scheduler, HTTP front-end with SLO-aware admission — and
//! attack it with every `tt-chaos` fault class in turn, asserting the
//! robustness contract holds under each:
//!
//! - **The engine thread never dies.** After every chaos phase a probe
//!   request on the same stack must come back `200`.
//! - **Shed responses are well-formed.** Every `429`/`503`/`504` shed is a
//!   complete HTTP response with a parseable JSON error body and a
//!   `Retry-After` header in `[1, retry_after_max]`.
//! - **Admitted requests meet the SLO.** Under ~2× overload with a finite
//!   queue, the p99 latency of `200` responses stays at or below the
//!   configured SLO — admission sheds the excess instead of queueing it
//!   into deadline misses.
//! - **The final scrape accounts for every request.** Per phase, the
//!   flushed `http_requests_total` series sum to exactly the requests
//!   sent (clients + probe); client-side `ok + shed + failed == sent`.
//!
//! Fault classes (see `tt-chaos`): executor op panic, executor op
//! slowdown, allocator plan failure, HTTP worker stall, connection drop
//! mid-response — each alone, then all five at once, then a chaos-free
//! overload phase for the SLO assertion. A final generation phase starves
//! the paged KV arena (tiny page budget + the `kv_alloc_fail` point) and
//! asserts the continuous-batching contract: starved streams die with a
//! typed `out_of_pages` terminal event, their pages are reclaimed, and
//! the engine keeps serving.
//!
//! `--smoke` runs a scaled-down deterministic pass (seeded via
//! `TT_CHAOS_SEED`, default below) for CI; the full run also writes
//! `results/chaos_suite.md`.

use std::fmt::Write as _;
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tt_bench::print_table;
use tt_chaos::ChaosConfig;
use tt_gpusim::device::DeviceKind;
use tt_model::bert::{Bert, BertConfig};
use tt_runtime::{RuntimeConfig, TurboRuntime};
use tt_serving::http::{HttpConfig, HttpServer};
use tt_serving::live::LiveEngine;
use tt_serving::scheduler::InstrumentedScheduler;
use tt_serving::stats::LatencyStats;
use tt_serving::{CachedCost, DpScheduler};
use tt_telemetry::{Registry, Tracer};

/// Default deterministic seed; `TT_CHAOS_SEED` overrides.
const DEFAULT_SEED: u64 = 0xC0FFEE;
/// Worker pool width for every phase's server.
const WORKERS: usize = 8;
/// In-flight cap — below `WORKERS` so the capacity (`429`) path is
/// reachable under overload.
const QUEUE_DEPTH: usize = 6;
/// Upper clamp on advertised `Retry-After` values.
const RETRY_AFTER_MAX: u64 = 30;

/// What one HTTP exchange looked like from the client's side.
enum Outcome {
    /// Complete `200` with a full body; wall latency attached.
    Ok(Duration),
    /// A well-formed shed (`429`/`503`/`504` *with* `Retry-After`).
    Shed(u16),
    /// Anything else: truncated response, transport error, or an
    /// engine-failure `5xx` without the shed contract.
    Failed,
}

struct PhaseReport {
    name: &'static str,
    sent: usize,
    ok: usize,
    shed_429: usize,
    shed_503: usize,
    shed_504: usize,
    failed: usize,
    fired: u64,
    p99_ms: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed =
        std::env::var("TT_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SEED);
    let (clients, per_client) = if smoke { (4, 6) } else { (8, 20) };
    let slo = Duration::from_millis(500);

    println!(
        "chaos_suite: seed={seed:#x} clients={clients} per_client={per_client} \
         slo={}ms{}",
        slo.as_millis(),
        if smoke { " (smoke)" } else { "" }
    );

    let base = ChaosConfig { seed, ..ChaosConfig::default() };
    let slow_ms = if smoke { 2 } else { 5 };
    let phases: Vec<(&'static str, ChaosConfig)> = vec![
        ("baseline (no faults)", base),
        ("executor op panic", ChaosConfig { executor_op_panic: 0.02, ..base }),
        ("executor op slowdown", ChaosConfig { op_slowdown: 0.3, op_slowdown_ms: slow_ms, ..base }),
        ("allocator plan failure", ChaosConfig { alloc_plan_fail: 0.10, ..base }),
        ("http worker stall", ChaosConfig { worker_stall: 0.3, worker_stall_ms: 10, ..base }),
        ("connection drop", ChaosConfig { conn_drop: 0.25, ..base }),
        (
            "all five at once",
            ChaosConfig {
                executor_op_panic: 0.005,
                op_slowdown: 0.1,
                op_slowdown_ms: slow_ms,
                alloc_plan_fail: 0.03,
                worker_stall: 0.1,
                worker_stall_ms: 5,
                conn_drop: 0.1,
                ..base
            },
        ),
    ];

    let mut reports = Vec::new();
    for (name, config) in &phases {
        println!("phase: {name}");
        reports.push(run_phase(name, *config, clients, per_client, slo));
    }

    // Chaos-free 2× overload: concurrency at twice the worker pool, finite
    // queue — admission sheds the excess, and whatever it admits it must
    // finish within the SLO.
    println!("phase: overload 2x (chaos off)");
    let overload = run_phase("overload 2x (chaos off)", base, WORKERS * 2, per_client, slo);
    assert!(overload.ok > 0, "overload phase must admit and serve requests, not shed everything");
    assert!(
        overload.p99_ms <= slo.as_millis() as f64,
        "p99 of admitted requests ({:.2} ms) exceeds the {} ms SLO under 2x overload",
        overload.p99_ms,
        slo.as_millis()
    );
    reports.push(overload);

    // Every chaos phase (not the baseline) must actually have injected
    // faults — a suite that never fires its faults asserts nothing.
    for r in reports.iter().filter(|r| !r.name.contains("baseline") && !r.name.contains("overload"))
    {
        assert!(r.fired > 0, "phase '{}' injected no faults — probabilities too low?", r.name);
    }

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.sent.to_string(),
                r.ok.to_string(),
                r.shed_429.to_string(),
                r.shed_503.to_string(),
                r.shed_504.to_string(),
                r.failed.to_string(),
                r.fired.to_string(),
                format!("{:.2}", r.p99_ms),
            ]
        })
        .collect();
    print_table(
        "Chaos suite (tiny BERT, DP scheduler, SLO-aware admission)",
        &["phase", "sent", "ok", "429", "503", "504", "failed", "faults", "p99 ms"],
        &rows,
    );

    println!("phase: kv page exhaustion (generation)");
    let kv = run_kv_exhaustion_phase(seed);
    println!(
        "  streams={} completed={} starved={} injected_faults={} leaked_pages={}",
        kv.streams, kv.completed, kv.starved, kv.fired, kv.leaked
    );

    if smoke {
        println!("smoke OK");
        return;
    }
    write_markdown(&reports, &kv, seed, slo);
}

/// Outcome of the generation-side KV starvation phase.
struct KvPhaseReport {
    streams: usize,
    completed: usize,
    starved: usize,
    fired: u64,
    leaked: usize,
}

/// Starve the paged KV arena two ways — a page budget far below the
/// demanded token volume, then the `kv_alloc_fail` injection point — and
/// assert the blast radius of each starvation is one stream.
fn run_kv_exhaustion_phase(seed: u64) -> KvPhaseReport {
    use tt_model::gpt::{Gpt, GptConfig};
    use tt_runtime::decode::DecodeConfig;
    use tt_serving::{FinishReason, GenClient, GenConfig, GenEngine};

    // 6 pages x 2 slots = 12 token slots, against 6 concurrent streams
    // each wanting up to 3 + 24 slots: natural mid-generation exhaustion.
    let config = GenConfig {
        kv: DecodeConfig { page_slots: 2, num_pages: 6 },
        max_active: 8,
        max_new_tokens: 64,
        eos_token: None,
    };
    let model = Gpt::new_random(&GptConfig::tiny(), 2024);
    let costs = Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-6 * (len * b) as f64));
    let eng = GenEngine::start(model, config, costs);

    // Mixed demand: short streams finish inside their reserved pages while
    // the long ones decode past the budget and starve — the decisive case
    // being that starvation retires victims without cascading to the
    // streams that can still fit.
    let streams = 6;
    let mut rxs = Vec::new();
    for c in 0..streams {
        let prompt: Vec<u32> = (1..=(2 + c as u32 % 3)).collect();
        let max_new = if c % 2 == 0 { 1 } else { 24 };
        rxs.push(eng.client().generate(prompt, max_new).expect("submission succeeds"));
    }
    let (mut completed, mut starved) = (0, 0);
    for rx in &rxs {
        match GenClient::collect(rx).1 {
            Some(FinishReason::Length | FinishReason::Eos) => completed += 1,
            Some(FinishReason::OutOfPages) => starved += 1,
            other => panic!("kv phase: unexpected terminal state {other:?}"),
        }
    }
    assert!(starved >= 1, "12-slot arena under 6 hungry streams must starve someone");
    assert!(completed >= 1, "exhaustion must not cascade to every stream");

    // Injected starvation: with the allocator faulted, the victim stream
    // dies typed while the engine survives.
    tt_chaos::install(ChaosConfig { kv_alloc_fail: 1.0, seed, ..ChaosConfig::default() });
    let rx = eng.client().generate(vec![1, 2, 3], 8).expect("submission succeeds");
    let (tokens, finish) = GenClient::collect(&rx);
    assert_eq!(finish, Some(FinishReason::OutOfPages), "injected starvation dies typed");
    assert!(tokens.is_empty());
    let fired = tt_chaos::total_fired();
    assert!(fired >= 1, "the kv_alloc_fail point must actually have fired");
    tt_chaos::disarm();

    // The engine keeps serving once the fault clears and pages returned.
    let rx = eng.client().generate(vec![4, 5], 8).expect("submission succeeds");
    let (tokens, finish) = GenClient::collect(&rx);
    assert!(matches!(finish, Some(FinishReason::Length | FinishReason::Eos)));
    assert!(!tokens.is_empty(), "post-chaos probe generation must produce tokens");

    let summary = eng.shutdown();
    assert_eq!(summary.pages_leaked, 0, "every page reclaimed after starvation");
    KvPhaseReport {
        streams: streams + 2,
        completed: completed + 1,
        starved: starved + 1,
        fired,
        leaked: summary.pages_leaked,
    }
}

/// One chaos phase on a fresh stack: boot engine + server, arm the fault
/// config, drive the load, then disarm and verify the robustness contract.
fn run_phase(
    name: &'static str,
    config: ChaosConfig,
    clients: usize,
    per_client: usize,
    slo: Duration,
) -> PhaseReport {
    let registry = Registry::new();
    let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    runtime.instrument(&registry);
    let costs =
        Arc::new(CachedCost::from_fn(64, 16, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    let scheduler = Arc::new(InstrumentedScheduler::new(Arc::new(DpScheduler), &registry));
    let engine =
        LiveEngine::start_instrumented(model, runtime, scheduler, costs.clone(), &registry);
    let http_config = HttpConfig {
        addr: "127.0.0.1:0".into(),
        workers: WORKERS,
        max_queue_depth: QUEUE_DEPTH,
        retry_after_max: RETRY_AFTER_MAX,
        slo,
        ..HttpConfig::default()
    };
    let server = HttpServer::start_with_costs(
        http_config,
        Arc::new(engine.client()),
        &registry,
        Tracer::disabled(),
        Some(costs),
    )
    .expect("server starts");
    let addr = server.addr();

    tt_chaos::install(config);

    let mut handles = Vec::new();
    for c in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            for i in 0..per_client {
                let len = 4 + (c * 7 + i * 3) % 40;
                let tokens: Vec<String> =
                    (0..len).map(|t| ((t * 5 + c) % 90).to_string()).collect();
                let body = format!("{{\"tokens\": [{}]}}", tokens.join(", "));
                outcomes.push(exchange(addr, &body));
            }
            outcomes
        }));
    }
    let mut outcomes = Vec::new();
    for h in handles {
        outcomes.extend(h.join().expect("client thread"));
    }

    // Counters must be read before disarm: disarm() reinstalls the default
    // config, which resets them.
    let fired = tt_chaos::total_fired();
    tt_chaos::disarm();

    // The engine must have survived whatever was injected: a probe on the
    // same stack, chaos off, must serve.
    let probe = exchange(addr, "{\"tokens\": [5, 17, 42, 8]}");
    assert!(
        matches!(probe, Outcome::Ok(_)),
        "phase '{name}': probe after disarm did not serve — the engine died"
    );

    let final_metrics = server.shutdown();
    engine.shutdown();

    let sent = clients * per_client;
    let mut stats = LatencyStats::new();
    let (mut ok, mut shed_429, mut shed_503, mut shed_504, mut failed) = (0, 0, 0, 0, 0);
    for outcome in &outcomes {
        match outcome {
            Outcome::Ok(latency) => {
                ok += 1;
                stats.record(latency.as_secs_f64());
            }
            Outcome::Shed(429) => shed_429 += 1,
            Outcome::Shed(503) => shed_503 += 1,
            Outcome::Shed(_) => shed_504 += 1,
            Outcome::Failed => failed += 1,
        }
    }
    // Client-side accounting is total by construction; the server-side
    // check is the real one: the final scrape's http_requests_total series
    // must sum to every request sent (load + probe), no silent drops.
    assert_eq!(ok + shed_429 + shed_503 + shed_504 + failed, sent);
    let scraped = requests_total_sum(&final_metrics);
    assert_eq!(
        scraped,
        (sent + 1) as u64,
        "phase '{name}': final scrape accounts for {scraped} requests, sent {}",
        sent + 1
    );

    PhaseReport {
        name,
        sent,
        ok,
        shed_429,
        shed_503,
        shed_504,
        failed,
        fired,
        p99_ms: stats.percentile(99.0) * 1e3,
    }
}

/// One strict HTTP exchange on a fresh connection. Anything short of a
/// complete, well-formed response is [`Outcome::Failed`]; sheds must carry
/// the `Retry-After` contract or the suite panics.
fn exchange(addr: SocketAddr, body: &str) -> Outcome {
    let start = Instant::now();
    let Ok(mut stream) = TcpStream::connect(addr) else { return Outcome::Failed };
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(raw.as_bytes()).is_err() {
        return Outcome::Failed;
    }
    let mut response = Vec::new();
    if stream.read_to_end(&mut response).is_err() {
        return Outcome::Failed;
    }
    let Ok(text) = std::str::from_utf8(&response) else { return Outcome::Failed };

    // A complete response has a blank line and a body matching its
    // Content-Length — a chaos-truncated one does not.
    let Some((head, rest)) = text.split_once("\r\n\r\n") else { return Outcome::Failed };
    let Some(status) = head.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()) else {
        return Outcome::Failed;
    };
    let content_length = header_value(head, "content-length").and_then(|v| v.parse::<usize>().ok());
    if content_length != Some(rest.len()) {
        return Outcome::Failed;
    }

    match status {
        200 => Outcome::Ok(start.elapsed()),
        429 | 503 | 504 => {
            match header_value(head, "retry-after").and_then(|v| v.parse::<u64>().ok()) {
                Some(retry) => {
                    // The shed contract: an honest, clamped Retry-After and
                    // a JSON error body.
                    assert!(
                        (1..=RETRY_AFTER_MAX).contains(&retry),
                        "shed {status} advertised Retry-After {retry}, outside [1, {RETRY_AFTER_MAX}]"
                    );
                    assert!(
                        rest.starts_with("{\"error\":"),
                        "shed {status} body is not the JSON error shape: {rest}"
                    );
                    Outcome::Shed(status)
                }
                // A 503 without Retry-After is the engine-failure path
                // (batch lost to an injected panic), not a shed.
                None => Outcome::Failed,
            }
        }
        _ => Outcome::Failed,
    }
}

/// Case-insensitive header lookup in a raw response head.
fn header_value<'h>(head: &'h str, name: &str) -> Option<&'h str> {
    head.lines().skip(1).find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.trim().eq_ignore_ascii_case(name).then(|| value.trim())
    })
}

/// Sum every `http_requests_total{...}` sample in a Prometheus exposition.
fn requests_total_sum(exposition: &str) -> u64 {
    exposition
        .lines()
        .filter(|l| l.starts_with("http_requests_total{"))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .sum()
}

fn write_markdown(reports: &[PhaseReport], kv: &KvPhaseReport, seed: u64, slo: Duration) {
    let mut md = String::new();
    let _ = writeln!(md, "# Chaos suite (`chaos_suite`)\n");
    let _ = writeln!(
        md,
        "Each phase boots a fresh serving stack (tiny BERT, DP scheduler, \
         {WORKERS} HTTP workers, in-flight cap {QUEUE_DEPTH}, SLO {} ms), arms one \
         `tt-chaos` fault class (seed `{seed:#x}`), drives concurrent load, then \
         disarms and asserts the robustness contract: the engine survives (a \
         post-chaos probe serves `200`), every shed is a complete response with \
         `Retry-After` in `[1, {RETRY_AFTER_MAX}]`, and the final `/metrics` scrape \
         accounts for every request sent. The last phase runs chaos-free at 2x the \
         worker pool and asserts p99 of admitted requests stays within the SLO.\n",
        slo.as_millis(),
    );
    let _ =
        writeln!(md, "| phase | sent | ok | 429 | 503 | 504 | failed | faults fired | p99 ms |");
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|---|");
    for r in reports {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {:.2} |",
            r.name, r.sent, r.ok, r.shed_429, r.shed_503, r.shed_504, r.failed, r.fired, r.p99_ms,
        );
    }
    let _ = writeln!(
        md,
        "\n`failed` counts client-visible incidents: responses truncated by the \
         connection-drop fault, and engine-failure `503`s (a batch lost to an \
         injected panic — answered, never silently dropped). Shed taxonomy and \
         injection points: `docs/ROBUSTNESS.md`."
    );
    let _ = writeln!(
        md,
        "\n## KV page exhaustion (generation)\n\n\
         A 6-page x 2-slot paged KV arena under {} concurrent generation \
         streams (natural starvation), then the `kv_alloc_fail` injection \
         point ({} faults fired): {} streams completed, {} died with the typed \
         `out_of_pages` terminal event, {} pages leaked. Starvation's blast \
         radius is one stream: victims retire with their pages reclaimed the \
         same iteration, survivors keep decoding, and a post-chaos probe \
         generates normally. See `docs/GENERATION.md`.",
        kv.streams, kv.fired, kv.completed, kv.starved, kv.leaked
    );
    let _ = std::fs::create_dir_all("results");
    std::fs::write("results/chaos_suite.md", md).expect("write results/chaos_suite.md");
    println!("\nwrote results/chaos_suite.md");
}
