//! Extension experiment: multiple transformer services sharing one GPU —
//! the Nexus scenario the paper cites — with earliest-deadline-first
//! dispatch and SLO-aware load shedding.
//!
//! Three classes share a simulated RTX 2060: a latency-sensitive BERT-base
//! chat classifier, a throughput-oriented ALBERT batch service, and a slow
//! long-document BERT. Reported: per-class goodput (served within SLO)
//! with and without shedding, at rising overload.

use tt_bench::print_table;
use tt_gpusim::device::DeviceKind;
use tt_model::albert::AlbertConfig;
use tt_model::bert::BertConfig;
use tt_runtime::{RuntimeConfig, TurboRuntime};
use tt_serving::multi_model::{simulate_multi_model, ModelClass, Shedding};
use tt_serving::request::{LengthDist, WorkloadSpec};
use tt_serving::scheduler::DpScheduler;
use tt_serving::CachedCost;

fn main() {
    let duration = 20.0;
    println!("warming cost tables for three model classes on RTX 2060…");
    let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
    let bert = CachedCost::warm_up(&rt, &BertConfig::base(), 256, 20, 16);
    let long_doc = CachedCost::warm_up(&rt, &BertConfig::base(), 512, 8, 32);
    let albert_rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
    // ALBERT costs the same compute as BERT; its table differs via shapes.
    let albert = {
        let cfg = AlbertConfig::base();
        CachedCost::from_fn(256, 20, 16, |len, b| albert_rt.albert_cost(&cfg, b, len, b > 1))
    };

    let trace = |rate: f64, lo: usize, hi: usize, seed: u64| {
        WorkloadSpec { rate_per_sec: rate, duration, lengths: LengthDist::Uniform { lo, hi }, seed }
            .generate()
    };

    for load in [1.0f64, 2.0, 4.0] {
        let mut rows = Vec::new();
        for shedding in [Shedding::Never, Shedding::ExpiredSlo] {
            let classes = [
                ModelClass {
                    name: "chat (BERT, SLO 100 ms)",
                    costs: &bert,
                    scheduler: &DpScheduler,
                    slo: 0.1,
                    requests: trace(40.0 * load, 5, 64, 11),
                },
                ModelClass {
                    name: "batch (ALBERT, SLO 500 ms)",
                    costs: &albert,
                    scheduler: &DpScheduler,
                    slo: 0.5,
                    requests: trace(30.0 * load, 32, 256, 12),
                },
                ModelClass {
                    name: "documents (BERT, SLO 2 s)",
                    costs: &long_doc,
                    scheduler: &DpScheduler,
                    slo: 2.0,
                    requests: trace(8.0 * load, 256, 512, 13),
                },
            ];
            let reports = simulate_multi_model(&classes, shedding, duration);
            for r in reports {
                rows.push(vec![
                    format!("{:?}", shedding),
                    r.name.to_string(),
                    r.arrivals.to_string(),
                    format!("{:.0}%", r.goodput() * 100.0),
                    r.shed.to_string(),
                    format!("{:.1}", r.latency.mean() * 1e3),
                ]);
            }
        }
        print_table(
            &format!("Shared GPU at {load:.0}× base load"),
            &["shedding", "class", "arrivals", "goodput", "shed", "avg ms"],
            &rows,
        );
    }
    println!("\nUnder overload, shedding expired requests converts useless late answers");
    println!("into within-SLO capacity — the goodput column is the one that matters.");
}
