//! Paper Figure 4, made executable: the anatomy of the classic batch
//! reduction vs `warpAllReduceSum_XElem` — synchronization counts,
//! divergent boundary replays, issue-slot consumption and dependency-stall
//! latency, straight from the pipeline scoreboard.

use tt_bench::print_table;
use tt_gpusim::device::DeviceKind;
use tt_gpusim::pipeline::simulate;
use tt_gpusim::reduction::{classic_block_trace, xelem_block_trace, ReductionShape};

fn main() {
    let dev = DeviceKind::V100.config();
    println!("## Figure 4 — schedule anatomy of one thread block (Tesla V100 timing model)\n");

    for &(row_len, rows) in &[(128usize, 8usize), (100, 8), (500, 16)] {
        let shape = ReductionShape { row_len, rows_per_block: rows, block_threads: 128 };
        let classic = simulate(&dev, &classic_block_trace(&shape));
        let mut rows_out = vec![vec![
            "classic (FasterTransformer)".to_string(),
            classic.instr_count.to_string(),
            classic.syncs.to_string(),
            classic.divergences.to_string(),
            classic.issue_cycles.to_string(),
            classic.latency_cycles.to_string(),
            "1.00x".to_string(),
        ]];
        for x in [2usize, 4] {
            let xe = simulate(&dev, &xelem_block_trace(&shape, x));
            rows_out.push(vec![
                format!("XElem (X={x})"),
                xe.instr_count.to_string(),
                xe.syncs.to_string(),
                xe.divergences.to_string(),
                xe.issue_cycles.to_string(),
                xe.latency_cycles.to_string(),
                format!("{:.2}x", classic.latency_cycles as f64 / xe.latency_cycles as f64),
            ]);
        }
        print_table(
            &format!("{rows} rows of length {row_len} per block (128 threads)"),
            &[
                "algorithm",
                "instrs",
                "syncs",
                "divergent tails",
                "issue cycles",
                "latency cycles",
                "latency speedup",
            ],
            &rows_out,
        );
    }

    println!("\nReading the table (the paper's three arguments):");
    println!("1. syncs drop by (X−1)/X — one barrier pair per X rows;");
    println!("2. divergent tails merge — row 100 is not 32-aligned, so the classic");
    println!("   schedule replays the boundary per row, XElem once per group;");
    println!("3. latency beats issue — interleaved independent SHFL→FADD chains hide");
    println!("   shuffle latency that the classic dependent chain must eat.");
}
