//! Paper Figure 8: batching brings performance gain for BERT-base serving
//! on RTX 2060 — normalized per-request latency (batch size 1 = 1.0) as
//! the batch grows, for several sequence lengths.

use tt_bench::print_table;
use tt_gpusim::device::DeviceKind;
use tt_model::bert::BertConfig;
use tt_runtime::{RuntimeConfig, TurboRuntime};

fn main() {
    let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
    let cfg = BertConfig::base();
    let seqs = [10usize, 20, 50, 100, 200, 500];
    let batches = [1usize, 2, 4, 8, 12, 16, 20];

    let headers: Vec<String> = std::iter::once("batch".to_string())
        .chain(seqs.iter().map(|s| format!("seq {s}")))
        .collect();

    let base: Vec<f64> = seqs.iter().map(|&s| rt.bert_cost(&cfg, 1, s, false)).collect();
    let mut rows = Vec::new();
    for &b in &batches {
        let mut row = vec![b.to_string()];
        for (i, &s) in seqs.iter().enumerate() {
            let per_request = rt.bert_cost(&cfg, b, s, b > 1) / b as f64;
            row.push(format!("{:.3}", per_request / base[i]));
        }
        rows.push(row);
    }

    print_table(
        "Figure 8 — normalized per-request latency vs batch size (BERT-base, RTX 2060; 1.0 = batch 1)",
        &headers,
        &rows,
    );
    println!("\nPaper reference: batching gains are largest for short sequences (a batch of");
    println!("short requests is still launch/occupancy-bound alone) and fade as a single");
    println!("long request already saturates the GPU.");
}
