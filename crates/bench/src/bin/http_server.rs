//! Standalone HTTP serving binary: boot the full Fig. 2 stack — live
//! engine, DP batch scheduler, instrumented runtime — behind the
//! `tt_serving::http` front-end and serve until the process is killed.
//!
//! This is the deployable shape of the reproduction: a `curl`-able
//! inference endpoint plus a Prometheus-scrapeable `/metrics`, configured
//! entirely through `TT_HTTP_*` environment variables (see the README
//! config-surface table).
//!
//! ```bash
//! cargo run --release -p tt-bench --bin http_server &
//! curl -s localhost:7070/healthz
//! curl -s localhost:7070/v1/infer -d '{"tokens": [101, 2023, 2003, 102]}'
//! curl -s localhost:7070/metrics | grep live_requests_total
//! ```
//!
//! `TT_HTTP_MODEL=base` serves BERT-base weights instead of the tiny
//! configuration (slower per request, paper-scale compute).

use std::sync::Arc;

use tt_gpusim::device::DeviceKind;
use tt_model::bert::{Bert, BertConfig};
use tt_model::gpt::{Gpt, GptConfig};
use tt_runtime::decode::DecodeEnergyModel;
use tt_runtime::{RuntimeConfig, RuntimeKind, TurboRuntime};
use tt_serving::generate::start_engine_with_energy;
use tt_serving::http::{GenerateHandler, HttpConfig, HttpServer, InferHandler, VocabGuard};
use tt_serving::live::{spawn_core, LiveEngine};
use tt_serving::scheduler::{BatchScheduler, InstrumentedScheduler};
use tt_serving::supervisor::{ReplicaFactory, ReplicaParts};
use tt_serving::{
    CachedCost, DpScheduler, EnergyAwareDpScheduler, Fleet, FleetConfig, GenConfig, SchedObjective,
};
use tt_telemetry::{
    EnergyMeter, EnergySampler, EnergySamplerConfig, ModeledPowerSource, Registry, Tracer,
};

fn main() {
    let registry = Registry::new();
    // Fault injection (off unless TT_CHAOS_* probabilities are set):
    // arms the tt-chaos hooks in the executor, engine and HTTP layers so a
    // deployment can be soak-tested with the exact binary it ships.
    let chaos = tt_chaos::install_from_env();
    if tt_chaos::armed() {
        println!("tt-chaos armed: {chaos:?}");
    }
    // Head-sampled request tracing: 1-in-TT_TRACE_SAMPLE requests (default
    // 64) record a span tree, queryable at GET /v1/traces/<id>; any single
    // request can opt in with `?trace=1`.
    let tracer = Tracer::from_env();

    // GEMM micro-kernel selection: runtime CPU detection, overridable with
    // TT_GEMM_KERNEL (scalar|simd|avx2). Logged at startup and exported as
    // a labeled gauge so a scrape can tell which kernel a deployment runs.
    let variant = tt_tensor::kernel_variant_name();
    let int8 = tt_model::weights::int8_enabled();
    println!(
        "gemm kernel: {variant} (override via TT_GEMM_KERNEL), int8 weights: {}",
        if int8 { "on (TT_GEMM_INT8)" } else { "off" }
    );
    registry
        .gauge(
            "gemm_kernel_variant",
            "Selected GEMM micro-kernel (labeled; value is always 1)",
            &[("variant", variant)],
        )
        .set(1.0);

    let model_kind = std::env::var("TT_HTTP_MODEL").unwrap_or_else(|_| "tiny".into());
    let bert_config = match model_kind.as_str() {
        "base" => BertConfig::base(),
        _ => BertConfig::tiny(),
    };
    println!("loading BERT ({model_kind}) …");
    let model = Arc::new(Bert::new_random(&bert_config, 2024));
    let device_kind = DeviceKind::RTX2060;
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(device_kind)));
    runtime.instrument(&registry);
    // Energy accounting: one process-wide meter shared by the encoder
    // runtime (prefill phase), the decode runtime (both phases) and the
    // background power sampler that turns its counters into watt gauges.
    let meter = Arc::new(EnergyMeter::new());
    runtime.instrument_energy(meter.clone());
    // The static profile seeds the table; completed batches feed measured
    // times back through an EWMA so costs track the live machine. The
    // energy profile prices the same bucket grid in modeled joules so the
    // energy-under-SLO scheduler can compare batch splits.
    let costs = Arc::new(
        CachedCost::from_fn(64, 16, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64)
            .with_energy_profile(&runtime, &bert_config)
            .with_online_updates(0.2),
    );
    // Read the HTTP config before the scheduler: the energy objective
    // prices batch splits against the deployment's SLO budget.
    let config = HttpConfig::from_env();
    // Algorithm 3's objective: latency (default) minimizes total execution
    // time; energy minimizes predicted joules among splits that still meet
    // the SLO, falling back to the latency optimum when nothing fits.
    let objective = SchedObjective::from_env();
    let base_scheduler: Arc<dyn BatchScheduler> = match objective {
        SchedObjective::Energy => {
            Arc::new(EnergyAwareDpScheduler { slo_budget: config.slo.as_secs_f64() })
        }
        SchedObjective::Latency => Arc::new(DpScheduler),
    };
    println!(
        "scheduler objective: {} (override via TT_SCHED_OBJECTIVE=latency|energy)",
        objective.as_str()
    );
    let scheduler = Arc::new(InstrumentedScheduler::new(base_scheduler, &registry));

    // A decoder-only GPT behind the streaming route, scheduled by the
    // continuous-batching engine over the paged KV arena. Sized from the
    // environment (TT_KV_*, TT_GEN_*); the same gpt config family as the
    // encoder knob (`base` trades latency for paper-scale compute).
    let gpt_config = match model_kind.as_str() {
        "base" => GptConfig::small(),
        _ => GptConfig::tiny(),
    };
    let gen_config = GenConfig::from_env();
    let energy_model = DecodeEnergyModel {
        device: device_kind.config(),
        profile: RuntimeKind::Turbo.profile(),
        meter: meter.clone(),
    };

    // TT_FLEET_REPLICAS > 1 swaps the single engine pair for a supervised
    // N-replica fleet behind the health-gated router: watchdog-bounced
    // replicas, circuit-breaker routing, bounded deadline-aware retries,
    // optional hedging (TT_HEDGE_MS). Each incarnation rebuilds its own
    // engine pair from this factory — a bounce reloads weights, exactly
    // like a process restart would. See docs/ROBUSTNESS.md § Fleet.
    let fleet_config = FleetConfig::from_env();
    let (handler, generate, _engines): (
        Arc<dyn InferHandler>,
        Arc<dyn GenerateHandler>,
        Box<dyn std::any::Any>,
    ) = if fleet_config.replicas > 1 {
        println!(
            "fleet: {} supervised replicas (TT_FLEET_REPLICAS), hedge={:?} (TT_HEDGE_MS)",
            fleet_config.replicas, fleet_config.hedge
        );
        let factory: ReplicaFactory = {
            let model = model.clone();
            let runtime = runtime.clone();
            let scheduler = scheduler.clone();
            let costs = costs.clone();
            let registry = registry.clone();
            let tracer = tracer.clone();
            let gpt_config = gpt_config.clone();
            let energy_model = energy_model.clone();
            Arc::new(move |id, _generation| {
                let live = spawn_core(
                    model.clone(),
                    runtime.clone(),
                    scheduler.clone(),
                    costs.clone(),
                    Some(&registry),
                    tracer.clone(),
                    id,
                );
                let gpt = Gpt::new_random(&gpt_config, 2024);
                let generative = start_engine_with_energy(
                    gpt,
                    gen_config,
                    costs.clone(),
                    Some(&registry),
                    tracer.clone(),
                    Some(energy_model.clone()),
                )
                .into_parts();
                ReplicaParts { live, generative: Some(generative) }
            })
        };
        let fleet = Fleet::start(factory, fleet_config, costs.clone(), Some(&registry));
        (
            Arc::new(VocabGuard::new(fleet.clone(), bert_config.vocab_size)),
            Arc::new(fleet),
            Box::new(()),
        )
    } else {
        let engine = LiveEngine::start_traced(
            model,
            runtime,
            scheduler,
            costs.clone(),
            &registry,
            tracer.clone(),
        );
        println!("loading GPT ({model_kind}) …");
        let gpt = Gpt::new_random(&gpt_config, 2024);
        let gen_engine = start_engine_with_energy(
            gpt,
            gen_config,
            costs.clone(),
            Some(&registry),
            tracer.clone(),
            Some(energy_model),
        );
        let generate: Arc<dyn GenerateHandler> = Arc::new(gen_engine.client());
        // Vocabulary admission check at the boundary: an out-of-range
        // token id is a client error (400), not an engine incident.
        let handler: Arc<dyn InferHandler> =
            Arc::new(VocabGuard::new(engine.client(), bert_config.vocab_size));
        (handler, generate, Box::new((engine, gen_engine)))
    };

    // RAPL-style background sampler: turns the meter's microjoule counters
    // into power_watts / energy_joules_total / joules-per-request families
    // in /metrics. On by default; TT_ENERGY=0 disables it. The handle must
    // outlive the serve loop — dropping it stops the sampling thread.
    let _sampler = EnergySamplerConfig::enabled_in_env().then(|| {
        let mut sampler_config = EnergySamplerConfig::from_env();
        sampler_config.per_request =
            Some(registry.counter("live_requests_total", "Requests served", &[]));
        sampler_config.per_token = Some(registry.counter(
            "decode_tokens_total",
            "Tokens emitted by the decode engine",
            &[],
        ));
        println!(
            "energy sampler: on, every {:?} (TT_ENERGY=0 to disable, TT_ENERGY_SAMPLE_MS to tune)",
            sampler_config.interval
        );
        let source =
            Arc::new(ModeledPowerSource::new(meter.clone(), device_kind.config().idle_watts));
        EnergySampler::start(&registry, source, sampler_config)
    });
    if _sampler.is_none() {
        println!("energy sampler: off (TT_ENERGY=0)");
    }
    // Hand the admission controller the engine's cost table: SLO-aware
    // admission prices each request (queue-wait p99 + execution estimate)
    // against its deadline and sheds predictable violations up front.
    let server = HttpServer::start_generative(
        config.clone(),
        handler,
        Some(generate),
        &registry,
        tracer,
        Some(costs),
    )
    .expect("binding the HTTP listener");
    // Mirror the gemm-kernel log/gauge pair: the active connection driver
    // is logged at startup and exported as `http_driver{driver}` so a
    // scrape can tell an epoll-reactor deployment from the threaded
    // fallback (see docs/NETWORKING.md).
    println!(
        "http driver: {} (override via TT_HTTP_DRIVER=reactor|threads)",
        server.driver().name()
    );
    // One info-gauge carrying the deployment's build/runtime identity as
    // labels (value always 1) — the Prometheus `*_info` idiom, joinable
    // against every other series in a scrape.
    registry
        .gauge(
            "tt_build_info",
            "Build and runtime configuration identity (labeled; value is always 1)",
            &[
                ("kernel_variant", variant),
                ("http_driver", server.driver().name()),
                ("int8", if int8 { "on" } else { "off" }),
            ],
        )
        .set(1.0);
    println!("serving on http://{}", server.addr());
    // Keep the sample ids inside the smallest (tiny, 97-word) vocabulary so
    // pasting the hint verbatim succeeds under every TT_HTTP_MODEL.
    println!("  POST /v1/infer   {{\"tokens\": [5, 17, 42, 8]}}  (append ?trace=1 to sample)");
    println!("  POST /v1/generate {{\"prompt\": [5, 17], \"max_new_tokens\": 8}}  (chunked NDJSON stream)");
    println!("  GET  /v1/traces/<id>  span tree of a sampled request (id from x-tt-trace-id)");
    println!("  GET  /metrics    Prometheus text exposition");
    println!("  GET  /healthz    liveness");
    println!(
        "workers={} queue_depth={} max_body={}B slo={}ms retry_after_max={}s \
         (override via TT_HTTP_* / TT_SLO_MS / TT_RETRY_AFTER_MAX)",
        config.workers,
        config.max_queue_depth,
        config.max_body_bytes,
        config.slo.as_millis(),
        config.retry_after_max
    );

    // Serve until killed. The engine and server drain on process exit in a
    // deployment that sends a signal; a graceful in-process shutdown path
    // is exercised by the tests and the serving_http bench.
    loop {
        std::thread::park();
    }
}
