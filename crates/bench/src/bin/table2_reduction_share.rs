//! Paper Table 2: proportion of batch-reduction operations (Softmax,
//! LayerNorm) in the attention layer, before and after optimization.
//!
//! "Before" = the attention layer timed with the framework (PyTorch-style)
//! kernel for the operator in question, everything else Turbo — exactly the
//! paper's measurement protocol (its footnote swaps only the one operator).
//! "After" = the Turbo kernel. Device: Tesla V100, BERT-base attention.

use tt_bench::{fmt_pct, print_table};
use tt_gpusim::cost::attention_layer_time;
use tt_gpusim::device::DeviceKind;
use tt_gpusim::kernels::{LayerNormAlgo, SoftmaxAlgo};

fn main() {
    let dev = DeviceKind::V100.config();
    let cases: [(usize, usize); 6] = [(1, 10), (1, 100), (1, 500), (20, 10), (20, 100), (20, 500)];

    let headers: Vec<String> = std::iter::once("(batch, seq len)".to_string())
        .chain(cases.iter().map(|(b, s)| format!("({b}, {s})")))
        .collect();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, before) in [("Softmax/Attention before", true), ("Softmax/Attention after", false)]
    {
        let mut row = vec![label.to_string()];
        for &(batch, seq) in &cases {
            let softmax = if before { SoftmaxAlgo::Naive } else { SoftmaxAlgo::TurboXElem };
            let bd = attention_layer_time(
                &dev,
                batch,
                seq,
                12,
                64,
                softmax,
                LayerNormAlgo::TurboOnePass,
                true,
            );
            row.push(fmt_pct(bd.softmax_share()));
        }
        rows.push(row);
    }
    for (label, before) in
        [("LayerNorm/Attention before", true), ("LayerNorm/Attention after", false)]
    {
        let mut row = vec![label.to_string()];
        for &(batch, seq) in &cases {
            let ln = if before { LayerNormAlgo::Naive } else { LayerNormAlgo::TurboOnePass };
            let bd =
                attention_layer_time(&dev, batch, seq, 12, 64, SoftmaxAlgo::TurboXElem, ln, true);
            row.push(fmt_pct(bd.layernorm_share()));
        }
        rows.push(row);
    }

    print_table(
        "Table 2 — batch-reduction share of the attention layer (Tesla V100, BERT-base)",
        &headers,
        &rows,
    );
    println!("\nPaper reference (before → after): Softmax (20,500): 90.68% → 15.46%;");
    println!("LayerNorm (20,500): 83.38% → 4.24%. See EXPERIMENTS.md for the comparison.");
}
