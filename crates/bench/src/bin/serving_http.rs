//! HTTP serving load test: N concurrent TCP clients against the real
//! front-end (`tt_serving::http`) wrapped around a live engine — run once
//! per connection driver (epoll reactor and threaded fallback).
//!
//! This measures what the paper's Figure 12 measures for the in-process
//! serving loop, but at the *network boundary*: end-to-end wall latency
//! (connect → JSON response) including HTTP parsing, admission control and
//! the engine's DP batching, across a socket sweep from 2 to 512
//! concurrent clients. The top of the sweep is the reactor's reason to
//! exist: 512 simultaneous sockets against a 16-thread execution pool,
//! where a thread-per-connection design queues in the accept backlog.
//! The queue-depth cap is deliberately finite, so saturated levels also
//! exercise the shed path — shed rate is a first-class column, not an
//! error.
//!
//! Outputs `results/serving_http.md` (human-readable, one table per
//! driver), `BENCH_http.json` at the repo root (machine-readable
//! trajectory keyed by driver for later PRs to regress against), and
//! `results/trace.json` — every span the reactor run's [`Tracer`]
//! collected, in Chrome trace-event form, loadable in Perfetto /
//! `chrome://tracing`. The first request of every client forces sampling
//! (`?trace=1`), so the trace file is never empty; `TT_TRACE_SAMPLE`
//! widens coverage. `--smoke` runs one tiny level under the driver
//! `TT_HTTP_DRIVER` selects (so CI covers both drivers with two
//! invocations) and writes only the trace file.

use std::fmt::Write as _;
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use tt_bench::{fmt_pct, print_table};
use tt_gpusim::device::DeviceKind;
use tt_model::bert::{Bert, BertConfig};
use tt_runtime::{RuntimeConfig, TurboRuntime};
use tt_serving::http::{DriverKind, HttpConfig, HttpServer};
use tt_serving::live::LiveEngine;
use tt_serving::scheduler::InstrumentedScheduler;
use tt_serving::stats::LatencyStats;
use tt_serving::{CachedCost, DpScheduler};
use tt_telemetry::{chrome_trace_json, Registry, SpanRecord, Tracer};

/// The socket sweep: (concurrent clients, requests each). Low levels
/// measure uncontended latency, the middle measures admission control
/// under saturation, and the 64–512 tail measures connection scalability
/// — request counts taper there so the sweep stays fast while every
/// socket still sees several requests.
const LEVELS: &[(usize, usize)] =
    &[(2, 30), (8, 30), (16, 30), (32, 30), (64, 16), (128, 8), (256, 8), (512, 4)];
/// In-flight cap. Sized *above* the execution-pool width: moderate
/// concurrency (8–16 clients) rides the queue instead of shedding, so
/// shed rate stays near zero until the sweep genuinely saturates the
/// hand-off path at the 64+ socket levels.
const QUEUE_DEPTH: usize = 48;
/// Token-length range of the synthetic workload (the paper's variable-
/// length serving regime, scaled to the tiny model).
const LEN_RANGE: std::ops::RangeInclusive<usize> = 4..=48;

#[derive(Clone, Serialize)]
struct LevelReport {
    concurrency: usize,
    requests: usize,
    ok: usize,
    shed: usize,
    shed_429: usize,
    shed_503: usize,
    shed_504: usize,
    errors: usize,
    shed_rate: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
}

#[derive(Serialize)]
struct DriverReport {
    driver: &'static str,
    levels: Vec<LevelReport>,
}

#[derive(Serialize)]
struct HttpBenchReport {
    bench: &'static str,
    model: &'static str,
    queue_depth: usize,
    drivers: Vec<DriverReport>,
}

/// One full sweep under one connection driver: fresh registry, engine and
/// server, so drivers cannot contaminate each other's metrics.
struct DriverRun {
    report: DriverReport,
    http_lines: Vec<String>,
    spans: Vec<SpanRecord>,
    served: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    if smoke {
        // CI invokes the smoke once per driver via TT_HTTP_DRIVER; honor
        // the same selection a production `http_server` would.
        let kind = DriverKind::from_env();
        let run = run_driver(kind, &[(2, 3)]);
        let ok_total: usize = run.report.levels.iter().map(|r| r.ok).sum();
        assert!(ok_total > 0, "smoke run must complete requests");
        assert_eq!(run.served, ok_total, "engine served exactly the admitted requests");
        assert!(!run.spans.is_empty(), "forced-trace requests must leave spans");
        let joined = run.http_lines.join("\n");
        assert!(
            joined.contains(&format!("http_driver{{driver=\"{}\"}}", kind.name())),
            "final scrape must report the active driver"
        );
        if kind == DriverKind::Reactor {
            for family in ["reactor_wakeups_total", "reactor_registered_fds"] {
                assert!(joined.contains(family), "reactor scrape missing {family}");
            }
        }
        let _ = std::fs::create_dir_all("results");
        std::fs::write("results/trace.json", chrome_trace_json(&run.spans))
            .expect("write results/trace.json");
        println!("smoke OK ({} driver)", kind.name());
        return;
    }

    // Full sweep: reactor first (the default driver and the headline
    // numbers), threaded fallback second for the comparison table.
    let reactor = run_driver(DriverKind::Reactor, LEVELS);
    let threads = run_driver(DriverKind::Threads, LEVELS);

    // The exported trace timeline comes from the reactor run — the
    // driver a default deployment actually serves with.
    let _ = std::fs::create_dir_all("results");
    std::fs::write("results/trace.json", chrome_trace_json(&reactor.spans))
        .expect("write results/trace.json");
    println!("wrote results/trace.json ({} spans)", reactor.spans.len());

    write_outputs(&[reactor, threads]);
}

fn run_driver(kind: DriverKind, levels: &[(usize, usize)]) -> DriverRun {
    let registry = Registry::new();
    let tracer = Tracer::from_env();
    let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    runtime.instrument(&registry);
    // Online EWMA feedback: completed batches refine the profiled costs,
    // so the DP scheduler tracks the machine it is actually running on.
    let costs = Arc::new(
        CachedCost::from_fn(64, 16, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64)
            .with_online_updates(0.2),
    );
    let scheduler = Arc::new(InstrumentedScheduler::new(Arc::new(DpScheduler), &registry));
    let engine = LiveEngine::start_traced(
        model,
        runtime,
        scheduler,
        costs.clone(),
        &registry,
        tracer.clone(),
    );

    let config = HttpConfig {
        addr: "127.0.0.1:0".into(),
        workers: 16,
        max_queue_depth: QUEUE_DEPTH,
        ..HttpConfig::default()
    };
    // Explicit driver pin (no TT_HTTP_DRIVER lookup): both sweeps must
    // run the driver they claim to, regardless of environment. Costs go
    // to the admission controller for SLO-aware shedding (503/504)
    // alongside the capacity cap (429).
    let server = HttpServer::start_with_driver(
        config,
        Arc::new(engine.client()),
        None,
        &registry,
        tracer.clone(),
        Some(costs.clone()),
        kind,
    )
    .expect("server starts");
    let addr = server.addr();
    println!("serving_http[{}]: engine + HTTP front-end on {addr}", kind.name());

    let mut reports = Vec::new();
    for &(concurrency, per_client) in levels {
        reports.push(run_level(addr, concurrency, per_client));
    }

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.concurrency.to_string(),
                r.requests.to_string(),
                r.ok.to_string(),
                r.shed_429.to_string(),
                r.shed_503.to_string(),
                r.shed_504.to_string(),
                fmt_pct(r.shed_rate),
                format!("{:.1}", r.throughput_rps),
                format!("{:.2}", r.p50_ms),
                format!("{:.2}", r.p95_ms),
                format!("{:.2}", r.p99_ms),
            ]
        })
        .collect();
    print_table(
        &format!("HTTP serving load test — {} driver (tiny BERT, DP scheduler)", kind.name()),
        &[
            "clients",
            "requests",
            "ok",
            "429",
            "503",
            "504",
            "shed rate",
            "req/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
        ],
        &rows,
    );

    // Graceful shutdown flushes the final exposition; keep the http_* and
    // reactor_* families as the observability record of the run.
    let final_metrics = server.shutdown();
    let served = engine.shutdown();
    let http_lines: Vec<String> = final_metrics
        .lines()
        .filter(|l| (l.starts_with("http_") || l.starts_with("reactor_")) && !l.contains("_bucket"))
        .map(str::to_string)
        .collect();
    println!("[{}] final scrape: {} http_*/reactor_* series", kind.name(), http_lines.len());
    println!("[{}] engine served {served} requests", kind.name());

    DriverRun {
        report: DriverReport { driver: kind.name(), levels: reports },
        http_lines,
        spans: tracer.all_spans(),
        served,
    }
}

fn run_level(addr: SocketAddr, concurrency: usize, per_client: usize) -> LevelReport {
    let wall = Instant::now();
    let mut clients = Vec::new();
    for c in 0..concurrency {
        clients.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0x5EED_0000 + c as u64);
            let mut latencies = Vec::new();
            let mut ok = 0usize;
            // Shed taxonomy (docs/ROBUSTNESS.md): 429 capacity, 503
            // predicted SLO violation, 504 deadline exceeded.
            let (mut s429, mut s503, mut s504) = (0usize, 0usize, 0usize);
            let mut errors = 0usize;
            for i in 0..per_client {
                let len = rng.random_range(LEN_RANGE);
                let tokens: Vec<String> =
                    (0..len).map(|i| ((i * 7 + c) % 90).to_string()).collect();
                let body = format!("{{\"tokens\": [{}]}}", tokens.join(", "));
                let start = Instant::now();
                // Each client forces tracing on its first request, so the
                // exported trace file has spans even at wide sample rates.
                match request(addr, &body, i == 0) {
                    Some(200) => {
                        ok += 1;
                        latencies.push(start.elapsed().as_secs_f64());
                    }
                    Some(429) => s429 += 1,
                    Some(503) => s503 += 1,
                    Some(504) => s504 += 1,
                    _ => errors += 1,
                }
            }
            (latencies, ok, s429, s503, s504, errors)
        }));
    }

    let mut stats = LatencyStats::new();
    let (mut ok, mut shed_429, mut shed_503, mut shed_504, mut errors) = (0, 0, 0, 0, 0);
    for client in clients {
        let (latencies, k, a, b, d, e) = client.join().expect("client thread");
        for l in latencies {
            stats.record(l);
        }
        ok += k;
        shed_429 += a;
        shed_503 += b;
        shed_504 += d;
        errors += e;
    }
    let shed = shed_429 + shed_503 + shed_504;
    let elapsed = wall.elapsed().as_secs_f64();
    let requests = concurrency * per_client;
    LevelReport {
        concurrency,
        requests,
        ok,
        shed,
        shed_429,
        shed_503,
        shed_504,
        errors,
        shed_rate: shed as f64 / requests as f64,
        throughput_rps: ok as f64 / elapsed,
        p50_ms: stats.percentile(50.0) * 1e3,
        p95_ms: stats.percentile(95.0) * 1e3,
        p99_ms: stats.percentile(99.0) * 1e3,
        mean_ms: stats.mean() * 1e3,
    }
}

/// One request on a fresh connection; returns the status code. The
/// connect timeout is the 512-socket guardrail: a driver that strands
/// connections in the accept backlog turns up as errors, not a hang.
fn request(addr: SocketAddr, body: &str, force_trace: bool) -> Option<u16> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2)).ok()?;
    let target = if force_trace { "/v1/infer?trace=1" } else { "/v1/infer" };
    let raw = format!(
        "POST {target} HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    response.split(' ').nth(1)?.parse().ok()
}

fn write_outputs(runs: &[DriverRun]) {
    let mut md = String::new();
    let _ = writeln!(md, "# HTTP serving load test (`serving_http`)\n");
    let _ = writeln!(
        md,
        "N concurrent TCP clients against the full stack (tiny BERT, token lengths \
         {}–{}, DP scheduler, engine queue depth capped at {QUEUE_DEPTH}), swept from 2 \
         to 512 sockets and run once per connection driver (see \
         `docs/NETWORKING.md`). Latency is end-to-end wall time: TCP connect → HTTP \
         parse → admission → LiveEngine batch → JSON response. Sheds are the \
         admission-control path working as designed, not failures, broken out by \
         taxonomy reason (docs/ROBUSTNESS.md): `429` capacity, `503` predicted SLO \
         violation, `504` deadline exceeded.\n",
        LEN_RANGE.start(),
        LEN_RANGE.end(),
    );
    for run in runs {
        let _ = writeln!(md, "## `{}` driver\n", run.report.driver);
        let _ = writeln!(
            md,
            "| clients | requests | ok | 429 | 503 | 504 | shed rate | req/s | p50 ms | p95 ms | p99 ms | mean ms |"
        );
        let _ = writeln!(md, "|---|---|---|---|---|---|---|---|---|---|---|---|");
        for r in &run.report.levels {
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} | {} | {} | {} | {:.1} | {:.2} | {:.2} | {:.2} | {:.2} |",
                r.concurrency,
                r.requests,
                r.ok,
                r.shed_429,
                r.shed_503,
                r.shed_504,
                fmt_pct(r.shed_rate),
                r.throughput_rps,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms,
                r.mean_ms,
            );
        }
        let _ = writeln!(
            md,
            "\nFinal flushed `http_*`/`reactor_*` series from the graceful-shutdown \
             snapshot:\n\n```"
        );
        for line in &run.http_lines {
            let _ = writeln!(md, "{line}");
        }
        let _ = writeln!(md, "```\n");
    }
    let _ = writeln!(
        md,
        "Machine-readable trajectory: `BENCH_http.json` at the repo root (keyed by \
         driver). Request timelines: `results/trace.json` (Chrome trace-event format — \
         load it in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`)."
    );
    std::fs::write("results/serving_http.md", md).expect("write results/serving_http.md");

    let report = HttpBenchReport {
        bench: "serving_http",
        model: "bert-tiny",
        queue_depth: QUEUE_DEPTH,
        drivers: runs
            .iter()
            .map(|r| DriverReport { driver: r.report.driver, levels: r.report.levels.clone() })
            .collect(),
    };
    let json = serde_json::to_string(&report).expect("serialize BENCH_http.json");
    std::fs::write("BENCH_http.json", json).expect("write BENCH_http.json");
    println!("\nwrote results/serving_http.md and BENCH_http.json");
}
