//! End-to-end telemetry demonstration: run a live serving session with
//! every subsystem instrumented, then emit the Prometheus text exposition
//! (stdout) and a human-readable digest (`results/telemetry_report.md`).
//!
//! This is the observability counterpart of the paper's evaluation: the
//! same quantities Table 2 (per-op time shares), §4.2 (zero-padding
//! waste), Algorithm 3 (scheduler runtime) and Figure 7 (allocator
//! traffic) report as one-off experiments come out of the continuously
//! collected metric registry here. The binary also measures the cost of
//! the metrics themselves and checks it stays under 2% of batch execution
//! time.

use std::fmt::Write as _;
use std::hint::black_box;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tt_bench::fmt_pct;
use tt_gpusim::device::DeviceKind;
use tt_model::bert::{Bert, BertConfig};
use tt_runtime::executor::OP_NAMES;
use tt_runtime::{RuntimeConfig, TurboRuntime};
use tt_serving::cluster::{simulate_cluster, BalancerPolicy, ClusterConfig};
use tt_serving::http::{HttpConfig, HttpServer};
use tt_serving::live::LiveEngine;
use tt_serving::request::{LengthDist, WorkloadSpec};
use tt_serving::scheduler::InstrumentedScheduler;
use tt_serving::{CachedCost, DpScheduler};
use tt_telemetry::{
    Counter, EnergyMeter, EnergySampler, EnergySamplerConfig, Histogram, ModeledPowerSource,
    Registry, RegistrySnapshot, Tracer,
};

const CLIENTS: usize = 12;
const REQUESTS_PER_CLIENT: usize = 8;

fn main() {
    let registry = Registry::new();

    // --- Live serving session, fully instrumented -----------------------
    let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    runtime.instrument(&registry);
    // Energy accounting: the encoder and decode runtimes charge one shared
    // meter, and a RAPL-style background sampler turns its microjoule
    // counters into the watt/joule families asserted on below.
    let meter = Arc::new(EnergyMeter::new());
    runtime.instrument_energy(meter.clone());
    let sampler_wall = Instant::now();
    let sampler = EnergySampler::start(
        &registry,
        Arc::new(ModeledPowerSource::new(meter.clone(), DeviceKind::RTX2060.config().idle_watts)),
        EnergySamplerConfig {
            interval: std::time::Duration::from_millis(5),
            per_request: Some(registry.counter("live_requests_total", "Requests served", &[])),
            per_token: Some(registry.counter(
                "decode_tokens_total",
                "Tokens emitted by the decode engine",
                &[],
            )),
        },
    );
    // Strong per-batch fixed cost → the DP scheduler prefers batching, so
    // mixed-length batches (and therefore padding waste) actually occur.
    let costs =
        Arc::new(CachedCost::from_fn(64, 16, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    let scheduler = Arc::new(InstrumentedScheduler::new(Arc::new(DpScheduler), &registry));
    let engine =
        LiveEngine::start_instrumented(model, runtime.clone(), scheduler, costs.clone(), &registry);

    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let client = engine.client();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(7_000 + t as u64);
            for _ in 0..REQUESTS_PER_CLIENT {
                let len = rng.random_range(4..=48usize);
                let tokens: Vec<u32> = (0..len as u32).map(|i| i % 90).collect();
                let _ = client.infer(tokens);
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }

    // --- HTTP front-end: shed taxonomy + deadline counters ---------------
    // Exercise the robustness families so the gate below can assert on
    // them: one served request, one request whose deadline budget is below
    // the cost-table estimate (shed 503/504 at admission).
    let http_ok = drive_http_front_end(&engine, costs.clone(), &registry);

    let served = engine.shutdown();
    assert_eq!(served, CLIENTS * REQUESTS_PER_CLIENT + http_ok, "every request must be answered");

    // --- Generative decode: paged-KV arena + continuous batching ---------
    drive_generation(&registry, meter.clone());

    // --- Energy sampler: final tick, then measure its own footprint ------
    let sampler_wall_ns = sampler_wall.elapsed().as_nanos() as f64;
    let sampler_ticks = sampler.stop();
    let energy = measure_energy(&registry, sampler_wall_ns, sampler_ticks);

    // --- Cluster view: per-server utilisation + skew ---------------------
    let trace = WorkloadSpec {
        rate_per_sec: 400.0,
        duration: 10.0,
        lengths: LengthDist::Uniform { lo: 5, hi: 60 },
        seed: 42,
    }
    .generate();
    for policy in [BalancerPolicy::RoundRobin, BalancerPolicy::LeastLoaded] {
        let name = match policy {
            BalancerPolicy::RoundRobin => "round_robin",
            BalancerPolicy::LeastLoaded => "least_loaded",
            BalancerPolicy::LengthBands => "length_bands",
        };
        let report = simulate_cluster(
            &trace,
            &costs,
            &ClusterConfig { servers: 4, scheduler: &DpScheduler, policy },
            10.0,
        );
        report.record_to(&registry, name);
    }

    // --- Telemetry overhead: the cost of the metrics themselves ----------
    let overhead = measure_overhead(&registry);
    // --- Tracing overhead with sampling off (the default state) ----------
    let trace_overhead = measure_tracing_off_overhead(&registry);

    // --- Emit -------------------------------------------------------------
    let prometheus = registry.render_prometheus();
    println!("{prometheus}");

    let snap = registry.snapshot();
    let md = render_markdown(&snap, &overhead, &trace_overhead, &energy, &prometheus);
    std::fs::write("results/telemetry_report.md", &md)
        .expect("writing results/telemetry_report.md");
    eprintln!("wrote results/telemetry_report.md ({} metrics)", snap.metrics.len());

    // Acceptance checks: live histograms must be populated and the
    // instrumentation must be effectively free.
    let queue_wait = hist(&snap, "live_queue_wait_nanoseconds");
    assert!(queue_wait.count() > 0 && queue_wait.sum > 0, "queue-wait histogram is empty");
    let padded = counter(&snap, "live_padded_tokens_total");
    assert!(padded > 0, "no padding waste observed — batches never mixed lengths");
    assert!(
        overhead.pct_of_execute < 2.0,
        "telemetry overhead {}% exceeds the 2% budget",
        overhead.pct_of_execute
    );
    assert!(
        trace_overhead.pct_of_execute < 2.0,
        "tracing-disabled overhead {}% exceeds the 2% budget",
        trace_overhead.pct_of_execute
    );

    // Fusion families (docs/KERNELS.md): the fused executor must report
    // both the fused ops it issued and the passes the fusion pass elided.
    assert!(
        counter(&snap, "executor_fused_ops_total") > 0,
        "no fused ops executed — the graph fusion pass is inactive"
    );
    assert!(
        counter(&snap, "fusion_elided_passes_total") > 0,
        "no elided passes recorded — the graph fusion pass is inactive"
    );

    // Robustness families (docs/ROBUSTNESS.md): the shed taxonomy and
    // deadline counters must be present in the exposition, and the
    // deliberately-impossible deadline above must have registered a shed.
    let shed_total: u64 = ["capacity", "predicted_slo", "deadline"]
        .iter()
        .map(|reason| {
            snap.find("http_sheds_total", &[("reason", reason)])
                .and_then(|m| m.counter)
                .unwrap_or_else(|| panic!("missing http_sheds_total{{reason=\"{reason}\"}}"))
        })
        .sum();
    assert!(shed_total >= 1, "the impossible-deadline request must be shed");
    for stage in ["pre_schedule", "pre_execute"] {
        snap.find("deadline_exceeded_total", &[("stage", stage)])
            .and_then(|m| m.counter)
            .unwrap_or_else(|| panic!("missing deadline_exceeded_total{{stage=\"{stage}\"}}"));
    }
    snap.find("slo_violation_total", &[])
        .and_then(|m| m.counter)
        .expect("missing slo_violation_total");

    // Generative decode families (docs/GENERATION.md): the continuous
    // batching loop and the paged KV arena must both report.
    assert!(counter(&snap, "decode_tokens_total") > 0, "no decoded tokens recorded");
    assert!(hist(&snap, "ttft_ms").count() > 0, "ttft_ms histogram is empty");
    assert!(hist(&snap, "batch_active_seqs").count() > 0, "batch_active_seqs histogram is empty");
    for gauge in ["kv_pages_in_use", "kv_page_occupancy"] {
        snap.find(gauge, &[])
            .and_then(|m| m.gauge)
            .unwrap_or_else(|| panic!("missing gauge {gauge}"));
    }
    assert_eq!(
        snap.find("kv_pages_in_use", &[]).and_then(|m| m.gauge),
        Some(0.0),
        "all KV pages must be free after the generation session"
    );

    // Energy families (docs/ENERGY.md): both execution phases must have
    // charged the meter, the sampler must have derived watts and
    // joules-per-token, and its own footprint must respect the same 2%
    // budget as the rest of the telemetry.
    assert!(energy.prefill_j > 0.0, "no prefill joules metered — encoder energy path inactive");
    assert!(energy.decode_j > 0.0, "no decode joules metered — decode energy path inactive");
    assert!(energy.idle_j > 0.0, "no idle joules synthesized by the power source");
    snap.find("power_watts", &[("phase", "total")])
        .and_then(|m| m.gauge)
        .expect("missing power_watts{phase=\"total\"}");
    assert!(energy.joules_per_token > 0.0, "energy_joules_per_token must be derived and non-zero");
    assert!(
        snap.find("process_uptime_seconds", &[]).and_then(|m| m.gauge).unwrap_or(0.0) > 0.0,
        "process_uptime_seconds must be published"
    );
    assert!(
        energy.sampler_pct_of_wall < 2.0,
        "energy sampler overhead {}% of wall time exceeds the 2% budget",
        energy.sampler_pct_of_wall
    );
}

/// Energy digest: the per-phase joule totals, the derived per-token rate,
/// and the sampler's own cost as a fraction of the wall time it covered.
struct EnergyDigest {
    prefill_j: f64,
    decode_j: f64,
    idle_j: f64,
    joules_per_token: f64,
    sampler_ticks: u64,
    sampler_tick_ns: u64,
    sampler_pct_of_wall: f64,
}

fn measure_energy(registry: &Registry, sampler_wall_ns: f64, sampler_ticks: u64) -> EnergyDigest {
    let snap = registry.snapshot();
    let phase_j = |phase: &str| {
        snap.find("energy_joules_total", &[("phase", phase)])
            .and_then(|m| m.gauge)
            .unwrap_or_else(|| panic!("missing energy_joules_total{{phase=\"{phase}\"}}"))
    };
    let sampler_tick_ns = counter(&snap, "energy_sampler_tick_ns_total");
    EnergyDigest {
        prefill_j: phase_j("prefill"),
        decode_j: phase_j("decode"),
        idle_j: phase_j("idle"),
        joules_per_token: snap
            .find("energy_joules_per_token", &[])
            .and_then(|m| m.gauge)
            .unwrap_or(0.0),
        sampler_ticks,
        sampler_tick_ns,
        sampler_pct_of_wall: 100.0 * sampler_tick_ns as f64 / sampler_wall_ns.max(1.0),
    }
}

/// A short generative session against an instrumented continuous-batching
/// engine, so the decode metric families (`decode_tokens_total`, `ttft_ms`,
/// `batch_active_seqs`, `kv_*` gauges) are populated in the same registry.
fn drive_generation(registry: &Registry, meter: Arc<EnergyMeter>) {
    use tt_model::gpt::{Gpt, GptConfig};
    use tt_runtime::decode::DecodeEnergyModel;
    use tt_runtime::RuntimeKind;
    use tt_serving::generate::start_engine_with_energy;
    use tt_serving::{GenClient, GenConfig};

    let model = Gpt::new_random(&GptConfig::tiny(), 2024);
    let costs = Arc::new(CachedCost::from_fn(64, 8, 8, |len, b| 1.0e-6 * (len * b) as f64));
    let engine = start_engine_with_energy(
        model,
        GenConfig::default(),
        costs,
        Some(registry),
        Tracer::disabled(),
        Some(DecodeEnergyModel {
            device: DeviceKind::RTX2060.config(),
            profile: RuntimeKind::Turbo.profile(),
            meter,
        }),
    );
    let rxs: Vec<_> = (0..3u32)
        .map(|c| {
            engine
                .client()
                .generate(vec![1 + c, 2 + c, 3 + c], 4 + c as usize)
                .expect("generation submission")
        })
        .collect();
    for rx in &rxs {
        let (tokens, _) = GenClient::collect(rx);
        assert!(!tokens.is_empty(), "generation must produce tokens");
    }
    assert_eq!(engine.shutdown().pages_leaked, 0, "generation session leaked KV pages");
}

/// Put the HTTP front-end (with SLO-aware admission) in front of the live
/// engine and exercise the robustness metric families: one served request
/// and one whose 1 ms deadline budget is below the cost-table execution
/// estimate, which admission must shed (`503` predicted violation, or
/// `504` if the budget has already expired by the admission check).
/// Returns how many requests the engine served for the caller's
/// accounting.
fn drive_http_front_end(engine: &LiveEngine, costs: Arc<CachedCost>, registry: &Registry) -> usize {
    let config = HttpConfig { addr: "127.0.0.1:0".into(), workers: 2, ..HttpConfig::default() };
    let server = HttpServer::start_with_costs(
        config,
        Arc::new(engine.client()),
        registry,
        Tracer::disabled(),
        Some(costs),
    )
    .expect("http server starts");
    let addr = server.addr();

    let ok = http_post(addr, "{\"tokens\": [5, 17, 42, 8]}", None);
    assert_eq!(ok, Some(200), "the roomy-deadline request must serve");
    let shed = http_post(addr, "{\"tokens\": [5, 17, 42, 8]}", Some(1));
    assert!(
        shed == Some(503) || shed == Some(504),
        "the 1 ms-deadline request must be shed at admission, got {shed:?}"
    );
    server.shutdown();
    1
}

/// One `POST /v1/infer` on a fresh connection, optionally with an
/// `x-tt-deadline-ms` header; returns the response status.
fn http_post(addr: SocketAddr, body: &str, deadline_ms: Option<u64>) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let deadline_header =
        deadline_ms.map(|ms| format!("x-tt-deadline-ms: {ms}\r\n")).unwrap_or_default();
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nHost: report\r\nContent-Type: application/json\r\n\
         {deadline_header}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(raw.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    response.split(' ').nth(1)?.parse().ok()
}

struct Overhead {
    per_record_ns: f64,
    ops_per_batch: f64,
    mean_execute_ns: f64,
    pct_of_execute: f64,
}

/// Time the primitive record operations in a tight loop, then scale by how
/// many observations the serving session actually made per batch.
fn measure_overhead(registry: &Registry) -> Overhead {
    const ITERS: u64 = 2_000_000;
    let h = Histogram::new();
    let c = Counter::new();
    let start = Instant::now();
    for i in 0..ITERS {
        h.record(black_box(i));
        c.inc();
    }
    // One "op" = one histogram record + one counter increment (a strict
    // upper bound on any single instrumentation point in the hot path).
    let per_record_ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
    black_box(h.snapshot().count() + c.get());

    let snap = registry.snapshot();
    let batches = counter(&snap, "live_batches_total").max(1);
    // Total observations recorded during serving: every histogram sample
    // plus every counter, across live + scheduler + executor + allocator.
    let observations: u64 =
        snap.metrics.iter().map(|m| m.histogram.as_ref().map(|h| h.count()).unwrap_or(1)).sum();
    let ops_per_batch = observations as f64 / batches as f64;
    let mean_execute_ns = hist(&snap, "live_execute_nanoseconds").mean();
    let pct_of_execute = if mean_execute_ns > 0.0 {
        100.0 * (ops_per_batch * per_record_ns) / mean_execute_ns
    } else {
        f64::INFINITY
    };
    Overhead { per_record_ns, ops_per_batch, mean_execute_ns, pct_of_execute }
}

struct TraceOverhead {
    per_touch_ns: f64,
    touches_per_batch: f64,
    pct_of_execute: f64,
}

/// The cost of the tracing instrumentation when no request is sampled —
/// the state every request that loses the head-sampling dice roll pays.
/// Each touchpoint in the hot path (root creation at the HTTP boundary,
/// the per-op and per-stage `Option` checks) is bounded above by a
/// disabled `start_root` call; scale by the number of touchpoints one
/// batch actually has (conservatively: one per metrics observation, since
/// the span sites coincide with the metric sites).
fn measure_tracing_off_overhead(registry: &Registry) -> TraceOverhead {
    const ITERS: u64 = 2_000_000;
    let tracer = Tracer::disabled();
    let start = Instant::now();
    for _ in 0..ITERS {
        black_box(tracer.start_root("probe", black_box(false)));
    }
    let per_touch_ns = start.elapsed().as_nanos() as f64 / ITERS as f64;

    let snap = registry.snapshot();
    let batches = counter(&snap, "live_batches_total").max(1);
    let observations: u64 =
        snap.metrics.iter().map(|m| m.histogram.as_ref().map(|h| h.count()).unwrap_or(1)).sum();
    let touches_per_batch = observations as f64 / batches as f64;
    let mean_execute_ns = hist(&snap, "live_execute_nanoseconds").mean();
    let pct_of_execute = if mean_execute_ns > 0.0 {
        100.0 * (touches_per_batch * per_touch_ns) / mean_execute_ns
    } else {
        f64::INFINITY
    };
    TraceOverhead { per_touch_ns, touches_per_batch, pct_of_execute }
}

fn hist<'s>(snap: &'s RegistrySnapshot, name: &str) -> &'s tt_telemetry::HistogramSnapshot {
    snap.find(name, &[])
        .and_then(|m| m.histogram.as_ref())
        .unwrap_or_else(|| panic!("missing histogram {name}"))
}

fn counter(snap: &RegistrySnapshot, name: &str) -> u64 {
    snap.find(name, &[]).and_then(|m| m.counter).unwrap_or_else(|| panic!("missing counter {name}"))
}

fn us(ns: u64) -> String {
    format!("{:.1} µs", ns as f64 / 1e3)
}

fn render_markdown(
    snap: &RegistrySnapshot,
    overhead: &Overhead,
    trace_overhead: &TraceOverhead,
    energy: &EnergyDigest,
    prometheus: &str,
) -> String {
    let mut md = String::new();
    let w = &mut md;
    writeln!(w, "# Telemetry report — live serving session\n").unwrap();
    writeln!(
        w,
        "A `LiveEngine` served {} requests from {} concurrent clients \
         (lengths 4–48, BERT-tiny on the simulated RTX 2060 runtime), with \
         `tt-telemetry` instrumentation on the serving loop, the DP batch \
         scheduler, the graph executor, and the chunk allocator.\n",
        counter(snap, "live_requests_total"),
        CLIENTS,
    )
    .unwrap();

    // Serving loop.
    let wait = hist(snap, "live_queue_wait_nanoseconds");
    let sched = hist(snap, "live_schedule_nanoseconds");
    let exec = hist(snap, "live_execute_nanoseconds");
    let bsize = hist(snap, "live_batch_size");
    writeln!(w, "## Serving loop\n").unwrap();
    writeln!(w, "| metric | count | mean | p50 | p95 | p99 | p999 |").unwrap();
    writeln!(w, "|---|---|---|---|---|---|---|").unwrap();
    for (name, h) in [("queue wait", wait), ("schedule time", sched), ("execute time", exec)] {
        writeln!(
            w,
            "| {} | {} | {} | {} | {} | {} | {} |",
            name,
            h.count(),
            us(h.mean() as u64),
            us(h.p50()),
            us(h.p95()),
            us(h.p99()),
            us(h.p999()),
        )
        .unwrap();
    }
    writeln!(
        w,
        "| batch size | {} | {:.2} | {} | {} | {} | {} |",
        bsize.count(),
        bsize.mean(),
        bsize.p50(),
        bsize.p95(),
        bsize.p99(),
        bsize.p999(),
    )
    .unwrap();
    let real = counter(snap, "live_real_tokens_total");
    let padded = counter(snap, "live_padded_tokens_total");
    writeln!(
        w,
        "\nZero-padding waste: **{}** of executed tokens ({} real, {} padding) — \
         the quantity the paper's DP scheduler (Alg. 3) trades against batching gain.\n",
        fmt_pct(padded as f64 / (real + padded) as f64),
        real,
        padded,
    )
    .unwrap();

    // Executor per-op shares (paper Table 2 analogue).
    writeln!(w, "## Executor time by operator (paper Table 2 analogue)\n").unwrap();
    let mut ops: Vec<(&str, u64, u64)> = OP_NAMES
        .iter()
        .filter_map(|&op| {
            snap.find("executor_op_nanoseconds", &[("op", op)])
                .and_then(|m| m.histogram.as_ref())
                .filter(|h| h.count() > 0)
                .map(|h| (op, h.count(), h.sum))
        })
        .collect();
    ops.sort_by_key(|&(_, _, sum)| std::cmp::Reverse(sum));
    let total_ns: u64 = ops.iter().map(|(_, _, sum)| sum).sum();
    writeln!(w, "| op | calls | total | share |").unwrap();
    writeln!(w, "|---|---|---|---|").unwrap();
    for (op, calls, sum) in &ops {
        writeln!(
            w,
            "| {} | {} | {} | {} |",
            op,
            calls,
            us(*sum),
            fmt_pct(*sum as f64 / total_ns as f64),
        )
        .unwrap();
    }

    writeln!(
        w,
        "\nGraph fusion: **{}** fused ops executed, **{}** intermediate \
         memory passes elided by the fusion pass (see docs/KERNELS.md).",
        counter(snap, "executor_fused_ops_total"),
        counter(snap, "fusion_elided_passes_total"),
    )
    .unwrap();

    // Allocator.
    writeln!(w, "\n## Allocator\n").unwrap();
    let plans = counter(snap, "alloc_plans_total");
    let hits = counter(snap, "alloc_reuse_hits_total");
    writeln!(w, "| metric | value |").unwrap();
    writeln!(w, "|---|---|").unwrap();
    writeln!(w, "| planning passes | {plans} |").unwrap();
    writeln!(
        w,
        "| reuse hits (no new chunk bytes) | {hits} ({}) |",
        fmt_pct(hits as f64 / plans.max(1) as f64)
    )
    .unwrap();
    writeln!(
        w,
        "| bytes requested (cumulative) | {} |",
        counter(snap, "alloc_requested_bytes_total")
    )
    .unwrap();
    writeln!(
        w,
        "| new chunk bytes (cumulative) | {} |",
        counter(snap, "alloc_new_chunk_bytes_total")
    )
    .unwrap();
    let resident = snap.find("alloc_resident_bytes", &[]).and_then(|m| m.gauge).unwrap_or(0.0);
    let chunks = snap.find("alloc_chunks", &[]).and_then(|m| m.gauge).unwrap_or(0.0);
    writeln!(w, "| resident bytes (final) | {resident} |").unwrap();
    writeln!(w, "| cached chunks (final) | {chunks} |").unwrap();

    // Generative decode (continuous batching over the paged KV arena).
    writeln!(w, "\n## Generative decode\n").unwrap();
    let ttft = hist(snap, "ttft_ms");
    let active = hist(snap, "batch_active_seqs");
    let steps = hist(snap, "decode_step_us");
    writeln!(w, "| metric | value |").unwrap();
    writeln!(w, "|---|---|").unwrap();
    writeln!(w, "| decoded tokens | {} |", counter(snap, "decode_tokens_total")).unwrap();
    writeln!(w, "| TTFT mean / p99 | {:.2} ms / {} ms |", ttft.mean(), ttft.p99()).unwrap();
    writeln!(w, "| decode step mean | {} |", us(steps.mean() as u64 * 1000)).unwrap();
    writeln!(w, "| batch occupancy (mean active seqs/iter) | {:.2} |", active.mean()).unwrap();
    let occupancy = snap.find("kv_page_occupancy", &[]).and_then(|m| m.gauge).unwrap_or(0.0);
    let in_use = snap.find("kv_pages_in_use", &[]).and_then(|m| m.gauge).unwrap_or(0.0);
    writeln!(w, "| KV pages in use (final) | {in_use} |").unwrap();
    writeln!(w, "| KV slot occupancy (final) | {} |", fmt_pct(occupancy)).unwrap();

    // Cluster.
    writeln!(w, "\n## Cluster (4 simulated servers, 400 req/s)\n").unwrap();
    writeln!(w, "| policy | server utilisations | skew (max − min) |").unwrap();
    writeln!(w, "|---|---|---|").unwrap();
    for policy in ["round_robin", "least_loaded"] {
        let utils: Vec<String> = (0..4)
            .filter_map(|i| {
                snap.find(
                    "cluster_server_utilization",
                    &[("policy", policy), ("server", &i.to_string())],
                )
                .and_then(|m| m.gauge)
                .map(fmt_pct)
            })
            .collect();
        let skew = snap
            .find("cluster_utilization_skew", &[("policy", policy)])
            .and_then(|m| m.gauge)
            .unwrap_or(0.0);
        writeln!(w, "| {} | {} | {:.4} |", policy, utils.join(", "), skew).unwrap();
    }

    // Energy (docs/ENERGY.md).
    writeln!(w, "\n## Energy\n").unwrap();
    writeln!(w, "| metric | value |").unwrap();
    writeln!(w, "|---|---|").unwrap();
    writeln!(w, "| prefill joules | {:.6} J |", energy.prefill_j).unwrap();
    writeln!(w, "| decode joules | {:.6} J |", energy.decode_j).unwrap();
    writeln!(w, "| idle joules | {:.4} J |", energy.idle_j).unwrap();
    writeln!(w, "| joules per decoded token | {:.6} J |", energy.joules_per_token).unwrap();
    writeln!(
        w,
        "\nThe modeled power source attributes busy microjoules per phase \
         (prefill = full-sequence forwards, decode = single-token steps) and \
         synthesizes idle draw from wall time; the background sampler took \
         **{} ticks** costing {} total — **{:.4}%** of the wall time it \
         covered (budget: 2%).\n",
        energy.sampler_ticks,
        us(energy.sampler_tick_ns),
        energy.sampler_pct_of_wall,
    )
    .unwrap();

    // Overhead.
    writeln!(w, "## Telemetry overhead\n").unwrap();
    writeln!(
        w,
        "One instrumentation point (histogram record + counter increment) costs \
         **{:.1} ns**. The session recorded {:.0} observations per executed batch \
         against a mean batch execution time of {}, putting total telemetry \
         overhead at **{:.3}%** of execution time (budget: 2%).\n",
        overhead.per_record_ns,
        overhead.ops_per_batch,
        us(overhead.mean_execute_ns as u64),
        overhead.pct_of_execute,
    )
    .unwrap();

    writeln!(w, "## Tracing overhead (disabled)\n").unwrap();
    writeln!(
        w,
        "With tracing disabled — the state of every span site when no \
         `Tracer` is wired, and of every unsampled request's subtree — a \
         tracing touchpoint costs **{:.1} ns** (one branch on the enabled \
         flag, measured as a full disabled `start_root`). At a conservative \
         {:.0} touchpoints per batch that is **{:.3}%** of batch execution \
         time (budget: 2%).\n",
        trace_overhead.per_touch_ns,
        trace_overhead.touches_per_batch,
        trace_overhead.pct_of_execute,
    )
    .unwrap();

    // Exposition sample.
    writeln!(w, "## Prometheus exposition (excerpt)\n").unwrap();
    writeln!(w, "```").unwrap();
    for line in prometheus
        .lines()
        .filter(|l| {
            l.contains("live_queue_wait")
                || l.contains("live_padding")
                || l.contains("scheduler_nanoseconds_")
        })
        .take(24)
    {
        writeln!(w, "{line}").unwrap();
    }
    writeln!(w, "```").unwrap();
    writeln!(
        w,
        "\nThe full exposition (printed to stdout by `cargo run --release --bin \
         telemetry_report`) is valid Prometheus text format: one `# HELP`/`# TYPE` \
         pair per family, cumulative `_bucket{{le=...}}` series ending in `+Inf`, \
         and `_sum`/`_count` per histogram.",
    )
    .unwrap();
    md
}
