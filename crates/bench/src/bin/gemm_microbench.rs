//! GEMM microbenchmark: the packed-panel engine vs the pre-PR
//! implementations, across the shapes BERT serving actually issues.
//!
//! Per the paper's Table 2, GEMM is 61–87% of BERT inference time, so the
//! throughput this file measures is the floor under every figure and
//! serving bench in the repo. The sweep covers the BERT-base projection and
//! FFN shapes (hidden 768, FFN 3072) over the paper's sequence grid
//! (10–500) and batch sizes 1–20, plus the per-head attention products that
//! `batched_sgemm` serves (12 heads × 64-dim).
//!
//! The pre-PR implementations are kept verbatim in [`mod@reference`] as the
//! baseline: `sgemm_axpy` (the old memory-bound row-sweep `sgemm`) for
//! single GEMMs, and `batched_naive` (the old per-head `i/j/l` triple loop
//! with per-element closure indexing) for batched ones. Every timed shape
//! is also a correctness check — the two engines must agree to 1e-3
//! relative tolerance.
//!
//! Outputs `results/gemm_microbench.md` (human-readable) and
//! `BENCH_gemm.json` (machine-readable perf trajectory for later PRs to
//! regress against). `--smoke` runs a tiny correctness-only shape set and
//! writes nothing — that is what CI executes.

use std::fmt::Write as _;
use std::time::Instant;

use serde::Serialize;
use tt_bench::print_table;
use tt_tensor::{
    batched_sgemm, kernel_variant, kernel_variant_name, set_kernel_override, sgemm, sgemm_q8,
    GemmSpec, KernelVariant, Q8Matrix, Trans,
};

/// The pre-PR GEMM implementations, kept as the in-bench baseline so the
/// speedup column stays measurable after the old code left the library.
mod reference {
    use tt_tensor::{GemmSpec, Trans};

    /// The old `sgemm` inner loops (axpy row-sweep / row-dot), minus the
    /// rayon row-block dispatch, which on the row-partitioned workload only
    /// changed which core ran each row, not the per-row instruction stream.
    pub fn sgemm_axpy(spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
        let GemmSpec { m, k, n, ta, tb, alpha, beta } = spec;
        let a_owned: Vec<f32>;
        let a = match ta {
            Trans::No => a,
            Trans::Yes => {
                let mut t = vec![0.0f32; m * k];
                for r in 0..k {
                    for cix in 0..m {
                        t[cix * k + r] = a[r * m + cix];
                    }
                }
                a_owned = t;
                &a_owned[..]
            }
        };
        match tb {
            Trans::No => {
                for i in 0..m {
                    let c_row = &mut c[i * n..(i + 1) * n];
                    if beta == 0.0 {
                        c_row.fill(0.0);
                    } else {
                        for v in c_row.iter_mut() {
                            *v *= beta;
                        }
                    }
                    let a_row = &a[i * k..(i + 1) * k];
                    for (l, &aval) in a_row.iter().enumerate() {
                        let s = alpha * aval;
                        if s == 0.0 {
                            continue;
                        }
                        let b_row = &b[l * n..(l + 1) * n];
                        for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                            *cv += s * bv;
                        }
                    }
                }
            }
            Trans::Yes => {
                for i in 0..m {
                    let c_row = &mut c[i * n..(i + 1) * n];
                    let a_row = &a[i * k..(i + 1) * k];
                    for (j, cv) in c_row.iter_mut().enumerate() {
                        let b_row = &b[j * k..(j + 1) * k];
                        let mut acc = 0.0f32;
                        for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                            acc += av * bv;
                        }
                        *cv = alpha * acc + if beta == 0.0 { 0.0 } else { beta * *cv };
                    }
                }
            }
        }
    }

    /// The old `sgemm_serial`: naive `i/j/l` triple loop, per-element
    /// closure indexing. This ran once per attention head pre-PR.
    pub fn sgemm_naive(spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
        let GemmSpec { m, k, n, ta, tb, alpha, beta } = spec;
        let at = |i: usize, l: usize| -> f32 {
            match ta {
                Trans::No => a[i * k + l],
                Trans::Yes => a[l * m + i],
            }
        };
        let bt = |l: usize, j: usize| -> f32 {
            match tb {
                Trans::No => b[l * n + j],
                Trans::Yes => b[j * k + l],
            }
        };
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for l in 0..k {
                    acc += at(i, l) * bt(l, j);
                }
                let prev = c[i * n + j];
                c[i * n + j] = alpha * acc + if beta == 0.0 { 0.0 } else { beta * prev };
            }
        }
    }

    /// The old `batched_sgemm`: the naive triple loop for every head.
    pub fn batched_naive(batch: usize, spec: GemmSpec, a: &[f32], b: &[f32], c: &mut [f32]) {
        let (sa, sb, sc) = (spec.m * spec.k, spec.k * spec.n, spec.m * spec.n);
        for i in 0..batch {
            sgemm_naive(
                spec,
                &a[i * sa..(i + 1) * sa],
                &b[i * sb..(i + 1) * sb],
                &mut c[i * sc..(i + 1) * sc],
            );
        }
    }
}

/// One benchmarked problem: a single GEMM (`batch == 1`) or a
/// strided-batched one (the attention regime).
struct Case {
    label: &'static str,
    family: &'static str,
    batch: usize,
    spec: GemmSpec,
}

impl Case {
    fn nn(label: &'static str, m: usize, k: usize, n: usize) -> Self {
        Case { label, family: "nn", batch: 1, spec: GemmSpec::nn(m, k, n) }
    }

    fn gemv(label: &'static str, m: usize, k: usize, n: usize) -> Self {
        Case { label, family: "decode", batch: 1, spec: GemmSpec::nn(m, k, n) }
    }

    fn batched(label: &'static str, batch: usize, spec: GemmSpec) -> Self {
        Case { label, family: "batched", batch, spec }
    }

    fn total_flops(&self) -> u64 {
        self.batch as u64 * self.spec.flops()
    }
}

/// BERT-base constants of the sweep.
const HIDDEN: usize = 768;
const FFN: usize = 3072;
const HEADS: usize = 12;
const HEAD_DIM: usize = 64;

fn sweep_cases() -> Vec<Case> {
    vec![
        // Projections (tokens × hidden × hidden), tokens = batch·seq.
        Case::nn("qkv proj, b1 s10", 10, HIDDEN, HIDDEN),
        Case::nn("qkv proj, b1 s40", 40, HIDDEN, HIDDEN),
        Case::nn("qkv proj, b1 s100", 100, HIDDEN, HIDDEN),
        Case::nn("qkv proj, b1 s500", 500, HIDDEN, HIDDEN),
        Case::nn("qkv proj, b20 s100", 2000, HIDDEN, HIDDEN),
        // FFN up/down projections.
        Case::nn("ffn1, b1 s10", 10, HIDDEN, FFN),
        Case::nn("ffn1, b1 s100", 100, HIDDEN, FFN),
        Case::nn("ffn1, b1 s500", 500, HIDDEN, FFN),
        Case::nn("ffn1, b20 s100", 2000, HIDDEN, FFN),
        Case::nn("ffn2, b1 s100", 100, FFN, HIDDEN),
        Case::nn("ffn2, b1 s500", 500, FFN, HIDDEN),
        Case::nn("ffn2, b20 s100", 2000, FFN, HIDDEN),
        // Decoder-style thin rows.
        Case::nn("decoder token step", 1, 1024, 1024),
        // Decode-step GEMVs: the m=1 shapes `step_paged` actually issues
        // per GPT-2-small layer (projection, FFN up/down) — the
        // bandwidth-bound regime the SMALL_M fast path serves.
        Case::gemv("decode gemv, m1 proj", 1, HIDDEN, HIDDEN),
        Case::gemv("decode gemv, m1 ffn1", 1, HIDDEN, FFN),
        Case::gemv("decode gemv, m1 ffn2", 1, FFN, HIDDEN),
        // Attention score product q·kᵀ: batch·heads × (seq, 64, seq).
        Case::batched("scores, b1 s10", HEADS, GemmSpec::nt(10, HEAD_DIM, 10)),
        Case::batched("scores, b1 s100", HEADS, GemmSpec::nt(100, HEAD_DIM, 100)),
        Case::batched("scores, b1 s500", HEADS, GemmSpec::nt(500, HEAD_DIM, 500)),
        Case::batched("scores, b20 s100", 20 * HEADS, GemmSpec::nt(100, HEAD_DIM, 100)),
        // Attention context product probs·v: batch·heads × (seq, seq, 64).
        Case::batched("context, b1 s10", HEADS, GemmSpec::nn(10, 10, HEAD_DIM)),
        Case::batched("context, b1 s100", HEADS, GemmSpec::nn(100, 100, HEAD_DIM)),
        Case::batched("context, b1 s500", HEADS, GemmSpec::nn(500, 500, HEAD_DIM)),
        Case::batched("context, b20 s100", 20 * HEADS, GemmSpec::nn(100, 100, HEAD_DIM)),
    ]
}

fn smoke_cases() -> Vec<Case> {
    let mut v = vec![
        Case::nn("smoke nn", 13, 27, 9),
        Case::nn("smoke thin m=1", 1, 64, 48),
        Case::batched("smoke batched nt", 3, GemmSpec::nt(7, 16, 11)),
        Case::batched("smoke batched nn", 4, GemmSpec::nn(9, 9, 16)),
    ];
    // All four transpose layouts with alpha/beta in play.
    for (ta, tb, label) in [
        (Trans::No, Trans::No, "smoke NN αβ"),
        (Trans::No, Trans::Yes, "smoke NT αβ"),
        (Trans::Yes, Trans::No, "smoke TN αβ"),
        (Trans::Yes, Trans::Yes, "smoke TT αβ"),
    ] {
        let spec = GemmSpec { m: 11, k: 19, n: 13, ta, tb, alpha: 0.75, beta: 0.0 };
        v.push(Case { label, family: "nn", batch: 1, spec });
    }
    v
}

fn fill(seed: u64, len: usize) -> Vec<f32> {
    // Small integer-ish values keep float error far below the tolerance.
    (0..len)
        .map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(seed)) % 17) as f32 - 8.0)
        .collect()
}

/// Min-of-reps wall time of `f`, with the rep count adapted so cheap
/// shapes get many reps and the multi-second naive references get one.
fn time_min(mut f: impl FnMut(), budget_secs: f64) -> f64 {
    let t0 = Instant::now();
    f();
    let first = t0.elapsed().as_secs_f64().max(1e-9);
    let reps = ((budget_secs / first) as usize).clamp(1, 200);
    let mut best = first;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

fn max_rel_err(got: &[f32], want: &[f32]) -> f64 {
    got.iter()
        .zip(want.iter())
        .map(|(g, w)| ((g - w).abs() / w.abs().max(1.0)) as f64)
        .fold(0.0, f64::max)
}

#[derive(Serialize)]
struct Entry {
    label: String,
    family: String,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    flops: u64,
    new_gflops: f64,
    ref_gflops: f64,
    speedup: f64,
    /// int8 entries only: max |q8 − f32| over the output.
    #[serde(skip_serializing_if = "Option::is_none")]
    max_abs_err: Option<f64>,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    threads: usize,
    kernel_variant: String,
    cases: usize,
    geomean_speedup: f64,
    geomean_nn: f64,
    geomean_batched: f64,
    geomean_int8: f64,
    entries: Vec<Entry>,
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn run_case(case: &Case, timed: bool) -> Entry {
    let spec = case.spec;
    let a = fill(1, case.batch * spec.m * spec.k);
    let b = fill(2, case.batch * spec.k * spec.n);
    let mut c_new = vec![f32::NAN; case.batch * spec.m * spec.n];
    let mut c_ref = vec![f32::NAN; case.batch * spec.m * spec.n];

    let run_new = |c: &mut [f32]| {
        if case.batch == 1 {
            sgemm(spec, &a, &b, c);
        } else {
            batched_sgemm(case.batch, spec, &a, &b, c);
        }
    };
    let run_ref = |c: &mut [f32]| {
        if case.batch == 1 {
            reference::sgemm_axpy(spec, &a, &b, c);
        } else {
            reference::batched_naive(case.batch, spec, &a, &b, c);
        }
    };

    run_new(&mut c_new);
    run_ref(&mut c_ref);
    let err = max_rel_err(&c_new, &c_ref);
    assert!(err <= 1e-3, "{}: packed engine diverges from reference ({err:.2e})", case.label);

    let flops = case.total_flops();
    let (new_gflops, ref_gflops) = if timed {
        let t_new = time_min(|| run_new(&mut c_new), 0.15);
        let t_ref = time_min(|| run_ref(&mut c_ref), 0.15);
        (flops as f64 / t_new / 1e9, flops as f64 / t_ref / 1e9)
    } else {
        (0.0, 0.0)
    };
    Entry {
        label: case.label.to_string(),
        family: case.family.to_string(),
        batch: case.batch,
        m: spec.m,
        k: spec.k,
        n: spec.n,
        flops,
        new_gflops,
        ref_gflops,
        speedup: if timed { new_gflops / ref_gflops } else { 1.0 },
        max_abs_err: None,
    }
}

/// int8 weight-only GEMM vs the f32 packed engine on the same shape.
/// `reference` here is the *new* f32 engine (not the pre-PR axpy): the
/// speedup column answers "what does quantizing this weight buy on top".
/// Every output channel is checked against `Q8Matrix::error_bound`.
fn run_int8_case(
    label: &'static str,
    m: usize,
    k: usize,
    n: usize,
    tb: Trans,
    timed: bool,
) -> Entry {
    let a = fill(1, m * k);
    let w = fill(2, k * n);
    let q = Q8Matrix::quantize(&w, k, n, tb);
    let spec = GemmSpec { m, k, n, ta: Trans::No, tb, alpha: 1.0, beta: 0.0 };
    let mut c_f32 = vec![f32::NAN; m * n];
    let mut c_q8 = vec![f32::NAN; m * n];
    sgemm(spec, &a, &w, &mut c_f32);
    sgemm_q8(m, 1.0, &a, &q, &mut c_q8);

    let mut max_err = 0.0f64;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let err = (c_q8[i * n + j] - c_f32[i * n + j]).abs();
            let bound = q.error_bound(j, arow) + 1e-4;
            assert!(err <= bound, "{label}: channel {j} error {err} exceeds bound {bound}");
            max_err = max_err.max(err as f64);
        }
    }

    let flops = spec.flops();
    let (new_gflops, ref_gflops) = if timed {
        let t_q8 = time_min(|| sgemm_q8(m, 1.0, &a, &q, &mut c_q8), 0.15);
        let t_f32 = time_min(|| sgemm(spec, &a, &w, &mut c_f32), 0.15);
        (flops as f64 / t_q8 / 1e9, flops as f64 / t_f32 / 1e9)
    } else {
        (0.0, 0.0)
    };
    Entry {
        label: label.to_string(),
        family: "int8".to_string(),
        batch: 1,
        m,
        k,
        n,
        flops,
        new_gflops,
        ref_gflops,
        speedup: if timed { new_gflops / ref_gflops } else { 1.0 },
        max_abs_err: Some(max_err),
    }
}

/// int8 sweep: the decode GEMVs a quantized GPT-2-small issues per token,
/// plus the tied-embedding lm head (`[n, k]`, `trans_b`).
fn int8_cases() -> Vec<(&'static str, usize, usize, usize, Trans)> {
    vec![
        ("int8 gemv, m1 proj", 1, HIDDEN, HIDDEN, Trans::No),
        ("int8 gemv, m1 ffn1", 1, HIDDEN, FFN, Trans::No),
        ("int8 gemv, m1 ffn2", 1, FFN, HIDDEN, Trans::No),
        ("int8 lm head, m1", 1, HIDDEN, 50257, Trans::Yes),
        ("int8 prefill, m100 proj", 100, HIDDEN, HIDDEN, Trans::No),
    ]
}

/// Smoke: the scalar micro-kernel and the runtime-dispatched SIMD variant
/// must agree on integer-valued inputs (whose products and sums are exactly
/// representable, so any divergence is a kernel bug, not rounding).
fn smoke_variant_divergence() {
    let detected = kernel_variant();
    for case in smoke_cases() {
        let spec = case.spec;
        let a = fill(1, case.batch * spec.m * spec.k);
        let b = fill(2, case.batch * spec.k * spec.n);
        let mut c_scalar = vec![f32::NAN; case.batch * spec.m * spec.n];
        let mut c_simd = vec![f32::NAN; case.batch * spec.m * spec.n];
        let run = |c: &mut [f32]| {
            if case.batch == 1 {
                sgemm(spec, &a, &b, c);
            } else {
                batched_sgemm(case.batch, spec, &a, &b, c);
            }
        };
        set_kernel_override(KernelVariant::Scalar).expect("scalar is always available");
        run(&mut c_scalar);
        set_kernel_override(detected).expect("detected variant must re-apply");
        run(&mut c_simd);
        let err = max_rel_err(&c_simd, &c_scalar);
        assert!(
            err <= 1e-6,
            "{}: scalar and {} kernels diverge ({err:.2e})",
            case.label,
            detected.name()
        );
        println!("smoke ok: {} scalar == {}", case.label, detected.name());
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        println!("kernel variant: {}", kernel_variant_name());
        for case in smoke_cases() {
            let e = run_case(&case, false);
            println!("smoke ok: {} ({}x{}x{}, batch {})", e.label, e.m, e.k, e.n, e.batch);
        }
        smoke_variant_divergence();
        // int8 smoke: small shapes in both layouts, checked against the
        // per-channel error bound.
        for (label, m, k, n, tb) in
            [("int8 smoke nn", 5, 33, 17, Trans::No), ("int8 smoke nt", 3, 16, 21, Trans::Yes)]
        {
            let e = run_int8_case(label, m, k, n, tb, false);
            println!("smoke ok: {} (max abs err {:.2e})", e.label, e.max_abs_err.unwrap());
        }
        println!("gemm_microbench --smoke: all correctness checks passed");
        return;
    }

    println!("kernel variant: {}", kernel_variant_name());
    let cases = sweep_cases();
    let mut entries: Vec<Entry> = cases
        .iter()
        .map(|case| {
            let e = run_case(case, true);
            println!(
                "{:24} {:9.2} GFLOP/s vs {:7.2} reference  ({:5.2}x)",
                e.label, e.new_gflops, e.ref_gflops, e.speedup
            );
            e
        })
        .collect();
    for (label, m, k, n, tb) in int8_cases() {
        let e = run_int8_case(label, m, k, n, tb, true);
        println!(
            "{:24} {:9.2} GFLOP/s vs {:7.2} f32 engine ({:5.2}x, max err {:.2e})",
            e.label,
            e.new_gflops,
            e.ref_gflops,
            e.speedup,
            e.max_abs_err.unwrap()
        );
        entries.push(e);
    }

    // The headline geomean stays vs the pre-PR reference; int8 entries are
    // measured against the new f32 engine and reported separately.
    let all: Vec<f64> = entries.iter().filter(|e| e.family != "int8").map(|e| e.speedup).collect();
    let nn: Vec<f64> = entries.iter().filter(|e| e.family == "nn").map(|e| e.speedup).collect();
    let batched: Vec<f64> =
        entries.iter().filter(|e| e.family == "batched").map(|e| e.speedup).collect();
    let int8: Vec<f64> = entries.iter().filter(|e| e.family == "int8").map(|e| e.speedup).collect();
    let report = Report {
        bench: "gemm_microbench".to_string(),
        threads: std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1),
        kernel_variant: kernel_variant_name().to_string(),
        cases: entries.len(),
        geomean_speedup: geomean(&all),
        geomean_nn: geomean(&nn),
        geomean_batched: geomean(&batched),
        geomean_int8: geomean(&int8),
        entries,
    };

    let rows: Vec<Vec<String>> = report
        .entries
        .iter()
        .map(|e| {
            vec![
                e.label.to_string(),
                format!("{}×({}, {}, {})", e.batch, e.m, e.k, e.n),
                format!("{:.2}", e.ref_gflops),
                format!("{:.2}", e.new_gflops),
                format!("{:.2}x", e.speedup),
                e.max_abs_err.map(|err| format!("{err:.2e}")).unwrap_or_default(),
            ]
        })
        .collect();
    print_table(
        "GEMM microbench: packed engine vs pre-PR reference",
        &["shape", "batch×(m, k, n)", "ref GFLOP/s", "new GFLOP/s", "speedup", "max abs err"],
        &rows,
    );
    println!(
        "\ngeomean speedup: {:.2}x (nn {:.2}x, batched {:.2}x; int8 vs f32 {:.2}x) \
         on {} thread(s), kernel {}",
        report.geomean_speedup,
        report.geomean_nn,
        report.geomean_batched,
        report.geomean_int8,
        report.threads,
        report.kernel_variant
    );

    let mut md = String::new();
    let _ = writeln!(md, "# GEMM microbench — packed-panel engine vs pre-PR reference\n");
    let _ = writeln!(
        md,
        "BERT-base shape sweep (hidden {HIDDEN}, FFN {FFN}, {HEADS} heads × {HEAD_DIM});"
    );
    let _ = writeln!(md, "reference = the pre-PR `sgemm` axpy row-sweep (single GEMMs) and the");
    let _ = writeln!(
        md,
        "per-head naive triple loop (batched GEMMs). `int8` rows compare weight-only\n\
         int8 against the *new* f32 engine on the same shape (see docs/KERNELS.md for\n\
         the scale scheme and error bound). min-of-reps timing, {} thread(s),\n\
         `{}` micro-kernel.\n",
        report.threads, report.kernel_variant
    );
    let _ = writeln!(
        md,
        "| shape | batch×(m, k, n) | ref GFLOP/s | new GFLOP/s | speedup | max abs err |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|");
    for r in &rows {
        let _ = writeln!(md, "| {} |", r.join(" | "));
    }
    let _ = writeln!(
        md,
        "\n**Geomean speedup: {:.2}x** — nn family {:.2}x, batched (attention) family \
         {:.2}x; int8-vs-f32 {:.2}x on the decode shapes.",
        report.geomean_speedup, report.geomean_nn, report.geomean_batched, report.geomean_int8
    );
    let _ = writeln!(md, "\nMachine-readable trajectory: `BENCH_gemm.json` at the repo root.");
    std::fs::write("results/gemm_microbench.md", md).expect("write results/gemm_microbench.md");

    let json = serde_json::to_string(&report).expect("serialize BENCH_gemm.json");
    std::fs::write("BENCH_gemm.json", json).expect("write BENCH_gemm.json");
    println!("\nwrote results/gemm_microbench.md and BENCH_gemm.json");
}
