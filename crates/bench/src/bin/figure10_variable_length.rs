//! Paper Figure 10: latency on sequentially-executed variable-length
//! requests (RTX 2060), for the three models of Table 3:
//!
//! - BERT, random lengths 5–500: Turbo vs PyTorch vs onnxruntime;
//! - ALBERT, random lengths 5–500: Turbo vs PyTorch;
//! - Seq2Seq decoder (translation), source lengths 28–137: Turbo vs
//!   PyTorch.
//!
//! Displayed sorted by length "for the sake of clearness", as in the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tt_bench::{fmt_speedup, fmt_time, print_table};
use tt_gpusim::device::DeviceKind;
use tt_model::albert::AlbertConfig;
use tt_model::bert::BertConfig;
use tt_model::decoder::Seq2SeqDecoderConfig;
use tt_runtime::{RuntimeConfig, RuntimeKind, TurboRuntime};

fn runtime(kind: RuntimeKind) -> TurboRuntime {
    TurboRuntime::new(RuntimeConfig::new(kind, DeviceKind::RTX2060))
}

fn summarize(name: &str, speedups: &[f64]) {
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().cloned().fold(0.0f64, f64::max);
    println!("  {name}: {min:.2}x – {max:.2}x");
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1010);
    let mut lens: Vec<usize> = (0..30).map(|_| rng.random_range(5..=500)).collect();
    lens.sort_unstable();

    // --- BERT ---
    let cfg = BertConfig::base();
    let turbo = runtime(RuntimeKind::Turbo);
    let pytorch = runtime(RuntimeKind::PyTorchLike);
    let ort = runtime(RuntimeKind::OnnxRuntimeLike);
    let mut rows = Vec::new();
    let mut sp_pt = Vec::new();
    let mut sp_ort = Vec::new();
    for &len in &lens {
        let t = turbo.bert_cost(&cfg, 1, len, false);
        let p = pytorch.bert_cost(&cfg, 1, len, false);
        let o = ort.bert_cost(&cfg, 1, len, false);
        sp_pt.push(p / t);
        sp_ort.push(o / t);
        rows.push(vec![
            len.to_string(),
            fmt_time(t),
            fmt_time(p),
            fmt_time(o),
            fmt_speedup(p / t),
            fmt_speedup(o / t),
        ]);
    }
    print_table(
        "Figure 10a — BERT variable-length latency (RTX 2060)",
        &["len", "Turbo", "PyTorch", "onnxruntime", "vs PyTorch", "vs ORT"],
        &rows,
    );
    println!("\nSpeedup ranges (paper: vs PyTorch 1.10–2.58x, vs onnxruntime 0.84–1.68x):");
    summarize("vs PyTorch", &sp_pt);
    summarize("vs onnxruntime", &sp_ort);

    // --- ALBERT ---
    let acfg = AlbertConfig::base();
    let mut rows = Vec::new();
    let mut sp = Vec::new();
    for &len in &lens {
        let t = turbo.albert_cost(&acfg, 1, len, false);
        let p = pytorch.albert_cost(&acfg, 1, len, false);
        sp.push(p / t);
        rows.push(vec![len.to_string(), fmt_time(t), fmt_time(p), fmt_speedup(p / t)]);
    }
    print_table(
        "Figure 10b — ALBERT variable-length latency (RTX 2060)",
        &["len", "Turbo", "PyTorch", "speedup"],
        &rows,
    );
    println!("\nSpeedup range (paper: 1.35–2.26x):");
    summarize("vs PyTorch", &sp);

    // --- Seq2Seq decoder: Chinese→English translation, src 28–137 ---
    let dcfg = Seq2SeqDecoderConfig::base();
    let mut dlens: Vec<usize> = (0..15).map(|_| rng.random_range(28..=137)).collect();
    dlens.sort_unstable();
    let mut rows = Vec::new();
    let mut sp = Vec::new();
    for &src in &dlens {
        // Target length ≈ 1.2× source for zh→en, capped by the model.
        let tgt = ((src as f64 * 1.2) as usize).min(dcfg.max_target_len);
        let t = turbo.decoder_cost(&dcfg, src, tgt);
        let p = pytorch.decoder_cost(&dcfg, src, tgt);
        sp.push(p / t);
        rows.push(vec![
            src.to_string(),
            tgt.to_string(),
            fmt_time(t),
            fmt_time(p),
            fmt_speedup(p / t),
        ]);
    }
    print_table(
        "Figure 10c — Seq2Seq decoder latency, beam 4 (RTX 2060)",
        &["src len", "tgt len", "Turbo", "PyTorch", "speedup"],
        &rows,
    );
    println!("\nSpeedup range (paper: 1.85–2.51x):");
    summarize("vs PyTorch", &sp);
}
