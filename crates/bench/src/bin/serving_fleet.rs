//! Fleet fault-tolerance drill: boot a 3-replica supervised fleet behind
//! the health-gated router, then kill one replica under load and measure
//! what the fleet actually loses.
//!
//! Phases (closed-loop clients, per-request deadlines, typed accounting
//! throughout — `ok + unavailable + deadline == sent`, nothing hangs):
//!
//! 1. **baseline** — all three replicas healthy.
//! 2. **outage** — `replica_panic` armed at probability 1.0, targeted at
//!    replica 1 only: its engine thread panics on every incarnation, so
//!    it crash-loops for the whole phase (watchdog bounce → respawn →
//!    panic again). The contract under test: served throughput degrades
//!    to roughly the surviving ⅔ of capacity — not to zero — and every
//!    request that cannot be served fails with a typed error. The
//!    breaker must eject the replica and keep re-probing it (half-open)
//!    for the whole outage.
//! 3. **recovery** — chaos disarmed; the next respawn survives, the
//!    half-open probe succeeds, the replica re-admits, and throughput
//!    returns to ≥ 95% of baseline.
//! 4. **stall drill** — `replica_stall` targeted at replica 2: the loop
//!    sleeps past the liveness deadline, the watchdog declares a stall
//!    and bounces it; same typed-accounting contract.
//!
//! Assertions (the robustness acceptance gates):
//! - outage throughput ≥ 60% of baseline (≥ 50% under `--smoke`, whose
//!   phases are too short to average out scheduler noise);
//! - recovery throughput ≥ 95% of baseline (≥ 85% under `--smoke`);
//! - chaos blast radius is one replica: only the targeted replica
//!   restarts in each drill;
//! - the breaker's eject and half-open re-probe are both *observed* via
//!   the `replica_health_transitions_total` metric family.
//!
//! `--smoke` runs a scaled-down deterministic pass (seeded via
//! `TT_CHAOS_SEED`) for CI; the full run writes `BENCH_fleet.json` and
//! `results/serving_fleet.md`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use tt_bench::print_table;
use tt_chaos::ChaosConfig;
use tt_gpusim::device::DeviceKind;
use tt_model::bert::{Bert, BertConfig};
use tt_runtime::{RuntimeConfig, TurboRuntime};
use tt_serving::live::{spawn_core, LiveError};
use tt_serving::stats::LatencyStats;
use tt_serving::{
    CachedCost, Deadline, DpScheduler, Fleet, FleetConfig, HealthConfig, HealthState,
    ReplicaFactory, ReplicaParts, RetryConfig, SupervisorConfig,
};
use tt_telemetry::{Registry, Tracer};

/// Default deterministic seed; `TT_CHAOS_SEED` overrides.
const DEFAULT_SEED: u64 = 0xF1EE7;
/// Fleet width for the drill — the paper-style "kill 1 of 3" scenario.
const REPLICAS: usize = 3;
/// Per-request end-to-end deadline.
const REQUEST_DEADLINE: Duration = Duration::from_secs(2);

#[derive(Serialize)]
struct PhaseStats {
    name: String,
    secs: f64,
    sent: usize,
    ok: usize,
    unavailable: usize,
    deadline_exceeded: usize,
    throughput_rps: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct FleetReport {
    seed: u64,
    replicas: usize,
    clients: usize,
    smoke: bool,
    phases: Vec<PhaseStats>,
    restarts: Vec<u64>,
    outage_ratio: f64,
    recovery_ratio: f64,
    eject_transitions: u64,
    half_open_transitions: u64,
    readmit_transitions: u64,
    served_per_replica: Vec<u64>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed =
        std::env::var("TT_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SEED);
    let clients = if smoke { 4 } else { 6 };
    let (d_base, d_outage, d_recovery, d_stall) = if smoke {
        (ms(1200), ms(1500), ms(1200), ms(1000))
    } else {
        (ms(4000), ms(4000), ms(4000), ms(2000))
    };
    let (outage_gate, recovery_gate) = if smoke { (0.5, 0.85) } else { (0.6, 0.95) };

    println!(
        "serving_fleet: replicas={REPLICAS} clients={clients} seed={seed:#x}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let registry = Registry::new();
    let costs =
        Arc::new(CachedCost::from_fn(64, 16, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    let config = FleetConfig {
        replicas: REPLICAS,
        supervisor: SupervisorConfig {
            liveness_deadline: ms(150),
            poll_interval: ms(10),
            restart_backoff: ms(20),
        },
        health: HealthConfig {
            min_samples: 4,
            eject_cooldown: ms(100),
            stale_heartbeat: ms(150),
            ..HealthConfig::default()
        },
        retry: RetryConfig::default(),
        hedge: None,
    };
    let fleet = Arc::new(Fleet::start(factory(&registry), config, costs, Some(&registry)));

    // Cold-start warm-up: the first requests pay thread spawn and lazy
    // allocation; serve a few before the measured baseline.
    for _ in 0..8 {
        let _ = fleet.infer_request(vec![5, 6, 7, 8], None, None);
    }

    tt_chaos::disarm();
    println!("phase: baseline (3/3 healthy)");
    let baseline = run_phase("baseline", &fleet, clients, d_base);

    println!("phase: outage (replica 1 crash-looping)");
    tt_chaos::install(ChaosConfig {
        replica_panic: 1.0,
        replica_target: 1,
        seed,
        ..ChaosConfig::default()
    });
    let outage = run_phase("outage", &fleet, clients, d_outage);
    let fired = tt_chaos::total_fired();
    tt_chaos::disarm();
    assert!(fired >= 1, "the replica_panic point never fired — the drill attacked nothing");
    assert!(outage.ok > 0, "a 1-of-3 outage must not zero the fleet's served throughput");

    // Recovery: the next respawn survives; wait for the breaker to walk
    // replica 1 back through half-open to healthy before measuring.
    println!("phase: recovery (waiting for re-admission)");
    wait_all_healthy(&fleet, Duration::from_secs(10));
    let recovery = run_phase("recovery", &fleet, clients, d_recovery);

    let restarts_after_panic = fleet.restarts();
    assert!(restarts_after_panic[1] >= 1, "the watchdog never bounced the killed replica");
    assert_eq!(restarts_after_panic[0], 0, "chaos blast radius leaked to replica 0");
    assert_eq!(restarts_after_panic[2], 0, "chaos blast radius leaked to replica 2");

    let outage_ratio = outage.throughput_rps / baseline.throughput_rps;
    let recovery_ratio = recovery.throughput_rps / baseline.throughput_rps;
    assert!(
        outage_ratio >= outage_gate,
        "outage throughput {:.1}/s is {:.0}% of baseline {:.1}/s — below the {:.0}% gate",
        outage.throughput_rps,
        outage_ratio * 100.0,
        baseline.throughput_rps,
        outage_gate * 100.0
    );
    assert!(
        recovery_ratio >= recovery_gate,
        "recovery throughput {:.1}/s is {:.0}% of baseline {:.1}/s — below the {:.0}% gate",
        recovery.throughput_rps,
        recovery_ratio * 100.0,
        baseline.throughput_rps,
        recovery_gate * 100.0
    );

    // The breaker's work must be *observable*, not inferred: the metric
    // family records replica 1 ejecting, re-probing, and re-admitting.
    let exposition = registry.render_prometheus();
    let eject = series_sum(
        &exposition,
        "replica_health_transitions_total",
        &["replica=\"1\"", "to=\"ejected\""],
    );
    let half_open = series_sum(
        &exposition,
        "replica_health_transitions_total",
        &["replica=\"1\"", "to=\"half_open\""],
    );
    let readmit = series_sum(
        &exposition,
        "replica_health_transitions_total",
        &["replica=\"1\"", "to=\"healthy\""],
    );
    assert!(eject >= 1, "no eject transition recorded for the killed replica");
    assert!(half_open >= 1, "no half-open re-probe recorded for the killed replica");
    assert!(readmit >= 1, "no re-admission recorded for the recovered replica");

    println!("phase: stall drill (replica 2 stalling)");
    tt_chaos::install(ChaosConfig {
        replica_stall: 1.0,
        replica_stall_ms: 400,
        replica_target: 2,
        seed,
        ..ChaosConfig::default()
    });
    let stall = run_phase("stall", &fleet, clients, d_stall);
    tt_chaos::disarm();
    wait_all_healthy(&fleet, Duration::from_secs(10));
    let restarts = fleet.restarts();
    assert!(restarts[2] >= 1, "the watchdog never declared the stalled replica dead");
    assert_eq!(restarts[0], 0, "stall drill blast radius leaked to replica 0");

    let fleet = Arc::try_unwrap(fleet).unwrap_or_else(|_| panic!("client threads all joined"));
    let reports = fleet.shutdown();
    let served_per_replica: Vec<u64> = reports.iter().map(|r| r.served).collect();

    let phases = vec![baseline, outage, recovery, stall];
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{:.1}", p.secs),
                p.sent.to_string(),
                p.ok.to_string(),
                p.unavailable.to_string(),
                p.deadline_exceeded.to_string(),
                format!("{:.1}", p.throughput_rps),
                format!("{:.2}", p.p99_ms),
            ]
        })
        .collect();
    print_table(
        "Fleet drill (3 replicas, tiny BERT, DP scheduler)",
        &["phase", "secs", "sent", "ok", "503", "504", "req/s", "p99 ms"],
        &rows,
    );
    println!(
        "outage {:.0}% of baseline, recovery {:.0}%; restarts {:?}; \
         breaker: eject={eject} half_open={half_open} readmit={readmit}",
        outage_ratio * 100.0,
        recovery_ratio * 100.0,
        restarts,
    );

    if smoke {
        println!("smoke OK");
        return;
    }
    let report = FleetReport {
        seed,
        replicas: REPLICAS,
        clients,
        smoke,
        phases,
        restarts,
        outage_ratio,
        recovery_ratio,
        eject_transitions: eject,
        half_open_transitions: half_open,
        readmit_transitions: readmit,
        served_per_replica,
    };
    write_outputs(&report);
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// The replica factory every incarnation is built from: a tiny BERT on
/// the simulated RTX 2060 runtime, DP-scheduled, supervised (heartbeat +
/// replica chaos hooks live inside `spawn_core`'s engine loop).
fn factory(registry: &Registry) -> ReplicaFactory {
    let model = Arc::new(Bert::new_random(&BertConfig::tiny(), 2024));
    let runtime = Arc::new(TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060)));
    let costs =
        Arc::new(CachedCost::from_fn(64, 16, 8, |len, b| 1.0e-3 + 1.0e-5 * (len * b) as f64));
    let registry = registry.clone();
    Arc::new(move |id, _generation| ReplicaParts {
        live: spawn_core(
            model.clone(),
            runtime.clone(),
            Arc::new(DpScheduler),
            costs.clone(),
            Some(&registry),
            Tracer::disabled(),
            id,
        ),
        generative: None,
    })
}

/// One closed-loop load phase: `clients` threads each issue requests
/// back-to-back until the phase deadline. Every call returns typed —
/// the accounting identity `ok + unavailable + deadline == sent` is the
/// zero-silent-drops assertion.
fn run_phase(name: &str, fleet: &Arc<Fleet>, clients: usize, duration: Duration) -> PhaseStats {
    let start = Instant::now();
    let end = start + duration;
    let mut handles = Vec::new();
    for c in 0..clients {
        let fleet = fleet.clone();
        handles.push(std::thread::spawn(move || {
            let mut ok = 0usize;
            let mut unavailable = 0usize;
            let mut deadline_exceeded = 0usize;
            let mut latencies = Vec::new();
            let mut i = 0usize;
            while Instant::now() < end {
                let len = 4 + (c * 7 + i * 3) % 40;
                let tokens: Vec<u32> = (0..len).map(|t| ((t * 5 + c) % 90) as u32).collect();
                let t0 = Instant::now();
                match fleet.infer_request(tokens, None, Some(Deadline::within(REQUEST_DEADLINE))) {
                    Ok(_) => {
                        ok += 1;
                        latencies.push(t0.elapsed().as_secs_f64());
                    }
                    Err(LiveError::Unavailable) => unavailable += 1,
                    Err(LiveError::DeadlineExceeded) => deadline_exceeded += 1,
                }
                i += 1;
            }
            (ok, unavailable, deadline_exceeded, latencies)
        }));
    }
    let mut ok = 0;
    let mut unavailable = 0;
    let mut deadline_exceeded = 0;
    let mut stats = LatencyStats::new();
    for h in handles {
        let (o, u, d, lats) = h.join().expect("client thread");
        ok += o;
        unavailable += u;
        deadline_exceeded += d;
        for l in lats {
            stats.record(l);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    PhaseStats {
        name: name.to_string(),
        secs,
        sent: ok + unavailable + deadline_exceeded,
        ok,
        unavailable,
        deadline_exceeded,
        throughput_rps: ok as f64 / secs,
        p99_ms: stats.percentile(99.0) * 1e3,
    }
}

/// Drive single probe requests until every replica reads `Healthy` — the
/// traffic is what carries an ejected replica through its half-open
/// probe back to health.
fn wait_all_healthy(fleet: &Arc<Fleet>, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let _ = fleet.infer_request(vec![5, 6, 7, 8], None, None);
        if fleet.states().iter().all(|s| *s == HealthState::Healthy) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never returned to full health after disarm: {:?}",
            fleet.states()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Sum every sample of `name` whose label set contains all `label_frags`
/// (raw `k="v"` fragments) in a Prometheus exposition.
fn series_sum(exposition: &str, name: &str, label_frags: &[&str]) -> u64 {
    exposition
        .lines()
        .filter(|l| l.starts_with(name) && label_frags.iter().all(|f| l.contains(f)))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .sum()
}

fn write_outputs(report: &FleetReport) {
    let mut md = String::new();
    let _ = writeln!(md, "# Fleet fault-tolerance drill (`serving_fleet`)\n");
    let _ = writeln!(
        md,
        "A {}-replica supervised fleet (tiny BERT, DP scheduler) behind the \
         health-gated router, driven by {} closed-loop clients with {} ms \
         per-request deadlines (chaos seed `{:#x}`). The outage phase arms \
         `replica_panic` at probability 1.0 targeted at replica 1 only, so it \
         crash-loops — watchdog bounce, respawn, panic again — for the whole \
         phase. Recovery disarms chaos and waits for the breaker to walk the \
         replica back through its half-open probe. The stall drill does the \
         same to replica 2 with `replica_stall` (400 ms sleeps against a \
         150 ms liveness deadline).\n",
        report.replicas,
        report.clients,
        REQUEST_DEADLINE.as_millis(),
        report.seed,
    );
    let _ = writeln!(md, "| phase | secs | sent | ok | 503 typed | 504 typed | req/s | p99 ms |");
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|");
    for p in &report.phases {
        let _ = writeln!(
            md,
            "| {} | {:.1} | {} | {} | {} | {} | {:.1} | {:.2} |",
            p.name,
            p.secs,
            p.sent,
            p.ok,
            p.unavailable,
            p.deadline_exceeded,
            p.throughput_rps,
            p.p99_ms,
        );
    }
    let _ = writeln!(
        md,
        "\nOutage throughput: **{:.0}%** of baseline (gate ≥ 60%). Recovery: \
         **{:.0}%** (gate ≥ 95%). Watchdog restarts per replica: {:?} — the \
         blast radius of each drill is exactly its targeted replica. Breaker \
         transitions observed on replica 1 via \
         `replica_health_transitions_total`: {} ejects, {} half-open probes, \
         {} re-admissions. Every request in every phase returned typed \
         (`ok + 503 + 504 == sent`): a crash-looping replica costs capacity, \
         never an answer.\n\nSemantics: `docs/ROBUSTNESS.md` § Fleet. \
         Machine-readable: `BENCH_fleet.json` at the repo root.",
        report.outage_ratio * 100.0,
        report.recovery_ratio * 100.0,
        report.restarts,
        report.eject_transitions,
        report.half_open_transitions,
        report.readmit_transitions,
    );
    let _ = std::fs::create_dir_all("results");
    std::fs::write("results/serving_fleet.md", md).expect("write results/serving_fleet.md");
    let json = serde_json::to_string(report).expect("serialize BENCH_fleet.json");
    std::fs::write("BENCH_fleet.json", json).expect("write BENCH_fleet.json");
    println!("\nwrote results/serving_fleet.md and BENCH_fleet.json");
}
