//! CI validator for the repository's markdown cross-link web: every
//! relative link and intra-document anchor in the root `*.md` files and
//! `docs/` must resolve, so the documentation layer (README →
//! ARCHITECTURE → NETWORKING → ROBUSTNESS → OBSERVABILITY → …) cannot
//! rot as files move.
//!
//! Std-only, like the rest of the bench tooling. Checks, per file:
//!
//! 1. inline links/images `[text](target)` and reference definitions
//!    `[label]: target`, outside fenced code blocks;
//! 2. `http(s):`/`mailto:` targets are skipped (no network in CI);
//! 3. relative targets must exist on disk, resolved against the linking
//!    file's directory;
//! 4. `#anchor` fragments — bare or on a relative target — must match a
//!    heading in the target file, using GitHub's slug rules (lowercase,
//!    punctuation stripped, spaces to `-`, duplicate slugs suffixed).
//!
//! Exits non-zero listing every broken link; prints a one-line summary
//! on success. Run it from the repo root (CI does).

use std::collections::HashMap;
use std::path::{Path, PathBuf};

fn main() {
    let files = collect_markdown();
    assert!(!files.is_empty(), "link_check must run from the repo root (no *.md found)");

    // First pass: every file's heading-anchor set.
    let anchors: HashMap<PathBuf, Vec<String>> = files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            (path.clone(), heading_slugs(&text))
        })
        .collect();

    let mut broken = Vec::new();
    let mut checked = 0usize;
    for path in &files {
        let text = std::fs::read_to_string(path).expect("file read in first pass");
        for (line_no, target) in extract_links(&text) {
            checked += 1;
            if let Err(reason) = check_target(path, &target, &anchors) {
                broken.push(format!("{}:{line_no}: [{target}] {reason}", path.display()));
            }
        }
    }

    if broken.is_empty() {
        println!("link_check OK: {checked} links across {} markdown files", files.len());
        return;
    }
    eprintln!("link_check FAILED: {} broken link(s)", broken.len());
    for b in &broken {
        eprintln!("  {b}");
    }
    std::process::exit(1);
}

/// Imported reference material whose links point into *source* repos
/// (paper abstracts, retrieved snippets, the per-PR task file) — not part
/// of this repo's cross-link web.
const IMPORTED: &[&str] = &["SNIPPETS.md", "PAPERS.md", "PAPER.md", "ISSUE.md"];

/// Root-level `*.md` plus everything under `docs/`, recursively.
fn collect_markdown() -> Vec<PathBuf> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(".").expect("read repo root").flatten() {
        let path = entry.path();
        let imported =
            path.file_name().and_then(|n| n.to_str()).is_some_and(|n| IMPORTED.contains(&n));
        if path.extension().is_some_and(|e| e == "md") && !imported {
            files.push(path);
        }
    }
    walk_docs(Path::new("docs"), &mut files);
    files.sort();
    files
}

fn walk_docs(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_docs(&path, files);
        } else if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
}

/// `(line number, target)` for every link outside fenced code blocks:
/// inline `[text](target)` (optionally `![...]`, optional `"title"`) and
/// reference definitions `[label]: target`.
fn extract_links(text: &str) -> Vec<(usize, String)> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        links.extend(inline_targets(line).into_iter().map(|t| (i + 1, t)));
        if let Some(target) = reference_target(line) {
            links.push((i + 1, target));
        }
    }
    links
}

/// Every `(target)` that directly follows a `[...]` on this line,
/// skipping inline-code spans (backticks).
fn inline_targets(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut in_code = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'`' => in_code = !in_code,
            b'[' if !in_code => {
                // Find the matching bracket (no nesting in practice).
                let Some(close) = line[i + 1..].find(']').map(|p| i + 1 + p) else { break };
                if bytes.get(close + 1) == Some(&b'(') {
                    if let Some(end) = line[close + 2..].find(')').map(|p| close + 2 + p) {
                        let raw = &line[close + 2..end];
                        // Strip an optional "title" suffix.
                        let target = raw.split_whitespace().next().unwrap_or("");
                        if !target.is_empty() {
                            out.push(target.to_string());
                        }
                        i = end + 1;
                        continue;
                    }
                }
                i = close;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// A reference-style definition: `[label]: target` at line start.
fn reference_target(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    if !trimmed.starts_with('[') {
        return None;
    }
    let close = trimmed.find("]:")?;
    let target = trimmed[close + 2..].split_whitespace().next()?;
    (!target.is_empty()).then(|| target.to_string())
}

fn check_target(
    from: &Path,
    target: &str,
    anchors: &HashMap<PathBuf, Vec<String>>,
) -> Result<(), String> {
    if target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
    {
        return Ok(()); // external; CI has no network
    }
    let (path_part, anchor) = match target.split_once('#') {
        Some((p, a)) => (p, Some(a)),
        None => (target, None),
    };
    let resolved = if path_part.is_empty() {
        from.to_path_buf() // bare `#anchor`: same file
    } else {
        from.parent().unwrap_or(Path::new(".")).join(path_part)
    };
    if !resolved.exists() {
        return Err(format!("target does not exist: {}", resolved.display()));
    }
    if let Some(anchor) = anchor {
        let canonical = normalize(&resolved);
        let Some(slugs) = anchors.get(&canonical) else {
            return Ok(()); // anchored into a non-markdown file; existence is enough
        };
        let want = anchor.to_ascii_lowercase();
        if !slugs.iter().any(|s| s == &want) {
            return Err(format!("no heading for anchor #{anchor} in {}", resolved.display()));
        }
    }
    Ok(())
}

/// Normalize `./docs/../README.md`-style paths to match the keys the
/// anchor map was built with (lexical only; no symlink resolution).
fn normalize(path: &Path) -> PathBuf {
    let mut out = PathBuf::new();
    for comp in path.components() {
        match comp {
            std::path::Component::CurDir => {}
            std::path::Component::ParentDir => {
                out.pop();
            }
            c => out.push(c),
        }
    }
    // The collector produces `./README.md`-style paths.
    Path::new(".").join(out)
}

/// GitHub's heading-to-anchor slug algorithm, close enough for CI:
/// lowercase, keep alphanumerics/hyphens/underscores, spaces become
/// hyphens, everything else drops; duplicate slugs get `-1`, `-2`, …
fn heading_slugs(text: &str) -> Vec<String> {
    let mut slugs: Vec<String> = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let title = line.trim_start_matches('#').trim();
        let mut slug = String::new();
        for ch in title.chars() {
            match ch {
                'A'..='Z' => slug.push(ch.to_ascii_lowercase()),
                'a'..='z' | '0'..='9' | '-' | '_' => slug.push(ch),
                ' ' => slug.push('-'),
                _ => {}
            }
        }
        let taken =
            slugs.iter().filter(|s| **s == slug || s.starts_with(&format!("{slug}-"))).count();
        if slugs.contains(&slug) {
            slug = format!("{slug}-{taken}");
        }
        slugs.push(slug);
    }
    slugs
}
