//! Paper Figure 5: speedup of the Turbo batch-reduction kernels over the
//! FasterTransformer baseline (and cuDNN for softmax) on Tesla V100.
//!
//! Softmax rows follow the attention geometry (`rows = batch · heads · seq`,
//! `row_len = seq`, 12 heads); LayerNorm rows follow the token geometry
//! (`rows = batch · seq`, `row_len = 768`).

use tt_bench::{fmt_speedup, paper_seq_grid, print_table};
use tt_gpusim::device::DeviceKind;
use tt_gpusim::kernels::{layernorm_time, softmax_time, BatchShape, LayerNormAlgo, SoftmaxAlgo};

fn main() {
    let dev = DeviceKind::V100.config();
    let heads = 12;
    let hidden = 768;

    for batch in [1usize, 20] {
        let mut rows = Vec::new();
        for seq in paper_seq_grid() {
            let sm_shape = BatchShape { rows: batch * heads * seq, row_len: seq };
            let classic = softmax_time(&dev, SoftmaxAlgo::ClassicFused, sm_shape);
            let cudnn = softmax_time(&dev, SoftmaxAlgo::CudnnLike, sm_shape);
            let turbo = softmax_time(&dev, SoftmaxAlgo::TurboXElem, sm_shape);

            let ln_shape = BatchShape { rows: batch * seq, row_len: hidden };
            let ln_classic = layernorm_time(&dev, LayerNormAlgo::ClassicTwoPass, ln_shape);
            let ln_turbo = layernorm_time(&dev, LayerNormAlgo::TurboOnePass, ln_shape);

            rows.push(vec![
                seq.to_string(),
                fmt_speedup(classic / turbo),
                fmt_speedup(cudnn / turbo),
                fmt_speedup(ln_classic / ln_turbo),
            ]);
        }
        print_table(
            &format!("Figure 5 — kernel speedups on Tesla V100, batch {batch}"),
            &["seq len", "softmax vs FT", "softmax vs cuDNN", "LayerNorm vs FT"],
            &rows,
        );
    }
    println!("\nPaper reference: \"in most cases, obvious acceleration\"; softmax gains are");
    println!("larger than LayerNorm's because its batch dimension is larger.");
}
