//! Paper Figure 11: runtime comparison on fixed-length BERT inference,
//! RTX 2060 and Tesla V100, batch ∈ {1, 20} × seq 10..500 — normalized
//! speedup of TurboTransformers over each runtime (values > 1 mean Turbo
//! wins). Fixed-shape runtimes are assumed pre-tuned, as in the paper.

use tt_bench::{paper_seq_grid, print_table};
use tt_gpusim::device::DeviceKind;
use tt_model::bert::BertConfig;
use tt_runtime::{RuntimeConfig, RuntimeKind, TurboRuntime};

fn main() {
    let cfg = BertConfig::base();
    let baselines = [
        RuntimeKind::PyTorchLike,
        RuntimeKind::OnnxRuntimeLike,
        RuntimeKind::FasterTransformerLike,
        RuntimeKind::TensorRTLike,
        RuntimeKind::XlaLike,
    ];

    for device in [DeviceKind::RTX2060, DeviceKind::V100] {
        let turbo = TurboRuntime::new(RuntimeConfig::new(RuntimeKind::Turbo, device));
        let rts: Vec<TurboRuntime> =
            baselines.iter().map(|&k| TurboRuntime::new(RuntimeConfig::new(k, device))).collect();

        let mut turbo_wins = 0usize;
        let mut trt_cells = 0usize;
        for batch in [1usize, 20] {
            let mut rows = Vec::new();
            for seq in paper_seq_grid() {
                let t = turbo.bert_cost(&cfg, batch, seq, batch > 1);
                let mut row = vec![seq.to_string()];
                for (rt, kind) in rts.iter().zip(baselines.iter()) {
                    let c = rt.bert_cost(&cfg, batch, seq, batch > 1);
                    row.push(format!("{:.2}x", c / t));
                    if *kind == RuntimeKind::TensorRTLike {
                        trt_cells += 1;
                        if c / t > 1.0 {
                            turbo_wins += 1;
                        }
                    }
                }
                rows.push(row);
            }
            let headers: Vec<String> = std::iter::once("seq".to_string())
                .chain(baselines.iter().map(|k| k.label().to_string()))
                .collect();
            print_table(
                &format!(
                    "Figure 11 — Turbo speedup over each runtime, {} batch {batch} (>1 ⇒ Turbo faster)",
                    device.config().name
                ),
                &headers,
                &rows,
            );
        }
        if device == DeviceKind::V100 {
            println!(
                "\nTensorRT head-to-head on V100: Turbo wins {turbo_wins}/{trt_cells} cells \
                 (paper: 13/20, TensorRT ahead on the lightest workloads)."
            );
        }
    }
}
