//! Generative decoding benchmark: continuous (iteration-level) batching
//! over the paged KV arena vs. the naive baseline that re-runs a full
//! prefill for every generated token and serves requests one at a time.
//!
//! Both serve the *same* mixed-length workload (short and long prompts,
//! short and long completions, all submitted at t=0) with greedy argmax
//! decoding, and both must produce token-identical outputs — the paged
//! decode path is numerically the unpaged model, so the speedup is pure
//! scheduling and cache reuse, not approximation.
//!
//! Reported per serving mode: aggregate decode throughput (tokens/sec)
//! and the time-to-first-token (TTFT) distribution measured from
//! submission — under naive serial serving, later requests inherit the
//! whole queue ahead of them; under continuous batching they join the
//! running iteration as soon as pages admit them.
//!
//! Outputs `results/serving_decode.md` and `BENCH_decode.json` (single
//! line, machine-readable). `--smoke` runs a scaled-down pass, asserts
//! the same invariants (continuous strictly beats naive on tokens/sec,
//! outputs token-identical, zero leaked pages) and writes nothing.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use tt_alloc::PagedKvArena;
use tt_bench::print_table;
use tt_model::gpt::{Gpt, GptConfig};
use tt_runtime::decode::DecodeConfig;
use tt_serving::stats::LatencyStats;
use tt_serving::{CachedCost, FinishReason, GenConfig, GenEngine, TokenEvent};

/// One request of the mixed workload.
#[derive(Clone)]
struct Job {
    prompt: Vec<u32>,
    max_new: usize,
}

/// One request's outcome: its generated tokens and the moment (relative
/// to workload submission) its first token existed.
struct Served {
    tokens: Vec<u32>,
    ttft: Duration,
}

#[derive(Serialize)]
struct ModeReport {
    tokens: usize,
    wall_s: f64,
    tokens_per_sec: f64,
    ttft_ms_mean: f64,
    ttft_ms_p50: f64,
    ttft_ms_max: f64,
}

#[derive(Serialize)]
struct DecodeBenchReport {
    bench: &'static str,
    model: &'static str,
    requests: usize,
    continuous: ModeReport,
    naive: ModeReport,
    int8: ModeReport,
    speedup: f64,
    int8_vs_f32: f64,
    int8_stream_match: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke: the 2-layer test config. Full: a mid-size decoder so per-step
    // compute (and therefore the scheduling contrast) is measurable.
    let (config, model_name, requests) = if smoke {
        (GptConfig::tiny(), "gpt-tiny", 6)
    } else {
        (
            GptConfig {
                num_layers: 4,
                num_heads: 4,
                head_dim: 16,
                ffn_dim: 256,
                vocab_size: 512,
                max_position: 128,
                layer_norm_eps: 1e-5,
            },
            "gpt-4l-64d",
            16,
        )
    };
    println!(
        "serving_decode: model={model_name} requests={requests}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let jobs = workload(&config, requests);
    let model = Gpt::new_random(&config, 2024);

    println!("mode: naive (serial, re-prefill per token)");
    let (naive, naive_wall) = run_naive(&model, &jobs);
    println!("mode: continuous batching (paged KV arena)");
    let (continuous, cont_wall) = run_continuous(model, &jobs);
    // Same seed → identical weights, then quantized: the delta against the
    // f32 continuous run is the int8 GEMV/GEMM effect alone.
    println!("mode: continuous batching + int8 weights");
    let mut qmodel = Gpt::new_random(&config, 2024);
    qmodel.quantize_int8();
    let (int8, int8_wall) = run_continuous(qmodel, &jobs);

    // Fairness: both modes must have generated the identical token
    // streams — the comparison is scheduling, never decoding quality.
    assert_eq!(continuous.len(), naive.len());
    for (i, (c, n)) in continuous.iter().zip(&naive).enumerate() {
        assert_eq!(c.tokens, n.tokens, "request {i}: modes diverged on greedy tokens");
        assert!(!c.tokens.is_empty(), "request {i} generated nothing");
    }

    // int8 is an approximation, so token streams may legally diverge from
    // f32 (documented tolerance, docs/KERNELS.md) — but every stream must
    // still complete its full token budget. Record how many streams stayed
    // greedy-identical to f32 as an accuracy signal alongside the speed.
    assert_eq!(int8.len(), continuous.len());
    let matching = continuous.iter().zip(&int8).filter(|(c, q)| c.tokens == q.tokens).count();
    for (i, q) in int8.iter().enumerate() {
        assert_eq!(q.tokens.len(), jobs[i].max_new, "int8 request {i} truncated its stream");
    }

    let cont_report = mode_report(&continuous, cont_wall);
    let naive_report = mode_report(&naive, naive_wall);
    let int8_report = mode_report(&int8, int8_wall);
    let speedup = cont_report.tokens_per_sec / naive_report.tokens_per_sec;
    let int8_vs_f32 = int8_report.tokens_per_sec / cont_report.tokens_per_sec;
    let int8_stream_match = matching as f64 / continuous.len() as f64;
    assert!(
        speedup > 1.0,
        "continuous batching ({:.1} tok/s) must beat naive re-prefill ({:.1} tok/s)",
        cont_report.tokens_per_sec,
        naive_report.tokens_per_sec
    );

    let rows = vec![
        row("continuous batching", &cont_report),
        row("continuous + int8 weights", &int8_report),
        row("naive re-prefill", &naive_report),
    ];
    print_table(
        &format!("Generative decode ({model_name}, {requests} mixed-length requests)"),
        &["mode", "tokens", "wall s", "tok/s", "ttft mean ms", "ttft p50 ms", "ttft max ms"],
        &rows,
    );
    println!("\nspeedup (tokens/sec): {speedup:.2}x");
    println!(
        "int8 vs f32 continuous: {int8_vs_f32:.2}x tokens/sec, {matching}/{} streams \
         greedy-identical",
        continuous.len()
    );

    if smoke {
        println!("smoke OK");
        return;
    }

    let report = DecodeBenchReport {
        bench: "serving_decode",
        model: model_name,
        requests,
        continuous: cont_report,
        naive: naive_report,
        int8: int8_report,
        speedup,
        int8_vs_f32,
        int8_stream_match,
    };
    write_outputs(&report, &jobs);
}

/// Mixed prompt/completion lengths, every request submitted at t=0.
/// Lengths are chosen so `prompt + max_new + 1 <= max_position`: the
/// length cap never binds and both modes generate exactly `max_new`
/// tokens, keeping the output-equality check tight.
fn workload(config: &GptConfig, requests: usize) -> Vec<Job> {
    (0..requests)
        .map(|i| {
            let prompt_len = 2 + (i * 3) % 7;
            let budget = config.max_position - prompt_len - 1;
            let max_new = (4 + (i * 5) % 17).min(budget);
            let prompt = (0..prompt_len as u32).map(|t| (t * 7 + i as u32) % 17 + 1).collect();
            Job { prompt, max_new }
        })
        .collect()
}

/// Serve the workload through the continuous-batching engine: all
/// requests submitted together, one reader thread per stream stamping
/// TTFT at its first token event.
fn run_continuous(model: Gpt, jobs: &[Job]) -> (Vec<Served>, Duration) {
    let costs = Arc::new(CachedCost::from_fn(64, 16, 8, |len, b| 1.0e-6 * (len * b) as f64));
    let config = GenConfig {
        kv: DecodeConfig { page_slots: 8, num_pages: 1024 },
        max_active: jobs.len().max(1),
        max_new_tokens: 256,
        eos_token: None,
    };
    let engine = GenEngine::start(model, config, costs);

    let start = Instant::now();
    let mut readers = Vec::new();
    for job in jobs {
        let rx = engine.client().generate(job.prompt.clone(), job.max_new).expect("submit");
        readers.push(std::thread::spawn(move || {
            let mut tokens = Vec::new();
            let mut ttft = None;
            for ev in rx.iter() {
                match ev {
                    TokenEvent::Token { token, .. } => {
                        ttft.get_or_insert_with(|| start.elapsed());
                        tokens.push(token);
                    }
                    TokenEvent::Done { finish, .. } => {
                        assert_eq!(finish, FinishReason::Length, "healthy stream");
                        break;
                    }
                }
            }
            Served { tokens, ttft: ttft.expect("stream produced a token") }
        }));
    }
    let served: Vec<Served> = readers.into_iter().map(|r| r.join().expect("reader")).collect();
    let wall = start.elapsed();

    let summary = engine.shutdown();
    assert_eq!(summary.pages_leaked, 0, "continuous mode leaked KV pages");
    (served, wall)
}

/// The baseline every generative server starts as: requests served one at
/// a time, and each new token recomputes the whole prefix from scratch —
/// O(prefix · model) per token, with later requests inheriting the whole
/// queue in their TTFT.
fn run_naive(model: &Gpt, jobs: &[Job]) -> (Vec<Served>, Duration) {
    let start = Instant::now();
    let served = jobs
        .iter()
        .map(|job| {
            let mut context = job.prompt.clone();
            let mut tokens = Vec::new();
            let mut ttft = None;
            for _ in 0..job.max_new {
                // A fresh arena per token: nothing is ever reused.
                let mut arena = PagedKvArena::new(model.kv_config(8, 64));
                let seq = arena.admit(context.len()).expect("bench arena sized for the prompt");
                let logits = model.prefill_paged(&mut arena, seq, &context).expect("prefill");
                let next = tt_tensor::ops::argmax(&logits).expect("non-empty logits") as u32;
                ttft.get_or_insert_with(|| start.elapsed());
                tokens.push(next);
                context.push(next);
            }
            Served { tokens, ttft: ttft.expect("generated at least one token") }
        })
        .collect();
    (served, start.elapsed())
}

fn mode_report(served: &[Served], wall: Duration) -> ModeReport {
    let tokens: usize = served.iter().map(|s| s.tokens.len()).sum();
    let mut ttft = LatencyStats::new();
    for s in served {
        ttft.record(s.ttft.as_secs_f64());
    }
    ModeReport {
        tokens,
        wall_s: wall.as_secs_f64(),
        tokens_per_sec: tokens as f64 / wall.as_secs_f64(),
        ttft_ms_mean: ttft.mean() * 1e3,
        ttft_ms_p50: ttft.percentile(50.0) * 1e3,
        ttft_ms_max: ttft.max() * 1e3,
    }
}

fn row(name: &str, r: &ModeReport) -> Vec<String> {
    vec![
        name.to_string(),
        r.tokens.to_string(),
        format!("{:.4}", r.wall_s),
        format!("{:.1}", r.tokens_per_sec),
        format!("{:.3}", r.ttft_ms_mean),
        format!("{:.3}", r.ttft_ms_p50),
        format!("{:.3}", r.ttft_ms_max),
    ]
}

fn write_outputs(report: &DecodeBenchReport, jobs: &[Job]) {
    let mut md = String::new();
    let _ = writeln!(md, "# Generative decode benchmark (`serving_decode`)\n");
    let prompt_lens: Vec<String> = jobs.iter().map(|j| j.prompt.len().to_string()).collect();
    let max_news: Vec<String> = jobs.iter().map(|j| j.max_new.to_string()).collect();
    let _ = writeln!(
        md,
        "{} requests over `{}`, all submitted at t=0, greedy decoding. Prompt \
         lengths: {}. Completion lengths: {}. Both modes produce token-identical \
         outputs (asserted): the gap is scheduling and KV reuse, not numerics — \
         see `docs/GENERATION.md`.\n",
        report.requests,
        report.model,
        prompt_lens.join("/"),
        max_news.join("/"),
    );
    let _ = writeln!(
        md,
        "| mode | tokens | wall s | tok/s | ttft mean ms | ttft p50 ms | ttft max ms |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|");
    for (name, r) in [
        ("continuous batching", &report.continuous),
        ("continuous + int8 weights", &report.int8),
        ("naive re-prefill", &report.naive),
    ] {
        let _ = writeln!(
            md,
            "| {name} | {} | {:.4} | {:.1} | {:.3} | {:.3} | {:.3} |",
            r.tokens, r.wall_s, r.tokens_per_sec, r.ttft_ms_mean, r.ttft_ms_p50, r.ttft_ms_max
        );
    }
    let _ = writeln!(
        md,
        "\n**Speedup: {:.2}x tokens/sec.** The naive baseline re-runs an \
         O(prefix) prefill for every token and serves serially, so its TTFT \
         tail is the whole queue ahead of a request; continuous batching \
         decodes every active sequence each iteration against the paged KV \
         cache and admits waiting prompts at token boundaries.\n\n\
         With int8 weight-only quantization on top of continuous batching \
         (same seed, same schedule), decode throughput is **{:.2}x** the f32 \
         run and {:.0}% of streams stayed greedy-identical to f32 — the \
         int8 path trades bounded per-logit error (`docs/KERNELS.md`) for \
         4x less weight traffic per GEMV.\n\n\
         Machine-readable: `BENCH_decode.json` at the repo root.",
        report.speedup,
        report.int8_vs_f32,
        report.int8_stream_match * 100.0,
    );
    let _ = std::fs::create_dir_all("results");
    std::fs::write("results/serving_decode.md", md).expect("write results/serving_decode.md");

    let json = serde_json::to_string(report).expect("serialize BENCH_decode.json");
    std::fs::write("BENCH_decode.json", json).expect("write BENCH_decode.json");
    println!("\nwrote results/serving_decode.md and BENCH_decode.json");
}
