//! Validation of the GEMM cost model: the instruction-level tiled-kernel
//! simulation vs the flat-efficiency roofline the runtime uses, across the
//! shapes BERT serving actually issues.

use tt_bench::{fmt_time, print_table};
use tt_gpusim::cost::{gemm_time, GEMM_EFFICIENCY};
use tt_gpusim::device::DeviceKind;
use tt_gpusim::gemm::{effective_efficiency, gemm_kernel_time};

fn main() {
    for device in [DeviceKind::V100, DeviceKind::RTX2060] {
        let dev = device.config();
        let mut rows = Vec::new();
        // (label, batch, m, k, n): QKV projection at several token counts,
        // attention score product, FFN, and a huge square reference.
        let shapes: [(&str, usize, usize, usize, usize); 7] = [
            ("QKV proj, 10 tokens", 1, 10, 768, 768),
            ("QKV proj, 128 tokens", 1, 128, 768, 768),
            ("QKV proj, 2560 tokens", 1, 2560, 768, 768),
            ("scores, b20 s128", 240, 128, 64, 128),
            ("FFN1, 2560 tokens", 1, 2560, 768, 3072),
            ("decoder token step", 1, 4, 1024, 1024),
            ("square 2048³", 1, 2048, 2048, 2048),
        ];
        for (label, b, m, k, n) in shapes {
            let sim = gemm_kernel_time(&dev, b, m, k, n);
            let roofline = gemm_time(&dev, b, m, k, n);
            let eff = effective_efficiency(&dev, b, m, k, n);
            rows.push(vec![
                label.to_string(),
                fmt_time(sim),
                fmt_time(roofline),
                format!("{:.2}x", sim / roofline),
                format!("{:.1}%", eff * 100.0),
            ]);
        }
        print_table(
            &format!(
                "GEMM: tiled-kernel simulation vs roofline (η = {GEMM_EFFICIENCY}) on {}",
                dev.name
            ),
            &["shape", "kernel sim", "roofline", "ratio", "simulated η"],
            &rows,
        );
    }
    println!("\nLarge compute-bound shapes land near the assumed efficiency; tiny");
    println!("token counts collapse to launch/latency-bound — the regime where the");
    println!("paper's batching (Fig. 8) and fusion pay off.");
}
