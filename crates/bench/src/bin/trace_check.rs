//! CI validator for `results/trace.json`, the Chrome trace-event file the
//! `serving_http` bench exports.
//!
//! Checks, in order:
//!
//! 1. the file parses as JSON and has the Chrome trace-event envelope
//!    (`displayTimeUnit`, non-empty `traceEvents` of complete `ph:"X"`
//!    events);
//! 2. the serving pipeline's span vocabulary is present — `http`,
//!    `queue_wait`, `schedule`, `execute`, `alloc_plan` and at least one
//!    per-op span (`matmul`) — i.e. the trace actually covers accept →
//!    admission → scheduling → allocation → execution;
//! 3. every span tree is well-formed: each non-root span's parent exists
//!    in the same trace and child intervals nest inside their parent's
//!    (checked on the exact `start_ns`/`dur_ns` the exporter carries in
//!    `args`, not the µs-rounded `ts`/`dur`).
//!
//! Exits non-zero with a reason on any violation; prints a one-line
//! summary on success. Run it right after
//! `TT_TRACE_SAMPLE=1 serving_http --smoke`.

use serde::json::{parse, Value};

/// Span names that must appear for the trace to count as end-to-end.
const REQUIRED_SPANS: &[&str] =
    &["http", "queue_wait", "schedule", "execute", "alloc_plan", "matmul"];

fn fail(reason: &str) -> ! {
    eprintln!("trace_check FAILED: {reason}");
    std::process::exit(1)
}

fn str_field<'v>(event: &'v Value, key: &str) -> &'v str {
    event
        .get(key)
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| fail(&format!("event missing string field {key:?}")))
}

fn num_field(event: &Value, key: &str) -> f64 {
    event
        .get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| fail(&format!("event missing numeric field {key:?}")))
}

/// One event, reduced to what the tree checks need.
struct Span {
    trace: String,
    span: String,
    parent: Option<String>,
    name: String,
    start_ns: f64,
    end_ns: f64,
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "results/trace.json".to_string());
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc = parse(&raw).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e:?}")));

    // 1. Envelope.
    if doc.get("displayTimeUnit").and_then(|v| v.as_str()) != Some("ms") {
        fail("missing displayTimeUnit: \"ms\"");
    }
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .unwrap_or_else(|| fail("missing traceEvents array"));
    if events.is_empty() {
        fail("traceEvents is empty — the smoke run recorded no spans");
    }

    let mut spans = Vec::with_capacity(events.len());
    for event in events {
        if str_field(event, "ph") != "X" {
            fail("every exported event must be a complete ('X') event");
        }
        num_field(event, "pid");
        num_field(event, "tid");
        let ts = num_field(event, "ts");
        let dur = num_field(event, "dur");
        if ts < 0.0 || dur < 0.0 {
            fail("ts/dur must be non-negative");
        }
        let args = event.get("args").unwrap_or_else(|| fail("event missing args"));
        let parent = match args.get("parent_id") {
            None => fail("args missing parent_id"),
            Some(v) if v.is_null() => None,
            Some(v) => Some(
                v.as_str()
                    .unwrap_or_else(|| fail("parent_id must be null or a string"))
                    .to_string(),
            ),
        };
        let start_ns = num_field(args, "start_ns");
        spans.push(Span {
            trace: str_field(args, "trace_id").to_string(),
            span: str_field(args, "span_id").to_string(),
            parent,
            name: str_field(event, "name").to_string(),
            start_ns,
            end_ns: start_ns + num_field(args, "dur_ns"),
        });
    }

    // 2. Pipeline coverage.
    for required in REQUIRED_SPANS {
        if !spans.iter().any(|s| s.name == *required) {
            fail(&format!("required span {required:?} is missing from the trace"));
        }
    }

    // 3. Tree well-formedness, per trace.
    for span in &spans {
        let Some(parent_id) = &span.parent else { continue };
        let parent = spans
            .iter()
            .find(|p| p.trace == span.trace && &p.span == parent_id)
            .unwrap_or_else(|| {
                fail(&format!(
                    "span {} ({}) in trace {} has a dangling parent {}",
                    span.span, span.name, span.trace, parent_id
                ))
            });
        if span.start_ns < parent.start_ns || span.end_ns > parent.end_ns {
            fail(&format!(
                "span {} ({}) [{}, {}] does not nest in parent {} ({}) [{}, {}]",
                span.span,
                span.name,
                span.start_ns,
                span.end_ns,
                parent.span,
                parent.name,
                parent.start_ns,
                parent.end_ns
            ));
        }
    }

    let traces: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.trace.as_str()).collect();
    println!(
        "trace_check OK: {} events across {} traces, all required spans present, all trees nest",
        spans.len(),
        traces.len()
    );
}
