//! Extension experiment: FP16 (tensor-core) execution — the released
//! TurboTransformers' half-precision mode, beyond the paper's FP32
//! evaluation. Models halved DRAM traffic and tensor-core GEMM throughput.

use tt_bench::{fmt_speedup, fmt_time, print_table};
use tt_gpusim::device::DeviceKind;
use tt_model::bert::BertConfig;
use tt_model::decoder::Seq2SeqDecoderConfig;
use tt_runtime::{RuntimeConfig, TurboRuntime};

fn main() {
    let cfg = BertConfig::base();
    for device in [DeviceKind::V100, DeviceKind::RTX2060] {
        let fp32 = TurboRuntime::new(RuntimeConfig::turbo(device));
        let fp16 = TurboRuntime::new(RuntimeConfig::turbo(device).fp16());
        let mut rows = Vec::new();
        for &(batch, seq) in &[(1usize, 10usize), (1, 100), (1, 500), (20, 100), (20, 500)] {
            let t32 = fp32.bert_cost(&cfg, batch, seq, batch > 1);
            let t16 = fp16.bert_cost(&cfg, batch, seq, batch > 1);
            rows.push(vec![
                format!("({batch}, {seq})"),
                fmt_time(t32),
                fmt_time(t16),
                fmt_speedup(t32 / t16),
            ]);
        }
        print_table(
            &format!("FP32 vs FP16 BERT-base inference on {}", device.config().name),
            &["(batch, seq)", "FP32", "FP16", "speedup"],
            &rows,
        );
    }

    // Decoding: memory-bound weight streaming halves → near-2× even at
    // batch 1, where tensor cores barely matter.
    let dcfg = Seq2SeqDecoderConfig::base();
    let fp32 = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
    let fp16 = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060).fp16());
    let t32 = fp32.decoder_cost(&dcfg, 100, 120);
    let t16 = fp16.decoder_cost(&dcfg, 100, 120);
    println!(
        "\nSeq2Seq decoding (src 100 → tgt 120, beam 4, RTX 2060): {} → {} ({})",
        fmt_time(t32),
        fmt_time(t16),
        fmt_speedup(t32 / t16)
    );
    println!("\nSmall shapes stay launch-bound (speedup ≈ 1); large batches approach the");
    println!("compute/bandwidth gain. Decoding sits in between: weight streaming halves.");
}
