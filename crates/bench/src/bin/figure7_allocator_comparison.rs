//! Paper Figure 7: memory footprint and allocation traffic of the
//! sequence-length-aware allocator vs the GSOC planner over 50
//! variable-length BERT requests — plus the PyTorch-style caching allocator
//! plateau the paper quotes in the text (~1.1 GB vs ≤ 540 MB).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tt_alloc::caching::CachingAllocator;
use tt_alloc::gsoc::GsocAllocator;
use tt_alloc::sim::replay;
use tt_alloc::{validate_plan, TurboAllocator, TurboConfig};
use tt_bench::print_table;
use tt_graph::lifetime::activation_lifetimes;
use tt_model::bert::{graph_skeleton, BertConfig};

const MB: f64 = 1048576.0;

fn main() {
    let cfg = BertConfig::base();
    let mut rng = StdRng::seed_from_u64(0xF167);
    let lengths: Vec<usize> = (0..50).map(|_| rng.random_range(5..=500)).collect();

    let mut turbo = TurboAllocator::new(TurboConfig::default());
    let mut gsoc = GsocAllocator::new();
    let mut caching = CachingAllocator::new();

    let mut rows = Vec::new();
    let mut turbo_new_total = 0usize;
    let mut gsoc_new_total = 0usize;
    let mut turbo_peak = 0usize;
    let mut gsoc_peak = 0usize;
    let mut caching_final = 0usize;

    for (i, &len) in lengths.iter().enumerate() {
        let bound = graph_skeleton(&cfg, 1, len, false);
        let (usages, _) = activation_lifetimes(&bound.graph);

        let plan_t = turbo.plan(&usages);
        validate_plan(&usages, &plan_t).expect("turbo plan safe");
        let st = turbo.last_stats();

        let plan_g = gsoc.plan(&usages);
        validate_plan(&usages, &plan_g).expect("gsoc plan safe");
        let sg = gsoc.last_stats();

        let rep = replay(&mut caching, &usages);

        turbo_new_total += st.new_bytes;
        gsoc_new_total += sg.new_bytes;
        turbo_peak = turbo_peak.max(st.footprint);
        gsoc_peak = gsoc_peak.max(sg.footprint);
        caching_final = rep.final_reserved;

        if i < 10 || i % 10 == 9 {
            rows.push(vec![
                (i + 1).to_string(),
                len.to_string(),
                format!("{:.2}", st.footprint as f64 / MB),
                format!("{:.2}", st.new_bytes as f64 / MB),
                format!("{:.2}", sg.footprint as f64 / MB),
                format!("{:.2}", sg.new_bytes as f64 / MB),
                format!("{:.2}", rep.final_reserved as f64 / MB),
            ]);
        }
    }

    print_table(
        "Figure 7 — allocators over 50 variable-length BERT requests (MB)",
        &[
            "req",
            "len",
            "turbo footprint",
            "turbo new",
            "GSOC footprint",
            "GSOC new",
            "caching reserved",
        ],
        &rows,
    );

    let n = lengths.len() as f64;
    println!("\nAverages over {} requests:", lengths.len());
    println!(
        "  newly allocated per request: turbo {:.2} MB vs GSOC {:.2} MB   (paper: 0.70 MB vs 2.78 MB)",
        turbo_new_total as f64 / n / MB,
        gsoc_new_total as f64 / n / MB,
    );
    println!(
        "  peak activation footprint:  turbo {:.2} MB vs GSOC {:.2} MB",
        turbo_peak as f64 / MB,
        gsoc_peak as f64 / MB,
    );
    println!(
        "  caching-pool reserved after warm-up: {:.2} MB (graph-oblivious; paper quotes PyTorch ≈ 1.1 GB total vs ≤ 540 MB for Turbo, both including 534 MB of parameters)",
        caching_final as f64 / MB,
    );
}
