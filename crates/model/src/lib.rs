//! # tt-model — the transformer model zoo of the paper's evaluation
//!
//! Paper Table 3 evaluates three networks; all are built here from
//! `tt-kernels` + `tt-graph`:
//!
//! | model | paper parameters | here |
//! |---|---|---|
//! | BERT | 12 layers, 12 heads, head dim 64 | [`bert::Bert`] (BERT-base: model dim 768, FFN 3072) |
//! | ALBERT | 12 layers, 12 heads, head dim 64 | [`albert::Albert`] (cross-layer weight sharing + factorized embedding) |
//! | Seq2Seq decoder | 6 layers, 16 heads, head dim 64, beam 4, max target 500 | [`decoder::Seq2SeqDecoder`] (KV-cached incremental decoding + beam search) |
//!
//! Beyond the paper's evaluation set, [`seq2seq::TranslationModel`] closes
//! the encoder–decoder loop of paper Fig. 1, and [`gpt::Gpt`] adds the
//! GPT-2-style decoder-only family the paper's introduction motivates
//! (pre-LN blocks, causal KV-cached generation, greedy/top-k sampling).
//!
//! Each encoder model offers two execution surfaces:
//!
//! - **eager forward** (`forward`) — a direct kernel-by-kernel
//!   implementation, the numerical oracle;
//! - **graph builder** (`build_graph`) — emits the fused computation graph
//!   (paper Fig. 3) bound to the model's weights, which `tt-runtime`
//!   interprets with planned arena memory, fuses/de-fuses for baseline
//!   variants, and prices on the GPU cost model.
//!
//! Weights are deterministic seeded Xavier-style random values: the paper's
//! experiments measure *performance*, never task accuracy, so no pretrained
//! checkpoints are required (see DESIGN.md substitution table).

pub mod albert;
pub mod bert;
pub mod bound;
pub mod checkpoint;
pub mod decoder;
pub mod encoder_layer;
pub mod gpt;
pub mod program;
pub mod seq2seq;
pub mod tokenizer;
pub mod weights;

pub use bound::{BoundGraph, InputBinding};
pub use program::Program;

use tt_tensor::Tensor;

/// Pack token-id rows (one per request) into a `[batch, max_len]` f32 id
/// tensor plus the `[batch, max_len]` additive attention mask, zero-padding
/// short rows — the serving framework's batching primitive.
///
/// Returns `(ids, mask, max_len)`. The mask is `0.0` on valid positions and
/// `-inf` on padding.
pub fn pad_batch(rows: &[&[u32]]) -> (Tensor, Tensor, usize) {
    let batch = rows.len();
    let max_len = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut ids = vec![0.0f32; batch * max_len];
    let mut mask = vec![f32::NEG_INFINITY; batch * max_len];
    for (b, row) in rows.iter().enumerate() {
        for (s, &tok) in row.iter().enumerate() {
            ids[b * max_len + s] = tok as f32;
            mask[b * max_len + s] = 0.0;
        }
    }
    (
        Tensor::from_vec([batch, max_len], ids).expect("sized above"),
        Tensor::from_vec([batch, max_len], mask).expect("sized above"),
        max_len,
    )
}

/// Build a `[batch, len]` id tensor from equal-length rows (no padding).
pub fn ids_batch(rows: &[&[u32]]) -> Tensor {
    let batch = rows.len();
    let len = rows.first().map_or(0, |r| r.len());
    assert!(rows.iter().all(|r| r.len() == len), "ids_batch requires equal lengths; use pad_batch");
    let data = rows.iter().flat_map(|r| r.iter().map(|&t| t as f32)).collect();
    Tensor::from_vec([batch, len], data).expect("sized above")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_batch_pads_and_masks() {
        let (ids, mask, max_len) = pad_batch(&[&[1, 2, 3], &[7]]);
        assert_eq!(max_len, 3);
        assert_eq!(ids.shape().dims(), &[2, 3]);
        assert_eq!(ids.as_slice(), &[1.0, 2.0, 3.0, 7.0, 0.0, 0.0]);
        assert_eq!(mask.as_slice()[..4], [0.0, 0.0, 0.0, 0.0]);
        assert_eq!(mask.as_slice()[4], f32::NEG_INFINITY);
        assert_eq!(mask.as_slice()[5], f32::NEG_INFINITY);
    }

    #[test]
    fn ids_batch_builds_dense_tensor() {
        let t = ids_batch(&[&[5, 6], &[7, 8]]);
        assert_eq!(t.shape().dims(), &[2, 2]);
        assert_eq!(t.as_slice(), &[5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn ids_batch_rejects_ragged_rows() {
        ids_batch(&[&[1, 2], &[3]]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (ids, mask, max_len) = pad_batch(&[]);
        assert_eq!(max_len, 0);
        assert!(ids.is_empty());
        assert!(mask.is_empty());
    }
}
