//! Deterministic seeded weight initialization.
//!
//! Performance experiments never look at task accuracy, so weights are
//! Xavier-uniform random values from a seeded PRNG — the same seed always
//! yields bit-identical models, which keeps cross-runtime numerical
//! comparisons meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tt_tensor::{Q8Matrix, Tensor, Trans};

/// Seeded weight factory.
#[derive(Debug)]
pub struct WeightInit {
    rng: StdRng,
}

impl WeightInit {
    /// Create a factory from a seed.
    pub fn new(seed: u64) -> Self {
        WeightInit { rng: StdRng::seed_from_u64(seed) }
    }

    /// Xavier-uniform matrix `[fan_in, fan_out]`.
    pub fn linear(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::from_fn([fan_in, fan_out], |_| self.rng.random_range(-bound..bound))
    }

    /// Zero bias `[n]`.
    pub fn bias(&mut self, n: usize) -> Tensor {
        Tensor::zeros([n])
    }

    /// LayerNorm gain, ones `[n]`.
    pub fn gamma(&mut self, n: usize) -> Tensor {
        Tensor::full([n], 1.0)
    }

    /// LayerNorm shift, zeros `[n]`.
    pub fn beta(&mut self, n: usize) -> Tensor {
        Tensor::zeros([n])
    }

    /// Embedding table `[rows, hidden]`, small-variance normal-ish values
    /// (uniform is fine for performance work).
    pub fn embedding(&mut self, rows: usize, hidden: usize) -> Tensor {
        Tensor::from_fn([rows, hidden], |_| self.rng.random_range(-0.05..0.05))
    }
}

/// Whether int8 weight-only quantization is requested for this process
/// (`TT_GEMM_INT8=1`). Models consult this at construction time to decide
/// which linear weights get a [`Q8Matrix`] sidecar.
pub fn int8_enabled() -> bool {
    std::env::var("TT_GEMM_INT8").map(|v| v == "1" || v.eq_ignore_ascii_case("true")) == Ok(true)
}

/// A flat, indexable store of model weights; graph weight tensors bind to
/// indices in this store.
///
/// Each f32 weight may carry an optional int8 sidecar ([`Q8Matrix`],
/// per-output-channel scales, f32 accumulate). GEMM call sites that find a
/// sidecar route through `sgemm_q8` — the bandwidth-bound decode GEMVs read
/// a quarter of the bytes; the f32 original stays resident as the
/// numerical reference.
#[derive(Debug, Default)]
pub struct WeightStore {
    tensors: Vec<Tensor>,
    quantized: Vec<Option<Q8Matrix>>,
}

impl WeightStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a weight, returning its index.
    pub fn push(&mut self, t: Tensor) -> usize {
        self.tensors.push(t);
        self.quantized.push(None);
        self.tensors.len() - 1
    }

    /// Get a weight by index.
    pub fn get(&self, idx: usize) -> &Tensor {
        &self.tensors[idx]
    }

    /// Build the int8 sidecar for a 2-D weight. `trans` declares the
    /// storage layout: `Trans::No` for a `[k, n]` linear weight,
    /// `Trans::Yes` for an `[n, k]` matrix multiplied transposed (the tied
    /// embedding used as the GPT lm head).
    pub fn quantize(&mut self, idx: usize, trans: Trans) {
        let t = &self.tensors[idx];
        let dims = t.shape().dims();
        assert_eq!(dims.len(), 2, "only 2-D weights can be quantized, got {dims:?}");
        let (k, n) = match trans {
            Trans::No => (dims[0], dims[1]),
            Trans::Yes => (dims[1], dims[0]),
        };
        self.quantized[idx] = Some(Q8Matrix::quantize(t.as_slice(), k, n, trans));
    }

    /// The int8 sidecar of a weight, if one was built.
    pub fn quant(&self, idx: usize) -> Option<&Q8Matrix> {
        self.quantized.get(idx).and_then(|q| q.as_ref())
    }

    /// Number of weights carrying an int8 sidecar.
    pub fn quantized_count(&self) -> usize {
        self.quantized.iter().filter(|q| q.is_some()).count()
    }

    /// Number of stored weights.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total parameter bytes (f32 masters only).
    pub fn bytes(&self) -> usize {
        self.tensors.iter().map(|t| t.len() * 4).sum()
    }

    /// Total int8 sidecar bytes.
    pub fn quantized_bytes(&self) -> usize {
        self.quantized.iter().flatten().map(|q| q.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = WeightInit::new(42).linear(16, 16);
        let b = WeightInit::new(42).linear(16, 16);
        assert_eq!(a, b);
        let c = WeightInit::new(43).linear(16, 16);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_bound_is_respected() {
        let t = WeightInit::new(1).linear(100, 100);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= bound));
        // And values actually spread out (not all zero).
        let spread = t.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(spread > bound * 0.5);
    }

    #[test]
    fn store_round_trips() {
        let mut s = WeightStore::new();
        let i = s.push(Tensor::full([2, 2], 3.0));
        assert_eq!(s.get(i).as_slice(), &[3.0; 4]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.bytes(), 16);
    }

    #[test]
    fn quantized_sidecar_is_optional_and_layout_aware() {
        let mut s = WeightStore::new();
        let w = s.push(WeightInit::new(3).linear(8, 12)); // [k=8, n=12]
        let e = s.push(WeightInit::new(4).embedding(10, 8)); // [n=10, k=8] as lm head
        assert!(s.quant(w).is_none() && s.quant(e).is_none());
        assert_eq!(s.quantized_count(), 0);

        s.quantize(w, Trans::No);
        s.quantize(e, Trans::Yes);
        assert_eq!(s.quantized_count(), 2);
        let qw = s.quant(w).unwrap();
        assert_eq!((qw.k, qw.n), (8, 12));
        let qe = s.quant(e).unwrap();
        assert_eq!((qe.k, qe.n), (8, 10));
        assert!(s.quantized_bytes() > 0);
        // 1 byte/weight + 4 bytes/channel of scales; on these tiny matrices
        // the scale vectors keep it just over 1/3 of the f32 footprint.
        assert!(s.quantized_bytes() < s.bytes() / 2, "sidecars are ~1/4 of f32 + scales");
    }
}
