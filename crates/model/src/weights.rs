//! Deterministic seeded weight initialization.
//!
//! Performance experiments never look at task accuracy, so weights are
//! Xavier-uniform random values from a seeded PRNG — the same seed always
//! yields bit-identical models, which keeps cross-runtime numerical
//! comparisons meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tt_tensor::Tensor;

/// Seeded weight factory.
#[derive(Debug)]
pub struct WeightInit {
    rng: StdRng,
}

impl WeightInit {
    /// Create a factory from a seed.
    pub fn new(seed: u64) -> Self {
        WeightInit { rng: StdRng::seed_from_u64(seed) }
    }

    /// Xavier-uniform matrix `[fan_in, fan_out]`.
    pub fn linear(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::from_fn([fan_in, fan_out], |_| self.rng.random_range(-bound..bound))
    }

    /// Zero bias `[n]`.
    pub fn bias(&mut self, n: usize) -> Tensor {
        Tensor::zeros([n])
    }

    /// LayerNorm gain, ones `[n]`.
    pub fn gamma(&mut self, n: usize) -> Tensor {
        Tensor::full([n], 1.0)
    }

    /// LayerNorm shift, zeros `[n]`.
    pub fn beta(&mut self, n: usize) -> Tensor {
        Tensor::zeros([n])
    }

    /// Embedding table `[rows, hidden]`, small-variance normal-ish values
    /// (uniform is fine for performance work).
    pub fn embedding(&mut self, rows: usize, hidden: usize) -> Tensor {
        Tensor::from_fn([rows, hidden], |_| self.rng.random_range(-0.05..0.05))
    }
}

/// A flat, indexable store of model weights; graph weight tensors bind to
/// indices in this store.
#[derive(Debug, Default)]
pub struct WeightStore {
    tensors: Vec<Tensor>,
}

impl WeightStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a weight, returning its index.
    pub fn push(&mut self, t: Tensor) -> usize {
        self.tensors.push(t);
        self.tensors.len() - 1
    }

    /// Get a weight by index.
    pub fn get(&self, idx: usize) -> &Tensor {
        &self.tensors[idx]
    }

    /// Number of stored weights.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total parameter bytes.
    pub fn bytes(&self) -> usize {
        self.tensors.iter().map(|t| t.len() * 4).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = WeightInit::new(42).linear(16, 16);
        let b = WeightInit::new(42).linear(16, 16);
        assert_eq!(a, b);
        let c = WeightInit::new(43).linear(16, 16);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_bound_is_respected() {
        let t = WeightInit::new(1).linear(100, 100);
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= bound));
        // And values actually spread out (not all zero).
        let spread = t.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(spread > bound * 0.5);
    }

    #[test]
    fn store_round_trips() {
        let mut s = WeightStore::new();
        let i = s.push(Tensor::full([2, 2], 3.0));
        assert_eq!(s.get(i).as_slice(), &[3.0; 4]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.bytes(), 16);
    }
}
