//! ALBERT (Lan et al.) — BERT with cross-layer weight sharing and a
//! factorized embedding.
//!
//! Both tricks matter for the serving system: weight sharing shrinks the
//! parameter footprint (one layer's weights serve all 12 layers), while the
//! factorized embedding inserts an extra projection GEMM the runtime must
//! schedule. Computation per token is the same as BERT, which is why paper
//! Figure 10's ALBERT latency curve tracks its BERT curve.

use tt_graph::{Graph, OpKind, TensorClass};
use tt_kernels as k;
use tt_tensor::{sgemm, GemmSpec, Tensor};

use crate::bound::{BoundGraph, InputBinding};
use crate::encoder_layer::{
    declare_layer_weights, emit_layer, encoder_layer_program, layer_forward_with, EncoderDims,
    EncoderLayerWeights,
};
use crate::weights::{WeightInit, WeightStore};

/// ALBERT hyper-parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AlbertConfig {
    /// Encoder layer *applications* (all sharing one weight set).
    pub num_layers: usize,
    /// Attention heads.
    pub num_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
    /// Factorized embedding dimension `E` (ALBERT-base: 128).
    pub embedding_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum sequence length.
    pub max_position: usize,
    /// LayerNorm epsilon.
    pub layer_norm_eps: f32,
}

impl AlbertConfig {
    /// ALBERT-base per paper Table 3 (12 layers, 12 heads, head dim 64).
    pub fn base() -> Self {
        AlbertConfig {
            num_layers: 12,
            num_heads: 12,
            head_dim: 64,
            ffn_dim: 3072,
            embedding_dim: 128,
            vocab_size: 30000,
            max_position: 512,
            layer_norm_eps: 1e-12,
        }
    }

    /// Small test config.
    pub fn tiny() -> Self {
        AlbertConfig {
            num_layers: 3,
            num_heads: 2,
            head_dim: 8,
            ffn_dim: 32,
            embedding_dim: 8,
            vocab_size: 89,
            max_position: 64,
            layer_norm_eps: 1e-6,
        }
    }

    /// Model (hidden) dimension.
    pub fn model_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }

    /// Shared layer dims.
    pub fn dims(&self) -> EncoderDims {
        EncoderDims {
            heads: self.num_heads,
            head_dim: self.head_dim,
            ffn_dim: self.ffn_dim,
            eps: self.layer_norm_eps,
        }
    }
}

/// An ALBERT model: config + (shared) weights.
#[derive(Debug)]
pub struct Albert {
    /// Hyper-parameters.
    pub config: AlbertConfig,
    store: WeightStore,
    word_emb: usize,
    pos_emb: usize,
    emb_proj: usize,
    emb_ln_gamma: usize,
    emb_ln_beta: usize,
    shared_layer: EncoderLayerWeights,
}

impl Albert {
    /// Build an ALBERT with seeded random weights.
    pub fn new_random(config: &AlbertConfig, seed: u64) -> Self {
        let mut store = WeightStore::new();
        let mut init = WeightInit::new(seed);
        let e = config.embedding_dim;
        let h = config.model_dim();
        let word_emb = store.push(init.embedding(config.vocab_size, e));
        let pos_emb = store.push(init.embedding(config.max_position, e));
        let emb_proj = store.push(init.linear(e, h));
        let emb_ln_gamma = store.push(init.gamma(h));
        let emb_ln_beta = store.push(init.beta(h));
        let shared_layer = EncoderLayerWeights::create(&mut store, &mut init, &config.dims());
        Albert {
            config: config.clone(),
            store,
            word_emb,
            pos_emb,
            emb_proj,
            emb_ln_gamma,
            emb_ln_beta,
            shared_layer,
        }
    }

    /// The weight store.
    pub fn weights(&self) -> &WeightStore {
        &self.store
    }

    /// Total parameter bytes — far below BERT's thanks to sharing.
    pub fn param_bytes(&self) -> usize {
        self.store.bytes()
    }

    /// Eager forward pass; see [`crate::bert::Bert::forward`].
    pub fn forward(&self, ids: &Tensor, mask: Option<&Tensor>) -> Tensor {
        let (batch, seq) = (ids.shape().dim(0), ids.shape().dim(1));
        let e = self.config.embedding_dim;
        let h = self.config.model_dim();
        let tokens = batch * seq;
        let ids_u32: Vec<u32> = ids.as_slice().iter().map(|&v| v as u32).collect();

        let mut emb = vec![0.0f32; tokens * e];
        k::embed(
            batch,
            seq,
            e,
            &ids_u32,
            self.store.get(self.word_emb).as_slice(),
            self.store.get(self.pos_emb).as_slice(),
            None,
            &mut emb,
        );
        // Factorized projection E → H.
        let mut x = vec![0.0f32; tokens * h];
        sgemm(GemmSpec::nn(tokens, e, h), &emb, self.store.get(self.emb_proj).as_slice(), &mut x);
        let mut normed = vec![0.0f32; x.len()];
        k::layer_norm(
            tokens,
            h,
            &x,
            self.store.get(self.emb_ln_gamma).as_slice(),
            self.store.get(self.emb_ln_beta).as_slice(),
            self.config.layer_norm_eps,
            &mut normed,
        );
        let mut x = normed;

        let dims = self.config.dims();
        let mask_slice = mask.map(|m| m.as_slice());
        let prog = encoder_layer_program(&dims, batch, seq, mask_slice.is_some());
        for _ in 0..self.config.num_layers {
            layer_forward_with(&prog, &self.store, &self.shared_layer, &mut x, mask_slice);
        }
        Tensor::from_vec([batch, seq, h], x).expect("sized by construction")
    }

    /// Build the fused graph; the shared weights are declared once and
    /// referenced by every layer (compare [`crate::bert::Bert::build_graph`]).
    pub fn build_graph(&self, batch: usize, seq: usize, masked: bool) -> BoundGraph {
        build_albert_graph(
            &self.config,
            self.word_emb,
            self.pos_emb,
            self.emb_proj,
            self.emb_ln_gamma,
            self.emb_ln_beta,
            &self.shared_layer,
            batch,
            seq,
            masked,
        )
    }
}

/// Build the ALBERT graph *skeleton* with fabricated weight indices — for
/// shape/cost analysis without touching a weight store (see
/// [`crate::bert::graph_skeleton`]).
pub fn graph_skeleton(config: &AlbertConfig, batch: usize, seq: usize, masked: bool) -> BoundGraph {
    let mut next = 5usize;
    let shared = EncoderLayerWeights::fabricate(&mut next);
    build_albert_graph(config, 0, 1, 2, 3, 4, &shared, batch, seq, masked)
}

/// Shared graph builder over explicit weight indices.
#[allow(clippy::too_many_arguments)]
fn build_albert_graph(
    config: &AlbertConfig,
    word_emb: usize,
    pos_emb: usize,
    emb_proj: usize,
    emb_ln_gamma: usize,
    emb_ln_beta: usize,
    shared_layer: &EncoderLayerWeights,
    batch: usize,
    seq: usize,
    masked: bool,
) -> BoundGraph {
    {
        assert!(seq <= config.max_position, "seq {seq} exceeds position table");
        let mut g = Graph::new();
        let mut bindings = Vec::new();
        let e = config.embedding_dim;
        let h = config.model_dim();

        let ids = g.add_tensor("ids", vec![batch, seq], TensorClass::Input);
        let mut inputs = vec![(ids, InputBinding::TokenIds)];
        let mask = if masked {
            let m = g.add_tensor("mask", vec![batch, seq], TensorClass::Input);
            inputs.push((m, InputBinding::AttentionMask));
            Some(m)
        } else {
            None
        };

        let word = g.add_tensor("word_emb", vec![config.vocab_size, e], TensorClass::Weight);
        bindings.push((word, word_emb));
        let pos = g.add_tensor("pos_emb", vec![config.max_position, e], TensorClass::Weight);
        bindings.push((pos, pos_emb));
        let proj = g.add_tensor("emb_proj", vec![e, h], TensorClass::Weight);
        bindings.push((proj, emb_proj));
        let gamma = g.add_tensor("emb_ln_gamma", vec![h], TensorClass::Weight);
        bindings.push((gamma, emb_ln_gamma));
        let beta = g.add_tensor("emb_ln_beta", vec![h], TensorClass::Weight);
        bindings.push((beta, emb_ln_beta));

        let emb = g.add_tensor("emb", vec![batch, seq, e], TensorClass::Activation);
        g.add_node(OpKind::Embedding, vec![ids, word, pos], emb);
        let projected = g.add_tensor("emb_projected", vec![batch, seq, h], TensorClass::Activation);
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![emb, proj], projected);
        let mut x = g.add_tensor("emb_normed", vec![batch, seq, h], TensorClass::Activation);
        g.add_node(
            OpKind::LayerNorm { eps: config.layer_norm_eps },
            vec![projected, gamma, beta],
            x,
        );

        let dims = config.dims();
        let w = declare_layer_weights(&mut g, &mut bindings, shared_layer, &dims, "shared");
        for i in 0..config.num_layers {
            x = emit_layer(&mut g, &w, &dims, batch, seq, x, mask, &format!("layer{i}"));
        }
        g.tensors[x].class = TensorClass::Output;
        g.tensors[x].name = "encoder_output".into();

        // Fine-grained emission → fusion pass → rebound fused graph.
        let fine = BoundGraph { graph: g, weights: bindings, inputs, output: x };
        let fused = tt_graph::fusion::fuse(&fine.graph);
        fine.rebind(fused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bert::{Bert, BertConfig};
    use crate::ids_batch;

    #[test]
    fn forward_shapes_are_model_dim() {
        let cfg = AlbertConfig::tiny();
        let m = Albert::new_random(&cfg, 3);
        let out = m.forward(&ids_batch(&[&[1, 2, 3]]), None);
        assert_eq!(out.shape().dims(), &[1, 3, cfg.model_dim()]);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn weight_sharing_shrinks_parameters() {
        // Same shape budget as BERT-tiny but one shared layer: fewer params
        // despite the extra projection matrix.
        let a = Albert::new_random(&AlbertConfig::tiny(), 0);
        let mut bert_cfg = BertConfig::tiny();
        bert_cfg.num_layers = AlbertConfig::tiny().num_layers;
        let b = Bert::new_random(&bert_cfg, 0);
        assert!(
            a.param_bytes() < b.param_bytes(),
            "ALBERT {} must be smaller than BERT {}",
            a.param_bytes(),
            b.param_bytes()
        );
    }

    #[test]
    fn graph_declares_weights_once_but_applies_layers_n_times() {
        let cfg = AlbertConfig::tiny();
        let m = Albert::new_random(&cfg, 1);
        let bg = m.build_graph(1, 5, false);
        // 5 embedding-side weights + 16 shared layer weights.
        assert_eq!(bg.weights.len(), 5 + 16);
        // 3 embedding-side nodes + 16 per layer application.
        assert_eq!(bg.graph.stats().nodes, 3 + 16 * cfg.num_layers);
        bg.graph.topo_order();
    }

    #[test]
    fn deeper_albert_costs_no_extra_weights() {
        let mut cfg = AlbertConfig::tiny();
        let small = Albert::new_random(&cfg, 2).param_bytes();
        cfg.num_layers = 12;
        let big = Albert::new_random(&cfg, 2).param_bytes();
        assert_eq!(small, big, "layer count must not affect parameter bytes");
    }
}
