//! One transformer encoder layer: fine-grained graph emission + a
//! program-backed forward.
//!
//! BERT and ALBERT share this module; ALBERT's cross-layer weight sharing
//! falls out naturally by emitting the same declared weight tensors for
//! every layer. [`emit_layer`] emits one node per *fine-grained* kernel —
//! the graph a training framework would execute — and every consumer
//! (graph builders, [`layer_forward`]) obtains the fused form by running
//! the `tt_graph::fusion` pass, never by hand-wiring fused kernels.

use tt_graph::{Graph, OpKind, TensorClass, TensorId};

use crate::program::Program;
use crate::weights::{WeightInit, WeightStore};

/// Dimensions of an encoder layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderDims {
    /// Attention heads.
    pub heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
    /// LayerNorm epsilon.
    pub eps: f32,
}

impl EncoderDims {
    /// Model (hidden) dimension = heads · head_dim.
    pub fn hidden(&self) -> usize {
        self.heads * self.head_dim
    }

    /// Attention score scale `1/√d`.
    pub fn scale(&self) -> f32 {
        1.0 / (self.head_dim as f32).sqrt()
    }
}

/// Weight-store indices of one encoder layer's parameters.
#[derive(Debug, Clone, Copy)]
pub struct EncoderLayerWeights {
    /// Q/K/V/output projection matrices `[hidden, hidden]`.
    pub wq: usize,
    /// Q bias.
    pub bq: usize,
    /// K projection.
    pub wk: usize,
    /// K bias.
    pub bk: usize,
    /// V projection.
    pub wv: usize,
    /// V bias.
    pub bv: usize,
    /// Attention output projection.
    pub wo: usize,
    /// Attention output bias.
    pub bo: usize,
    /// Post-attention LayerNorm gain.
    pub ln1_gamma: usize,
    /// Post-attention LayerNorm shift.
    pub ln1_beta: usize,
    /// FFN first matrix `[hidden, ffn]`.
    pub w1: usize,
    /// FFN first bias.
    pub b1: usize,
    /// FFN second matrix `[ffn, hidden]`.
    pub w2: usize,
    /// FFN second bias.
    pub b2: usize,
    /// Post-FFN LayerNorm gain.
    pub ln2_gamma: usize,
    /// Post-FFN LayerNorm shift.
    pub ln2_beta: usize,
}

impl EncoderLayerWeights {
    /// Fabricate index-only weights (no backing store) for graph skeletons
    /// used purely for shape/cost analysis.
    pub fn fabricate(next: &mut usize) -> Self {
        let mut take = || {
            let i = *next;
            *next += 1;
            i
        };
        EncoderLayerWeights {
            wq: take(),
            bq: take(),
            wk: take(),
            bk: take(),
            wv: take(),
            bv: take(),
            wo: take(),
            bo: take(),
            ln1_gamma: take(),
            ln1_beta: take(),
            w1: take(),
            b1: take(),
            w2: take(),
            b2: take(),
            ln2_gamma: take(),
            ln2_beta: take(),
        }
    }

    /// Allocate and initialize one layer's weights in the store.
    pub fn create(store: &mut WeightStore, init: &mut WeightInit, dims: &EncoderDims) -> Self {
        let h = dims.hidden();
        EncoderLayerWeights {
            wq: store.push(init.linear(h, h)),
            bq: store.push(init.bias(h)),
            wk: store.push(init.linear(h, h)),
            bk: store.push(init.bias(h)),
            wv: store.push(init.linear(h, h)),
            bv: store.push(init.bias(h)),
            wo: store.push(init.linear(h, h)),
            bo: store.push(init.bias(h)),
            ln1_gamma: store.push(init.gamma(h)),
            ln1_beta: store.push(init.beta(h)),
            w1: store.push(init.linear(h, dims.ffn_dim)),
            b1: store.push(init.bias(dims.ffn_dim)),
            w2: store.push(init.linear(dims.ffn_dim, h)),
            b2: store.push(init.bias(h)),
            ln2_gamma: store.push(init.gamma(h)),
            ln2_beta: store.push(init.beta(h)),
        }
    }
}

// ---------------------------------------------------------------------------
// Program-backed forward
// ---------------------------------------------------------------------------

/// Compile one encoder layer as a [`Program`]: fine-grained emission
/// followed by the fusion pass. The weight slot order matches
/// [`encoder_weight_table`].
pub fn encoder_layer_program(
    dims: &EncoderDims,
    batch: usize,
    seq: usize,
    masked: bool,
) -> Program {
    let mut g = Graph::new();
    let x = g.add_tensor("x", vec![batch, seq, dims.hidden()], TensorClass::Input);
    let mask = masked.then(|| g.add_tensor("mask", vec![batch, seq], TensorClass::Input));
    let mut bindings = Vec::new();
    let mut fabricated = 0usize;
    let lw = EncoderLayerWeights::fabricate(&mut fabricated);
    let w = declare_layer_weights(&mut g, &mut bindings, &lw, dims, "layer");
    let y = emit_layer(&mut g, &w, dims, batch, seq, x, mask, "layer");
    g.tensors[y].class = TensorClass::Output;
    let weight_ids: Vec<TensorId> = bindings.iter().map(|&(t, _)| t).collect();
    let mut input_ids = vec![x];
    if let Some(m) = mask {
        input_ids.push(m);
    }
    Program::compile(&g, &weight_ids, &input_ids, &[y])
}

/// The weight-index table binding one layer's store indices to the slots
/// of [`encoder_layer_program`] (i.e. [`declare_layer_weights`] order).
pub fn encoder_weight_table(lw: &EncoderLayerWeights) -> Vec<usize> {
    vec![
        lw.wq,
        lw.bq,
        lw.wk,
        lw.bk,
        lw.wv,
        lw.bv,
        lw.wo,
        lw.bo,
        lw.ln1_gamma,
        lw.ln1_beta,
        lw.w1,
        lw.b1,
        lw.w2,
        lw.b2,
        lw.ln2_gamma,
        lw.ln2_beta,
    ]
}

/// Run one encoder layer: `x` is `[batch, seq, hidden]` flat and is
/// replaced by the layer output. `mask` is the `[batch, seq]` additive
/// attention mask, if any.
///
/// The layer is compiled through the fusion pass and executed as a
/// [`Program`] — the fused bias+GELU / bias+residual+LayerNorm /
/// scale+mask+softmax kernels are issued by the pass, not hand-called.
pub fn layer_forward(
    store: &WeightStore,
    lw: &EncoderLayerWeights,
    dims: &EncoderDims,
    batch: usize,
    seq: usize,
    x: &mut Vec<f32>,
    mask: Option<&[f32]>,
) {
    assert_eq!(x.len(), batch * seq * dims.hidden(), "layer input size");
    let prog = encoder_layer_program(dims, batch, seq, mask.is_some());
    layer_forward_with(&prog, store, lw, x, mask);
}

/// [`layer_forward`] with a pre-compiled program (all layers of a model
/// share one compilation when their shapes agree).
pub fn layer_forward_with(
    prog: &Program,
    store: &WeightStore,
    lw: &EncoderLayerWeights,
    x: &mut Vec<f32>,
    mask: Option<&[f32]>,
) {
    let table = encoder_weight_table(lw);
    let mut ins: Vec<&[f32]> = vec![x.as_slice()];
    if let Some(m) = mask {
        ins.push(m);
    }
    let mut outs = prog.run(store, &table, &ins);
    *x = outs.pop().expect("one output slot");
}

// ---------------------------------------------------------------------------
// Graph emission
// ---------------------------------------------------------------------------

/// Graph tensor ids of one layer's declared weights.
#[derive(Debug, Clone, Copy)]
pub struct LayerGraphWeights {
    wq: TensorId,
    bq: TensorId,
    wk: TensorId,
    bk: TensorId,
    wv: TensorId,
    bv: TensorId,
    wo: TensorId,
    bo: TensorId,
    ln1_gamma: TensorId,
    ln1_beta: TensorId,
    w1: TensorId,
    b1: TensorId,
    w2: TensorId,
    b2: TensorId,
    ln2_gamma: TensorId,
    ln2_beta: TensorId,
}

/// Declare one layer's weight tensors in the graph and record their store
/// bindings. ALBERT calls this once and reuses the result for every layer.
pub fn declare_layer_weights(
    g: &mut Graph,
    bindings: &mut Vec<(TensorId, usize)>,
    lw: &EncoderLayerWeights,
    dims: &EncoderDims,
    prefix: &str,
) -> LayerGraphWeights {
    let h = dims.hidden();
    let mut decl = |name: &str, shape: Vec<usize>, store_idx: usize| {
        let t = g.add_tensor(format!("{prefix}.{name}"), shape, TensorClass::Weight);
        bindings.push((t, store_idx));
        t
    };
    LayerGraphWeights {
        wq: decl("wq", vec![h, h], lw.wq),
        bq: decl("bq", vec![h], lw.bq),
        wk: decl("wk", vec![h, h], lw.wk),
        bk: decl("bk", vec![h], lw.bk),
        wv: decl("wv", vec![h, h], lw.wv),
        bv: decl("bv", vec![h], lw.bv),
        wo: decl("wo", vec![h, h], lw.wo),
        bo: decl("bo", vec![h], lw.bo),
        ln1_gamma: decl("ln1_gamma", vec![h], lw.ln1_gamma),
        ln1_beta: decl("ln1_beta", vec![h], lw.ln1_beta),
        w1: decl("w1", vec![h, dims.ffn_dim], lw.w1),
        b1: decl("b1", vec![dims.ffn_dim], lw.b1),
        w2: decl("w2", vec![dims.ffn_dim, h], lw.w2),
        b2: decl("b2", vec![h], lw.b2),
        ln2_gamma: decl("ln2_gamma", vec![h], lw.ln2_gamma),
        ln2_beta: decl("ln2_beta", vec![h], lw.ln2_beta),
    }
}

/// Emit one **fine-grained** encoder layer into the graph (one node per
/// kernel launch a training framework would issue — no fused ops). Returns
/// the layer output tensor `[batch, seq, hidden]`.
///
/// Callers that want the paper's fused execution (Fig. 3) run
/// `tt_graph::fusion::fuse` over the finished graph; the pass collapses
/// the bias+split, scale+mask+softmax, bias+GELU and
/// bias+residual+LayerNorm chains emitted here into single kernels.
#[allow(clippy::too_many_arguments)]
pub fn emit_layer(
    g: &mut Graph,
    w: &LayerGraphWeights,
    dims: &EncoderDims,
    batch: usize,
    seq: usize,
    x: TensorId,
    mask: Option<TensorId>,
    prefix: &str,
) -> TensorId {
    let h = dims.hidden();
    let (heads, d) = (dims.heads, dims.head_dim);
    let act = |g: &mut Graph, name: &str, shape: Vec<usize>| {
        g.add_tensor(format!("{prefix}.{name}"), shape, TensorClass::Activation)
    };
    let tok_shape = vec![batch, seq, h];
    let head_shape = vec![batch, heads, seq, d];
    let score_shape = vec![batch, heads, seq, seq];

    let mm = OpKind::MatMul { trans_b: false, alpha: 1.0 };

    // Q/K/V projections: matmul → bias → head split.
    let qkv = |g: &mut Graph, name: &str, wm: TensorId, bm: TensorId| -> TensorId {
        let p0 = act(g, &format!("{name}0"), tok_shape.clone());
        g.add_node(mm.clone(), vec![x, wm], p0);
        let pb = act(g, &format!("{name}b"), tok_shape.clone());
        g.add_node(OpKind::AddBias, vec![p0, bm], pb);
        let p = act(g, name, head_shape.clone());
        g.add_node(OpKind::SplitHeads { heads }, vec![pb], p);
        p
    };
    let q = qkv(g, "q", w.wq, w.bq);
    let key = qkv(g, "k", w.wk, w.bk);
    let v = qkv(g, "v", w.wv, w.bv);

    // Attention scores: scale → (mask) → softmax, emitted separately.
    let scores = act(g, "scores", score_shape.clone());
    g.add_node(OpKind::MatMul { trans_b: true, alpha: 1.0 }, vec![q, key], scores);
    let scaled = act(g, "scores_scaled", score_shape.clone());
    g.add_node(OpKind::Scale { alpha: dims.scale() }, vec![scores], scaled);
    let pre_softmax = if let Some(m) = mask {
        let masked = act(g, "scores_masked", score_shape.clone());
        g.add_node(OpKind::Mask, vec![scaled, m], masked);
        masked
    } else {
        scaled
    };
    let probs = act(g, "probs", score_shape);
    g.add_node(OpKind::Softmax, vec![pre_softmax], probs);

    let ctx = act(g, "ctx", head_shape);
    g.add_node(mm.clone(), vec![probs, v], ctx);
    let merged = act(g, "merged", tok_shape.clone());
    g.add_node(OpKind::MergeHeads, vec![ctx], merged);

    // Output projection epilogue: bias → residual → LayerNorm.
    let attn = act(g, "attn", tok_shape.clone());
    g.add_node(mm.clone(), vec![merged, w.wo], attn);
    let attn_b = act(g, "attn_biased", tok_shape.clone());
    g.add_node(OpKind::AddBias, vec![attn, w.bo], attn_b);
    let sum1 = act(g, "attn_residual", tok_shape.clone());
    g.add_node(OpKind::Residual, vec![attn_b, x], sum1);
    let x1 = act(g, "x1", tok_shape.clone());
    g.add_node(OpKind::LayerNorm { eps: dims.eps }, vec![sum1, w.ln1_gamma, w.ln1_beta], x1);

    // FFN: bias → GELU, then the second epilogue.
    let inner = act(g, "ffn_inner", vec![batch, seq, dims.ffn_dim]);
    g.add_node(mm.clone(), vec![x1, w.w1], inner);
    let inner_b = act(g, "ffn_biased", vec![batch, seq, dims.ffn_dim]);
    g.add_node(OpKind::AddBias, vec![inner, w.b1], inner_b);
    let inner_act = act(g, "ffn_act", vec![batch, seq, dims.ffn_dim]);
    g.add_node(OpKind::Gelu, vec![inner_b], inner_act);
    let ffn_out = act(g, "ffn_out", tok_shape.clone());
    g.add_node(mm, vec![inner_act, w.w2], ffn_out);
    let ffn_b = act(g, "ffn_out_biased", tok_shape.clone());
    g.add_node(OpKind::AddBias, vec![ffn_out, w.b2], ffn_b);
    let sum2 = act(g, "ffn_residual", tok_shape.clone());
    g.add_node(OpKind::Residual, vec![ffn_b, x1], sum2);
    let x2 = act(g, "x2", tok_shape);
    g.add_node(OpKind::LayerNorm { eps: dims.eps }, vec![sum2, w.ln2_gamma, w.ln2_beta], x2);
    x2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dims() -> EncoderDims {
        EncoderDims { heads: 2, head_dim: 4, ffn_dim: 16, eps: 1e-6 }
    }

    fn setup() -> (WeightStore, EncoderLayerWeights, EncoderDims) {
        let dims = tiny_dims();
        let mut store = WeightStore::new();
        let mut init = WeightInit::new(7);
        let lw = EncoderLayerWeights::create(&mut store, &mut init, &dims);
        (store, lw, dims)
    }

    #[test]
    fn forward_produces_layernormed_output() {
        let (store, lw, dims) = setup();
        let (batch, seq) = (2, 3);
        let mut x: Vec<f32> =
            (0..batch * seq * dims.hidden()).map(|i| ((i * 13) % 17) as f32 * 0.1).collect();
        layer_forward(&store, &lw, &dims, batch, seq, &mut x, None);
        // Output rows are LayerNormed with γ=1, β=0 → zero mean, unit var.
        for row in x.chunks(dims.hidden()) {
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 =
                row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn masked_padding_does_not_change_valid_tokens() {
        // A length-2 request alone vs. the same request zero-padded to 4
        // with a mask: the valid token outputs must match.
        let (store, lw, dims) = setup();
        let h = dims.hidden();
        let content: Vec<f32> = (0..2 * h).map(|i| ((i * 7) % 11) as f32 * 0.2 - 1.0).collect();

        let mut alone = content.clone();
        layer_forward(&store, &lw, &dims, 1, 2, &mut alone, None);

        let mut padded = content.clone();
        padded.extend(std::iter::repeat_n(0.0, 2 * h));
        let mask = vec![0.0, 0.0, f32::NEG_INFINITY, f32::NEG_INFINITY];
        layer_forward(&store, &lw, &dims, 1, 4, &mut padded, Some(&mask));

        for (a, p) in alone.iter().zip(padded[..2 * h].iter()) {
            assert!((a - p).abs() < 1e-4, "padding must be invisible: {a} vs {p}");
        }
    }

    #[test]
    fn graph_emission_is_fine_grained_and_fuses_to_figure3() {
        let (_store, lw, dims) = setup();
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![1, 4, dims.hidden()], TensorClass::Activation);
        // x needs a producer for topo-order validity in this test: treat as
        // input instead.
        g.tensors[x].class = TensorClass::Input;
        let mut bindings = Vec::new();
        let w = declare_layer_weights(&mut g, &mut bindings, &lw, &dims, "l0");
        emit_layer(&mut g, &w, &dims, 1, 4, x, None, "l0");
        let stats = g.stats();
        assert_eq!(stats.gemm_nodes, 8, "QKV (3) + scores + ctx + output + FFN (2)");
        assert_eq!(stats.nodes, 25, "fine-grained: one node per kernel launch (maskless)");
        assert!(g.nodes.iter().all(|n| !n.kind.is_fused()), "emission stays fine-grained");
        assert_eq!(bindings.len(), 16);
        g.topo_order();

        // The fusion pass recovers exactly the paper's Fig. 3 layer.
        let f = tt_graph::fusion::fuse(&g);
        let fstats = f.stats();
        assert_eq!(fstats.gemm_nodes, 8);
        assert_eq!(fstats.nodes, 16, "8 GEMM + 3 bias-split + softmax + merge + gelu + 2 LN");
        assert_eq!(f.nodes.iter().filter(|n| n.kind.is_fused()).count(), 7);
    }

    #[test]
    fn shared_weights_emit_multiple_layers() {
        // ALBERT-style: one weight declaration, two layer emissions.
        let (_store, lw, dims) = setup();
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![1, 4, dims.hidden()], TensorClass::Input);
        let mut bindings = Vec::new();
        let w = declare_layer_weights(&mut g, &mut bindings, &lw, &dims, "shared");
        let h1 = emit_layer(&mut g, &w, &dims, 1, 4, x, None, "l0");
        let _h2 = emit_layer(&mut g, &w, &dims, 1, 4, h1, None, "l1");
        assert_eq!(bindings.len(), 16, "weights declared once");
        assert_eq!(g.stats().nodes, 50, "two fine-grained emissions of 25 nodes");
        assert_eq!(tt_graph::fusion::fuse(&g).stats().nodes, 32, "two fused layers of 16");
        g.topo_order();
    }

    #[test]
    fn layer_program_reports_fusion_savings() {
        let dims = tiny_dims();
        let masked = encoder_layer_program(&dims, 2, 4, true);
        assert_eq!(masked.nodes(), 16);
        assert_eq!(masked.fused_ops(), 7);
        assert_eq!(masked.elided_passes(), 10, "26 fine-grained kernels became 16");
        let maskless = encoder_layer_program(&dims, 2, 4, false);
        assert_eq!(maskless.elided_passes(), 9, "25 fine-grained kernels became 16");
    }
}
