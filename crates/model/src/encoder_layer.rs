//! One transformer encoder layer: eager forward + fused-graph emission.
//!
//! BERT and ALBERT share this module; ALBERT's cross-layer weight sharing
//! falls out naturally by emitting the same declared weight tensors for
//! every layer.

use tt_graph::{Graph, OpKind, TensorClass, TensorId};
use tt_kernels as k;
use tt_tensor::{batched_sgemm, sgemm, GemmSpec};

use crate::weights::{WeightInit, WeightStore};

/// Dimensions of an encoder layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderDims {
    /// Attention heads.
    pub heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
    /// LayerNorm epsilon.
    pub eps: f32,
}

impl EncoderDims {
    /// Model (hidden) dimension = heads · head_dim.
    pub fn hidden(&self) -> usize {
        self.heads * self.head_dim
    }

    /// Attention score scale `1/√d`.
    pub fn scale(&self) -> f32 {
        1.0 / (self.head_dim as f32).sqrt()
    }
}

/// Weight-store indices of one encoder layer's parameters.
#[derive(Debug, Clone, Copy)]
pub struct EncoderLayerWeights {
    /// Q/K/V/output projection matrices `[hidden, hidden]`.
    pub wq: usize,
    /// Q bias.
    pub bq: usize,
    /// K projection.
    pub wk: usize,
    /// K bias.
    pub bk: usize,
    /// V projection.
    pub wv: usize,
    /// V bias.
    pub bv: usize,
    /// Attention output projection.
    pub wo: usize,
    /// Attention output bias.
    pub bo: usize,
    /// Post-attention LayerNorm gain.
    pub ln1_gamma: usize,
    /// Post-attention LayerNorm shift.
    pub ln1_beta: usize,
    /// FFN first matrix `[hidden, ffn]`.
    pub w1: usize,
    /// FFN first bias.
    pub b1: usize,
    /// FFN second matrix `[ffn, hidden]`.
    pub w2: usize,
    /// FFN second bias.
    pub b2: usize,
    /// Post-FFN LayerNorm gain.
    pub ln2_gamma: usize,
    /// Post-FFN LayerNorm shift.
    pub ln2_beta: usize,
}

impl EncoderLayerWeights {
    /// Fabricate index-only weights (no backing store) for graph skeletons
    /// used purely for shape/cost analysis.
    pub fn fabricate(next: &mut usize) -> Self {
        let mut take = || {
            let i = *next;
            *next += 1;
            i
        };
        EncoderLayerWeights {
            wq: take(),
            bq: take(),
            wk: take(),
            bk: take(),
            wv: take(),
            bv: take(),
            wo: take(),
            bo: take(),
            ln1_gamma: take(),
            ln1_beta: take(),
            w1: take(),
            b1: take(),
            w2: take(),
            b2: take(),
            ln2_gamma: take(),
            ln2_beta: take(),
        }
    }

    /// Allocate and initialize one layer's weights in the store.
    pub fn create(store: &mut WeightStore, init: &mut WeightInit, dims: &EncoderDims) -> Self {
        let h = dims.hidden();
        EncoderLayerWeights {
            wq: store.push(init.linear(h, h)),
            bq: store.push(init.bias(h)),
            wk: store.push(init.linear(h, h)),
            bk: store.push(init.bias(h)),
            wv: store.push(init.linear(h, h)),
            bv: store.push(init.bias(h)),
            wo: store.push(init.linear(h, h)),
            bo: store.push(init.bias(h)),
            ln1_gamma: store.push(init.gamma(h)),
            ln1_beta: store.push(init.beta(h)),
            w1: store.push(init.linear(h, dims.ffn_dim)),
            b1: store.push(init.bias(dims.ffn_dim)),
            w2: store.push(init.linear(dims.ffn_dim, h)),
            b2: store.push(init.bias(h)),
            ln2_gamma: store.push(init.gamma(h)),
            ln2_beta: store.push(init.beta(h)),
        }
    }
}

// ---------------------------------------------------------------------------
// Eager forward
// ---------------------------------------------------------------------------

/// Run one encoder layer eagerly: `x` is `[batch, seq, hidden]` flat and is
/// replaced by the layer output. `mask` is the `[batch, seq]` additive
/// attention mask, if any.
pub fn layer_forward(
    store: &WeightStore,
    lw: &EncoderLayerWeights,
    dims: &EncoderDims,
    batch: usize,
    seq: usize,
    x: &mut Vec<f32>,
    mask: Option<&[f32]>,
) {
    let hidden = dims.hidden();
    let (heads, d) = (dims.heads, dims.head_dim);
    let tokens = batch * seq;
    assert_eq!(x.len(), tokens * hidden, "layer input size");

    let proj = |w: usize, b: usize, x: &[f32]| -> Vec<f32> {
        let mut out = vec![0.0f32; tokens * hidden];
        sgemm(GemmSpec::nn(tokens, hidden, hidden), x, store.get(w).as_slice(), &mut out);
        k::add_bias(tokens, hidden, &mut out, store.get(b).as_slice());
        let mut split = vec![0.0f32; tokens * hidden];
        k::split_heads(batch, seq, heads, d, &out, &mut split);
        split
    };
    let q = proj(lw.wq, lw.bq, x);
    let key = proj(lw.wk, lw.bk, x);
    let v = proj(lw.wv, lw.bv, x);

    // scores[b,h,s,s] = q · kᵀ. Batched over batch·heads small matrices;
    // batched_sgemm picks per-head vs intra-GEMM parallelism from this
    // shape, so keep the batch dimension maximal (all heads in one call).
    let mut scores = vec![0.0f32; batch * heads * seq * seq];
    batched_sgemm(batch * heads, GemmSpec::nt(seq, d, seq), &q, &key, &mut scores);
    k::scale_mask_softmax(batch, heads, seq, seq, dims.scale(), mask, &mut scores);

    // ctx[b,h,s,d] = probs · v
    let mut ctx = vec![0.0f32; tokens * hidden];
    batched_sgemm(batch * heads, GemmSpec::nn(seq, seq, d), &scores, &v, &mut ctx);
    let mut merged = vec![0.0f32; tokens * hidden];
    k::merge_heads(batch, seq, heads, d, &ctx, &mut merged);

    // Output projection + bias + residual + LayerNorm.
    let mut attn = vec![0.0f32; tokens * hidden];
    sgemm(GemmSpec::nn(tokens, hidden, hidden), &merged, store.get(lw.wo).as_slice(), &mut attn);
    k::add_bias(tokens, hidden, &mut attn, store.get(lw.bo).as_slice());
    k::residual_add(&mut attn, x);
    let mut x1 = vec![0.0f32; tokens * hidden];
    k::layer_norm(
        tokens,
        hidden,
        &attn,
        store.get(lw.ln1_gamma).as_slice(),
        store.get(lw.ln1_beta).as_slice(),
        dims.eps,
        &mut x1,
    );

    // FFN.
    let mut inner = vec![0.0f32; tokens * dims.ffn_dim];
    sgemm(GemmSpec::nn(tokens, hidden, dims.ffn_dim), &x1, store.get(lw.w1).as_slice(), &mut inner);
    k::add_bias_gelu(tokens, dims.ffn_dim, &mut inner, store.get(lw.b1).as_slice());
    let mut out = vec![0.0f32; tokens * hidden];
    sgemm(
        GemmSpec::nn(tokens, dims.ffn_dim, hidden),
        &inner,
        store.get(lw.w2).as_slice(),
        &mut out,
    );
    k::add_bias(tokens, hidden, &mut out, store.get(lw.b2).as_slice());
    k::residual_add(&mut out, &x1);
    let mut x2 = vec![0.0f32; tokens * hidden];
    k::layer_norm(
        tokens,
        hidden,
        &out,
        store.get(lw.ln2_gamma).as_slice(),
        store.get(lw.ln2_beta).as_slice(),
        dims.eps,
        &mut x2,
    );
    *x = x2;
}

// ---------------------------------------------------------------------------
// Graph emission
// ---------------------------------------------------------------------------

/// Graph tensor ids of one layer's declared weights.
#[derive(Debug, Clone, Copy)]
pub struct LayerGraphWeights {
    wq: TensorId,
    bq: TensorId,
    wk: TensorId,
    bk: TensorId,
    wv: TensorId,
    bv: TensorId,
    wo: TensorId,
    bo: TensorId,
    ln1_gamma: TensorId,
    ln1_beta: TensorId,
    w1: TensorId,
    b1: TensorId,
    w2: TensorId,
    b2: TensorId,
    ln2_gamma: TensorId,
    ln2_beta: TensorId,
}

/// Declare one layer's weight tensors in the graph and record their store
/// bindings. ALBERT calls this once and reuses the result for every layer.
pub fn declare_layer_weights(
    g: &mut Graph,
    bindings: &mut Vec<(TensorId, usize)>,
    lw: &EncoderLayerWeights,
    dims: &EncoderDims,
    prefix: &str,
) -> LayerGraphWeights {
    let h = dims.hidden();
    let mut decl = |name: &str, shape: Vec<usize>, store_idx: usize| {
        let t = g.add_tensor(format!("{prefix}.{name}"), shape, TensorClass::Weight);
        bindings.push((t, store_idx));
        t
    };
    LayerGraphWeights {
        wq: decl("wq", vec![h, h], lw.wq),
        bq: decl("bq", vec![h], lw.bq),
        wk: decl("wk", vec![h, h], lw.wk),
        bk: decl("bk", vec![h], lw.bk),
        wv: decl("wv", vec![h, h], lw.wv),
        bv: decl("bv", vec![h], lw.bv),
        wo: decl("wo", vec![h, h], lw.wo),
        bo: decl("bo", vec![h], lw.bo),
        ln1_gamma: decl("ln1_gamma", vec![h], lw.ln1_gamma),
        ln1_beta: decl("ln1_beta", vec![h], lw.ln1_beta),
        w1: decl("w1", vec![h, dims.ffn_dim], lw.w1),
        b1: decl("b1", vec![dims.ffn_dim], lw.b1),
        w2: decl("w2", vec![dims.ffn_dim, h], lw.w2),
        b2: decl("b2", vec![h], lw.b2),
        ln2_gamma: decl("ln2_gamma", vec![h], lw.ln2_gamma),
        ln2_beta: decl("ln2_beta", vec![h], lw.ln2_beta),
    }
}

/// Emit one fused encoder layer (paper Fig. 3) into the graph. Returns the
/// layer output tensor `[batch, seq, hidden]`.
#[allow(clippy::too_many_arguments)]
pub fn emit_layer(
    g: &mut Graph,
    w: &LayerGraphWeights,
    dims: &EncoderDims,
    batch: usize,
    seq: usize,
    x: TensorId,
    mask: Option<TensorId>,
    prefix: &str,
) -> TensorId {
    let h = dims.hidden();
    let (heads, d) = (dims.heads, dims.head_dim);
    let act = |g: &mut Graph, name: &str, shape: Vec<usize>| {
        g.add_tensor(format!("{prefix}.{name}"), shape, TensorClass::Activation)
    };
    let tok_shape = vec![batch, seq, h];
    let head_shape = vec![batch, heads, seq, d];

    let mm = OpKind::MatMul { trans_b: false, alpha: 1.0 };

    let q0 = act(g, "q0", tok_shape.clone());
    g.add_node(mm.clone(), vec![x, w.wq], q0);
    let q = act(g, "q", head_shape.clone());
    g.add_node(OpKind::AddBiasSplitHeads { heads }, vec![q0, w.bq], q);

    let k0 = act(g, "k0", tok_shape.clone());
    g.add_node(mm.clone(), vec![x, w.wk], k0);
    let key = act(g, "k", head_shape.clone());
    g.add_node(OpKind::AddBiasSplitHeads { heads }, vec![k0, w.bk], key);

    let v0 = act(g, "v0", tok_shape.clone());
    g.add_node(mm.clone(), vec![x, w.wv], v0);
    let v = act(g, "v", head_shape.clone());
    g.add_node(OpKind::AddBiasSplitHeads { heads }, vec![v0, w.bv], v);

    let scores = act(g, "scores", vec![batch, heads, seq, seq]);
    g.add_node(OpKind::MatMul { trans_b: true, alpha: 1.0 }, vec![q, key], scores);
    let probs = act(g, "probs", vec![batch, heads, seq, seq]);
    let mut sm_inputs = vec![scores];
    if let Some(m) = mask {
        sm_inputs.push(m);
    }
    g.add_node(OpKind::ScaleMaskSoftmax { scale: dims.scale() }, sm_inputs, probs);

    let ctx = act(g, "ctx", head_shape);
    g.add_node(mm.clone(), vec![probs, v], ctx);
    let merged = act(g, "merged", tok_shape.clone());
    g.add_node(OpKind::MergeHeads, vec![ctx], merged);

    let attn = act(g, "attn", tok_shape.clone());
    g.add_node(mm.clone(), vec![merged, w.wo], attn);
    let x1 = act(g, "x1", tok_shape.clone());
    g.add_node(
        OpKind::AddBiasResidualLayerNorm { eps: dims.eps },
        vec![attn, w.bo, x, w.ln1_gamma, w.ln1_beta],
        x1,
    );

    let inner = act(g, "ffn_inner", vec![batch, seq, dims.ffn_dim]);
    g.add_node(mm.clone(), vec![x1, w.w1], inner);
    let inner_act = act(g, "ffn_act", vec![batch, seq, dims.ffn_dim]);
    g.add_node(OpKind::AddBiasGelu, vec![inner, w.b1], inner_act);
    let ffn_out = act(g, "ffn_out", tok_shape.clone());
    g.add_node(mm, vec![inner_act, w.w2], ffn_out);
    let x2 = act(g, "x2", tok_shape);
    g.add_node(
        OpKind::AddBiasResidualLayerNorm { eps: dims.eps },
        vec![ffn_out, w.b2, x1, w.ln2_gamma, w.ln2_beta],
        x2,
    );
    x2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dims() -> EncoderDims {
        EncoderDims { heads: 2, head_dim: 4, ffn_dim: 16, eps: 1e-6 }
    }

    fn setup() -> (WeightStore, EncoderLayerWeights, EncoderDims) {
        let dims = tiny_dims();
        let mut store = WeightStore::new();
        let mut init = WeightInit::new(7);
        let lw = EncoderLayerWeights::create(&mut store, &mut init, &dims);
        (store, lw, dims)
    }

    #[test]
    fn forward_produces_layernormed_output() {
        let (store, lw, dims) = setup();
        let (batch, seq) = (2, 3);
        let mut x: Vec<f32> =
            (0..batch * seq * dims.hidden()).map(|i| ((i * 13) % 17) as f32 * 0.1).collect();
        layer_forward(&store, &lw, &dims, batch, seq, &mut x, None);
        // Output rows are LayerNormed with γ=1, β=0 → zero mean, unit var.
        for row in x.chunks(dims.hidden()) {
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            let var: f32 =
                row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn masked_padding_does_not_change_valid_tokens() {
        // A length-2 request alone vs. the same request zero-padded to 4
        // with a mask: the valid token outputs must match.
        let (store, lw, dims) = setup();
        let h = dims.hidden();
        let content: Vec<f32> = (0..2 * h).map(|i| ((i * 7) % 11) as f32 * 0.2 - 1.0).collect();

        let mut alone = content.clone();
        layer_forward(&store, &lw, &dims, 1, 2, &mut alone, None);

        let mut padded = content.clone();
        padded.extend(std::iter::repeat_n(0.0, 2 * h));
        let mask = vec![0.0, 0.0, f32::NEG_INFINITY, f32::NEG_INFINITY];
        layer_forward(&store, &lw, &dims, 1, 4, &mut padded, Some(&mask));

        for (a, p) in alone.iter().zip(padded[..2 * h].iter()) {
            assert!((a - p).abs() < 1e-4, "padding must be invisible: {a} vs {p}");
        }
    }

    #[test]
    fn graph_emission_matches_expected_op_count() {
        let (_store, lw, dims) = setup();
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![1, 4, dims.hidden()], TensorClass::Activation);
        // x needs a producer for topo-order validity in this test: treat as
        // input instead.
        g.tensors[x].class = TensorClass::Input;
        let mut bindings = Vec::new();
        let w = declare_layer_weights(&mut g, &mut bindings, &lw, &dims, "l0");
        emit_layer(&mut g, &w, &dims, 1, 4, x, None, "l0");
        let stats = g.stats();
        assert_eq!(stats.gemm_nodes, 8, "QKV (3) + scores + ctx + output + FFN (2)");
        assert_eq!(stats.nodes, 16, "8 GEMM + 3 bias-split + softmax + merge + gelu + 2 LN");
        assert_eq!(bindings.len(), 16);
        g.topo_order();
    }

    #[test]
    fn shared_weights_emit_multiple_layers() {
        // ALBERT-style: one weight declaration, two layer emissions.
        let (_store, lw, dims) = setup();
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![1, 4, dims.hidden()], TensorClass::Input);
        let mut bindings = Vec::new();
        let w = declare_layer_weights(&mut g, &mut bindings, &lw, &dims, "shared");
        let h1 = emit_layer(&mut g, &w, &dims, 1, 4, x, None, "l0");
        let _h2 = emit_layer(&mut g, &w, &dims, 1, 4, h1, None, "l1");
        assert_eq!(bindings.len(), 16, "weights declared once");
        assert_eq!(g.stats().nodes, 32, "two emissions of 16 nodes");
        g.topo_order();
    }
}
