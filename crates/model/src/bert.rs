//! BERT encoder (Devlin et al.), the paper's primary evaluation model.

use tt_graph::{Graph, OpKind, TensorClass};
use tt_kernels as k;
use tt_tensor::Tensor;

use crate::bound::{BoundGraph, InputBinding};
use crate::encoder_layer::{
    declare_layer_weights, emit_layer, encoder_layer_program, layer_forward_with, EncoderDims,
    EncoderLayerWeights,
};
use crate::weights::{WeightInit, WeightStore};

/// BERT hyper-parameters.
///
/// Paper Table 3 lists `num_layer=12, num_head=12, hidden_size=64`; the
/// "hidden_size" there is the *per-head* size (12 · 64 = 768 model dim,
/// i.e. BERT-base) — we name the fields unambiguously.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BertConfig {
    /// Encoder layers.
    pub num_layers: usize,
    /// Attention heads.
    pub num_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// FFN inner dimension (4 × model dim for BERT).
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum sequence length (position table rows).
    pub max_position: usize,
    /// Segment (token type) vocabulary; 0 disables segment embeddings.
    pub type_vocab_size: usize,
    /// LayerNorm epsilon.
    pub layer_norm_eps: f32,
}

impl BertConfig {
    /// BERT-base, the configuration of paper Table 3.
    pub fn base() -> Self {
        BertConfig {
            num_layers: 12,
            num_heads: 12,
            head_dim: 64,
            ffn_dim: 3072,
            vocab_size: 30522,
            max_position: 512,
            type_vocab_size: 2,
            layer_norm_eps: 1e-12,
        }
    }

    /// A small config for tests: 2 layers, 2 heads, model dim 16.
    pub fn tiny() -> Self {
        BertConfig {
            num_layers: 2,
            num_heads: 2,
            head_dim: 8,
            ffn_dim: 32,
            vocab_size: 97,
            max_position: 64,
            type_vocab_size: 2,
            layer_norm_eps: 1e-6,
        }
    }

    /// Model (hidden) dimension.
    pub fn model_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }

    /// The shared layer-dimension record.
    pub fn dims(&self) -> EncoderDims {
        EncoderDims {
            heads: self.num_heads,
            head_dim: self.head_dim,
            ffn_dim: self.ffn_dim,
            eps: self.layer_norm_eps,
        }
    }
}

/// A BERT model: config + weights.
#[derive(Debug)]
pub struct Bert {
    /// Hyper-parameters.
    pub config: BertConfig,
    store: WeightStore,
    word_emb: usize,
    pos_emb: usize,
    emb_ln_gamma: usize,
    emb_ln_beta: usize,
    layers: Vec<EncoderLayerWeights>,
}

impl Bert {
    /// Build a BERT with seeded random weights.
    pub fn new_random(config: &BertConfig, seed: u64) -> Self {
        let mut store = WeightStore::new();
        let mut init = WeightInit::new(seed);
        let h = config.model_dim();
        let word_emb = store.push(init.embedding(config.vocab_size, h));
        let pos_emb = store.push(init.embedding(config.max_position, h));
        let emb_ln_gamma = store.push(init.gamma(h));
        let emb_ln_beta = store.push(init.beta(h));
        let dims = config.dims();
        let layers = (0..config.num_layers)
            .map(|_| EncoderLayerWeights::create(&mut store, &mut init, &dims))
            .collect();
        Bert { config: config.clone(), store, word_emb, pos_emb, emb_ln_gamma, emb_ln_beta, layers }
    }

    /// The weight store (for graph execution).
    pub fn weights(&self) -> &WeightStore {
        &self.store
    }

    /// Rebuild a model around an existing weight store (checkpoint loading).
    /// The store must have been produced by a model of the same config —
    /// tensor count and key shapes are validated.
    pub fn from_store(config: &BertConfig, store: WeightStore) -> Result<Self, String> {
        let expected = 4 + 16 * config.num_layers;
        if store.len() != expected {
            return Err(format!("store has {} tensors, config needs {expected}", store.len()));
        }
        let h = config.model_dim();
        let check = |idx: usize, dims: &[usize], what: &str| -> Result<(), String> {
            let got = store.get(idx).shape().dims().to_vec();
            if got != dims {
                return Err(format!("{what} has shape {got:?}, expected {dims:?}"));
            }
            Ok(())
        };
        check(0, &[config.vocab_size, h], "word embedding")?;
        check(1, &[config.max_position, h], "position embedding")?;
        let mut next = 4usize;
        let layers: Vec<EncoderLayerWeights> =
            (0..config.num_layers).map(|_| EncoderLayerWeights::fabricate(&mut next)).collect();
        for (i, lw) in layers.iter().enumerate() {
            check(lw.wq, &[h, h], &format!("layer {i} wq"))?;
            check(lw.w1, &[h, config.ffn_dim], &format!("layer {i} ffn w1"))?;
            check(lw.ln2_beta, &[h], &format!("layer {i} ln2 beta"))?;
        }
        Ok(Bert {
            config: config.clone(),
            store,
            word_emb: 0,
            pos_emb: 1,
            emb_ln_gamma: 2,
            emb_ln_beta: 3,
            layers,
        })
    }

    /// Total parameter bytes.
    pub fn param_bytes(&self) -> usize {
        self.store.bytes()
    }

    /// Attach int8 sidecars to every encoder GEMM weight (`[k, n]` layout).
    /// The graph executor then routes those MatMuls through `sgemm_q8`;
    /// embeddings and LayerNorm parameters stay f32.
    pub fn quantize_int8(&mut self) {
        for i in 0..self.layers.len() {
            let lw = self.layers[i];
            for w in [lw.wq, lw.wk, lw.wv, lw.wo, lw.w1, lw.w2] {
                self.store.quantize(w, tt_tensor::Trans::No);
            }
        }
    }

    /// Eager forward pass: `ids` is `[batch, seq]` (f32-encoded token ids),
    /// `mask` an optional `[batch, seq]` additive attention mask. Returns
    /// the final hidden states `[batch, seq, hidden]`.
    pub fn forward(&self, ids: &Tensor, mask: Option<&Tensor>) -> Tensor {
        let (batch, seq) = (ids.shape().dim(0), ids.shape().dim(1));
        let h = self.config.model_dim();
        let ids_u32: Vec<u32> = ids.as_slice().iter().map(|&v| v as u32).collect();

        let mut x = vec![0.0f32; batch * seq * h];
        k::embed(
            batch,
            seq,
            h,
            &ids_u32,
            self.store.get(self.word_emb).as_slice(),
            self.store.get(self.pos_emb).as_slice(),
            None,
            &mut x,
        );
        let mut normed = vec![0.0f32; x.len()];
        k::layer_norm(
            batch * seq,
            h,
            &x,
            self.store.get(self.emb_ln_gamma).as_slice(),
            self.store.get(self.emb_ln_beta).as_slice(),
            self.config.layer_norm_eps,
            &mut normed,
        );
        let mut x = normed;

        let dims = self.config.dims();
        let mask_slice = mask.map(|m| m.as_slice());
        // One fused-program compilation serves every layer: each call
        // rebinds the weight slots to that layer's store indices.
        let prog = encoder_layer_program(&dims, batch, seq, mask_slice.is_some());
        for lw in &self.layers {
            layer_forward_with(&prog, &self.store, lw, &mut x, mask_slice);
        }
        Tensor::from_vec([batch, seq, h], x).expect("sized by construction")
    }

    /// Build the fused computation graph for a `(batch, seq)` problem.
    /// `masked` adds the attention-mask input (required for padded batches).
    pub fn build_graph(&self, batch: usize, seq: usize, masked: bool) -> BoundGraph {
        build_bert_graph(
            &self.config,
            self.word_emb,
            self.pos_emb,
            self.emb_ln_gamma,
            self.emb_ln_beta,
            &self.layers,
            batch,
            seq,
            masked,
        )
    }
}

/// Build the BERT graph *skeleton* — identical structure and shapes to
/// [`Bert::build_graph`] but with fabricated weight indices and no weight
/// store. Used for shape/cost analysis (e.g. the serving framework's
/// `cached_cost` warm-up) where initializing 400 MB of parameters would be
/// pure waste.
pub fn graph_skeleton(config: &BertConfig, batch: usize, seq: usize, masked: bool) -> BoundGraph {
    let mut next = 4usize; // 0..4 are the embedding-side weights
    let layers: Vec<EncoderLayerWeights> =
        (0..config.num_layers).map(|_| EncoderLayerWeights::fabricate(&mut next)).collect();
    build_bert_graph(config, 0, 1, 2, 3, &layers, batch, seq, masked)
}

/// Shared graph builder over explicit weight indices.
#[allow(clippy::too_many_arguments)]
fn build_bert_graph(
    config: &BertConfig,
    word_emb: usize,
    pos_emb: usize,
    emb_ln_gamma: usize,
    emb_ln_beta: usize,
    layers: &[EncoderLayerWeights],
    batch: usize,
    seq: usize,
    masked: bool,
) -> BoundGraph {
    {
        assert!(seq <= config.max_position, "seq {seq} exceeds position table");
        let mut g = Graph::new();
        let mut bindings = Vec::new();
        let h = config.model_dim();

        let ids = g.add_tensor("ids", vec![batch, seq], TensorClass::Input);
        let mut inputs = vec![(ids, InputBinding::TokenIds)];
        let mask = if masked {
            let m = g.add_tensor("mask", vec![batch, seq], TensorClass::Input);
            inputs.push((m, InputBinding::AttentionMask));
            Some(m)
        } else {
            None
        };

        let word = g.add_tensor("word_emb", vec![config.vocab_size, h], TensorClass::Weight);
        bindings.push((word, word_emb));
        let pos = g.add_tensor("pos_emb", vec![config.max_position, h], TensorClass::Weight);
        bindings.push((pos, pos_emb));
        let gamma = g.add_tensor("emb_ln_gamma", vec![h], TensorClass::Weight);
        bindings.push((gamma, emb_ln_gamma));
        let beta = g.add_tensor("emb_ln_beta", vec![h], TensorClass::Weight);
        bindings.push((beta, emb_ln_beta));

        let emb = g.add_tensor("emb", vec![batch, seq, h], TensorClass::Activation);
        g.add_node(OpKind::Embedding, vec![ids, word, pos], emb);
        let mut x = g.add_tensor("emb_normed", vec![batch, seq, h], TensorClass::Activation);
        g.add_node(OpKind::LayerNorm { eps: config.layer_norm_eps }, vec![emb, gamma, beta], x);

        let dims = config.dims();
        for (i, lw) in layers.iter().enumerate() {
            let prefix = format!("layer{i}");
            let w = declare_layer_weights(&mut g, &mut bindings, lw, &dims, &prefix);
            x = emit_layer(&mut g, &w, &dims, batch, seq, x, mask, &prefix);
        }
        // Mark the last activation as the output.
        g.tensors[x].class = TensorClass::Output;
        g.tensors[x].name = "encoder_output".into();

        // Emission above is fine-grained; the fusion pass produces the
        // fused graph the executor issues (weights/inputs/outputs survive
        // by name, so rebinding is exact).
        let fine = BoundGraph { graph: g, weights: bindings, inputs, output: x };
        let fused = tt_graph::fusion::fuse(&fine.graph);
        fine.rebind(fused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ids_batch, pad_batch};

    #[test]
    fn forward_shapes_and_determinism() {
        let cfg = BertConfig::tiny();
        let m1 = Bert::new_random(&cfg, 5);
        let m2 = Bert::new_random(&cfg, 5);
        let ids = ids_batch(&[&[1, 2, 3, 4, 5]]);
        let out1 = m1.forward(&ids, None);
        let out2 = m2.forward(&ids, None);
        assert_eq!(out1.shape().dims(), &[1, 5, cfg.model_dim()]);
        assert_eq!(out1, out2, "same seed, same output");
    }

    #[test]
    fn variable_lengths_work_without_retuning() {
        // The variable-length headline: the same model serves any length.
        let cfg = BertConfig::tiny();
        let m = Bert::new_random(&cfg, 9);
        for len in [1usize, 3, 17, 40] {
            let row: Vec<u32> = (0..len as u32).collect();
            let out = m.forward(&ids_batch(&[&row]), None);
            assert_eq!(out.shape().dims(), &[1, len, cfg.model_dim()]);
            assert!(out.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn padding_with_mask_preserves_valid_outputs() {
        let cfg = BertConfig::tiny();
        let m = Bert::new_random(&cfg, 11);
        let short: &[u32] = &[5, 6, 7];
        let long: &[u32] = &[8, 9, 10, 11, 12];

        let alone = m.forward(&ids_batch(&[short]), None);
        let (ids, mask, max_len) = pad_batch(&[short, long]);
        let batched = m.forward(&ids, Some(&mask));
        assert_eq!(max_len, 5);

        let h = cfg.model_dim();
        for s in 0..short.len() {
            for d in 0..h {
                let a = alone.get(&[0, s, d]);
                let b = batched.get(&[0, s, d]);
                assert!(
                    (a - b).abs() < 2e-3,
                    "padded batch must match standalone at [{s},{d}]: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn graph_matches_architecture() {
        let cfg = BertConfig::tiny();
        let m = Bert::new_random(&cfg, 1);
        let bg = m.build_graph(2, 7, true);
        let stats = bg.graph.stats();
        assert_eq!(stats.gemm_nodes, 8 * cfg.num_layers);
        assert_eq!(stats.nodes, 2 + 16 * cfg.num_layers);
        assert_eq!(bg.weights.len(), 4 + 16 * cfg.num_layers);
        assert_eq!(bg.inputs.len(), 2);
        bg.graph.topo_order();
    }

    #[test]
    fn base_config_matches_paper_sizes() {
        let cfg = BertConfig::base();
        assert_eq!(cfg.model_dim(), 768);
        let m = Bert::new_random(&cfg, 0);
        // Paper §4.2: "93.76 MB embedding matrix" (30522 × 768 × 4 bytes).
        let emb_bytes = cfg.vocab_size * cfg.model_dim() * 4;
        assert_eq!(emb_bytes, 93_763_584);
        // ≈ 440 MB of model parameters overall (paper Fig. 7 text).
        let mb = m.param_bytes() as f64 / (1024.0 * 1024.0);
        assert!((300.0..520.0).contains(&mb), "BERT-base params ≈ 440 MB, got {mb:.1}");
    }

    #[test]
    #[should_panic(expected = "exceeds position table")]
    fn graph_rejects_over_length() {
        let cfg = BertConfig::tiny();
        let m = Bert::new_random(&cfg, 1);
        m.build_graph(1, cfg.max_position + 1, false);
    }
}
