//! A WordPiece tokenizer — the missing front of the text-classification
//! service: the paper's workload is *text* ("randomly sampled from a
//! chitchatting dataset"); this module turns text into the token ids the
//! models consume, with BERT's conventions (`[CLS]`/`[SEP]`/`[UNK]`,
//! `##`-prefixed continuation pieces, greedy longest-match).
//!
//! No pretrained vocabulary ships with the reproduction (weights are random
//! anyway), so [`Tokenizer::new_synthetic`] builds a deterministic vocab of
//! characters, frequent English words and generated subword pieces — enough
//! for realistic tokenization behaviour and exact round-trips on in-vocab
//! text.

use std::collections::HashMap;

/// BERT special-token ids (the conventional first vocabulary slots).
pub mod special {
    /// Padding.
    pub const PAD: u32 = 0;
    /// Unknown word.
    pub const UNK: u32 = 1;
    /// Classification start token.
    pub const CLS: u32 = 2;
    /// Separator / end token.
    pub const SEP: u32 = 3;
}

/// A WordPiece tokenizer with a fixed vocabulary.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab: HashMap<String, u32>,
    pieces: Vec<String>,
    max_word_chars: usize,
}

impl Tokenizer {
    /// Build from an explicit piece list; index = token id. The first four
    /// entries must be the special tokens.
    pub fn from_pieces(pieces: Vec<String>) -> Self {
        assert!(pieces.len() > 4, "vocabulary too small");
        assert_eq!(pieces[special::PAD as usize], "[PAD]");
        assert_eq!(pieces[special::UNK as usize], "[UNK]");
        assert_eq!(pieces[special::CLS as usize], "[CLS]");
        assert_eq!(pieces[special::SEP as usize], "[SEP]");
        let vocab = pieces.iter().enumerate().map(|(i, p)| (p.clone(), i as u32)).collect();
        Tokenizer { vocab, pieces, max_word_chars: 64 }
    }

    /// A deterministic synthetic vocabulary: specials, single characters
    /// (stand-alone and `##` continuation), frequent English words, and
    /// two-letter continuation pieces until `target_size` is reached.
    pub fn new_synthetic(target_size: usize) -> Self {
        let mut pieces: Vec<String> =
            ["[PAD]", "[UNK]", "[CLS]", "[SEP]"].iter().map(|s| s.to_string()).collect();
        let chars: Vec<char> = ('a'..='z').chain('0'..='9').collect();
        for &c in &chars {
            pieces.push(c.to_string());
        }
        for &c in &chars {
            pieces.push(format!("##{c}"));
        }
        for w in [
            "the", "and", "ing", "ion", "that", "for", "you", "this", "with", "are", "have", "not",
            "but", "what", "can", "was", "all", "will", "one", "about", "how", "out", "time",
            "there", "year", "when", "them", "some", "me", "people", "take", "into", "just",
            "your", "come", "could", "now", "than", "like", "other", "then", "its", "over", "also",
            "back", "after", "use", "two", "our", "work", "first", "well", "hello", "world",
            "trans", "form", "er", "serve", "batch", "model",
        ] {
            pieces.push(w.to_string());
        }
        'outer: for &a in &chars[..26] {
            for &b in &chars[..26] {
                if pieces.len() >= target_size {
                    break 'outer;
                }
                pieces.push(format!("##{a}{b}"));
            }
        }
        Self::from_pieces(pieces)
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.pieces.len()
    }

    /// Id of a piece, if present.
    pub fn piece_id(&self, piece: &str) -> Option<u32> {
        self.vocab.get(piece).copied()
    }

    /// Tokenize raw text (no specials): lowercase, split on whitespace and
    /// punctuation, greedy longest-match WordPiece per word.
    pub fn tokenize(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::new();
        for word in split_words(text) {
            self.wordpiece(&word, &mut out);
        }
        out
    }

    /// Encode for BERT: `[CLS] tokens… [SEP]`, truncated to `max_len`
    /// (keeping the final `[SEP]`).
    pub fn encode(&self, text: &str, max_len: usize) -> Vec<u32> {
        assert!(max_len >= 2, "need room for [CLS] and [SEP]");
        let mut ids = vec![special::CLS];
        ids.extend(self.tokenize(text));
        ids.truncate(max_len - 1);
        ids.push(special::SEP);
        ids
    }

    /// Decode ids back to a string (specials skipped, `##` pieces joined).
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for &id in ids {
            let piece = match self.pieces.get(id as usize) {
                Some(p) => p.as_str(),
                None => "[UNK]",
            };
            if piece.starts_with('[') {
                continue; // special
            }
            if let Some(cont) = piece.strip_prefix("##") {
                out.push_str(cont);
            } else {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(piece);
            }
        }
        out
    }

    /// Greedy longest-match WordPiece of one lowercase word.
    fn wordpiece(&self, word: &str, out: &mut Vec<u32>) {
        if word.chars().count() > self.max_word_chars {
            out.push(special::UNK);
            return;
        }
        let chars: Vec<char> = word.chars().collect();
        let mut start = 0usize;
        let mut first = true;
        let mut produced: Vec<u32> = Vec::new();
        while start < chars.len() {
            let mut end = chars.len();
            let mut matched = None;
            while end > start {
                let sub: String = chars[start..end].iter().collect();
                let candidate = if first { sub } else { format!("##{sub}") };
                if let Some(&id) = self.vocab.get(&candidate) {
                    matched = Some(id);
                    break;
                }
                end -= 1;
            }
            match matched {
                Some(id) => {
                    produced.push(id);
                    start = end;
                    first = false;
                }
                None => {
                    // Whole word becomes [UNK] if any position is
                    // untokenizable (BERT's behaviour).
                    out.push(special::UNK);
                    return;
                }
            }
        }
        out.extend(produced);
    }
}

/// Lowercase and split into word/punctuation units.
fn split_words(text: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    for ch in text.chars().flat_map(|c| c.to_lowercase()) {
        if ch.is_alphanumeric() {
            cur.push(ch);
        } else {
            if !cur.is_empty() {
                words.push(std::mem::take(&mut cur));
            }
            if !ch.is_whitespace() {
                words.push(ch.to_string());
            }
        }
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok() -> Tokenizer {
        Tokenizer::new_synthetic(2000)
    }

    #[test]
    fn known_words_are_single_tokens() {
        let t = tok();
        let ids = t.tokenize("hello world");
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], t.piece_id("hello").unwrap());
        assert_eq!(ids[1], t.piece_id("world").unwrap());
    }

    #[test]
    fn unknown_words_split_into_pieces() {
        let t = tok();
        // "transformer" = "trans" + "##fo"/"##or"… greedy pieces; must not
        // be UNK and must decode back to the original word.
        let ids = t.tokenize("transformer");
        assert!(ids.len() > 1);
        assert!(ids.iter().all(|&i| i != special::UNK));
        assert_eq!(t.decode(&ids), "transformer");
    }

    #[test]
    fn greedy_longest_match_prefers_long_pieces() {
        let t = Tokenizer::from_pieces(
            ["[PAD]", "[UNK]", "[CLS]", "[SEP]", "ab", "a", "##b", "##ab", "##abab"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        // "ababab" → "ab" + "##abab" (longest continuation wins over ##ab).
        let ids = t.tokenize("ababab");
        assert_eq!(ids, vec![4, 8]);
    }

    #[test]
    fn encode_adds_specials_and_truncates() {
        let t = tok();
        let ids = t.encode("hello world", 16);
        assert_eq!(ids[0], special::CLS);
        assert_eq!(*ids.last().unwrap(), special::SEP);
        assert_eq!(ids.len(), 4);

        let long: String = std::iter::repeat_n("hello ", 50).collect();
        let ids = t.encode(&long, 10);
        assert_eq!(ids.len(), 10);
        assert_eq!(*ids.last().unwrap(), special::SEP);
    }

    #[test]
    fn punctuation_splits_words() {
        let t = tok();
        let a = t.tokenize("hello,world");
        let b = t.tokenize("hello , world");
        assert_eq!(a, b);
    }

    #[test]
    fn case_is_folded() {
        let t = tok();
        assert_eq!(t.tokenize("HELLO"), t.tokenize("hello"));
    }

    #[test]
    fn non_latin_becomes_unk_not_panic() {
        let t = tok();
        let ids = t.tokenize("日本語");
        assert!(ids.iter().all(|&i| i == special::UNK));
    }

    #[test]
    fn decode_round_trips_in_vocab_text() {
        let t = tok();
        let text = "the model can serve people well";
        let ids = t.tokenize(text);
        assert_eq!(t.decode(&ids), text);
    }

    #[test]
    fn ids_fit_vocab_for_bert() {
        let t = tok();
        let ids = t.encode("this is a somewhat longer chitchatting message for the service", 128);
        assert!(ids.iter().all(|&i| (i as usize) < t.vocab_size()));
    }

    #[test]
    fn deterministic_construction() {
        let a = Tokenizer::new_synthetic(1500);
        let b = Tokenizer::new_synthetic(1500);
        assert_eq!(a.vocab_size(), b.vocab_size());
        assert_eq!(a.tokenize("hello transformer"), b.tokenize("hello transformer"));
    }
}
