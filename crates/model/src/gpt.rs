//! A GPT-2-style decoder-only language model — one of the transformer
//! families the paper's introduction motivates ("Seq2seq, BERT, GPT2,
//! XLNet, ALBERT") and a natural extension of the reproduction: causal
//! self-attention with a KV cache, pre-LayerNorm residual blocks, and
//! greedy / top-k sampling generation.
//!
//! Architecturally this differs from the Seq2Seq decoder in two ways that
//! matter to the runtime: *pre*-LN (`x + attn(ln(x))`) changes the fusion
//! pattern (no bias+residual+LN epilogue), and there is no cross-attention,
//! so generation cost is pure self-attention + FFN.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tt_alloc::{KvError, KvSeq, PagedKvArena, PagedKvConfig};
use tt_kernels as k;
use tt_tensor::{sgemm, GemmSpec};

use crate::weights::{WeightInit, WeightStore};

/// GPT hyper-parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GptConfig {
    /// Transformer blocks.
    pub num_layers: usize,
    /// Attention heads.
    pub num_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum context length.
    pub max_position: usize,
    /// LayerNorm epsilon.
    pub layer_norm_eps: f32,
}

impl GptConfig {
    /// GPT-2 small: 12 layers, 12 heads, model dim 768.
    pub fn small() -> Self {
        GptConfig {
            num_layers: 12,
            num_heads: 12,
            head_dim: 64,
            ffn_dim: 3072,
            vocab_size: 50257,
            max_position: 1024,
            layer_norm_eps: 1e-5,
        }
    }

    /// Small test config.
    pub fn tiny() -> Self {
        GptConfig {
            num_layers: 2,
            num_heads: 2,
            head_dim: 4,
            ffn_dim: 16,
            vocab_size: 41,
            max_position: 32,
            layer_norm_eps: 1e-5,
        }
    }

    /// Model (hidden) dimension.
    pub fn model_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }
}

/// One block's weight indices.
#[derive(Debug, Clone, Copy)]
struct BlockWeights {
    ln1_gamma: usize,
    ln1_beta: usize,
    wq: usize,
    bq: usize,
    wk: usize,
    bk: usize,
    wv: usize,
    bv: usize,
    wo: usize,
    bo: usize,
    ln2_gamma: usize,
    ln2_beta: usize,
    w1: usize,
    b1: usize,
    w2: usize,
    b2: usize,
}

impl BlockWeights {
    fn create(store: &mut WeightStore, init: &mut WeightInit, h: usize, ffn: usize) -> Self {
        BlockWeights {
            ln1_gamma: store.push(init.gamma(h)),
            ln1_beta: store.push(init.beta(h)),
            wq: store.push(init.linear(h, h)),
            bq: store.push(init.bias(h)),
            wk: store.push(init.linear(h, h)),
            bk: store.push(init.bias(h)),
            wv: store.push(init.linear(h, h)),
            bv: store.push(init.bias(h)),
            wo: store.push(init.linear(h, h)),
            bo: store.push(init.bias(h)),
            ln2_gamma: store.push(init.gamma(h)),
            ln2_beta: store.push(init.beta(h)),
            w1: store.push(init.linear(h, ffn)),
            b1: store.push(init.bias(ffn)),
            w2: store.push(init.linear(ffn, h)),
            b2: store.push(init.bias(h)),
        }
    }
}

/// Per-layer KV cache, layout `[head][t][dim]` (single sequence).
#[derive(Debug, Clone, Default)]
struct Cache {
    k: Vec<f32>,
    v: Vec<f32>,
}

/// Incremental generation state.
#[derive(Debug, Clone)]
pub struct GptState {
    steps: usize,
    caches: Vec<Cache>,
}

impl GptState {
    /// Tokens consumed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

/// The model.
#[derive(Debug)]
pub struct Gpt {
    /// Hyper-parameters.
    pub config: GptConfig,
    store: WeightStore,
    tok_emb: usize,
    pos_emb: usize,
    ln_f_gamma: usize,
    ln_f_beta: usize,
    blocks: Vec<BlockWeights>,
}

impl Gpt {
    /// Build a GPT with seeded random weights.
    pub fn new_random(config: &GptConfig, seed: u64) -> Self {
        let mut store = WeightStore::new();
        let mut init = WeightInit::new(seed);
        let h = config.model_dim();
        let tok_emb = store.push(init.embedding(config.vocab_size, h));
        let pos_emb = store.push(init.embedding(config.max_position, h));
        let ln_f_gamma = store.push(init.gamma(h));
        let ln_f_beta = store.push(init.beta(h));
        let blocks = (0..config.num_layers)
            .map(|_| BlockWeights::create(&mut store, &mut init, h, config.ffn_dim))
            .collect();
        Gpt { config: config.clone(), store, tok_emb, pos_emb, ln_f_gamma, ln_f_beta, blocks }
    }

    /// Total parameter bytes.
    pub fn param_bytes(&self) -> usize {
        self.store.bytes()
    }

    /// Fresh generation state.
    pub fn init_state(&self) -> GptState {
        GptState { steps: 0, caches: vec![Cache::default(); self.blocks.len()] }
    }

    /// Token + position embedding for one token at position `t`.
    fn embed(&self, token: u32, t: usize) -> Vec<f32> {
        let cfg = &self.config;
        let h = cfg.model_dim();
        assert!(t < cfg.max_position, "context length exceeded");
        assert!((token as usize) < cfg.vocab_size, "token id out of vocabulary");
        let tok = self.store.get(self.tok_emb).as_slice();
        let pos = self.store.get(self.pos_emb).as_slice();
        (0..h).map(|i| tok[token as usize * h + i] + pos[t * h + i]).collect()
    }

    /// `src · W + b` for a single row.
    fn proj(&self, w: usize, b: usize, src: &[f32]) -> Vec<f32> {
        let h = self.config.model_dim();
        let mut out = vec![0.0f32; h];
        // m = 1: sgemm routes this to its unpacked gemv-style thin path,
        // streaming the weight matrix exactly once.
        sgemm(GemmSpec::nn(1, h, h), src, self.store.get(w).as_slice(), &mut out);
        k::add_bias(1, h, &mut out, self.store.get(b).as_slice());
        out
    }

    /// Pre-LN attention input: `ln1(x)` projected to Q, K, V — each laid
    /// out `[head][head_dim]` contiguously.
    fn qkv(&self, bw: &BlockWeights, x: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let h = self.config.model_dim();
        let mut normed = vec![0.0f32; h];
        k::layer_norm(
            1,
            h,
            x,
            self.store.get(bw.ln1_gamma).as_slice(),
            self.store.get(bw.ln1_beta).as_slice(),
            self.config.layer_norm_eps,
            &mut normed,
        );
        (
            self.proj(bw.wq, bw.bq, &normed),
            self.proj(bw.wk, bw.bk, &normed),
            self.proj(bw.wv, bw.bv, &normed),
        )
    }

    /// Pre-LN FFN residual delta: `ffn(ln2(x))` (caller adds it to `x`).
    fn ffn_delta(&self, bw: &BlockWeights, x: &[f32]) -> Vec<f32> {
        let cfg = &self.config;
        let h = cfg.model_dim();
        let mut normed = vec![0.0f32; h];
        k::layer_norm(
            1,
            h,
            x,
            self.store.get(bw.ln2_gamma).as_slice(),
            self.store.get(bw.ln2_beta).as_slice(),
            cfg.layer_norm_eps,
            &mut normed,
        );
        let mut inner = vec![0.0f32; cfg.ffn_dim];
        sgemm(
            GemmSpec::nn(1, h, cfg.ffn_dim),
            &normed,
            self.store.get(bw.w1).as_slice(),
            &mut inner,
        );
        k::add_bias_gelu(1, cfg.ffn_dim, &mut inner, self.store.get(bw.b1).as_slice());
        let mut out = vec![0.0f32; h];
        sgemm(GemmSpec::nn(1, cfg.ffn_dim, h), &inner, self.store.get(bw.w2).as_slice(), &mut out);
        k::add_bias(1, h, &mut out, self.store.get(bw.b2).as_slice());
        out
    }

    /// Final LN + tied-embedding projection (GPT-2 ties output weights to
    /// the token embedding).
    fn lm_logits(&self, x: &[f32]) -> Vec<f32> {
        let cfg = &self.config;
        let h = cfg.model_dim();
        let mut normed = vec![0.0f32; h];
        k::layer_norm(
            1,
            h,
            x,
            self.store.get(self.ln_f_gamma).as_slice(),
            self.store.get(self.ln_f_beta).as_slice(),
            cfg.layer_norm_eps,
            &mut normed,
        );
        let emb = self.store.get(self.tok_emb).as_slice();
        (0..cfg.vocab_size)
            .map(|v| normed.iter().zip(&emb[v * h..(v + 1) * h]).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Feed one token; returns the `[vocab]` logits for the next position
    /// and grows the KV caches.
    pub fn step(&self, state: &mut GptState, token: u32) -> Vec<f32> {
        let cfg = &self.config;
        let h = cfg.model_dim();
        let (heads, d) = (cfg.num_heads, cfg.head_dim);
        let t = state.steps;
        let mut x = self.embed(token, t);

        let scale = 1.0 / (d as f32).sqrt();
        for (li, bw) in self.blocks.iter().enumerate() {
            // Pre-LN attention: x += attn(ln1(x)).
            let (q, knew, vnew) = self.qkv(bw, &x);

            // Grow the cache to [head][t+1][d].
            let cache = &mut state.caches[li];
            let new_len = t + 1;
            let mut gk = vec![0.0f32; heads * new_len * d];
            let mut gv = vec![0.0f32; heads * new_len * d];
            for hd in 0..heads {
                gk[hd * new_len * d..hd * new_len * d + t * d]
                    .copy_from_slice(&cache.k[hd * t * d..(hd * t + t) * d]);
                gv[hd * new_len * d..hd * new_len * d + t * d]
                    .copy_from_slice(&cache.v[hd * t * d..(hd * t + t) * d]);
                gk[hd * new_len * d + t * d..hd * new_len * d + new_len * d]
                    .copy_from_slice(&knew[hd * d..(hd + 1) * d]);
                gv[hd * new_len * d + t * d..hd * new_len * d + new_len * d]
                    .copy_from_slice(&vnew[hd * d..(hd + 1) * d]);
            }
            cache.k = gk;
            cache.v = gv;

            // Causal attention over the cache (query attends to ≤ t).
            let mut attn = vec![0.0f32; h];
            let mut probs = vec![0.0f32; new_len];
            for hd in 0..heads {
                let qv = &q[hd * d..(hd + 1) * d];
                let base = hd * new_len * d;
                for (tt, p) in probs.iter_mut().enumerate() {
                    let kv = &cache.k[base + tt * d..base + (tt + 1) * d];
                    *p = qv.iter().zip(kv).map(|(a, b)| a * b).sum::<f32>() * scale;
                }
                k::softmax_rows(1, new_len, &mut probs);
                let dst = &mut attn[hd * d..(hd + 1) * d];
                for (tt, &p) in probs.iter().enumerate() {
                    let vv = &cache.v[base + tt * d..base + (tt + 1) * d];
                    for (o, &val) in dst.iter_mut().zip(vv) {
                        *o += p * val;
                    }
                }
            }
            let o = self.proj(bw.wo, bw.bo, &attn);
            for (xi, oi) in x.iter_mut().zip(o.iter()) {
                *xi += oi;
            }

            // Pre-LN FFN: x += ffn(ln2(x)).
            let f = self.ffn_delta(bw, &x);
            for (xi, fi) in x.iter_mut().zip(f.iter()) {
                *xi += fi;
            }
        }
        state.steps += 1;
        self.lm_logits(&x)
    }

    /// The [`PagedKvConfig`] matching this model's shape: an arena built
    /// from it accepts [`step_paged`](Self::step_paged) for this model.
    pub fn kv_config(&self, page_slots: usize, num_pages: usize) -> PagedKvConfig {
        PagedKvConfig {
            layers: self.config.num_layers,
            heads: self.config.num_heads,
            head_dim: self.config.head_dim,
            page_slots,
            num_pages,
        }
    }

    /// Feed one token of sequence `seq`, reading and growing its KV cache
    /// in the paged arena instead of a private [`GptState`]. The token's
    /// position is the sequence's current cache length, so interleaving
    /// steps of different sequences is safe — this is the decode step of
    /// the continuous-batching engine.
    ///
    /// Errors are typed and recoverable at the serving layer:
    /// [`KvError::OutOfPages`] means the arena (or the `kv_alloc_fail`
    /// chaos point) refused the next slot *before* any state changed.
    /// On any error the caller should release the sequence; its pages are
    /// reclaimed in full.
    pub fn step_paged(
        &self,
        arena: &mut PagedKvArena,
        seq: KvSeq,
        token: u32,
    ) -> Result<Vec<f32>, KvError> {
        let cfg = &self.config;
        let h = cfg.model_dim();
        let (heads, d) = (cfg.num_heads, cfg.head_dim);
        debug_assert_eq!(arena.config().layers, cfg.num_layers, "arena shape mismatch");
        debug_assert_eq!(arena.config().slot_floats(), h, "arena shape mismatch");
        let pos = arena.append(seq)?;
        let mut x = self.embed(token, pos);

        let scale = 1.0 / (d as f32).sqrt();
        for (li, bw) in self.blocks.iter().enumerate() {
            // Pre-LN attention: x += attn(ln1(x)), K/V through the page table.
            let (q, knew, vnew) = self.qkv(bw, &x);
            arena.write(seq, li, pos, &knew, &vnew)?;

            let mut attn = vec![0.0f32; h];
            let mut probs = vec![0.0f32; pos + 1];
            for hd in 0..heads {
                let qv = &q[hd * d..(hd + 1) * d];
                for (tt, p) in probs.iter_mut().enumerate() {
                    let (kt, _) = arena.kv_at(seq, li, tt)?;
                    let kh = &kt[hd * d..(hd + 1) * d];
                    *p = qv.iter().zip(kh).map(|(a, b)| a * b).sum::<f32>() * scale;
                }
                k::softmax_rows(1, pos + 1, &mut probs);
                for (tt, &p) in probs.iter().enumerate() {
                    let (_, vt) = arena.kv_at(seq, li, tt)?;
                    let vh = &vt[hd * d..(hd + 1) * d];
                    let dst = &mut attn[hd * d..(hd + 1) * d];
                    for (o, &val) in dst.iter_mut().zip(vh) {
                        *o += p * val;
                    }
                }
            }
            let o = self.proj(bw.wo, bw.bo, &attn);
            for (xi, oi) in x.iter_mut().zip(o.iter()) {
                *xi += oi;
            }

            // Pre-LN FFN: x += ffn(ln2(x)).
            let f = self.ffn_delta(bw, &x);
            for (xi, fi) in x.iter_mut().zip(f.iter()) {
                *xi += fi;
            }
        }
        Ok(self.lm_logits(&x))
    }

    /// Run the whole prompt through [`step_paged`](Self::step_paged),
    /// returning the logits after the final prompt token (the first
    /// decode distribution). The sequence must be freshly admitted.
    pub fn prefill_paged(
        &self,
        arena: &mut PagedKvArena,
        seq: KvSeq,
        prompt: &[u32],
    ) -> Result<Vec<f32>, KvError> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let mut logits = Vec::new();
        for &tok in prompt {
            logits = self.step_paged(arena, seq, tok)?;
        }
        Ok(logits)
    }

    /// Greedy generation: feed the prompt, then extend by `n` tokens.
    pub fn generate_greedy(&self, prompt: &[u32], n: usize) -> Vec<u32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let mut state = self.init_state();
        let mut logits = Vec::new();
        for &tok in prompt {
            logits = self.step(&mut state, tok);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = tt_tensor::ops::argmax(&logits).expect("non-empty vocab") as u32;
            out.push(next);
            if state.steps() >= self.config.max_position {
                break;
            }
            logits = self.step(&mut state, next);
        }
        out
    }

    /// Top-k sampling generation with a seeded RNG.
    pub fn generate_top_k(&self, prompt: &[u32], n: usize, k_top: usize, seed: u64) -> Vec<u32> {
        assert!(!prompt.is_empty() && k_top >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = self.init_state();
        let mut logits = Vec::new();
        for &tok in prompt {
            logits = self.step(&mut state, tok);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            // Softmax over the top-k logits only.
            let mut idx: Vec<usize> = (0..logits.len()).collect();
            idx.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).expect("finite logits"));
            idx.truncate(k_top);
            let max = logits[idx[0]];
            let weights: Vec<f32> = idx.iter().map(|&i| (logits[i] - max).exp()).collect();
            let total: f32 = weights.iter().sum();
            let mut r = rng.random_range(0.0..total);
            let mut chosen = idx[0];
            for (&i, &w) in idx.iter().zip(&weights) {
                if r < w {
                    chosen = i;
                    break;
                }
                r -= w;
            }
            out.push(chosen as u32);
            if state.steps() >= self.config.max_position {
                break;
            }
            logits = self.step(&mut state, chosen as u32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_produces_vocab_logits() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 17);
        let mut st = m.init_state();
        let logits = m.step(&mut st, 3);
        assert_eq!(logits.len(), cfg.vocab_size);
        assert!(logits.iter().all(|v| v.is_finite()));
        assert_eq!(st.steps(), 1);
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 18);
        let a = m.generate_greedy(&[1, 2, 3], 6);
        let b = m.generate_greedy(&[1, 2, 3], 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&t| (t as usize) < cfg.vocab_size));
    }

    #[test]
    fn different_prompts_diverge() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 19);
        let a = m.generate_greedy(&[1, 2, 3], 5);
        let b = m.generate_greedy(&[30, 31, 32], 5);
        // Random weights: overwhelmingly likely to differ; equality would
        // indicate the prompt is being ignored (e.g. a cache bug).
        assert_ne!(a, b);
    }

    #[test]
    fn cache_matches_full_recompute() {
        // Step-by-step KV-cached logits must equal recomputing the whole
        // prefix from scratch at each position.
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 20);
        let tokens = [4u32, 9, 13, 2];

        let mut st = m.init_state();
        let mut cached = Vec::new();
        for &t in &tokens {
            cached = m.step(&mut st, t);
        }

        let mut fresh = m.init_state();
        let mut recomputed = Vec::new();
        for &t in &tokens {
            recomputed = m.step(&mut fresh, t);
        }
        for (a, b) in cached.iter().zip(recomputed.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn top_k_sampling_is_seeded_and_bounded() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 21);
        let a = m.generate_top_k(&[5], 8, 3, 42);
        let b = m.generate_top_k(&[5], 8, 3, 42);
        assert_eq!(a, b, "same seed, same sample");
        let c = m.generate_top_k(&[5], 8, 3, 43);
        assert!(a != c || a.len() == c.len(), "different seeds may differ");
        assert!(a.iter().all(|&t| (t as usize) < cfg.vocab_size));
    }

    #[test]
    #[should_panic(expected = "context length exceeded")]
    fn context_overflow_panics() {
        let mut cfg = GptConfig::tiny();
        cfg.max_position = 3;
        let m = Gpt::new_random(&cfg, 22);
        let mut st = m.init_state();
        for _ in 0..4 {
            m.step(&mut st, 1);
        }
    }

    #[test]
    fn paged_decode_matches_unpaged_step() {
        // The paged path must be numerically identical to the private-cache
        // path at every position, including across page boundaries
        // (page_slots = 3 with 7 tokens crosses two).
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 23);
        let tokens = [4u32, 9, 13, 2, 7, 1, 22];
        let mut st = m.init_state();
        let mut arena = PagedKvArena::new(m.kv_config(3, 16));
        let seq = arena.admit(3).unwrap();
        for &t in &tokens {
            let unpaged = m.step(&mut st, t);
            let paged = m.step_paged(&mut arena, seq, t).unwrap();
            for (a, b) in unpaged.iter().zip(&paged) {
                assert!((a - b).abs() < 1e-6, "paged logits diverge: {a} vs {b}");
            }
        }
        assert_eq!(arena.len_of(seq).unwrap(), tokens.len());
    }

    #[test]
    fn interleaved_paged_sequences_do_not_crosstalk() {
        // Two sequences stepped turn-by-turn through one arena must each
        // match their own serial unpaged run.
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 24);
        let prompts = [[3u32, 17, 5, 9], [30u32, 2, 28, 11]];
        let mut arena = PagedKvArena::new(m.kv_config(2, 16));
        let seqs = [arena.admit(4).unwrap(), arena.admit(4).unwrap()];
        let mut states = [m.init_state(), m.init_state()];
        for (step, (t0, t1)) in prompts[0].iter().zip(&prompts[1]).enumerate() {
            let toks = [*t0, *t1];
            for i in 0..2 {
                let unpaged = m.step(&mut states[i], toks[i]);
                let paged = m.step_paged(&mut arena, seqs[i], toks[i]).unwrap();
                for (a, b) in unpaged.iter().zip(&paged) {
                    assert!((a - b).abs() < 1e-6, "seq {i} step {step}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn prefill_paged_returns_first_decode_logits() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 25);
        let prompt = [1u32, 2, 3];
        let mut st = m.init_state();
        let mut serial = Vec::new();
        for &t in &prompt {
            serial = m.step(&mut st, t);
        }
        let mut arena = PagedKvArena::new(m.kv_config(4, 8));
        let seq = arena.admit(prompt.len()).unwrap();
        let logits = m.prefill_paged(&mut arena, seq, &prompt).unwrap();
        for (a, b) in serial.iter().zip(&logits) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn paged_exhaustion_mid_decode_is_typed_and_recoverable() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 26);
        // 2 pages of 2 slots: the fifth token has nowhere to go.
        let mut arena = PagedKvArena::new(m.kv_config(2, 2));
        let seq = arena.admit(2).unwrap();
        for t in 0..4 {
            m.step_paged(&mut arena, seq, t).unwrap();
        }
        let err = m.step_paged(&mut arena, seq, 4).unwrap_err();
        assert!(matches!(err, tt_alloc::KvError::OutOfPages { .. }));
        assert_eq!(arena.release(seq).unwrap(), 2, "all pages come back");
        assert_eq!(arena.free_pages(), 2);
    }

    #[test]
    fn gpt2_small_has_expected_parameter_scale() {
        let m = Gpt::new_random(&GptConfig::small(), 1);
        let params = m.param_bytes() / 4;
        // GPT-2 small ≈ 124 M parameters (with tied output embedding).
        assert!((100_000_000..160_000_000).contains(&params), "params {params}");
    }
}
