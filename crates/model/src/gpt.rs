//! A GPT-2-style decoder-only language model — one of the transformer
//! families the paper's introduction motivates ("Seq2seq, BERT, GPT2,
//! XLNet, ALBERT") and a natural extension of the reproduction: causal
//! self-attention with a KV cache, pre-LayerNorm residual blocks, and
//! greedy / top-k sampling generation.
//!
//! Architecturally this differs from the Seq2Seq decoder in two ways that
//! matter to the runtime: *pre*-LN (`x + attn(ln(x))`) changes the fusion
//! pattern (no bias+residual+LN epilogue), and there is no cross-attention,
//! so generation cost is pure self-attention + FFN.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tt_alloc::{KvError, KvSeq, PagedKvArena, PagedKvConfig};
use tt_graph::{Graph, OpKind, TensorClass};
use tt_kernels as k;
use tt_tensor::Trans;

use crate::program::Program;
use crate::weights::{int8_enabled, WeightInit, WeightStore};

/// GPT hyper-parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GptConfig {
    /// Transformer blocks.
    pub num_layers: usize,
    /// Attention heads.
    pub num_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum context length.
    pub max_position: usize,
    /// LayerNorm epsilon.
    pub layer_norm_eps: f32,
}

impl GptConfig {
    /// GPT-2 small: 12 layers, 12 heads, model dim 768.
    pub fn small() -> Self {
        GptConfig {
            num_layers: 12,
            num_heads: 12,
            head_dim: 64,
            ffn_dim: 3072,
            vocab_size: 50257,
            max_position: 1024,
            layer_norm_eps: 1e-5,
        }
    }

    /// Small test config.
    pub fn tiny() -> Self {
        GptConfig {
            num_layers: 2,
            num_heads: 2,
            head_dim: 4,
            ffn_dim: 16,
            vocab_size: 41,
            max_position: 32,
            layer_norm_eps: 1e-5,
        }
    }

    /// Model (hidden) dimension.
    pub fn model_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }
}

/// One block's weight indices.
#[derive(Debug, Clone, Copy)]
struct BlockWeights {
    ln1_gamma: usize,
    ln1_beta: usize,
    wq: usize,
    bq: usize,
    wk: usize,
    bk: usize,
    wv: usize,
    bv: usize,
    wo: usize,
    bo: usize,
    ln2_gamma: usize,
    ln2_beta: usize,
    w1: usize,
    b1: usize,
    w2: usize,
    b2: usize,
}

impl BlockWeights {
    fn create(store: &mut WeightStore, init: &mut WeightInit, h: usize, ffn: usize) -> Self {
        BlockWeights {
            ln1_gamma: store.push(init.gamma(h)),
            ln1_beta: store.push(init.beta(h)),
            wq: store.push(init.linear(h, h)),
            bq: store.push(init.bias(h)),
            wk: store.push(init.linear(h, h)),
            bk: store.push(init.bias(h)),
            wv: store.push(init.linear(h, h)),
            bv: store.push(init.bias(h)),
            wo: store.push(init.linear(h, h)),
            bo: store.push(init.bias(h)),
            ln2_gamma: store.push(init.gamma(h)),
            ln2_beta: store.push(init.beta(h)),
            w1: store.push(init.linear(h, ffn)),
            b1: store.push(init.bias(ffn)),
            w2: store.push(init.linear(ffn, h)),
            b2: store.push(init.bias(h)),
        }
    }
}

/// Per-layer KV cache, layout `[head][t][dim]` (single sequence).
#[derive(Debug, Clone, Default)]
struct Cache {
    k: Vec<f32>,
    v: Vec<f32>,
}

/// Incremental generation state.
#[derive(Debug, Clone)]
pub struct GptState {
    steps: usize,
    caches: Vec<Cache>,
}

impl GptState {
    /// Tokens consumed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

/// P1 — `ln1(x)` projected to Q, K, V for one token (m = 1). The AddBias
/// outputs are program outputs, so the pass correctly leaves them unfused.
fn compile_qkv_program(h: usize, eps: f32) -> Program {
    let mut g = Graph::new();
    let x = g.add_tensor("x", vec![1, h], TensorClass::Input);
    let gamma = g.add_tensor("ln1_gamma", vec![h], TensorClass::Weight);
    let beta = g.add_tensor("ln1_beta", vec![h], TensorClass::Weight);
    let normed = g.add_tensor("normed", vec![1, h], TensorClass::Activation);
    g.add_node(OpKind::LayerNorm { eps }, vec![x, gamma, beta], normed);
    let mut weights = vec![gamma, beta];
    let mut outs = Vec::new();
    for name in ["q", "k", "v"] {
        let w = g.add_tensor(format!("w{name}"), vec![h, h], TensorClass::Weight);
        let b = g.add_tensor(format!("b{name}"), vec![h], TensorClass::Weight);
        let raw = g.add_tensor(format!("{name}_raw"), vec![1, h], TensorClass::Activation);
        let out = g.add_tensor(name, vec![1, h], TensorClass::Output);
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![normed, w], raw);
        g.add_node(OpKind::AddBias, vec![raw, b], out);
        weights.extend([w, b]);
        outs.push(out);
    }
    Program::compile(&g, &weights, &[x], &outs)
}

/// P2 — everything after attention: output projection, first residual, and
/// the FFN with its residual. Pre-LN means the first residual's output has
/// *two* consumers (`ln2` and the final residual), so the pass must *not*
/// emit AddBiasResidualLayerNorm here — only the FFN's bias+GELU fuses.
fn compile_post_program(h: usize, ffn: usize, eps: f32) -> Program {
    let mut g = Graph::new();
    let attn = g.add_tensor("attn", vec![1, h], TensorClass::Input);
    let x = g.add_tensor("x", vec![1, h], TensorClass::Input);
    let wo = g.add_tensor("wo", vec![h, h], TensorClass::Weight);
    let bo = g.add_tensor("bo", vec![h], TensorClass::Weight);
    let gamma = g.add_tensor("ln2_gamma", vec![h], TensorClass::Weight);
    let beta = g.add_tensor("ln2_beta", vec![h], TensorClass::Weight);
    let w1 = g.add_tensor("w1", vec![h, ffn], TensorClass::Weight);
    let b1 = g.add_tensor("b1", vec![ffn], TensorClass::Weight);
    let w2 = g.add_tensor("w2", vec![ffn, h], TensorClass::Weight);
    let b2 = g.add_tensor("b2", vec![h], TensorClass::Weight);

    let o_raw = g.add_tensor("o_raw", vec![1, h], TensorClass::Activation);
    g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![attn, wo], o_raw);
    let o = g.add_tensor("o", vec![1, h], TensorClass::Activation);
    g.add_node(OpKind::AddBias, vec![o_raw, bo], o);
    let x1 = g.add_tensor("x1", vec![1, h], TensorClass::Activation);
    g.add_node(OpKind::Residual, vec![o, x], x1);
    let n2 = g.add_tensor("n2", vec![1, h], TensorClass::Activation);
    g.add_node(OpKind::LayerNorm { eps }, vec![x1, gamma, beta], n2);
    let i_raw = g.add_tensor("ffn_raw", vec![1, ffn], TensorClass::Activation);
    g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![n2, w1], i_raw);
    let i_bias = g.add_tensor("ffn_bias", vec![1, ffn], TensorClass::Activation);
    g.add_node(OpKind::AddBias, vec![i_raw, b1], i_bias);
    let i_act = g.add_tensor("ffn_act", vec![1, ffn], TensorClass::Activation);
    g.add_node(OpKind::Gelu, vec![i_bias], i_act);
    let f_raw = g.add_tensor("f_raw", vec![1, h], TensorClass::Activation);
    g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![i_act, w2], f_raw);
    let f = g.add_tensor("f", vec![1, h], TensorClass::Activation);
    g.add_node(OpKind::AddBias, vec![f_raw, b2], f);
    let y = g.add_tensor("y", vec![1, h], TensorClass::Output);
    g.add_node(OpKind::Residual, vec![f, x1], y);
    Program::compile(&g, &[wo, bo, gamma, beta, w1, b1, w2, b2], &[attn, x], &[y])
}

/// P3 — final LayerNorm + tied-embedding projection. The `trans_b` GEMM
/// over `tok_emb` `[vocab, h]` replaces the old scalar vocab loop: it rides
/// the dispatched dot kernel, and the int8 sidecar when quantized.
fn compile_lm_program(h: usize, vocab: usize, eps: f32) -> Program {
    let mut g = Graph::new();
    let x = g.add_tensor("x", vec![1, h], TensorClass::Input);
    let gamma = g.add_tensor("ln_f_gamma", vec![h], TensorClass::Weight);
    let beta = g.add_tensor("ln_f_beta", vec![h], TensorClass::Weight);
    let emb = g.add_tensor("tok_emb", vec![vocab, h], TensorClass::Weight);
    let normed = g.add_tensor("final_normed", vec![1, h], TensorClass::Activation);
    g.add_node(OpKind::LayerNorm { eps }, vec![x, gamma, beta], normed);
    let logits = g.add_tensor("logits", vec![1, vocab], TensorClass::Output);
    g.add_node(OpKind::MatMul { trans_b: true, alpha: 1.0 }, vec![normed, emb], logits);
    Program::compile(&g, &[gamma, beta, emb], &[x], &[logits])
}

/// The model.
#[derive(Debug)]
pub struct Gpt {
    /// Hyper-parameters.
    pub config: GptConfig,
    store: WeightStore,
    tok_emb: usize,
    pos_emb: usize,
    blocks: Vec<BlockWeights>,
    p_qkv: Program,
    p_post: Program,
    p_lm: Program,
    qkv_tables: Vec<Vec<usize>>,
    post_tables: Vec<Vec<usize>>,
    lm_table: Vec<usize>,
}

impl Gpt {
    /// Build a GPT with seeded random weights. Decode-step programs are
    /// compiled once here (m = 1 shapes are fixed), and if `TT_GEMM_INT8`
    /// is set the weight GEMM operands get int8 sidecars immediately.
    pub fn new_random(config: &GptConfig, seed: u64) -> Self {
        let mut store = WeightStore::new();
        let mut init = WeightInit::new(seed);
        let h = config.model_dim();
        let tok_emb = store.push(init.embedding(config.vocab_size, h));
        let pos_emb = store.push(init.embedding(config.max_position, h));
        let ln_f_gamma = store.push(init.gamma(h));
        let ln_f_beta = store.push(init.beta(h));
        let blocks: Vec<BlockWeights> = (0..config.num_layers)
            .map(|_| BlockWeights::create(&mut store, &mut init, h, config.ffn_dim))
            .collect();
        let qkv_tables = blocks
            .iter()
            .map(|b| vec![b.ln1_gamma, b.ln1_beta, b.wq, b.bq, b.wk, b.bk, b.wv, b.bv])
            .collect();
        let post_tables = blocks
            .iter()
            .map(|b| vec![b.wo, b.bo, b.ln2_gamma, b.ln2_beta, b.w1, b.b1, b.w2, b.b2])
            .collect();
        let mut gpt = Gpt {
            config: config.clone(),
            store,
            tok_emb,
            pos_emb,
            blocks,
            p_qkv: compile_qkv_program(h, config.layer_norm_eps),
            p_post: compile_post_program(h, config.ffn_dim, config.layer_norm_eps),
            p_lm: compile_lm_program(h, config.vocab_size, config.layer_norm_eps),
            qkv_tables,
            post_tables,
            lm_table: vec![ln_f_gamma, ln_f_beta, tok_emb],
        };
        if int8_enabled() {
            gpt.quantize_int8();
        }
        gpt
    }

    /// Total parameter bytes.
    pub fn param_bytes(&self) -> usize {
        self.store.bytes()
    }

    /// Attach int8 sidecars (per-output-channel scales, f32 accumulate) to
    /// every 2-D weight GEMM operand: the six projection matrices per block
    /// and the tied-embedding lm head. Decode-step GEMVs then move a
    /// quarter of the weight bytes. Biases and LayerNorm parameters stay
    /// f32 — they are O(h), not worth the accuracy cost.
    pub fn quantize_int8(&mut self) {
        for i in 0..self.blocks.len() {
            let bw = self.blocks[i];
            for w in [bw.wq, bw.wk, bw.wv, bw.wo, bw.w1, bw.w2] {
                self.store.quantize(w, Trans::No);
            }
        }
        self.store.quantize(self.tok_emb, Trans::Yes);
    }

    /// True once [`quantize_int8`](Self::quantize_int8) has run.
    pub fn is_quantized(&self) -> bool {
        self.store.quantized_count() > 0
    }

    /// Switch between the fused programs and their decomposed (fine-grained)
    /// twins. `set_fused(false)` is the numerical reference for the
    /// fused/unfused identity tests and the un-fused benchmark baseline.
    pub fn set_fused(&mut self, fused: bool) {
        if fused {
            let cfg = &self.config;
            let h = cfg.model_dim();
            self.p_qkv = compile_qkv_program(h, cfg.layer_norm_eps);
            self.p_post = compile_post_program(h, cfg.ffn_dim, cfg.layer_norm_eps);
            self.p_lm = compile_lm_program(h, cfg.vocab_size, cfg.layer_norm_eps);
        } else {
            self.p_qkv = self.p_qkv.decomposed();
            self.p_post = self.p_post.decomposed();
            self.p_lm = self.p_lm.decomposed();
        }
    }

    /// Fused kernels issued per decode step (all layers + lm head).
    pub fn fused_ops_per_step(&self) -> usize {
        self.config.num_layers * (self.p_qkv.fused_ops() + self.p_post.fused_ops())
            + self.p_lm.fused_ops()
    }

    /// Memory-bound passes the fusion pass removed per decode step.
    pub fn elided_passes_per_step(&self) -> usize {
        self.config.num_layers * (self.p_qkv.elided_passes() + self.p_post.elided_passes())
            + self.p_lm.elided_passes()
    }

    /// Fresh generation state.
    pub fn init_state(&self) -> GptState {
        GptState { steps: 0, caches: vec![Cache::default(); self.blocks.len()] }
    }

    /// Token + position embedding for one token at position `t`.
    fn embed(&self, token: u32, t: usize) -> Vec<f32> {
        let cfg = &self.config;
        let h = cfg.model_dim();
        assert!(t < cfg.max_position, "context length exceeded");
        assert!((token as usize) < cfg.vocab_size, "token id out of vocabulary");
        let tok = self.store.get(self.tok_emb).as_slice();
        let pos = self.store.get(self.pos_emb).as_slice();
        (0..h).map(|i| tok[token as usize * h + i] + pos[t * h + i]).collect()
    }

    /// Pre-LN attention input: `ln1(x)` projected to Q, K, V — each laid
    /// out `[head][head_dim]` contiguously. Runs the compiled P1 program.
    fn qkv(&self, li: usize, x: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut outs = self.p_qkv.run(&self.store, &self.qkv_tables[li], &[x]);
        let v = outs.pop().expect("v output");
        let kk = outs.pop().expect("k output");
        let q = outs.pop().expect("q output");
        (q, kk, v)
    }

    /// Everything after attention for block `li`: output projection +
    /// residual, then the pre-LN FFN + residual (compiled P2 program).
    fn post_attn_ffn(&self, li: usize, attn: &[f32], x: &[f32]) -> Vec<f32> {
        self.p_post.run(&self.store, &self.post_tables[li], &[attn, x]).pop().expect("block output")
    }

    /// Final LN + tied-embedding projection (GPT-2 ties output weights to
    /// the token embedding) — compiled P3 program, whose `trans_b` GEMM
    /// takes the dispatched dot/int8 path instead of a scalar vocab loop.
    fn lm_logits(&self, x: &[f32]) -> Vec<f32> {
        self.p_lm.run(&self.store, &self.lm_table, &[x]).pop().expect("logits output")
    }

    /// Feed one token; returns the `[vocab]` logits for the next position
    /// and grows the KV caches.
    pub fn step(&self, state: &mut GptState, token: u32) -> Vec<f32> {
        let cfg = &self.config;
        let h = cfg.model_dim();
        let (heads, d) = (cfg.num_heads, cfg.head_dim);
        let t = state.steps;
        let mut x = self.embed(token, t);

        let scale = 1.0 / (d as f32).sqrt();
        for li in 0..self.blocks.len() {
            // Pre-LN attention: x += attn(ln1(x)).
            let (q, knew, vnew) = self.qkv(li, &x);

            // Grow the cache to [head][t+1][d].
            let cache = &mut state.caches[li];
            let new_len = t + 1;
            let mut gk = vec![0.0f32; heads * new_len * d];
            let mut gv = vec![0.0f32; heads * new_len * d];
            for hd in 0..heads {
                gk[hd * new_len * d..hd * new_len * d + t * d]
                    .copy_from_slice(&cache.k[hd * t * d..(hd * t + t) * d]);
                gv[hd * new_len * d..hd * new_len * d + t * d]
                    .copy_from_slice(&cache.v[hd * t * d..(hd * t + t) * d]);
                gk[hd * new_len * d + t * d..hd * new_len * d + new_len * d]
                    .copy_from_slice(&knew[hd * d..(hd + 1) * d]);
                gv[hd * new_len * d + t * d..hd * new_len * d + new_len * d]
                    .copy_from_slice(&vnew[hd * d..(hd + 1) * d]);
            }
            cache.k = gk;
            cache.v = gv;

            // Causal attention over the cache (query attends to ≤ t).
            let mut attn = vec![0.0f32; h];
            let mut probs = vec![0.0f32; new_len];
            for hd in 0..heads {
                let qv = &q[hd * d..(hd + 1) * d];
                let base = hd * new_len * d;
                for (tt, p) in probs.iter_mut().enumerate() {
                    let kv = &cache.k[base + tt * d..base + (tt + 1) * d];
                    *p = qv.iter().zip(kv).map(|(a, b)| a * b).sum::<f32>() * scale;
                }
                k::softmax_rows(1, new_len, &mut probs);
                let dst = &mut attn[hd * d..(hd + 1) * d];
                for (tt, &p) in probs.iter().enumerate() {
                    let vv = &cache.v[base + tt * d..base + (tt + 1) * d];
                    for (o, &val) in dst.iter_mut().zip(vv) {
                        *o += p * val;
                    }
                }
            }
            // Output projection + residual, then pre-LN FFN + residual —
            // one compiled program (the bias+GELU fuses in the pass).
            x = self.post_attn_ffn(li, &attn, &x);
        }
        state.steps += 1;
        self.lm_logits(&x)
    }

    /// The [`PagedKvConfig`] matching this model's shape: an arena built
    /// from it accepts [`step_paged`](Self::step_paged) for this model.
    pub fn kv_config(&self, page_slots: usize, num_pages: usize) -> PagedKvConfig {
        PagedKvConfig {
            layers: self.config.num_layers,
            heads: self.config.num_heads,
            head_dim: self.config.head_dim,
            page_slots,
            num_pages,
        }
    }

    /// Feed one token of sequence `seq`, reading and growing its KV cache
    /// in the paged arena instead of a private [`GptState`]. The token's
    /// position is the sequence's current cache length, so interleaving
    /// steps of different sequences is safe — this is the decode step of
    /// the continuous-batching engine.
    ///
    /// Errors are typed and recoverable at the serving layer:
    /// [`KvError::OutOfPages`] means the arena (or the `kv_alloc_fail`
    /// chaos point) refused the next slot *before* any state changed.
    /// On any error the caller should release the sequence; its pages are
    /// reclaimed in full.
    pub fn step_paged(
        &self,
        arena: &mut PagedKvArena,
        seq: KvSeq,
        token: u32,
    ) -> Result<Vec<f32>, KvError> {
        let cfg = &self.config;
        let h = cfg.model_dim();
        let (heads, d) = (cfg.num_heads, cfg.head_dim);
        debug_assert_eq!(arena.config().layers, cfg.num_layers, "arena shape mismatch");
        debug_assert_eq!(arena.config().slot_floats(), h, "arena shape mismatch");
        let pos = arena.append(seq)?;
        let mut x = self.embed(token, pos);

        let scale = 1.0 / (d as f32).sqrt();
        for li in 0..self.blocks.len() {
            // Pre-LN attention: x += attn(ln1(x)), K/V through the page table.
            let (q, knew, vnew) = self.qkv(li, &x);
            arena.write(seq, li, pos, &knew, &vnew)?;

            let mut attn = vec![0.0f32; h];
            let mut probs = vec![0.0f32; pos + 1];
            for hd in 0..heads {
                let qv = &q[hd * d..(hd + 1) * d];
                for (tt, p) in probs.iter_mut().enumerate() {
                    let (kt, _) = arena.kv_at(seq, li, tt)?;
                    let kh = &kt[hd * d..(hd + 1) * d];
                    *p = qv.iter().zip(kh).map(|(a, b)| a * b).sum::<f32>() * scale;
                }
                k::softmax_rows(1, pos + 1, &mut probs);
                for (tt, &p) in probs.iter().enumerate() {
                    let (_, vt) = arena.kv_at(seq, li, tt)?;
                    let vh = &vt[hd * d..(hd + 1) * d];
                    let dst = &mut attn[hd * d..(hd + 1) * d];
                    for (o, &val) in dst.iter_mut().zip(vh) {
                        *o += p * val;
                    }
                }
            }
            // Output projection + residual, then pre-LN FFN + residual.
            x = self.post_attn_ffn(li, &attn, &x);
        }
        Ok(self.lm_logits(&x))
    }

    /// Run the whole prompt through [`step_paged`](Self::step_paged),
    /// returning the logits after the final prompt token (the first
    /// decode distribution). The sequence must be freshly admitted.
    pub fn prefill_paged(
        &self,
        arena: &mut PagedKvArena,
        seq: KvSeq,
        prompt: &[u32],
    ) -> Result<Vec<f32>, KvError> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let mut logits = Vec::new();
        for &tok in prompt {
            logits = self.step_paged(arena, seq, tok)?;
        }
        Ok(logits)
    }

    /// Greedy generation: feed the prompt, then extend by `n` tokens.
    pub fn generate_greedy(&self, prompt: &[u32], n: usize) -> Vec<u32> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let mut state = self.init_state();
        let mut logits = Vec::new();
        for &tok in prompt {
            logits = self.step(&mut state, tok);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = tt_tensor::ops::argmax(&logits).expect("non-empty vocab") as u32;
            out.push(next);
            if state.steps() >= self.config.max_position {
                break;
            }
            logits = self.step(&mut state, next);
        }
        out
    }

    /// Top-k sampling generation with a seeded RNG.
    pub fn generate_top_k(&self, prompt: &[u32], n: usize, k_top: usize, seed: u64) -> Vec<u32> {
        assert!(!prompt.is_empty() && k_top >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = self.init_state();
        let mut logits = Vec::new();
        for &tok in prompt {
            logits = self.step(&mut state, tok);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            // Softmax over the top-k logits only.
            let mut idx: Vec<usize> = (0..logits.len()).collect();
            idx.sort_by(|&a, &b| logits[b].partial_cmp(&logits[a]).expect("finite logits"));
            idx.truncate(k_top);
            let max = logits[idx[0]];
            let weights: Vec<f32> = idx.iter().map(|&i| (logits[i] - max).exp()).collect();
            let total: f32 = weights.iter().sum();
            let mut r = rng.random_range(0.0..total);
            let mut chosen = idx[0];
            for (&i, &w) in idx.iter().zip(&weights) {
                if r < w {
                    chosen = i;
                    break;
                }
                r -= w;
            }
            out.push(chosen as u32);
            if state.steps() >= self.config.max_position {
                break;
            }
            logits = self.step(&mut state, chosen as u32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_produces_vocab_logits() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 17);
        let mut st = m.init_state();
        let logits = m.step(&mut st, 3);
        assert_eq!(logits.len(), cfg.vocab_size);
        assert!(logits.iter().all(|v| v.is_finite()));
        assert_eq!(st.steps(), 1);
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 18);
        let a = m.generate_greedy(&[1, 2, 3], 6);
        let b = m.generate_greedy(&[1, 2, 3], 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&t| (t as usize) < cfg.vocab_size));
    }

    #[test]
    fn different_prompts_diverge() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 19);
        let a = m.generate_greedy(&[1, 2, 3], 5);
        let b = m.generate_greedy(&[30, 31, 32], 5);
        // Random weights: overwhelmingly likely to differ; equality would
        // indicate the prompt is being ignored (e.g. a cache bug).
        assert_ne!(a, b);
    }

    #[test]
    fn cache_matches_full_recompute() {
        // Step-by-step KV-cached logits must equal recomputing the whole
        // prefix from scratch at each position.
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 20);
        let tokens = [4u32, 9, 13, 2];

        let mut st = m.init_state();
        let mut cached = Vec::new();
        for &t in &tokens {
            cached = m.step(&mut st, t);
        }

        let mut fresh = m.init_state();
        let mut recomputed = Vec::new();
        for &t in &tokens {
            recomputed = m.step(&mut fresh, t);
        }
        for (a, b) in cached.iter().zip(recomputed.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn top_k_sampling_is_seeded_and_bounded() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 21);
        let a = m.generate_top_k(&[5], 8, 3, 42);
        let b = m.generate_top_k(&[5], 8, 3, 42);
        assert_eq!(a, b, "same seed, same sample");
        let c = m.generate_top_k(&[5], 8, 3, 43);
        assert!(a != c || a.len() == c.len(), "different seeds may differ");
        assert!(a.iter().all(|&t| (t as usize) < cfg.vocab_size));
    }

    #[test]
    #[should_panic(expected = "context length exceeded")]
    fn context_overflow_panics() {
        let mut cfg = GptConfig::tiny();
        cfg.max_position = 3;
        let m = Gpt::new_random(&cfg, 22);
        let mut st = m.init_state();
        for _ in 0..4 {
            m.step(&mut st, 1);
        }
    }

    #[test]
    fn paged_decode_matches_unpaged_step() {
        // The paged path must be numerically identical to the private-cache
        // path at every position, including across page boundaries
        // (page_slots = 3 with 7 tokens crosses two).
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 23);
        let tokens = [4u32, 9, 13, 2, 7, 1, 22];
        let mut st = m.init_state();
        let mut arena = PagedKvArena::new(m.kv_config(3, 16));
        let seq = arena.admit(3).unwrap();
        for &t in &tokens {
            let unpaged = m.step(&mut st, t);
            let paged = m.step_paged(&mut arena, seq, t).unwrap();
            for (a, b) in unpaged.iter().zip(&paged) {
                assert!((a - b).abs() < 1e-6, "paged logits diverge: {a} vs {b}");
            }
        }
        assert_eq!(arena.len_of(seq).unwrap(), tokens.len());
    }

    #[test]
    fn interleaved_paged_sequences_do_not_crosstalk() {
        // Two sequences stepped turn-by-turn through one arena must each
        // match their own serial unpaged run.
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 24);
        let prompts = [[3u32, 17, 5, 9], [30u32, 2, 28, 11]];
        let mut arena = PagedKvArena::new(m.kv_config(2, 16));
        let seqs = [arena.admit(4).unwrap(), arena.admit(4).unwrap()];
        let mut states = [m.init_state(), m.init_state()];
        for (step, (t0, t1)) in prompts[0].iter().zip(&prompts[1]).enumerate() {
            let toks = [*t0, *t1];
            for i in 0..2 {
                let unpaged = m.step(&mut states[i], toks[i]);
                let paged = m.step_paged(&mut arena, seqs[i], toks[i]).unwrap();
                for (a, b) in unpaged.iter().zip(&paged) {
                    assert!((a - b).abs() < 1e-6, "seq {i} step {step}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn prefill_paged_returns_first_decode_logits() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 25);
        let prompt = [1u32, 2, 3];
        let mut st = m.init_state();
        let mut serial = Vec::new();
        for &t in &prompt {
            serial = m.step(&mut st, t);
        }
        let mut arena = PagedKvArena::new(m.kv_config(4, 8));
        let seq = arena.admit(prompt.len()).unwrap();
        let logits = m.prefill_paged(&mut arena, seq, &prompt).unwrap();
        for (a, b) in serial.iter().zip(&logits) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn paged_exhaustion_mid_decode_is_typed_and_recoverable() {
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 26);
        // 2 pages of 2 slots: the fifth token has nowhere to go.
        let mut arena = PagedKvArena::new(m.kv_config(2, 2));
        let seq = arena.admit(2).unwrap();
        for t in 0..4 {
            m.step_paged(&mut arena, seq, t).unwrap();
        }
        let err = m.step_paged(&mut arena, seq, 4).unwrap_err();
        assert!(matches!(err, tt_alloc::KvError::OutOfPages { .. }));
        assert_eq!(arena.release(seq).unwrap(), 2, "all pages come back");
        assert_eq!(arena.free_pages(), 2);
    }

    #[test]
    fn gpt2_small_has_expected_parameter_scale() {
        let m = Gpt::new_random(&GptConfig::small(), 1);
        let params = m.param_bytes() / 4;
        // GPT-2 small ≈ 124 M parameters (with tied output embedding).
        assert!((100_000_000..160_000_000).contains(&params), "params {params}");
    }

    #[test]
    fn programs_report_pre_ln_fusion_shape() {
        // Pre-LN blocks the bias+residual+LN epilogue (the first residual's
        // output feeds both ln2 and the final residual), so exactly one
        // fusion fires per block: the FFN's bias+GELU.
        let cfg = GptConfig::tiny();
        let m = Gpt::new_random(&cfg, 30);
        assert_eq!(m.p_qkv.fused_ops(), 0);
        assert_eq!(m.p_post.fused_ops(), 1);
        assert_eq!(m.p_post.elided_passes(), 1);
        assert_eq!(m.p_lm.fused_ops(), 0);
        let names = m.p_post.op_names().join(" ");
        assert!(names.contains("AddBiasGelu"), "bias+GELU must fuse: {names}");
        assert!(
            !names.contains("AddBiasResidualLayerNorm"),
            "pre-LN must not fuse the residual epilogue: {names}"
        );
        assert_eq!(m.fused_ops_per_step(), cfg.num_layers);
        assert_eq!(m.elided_passes_per_step(), cfg.num_layers);
    }

    #[test]
    fn fused_forward_matches_decomposed_within_1e5() {
        // e2e pin: fused programs vs their decomposed twins, over prefill
        // (paged) and several decode steps.
        let cfg = GptConfig::tiny();
        let fused = Gpt::new_random(&cfg, 31);
        let mut unfused = Gpt::new_random(&cfg, 31);
        unfused.set_fused(false);
        assert_eq!(unfused.fused_ops_per_step(), 0);
        // The decomposed twin executes every fine-grained pass again.
        assert_eq!(unfused.elided_passes_per_step(), 0);
        assert!(unfused.p_post.nodes() > fused.p_post.nodes());

        let prompt = [3u32, 17, 5, 9];
        let mut arena_f = PagedKvArena::new(fused.kv_config(2, 16));
        let mut arena_u = PagedKvArena::new(unfused.kv_config(2, 16));
        let sf = arena_f.admit(4).unwrap();
        let su = arena_u.admit(4).unwrap();
        let mut lf = fused.prefill_paged(&mut arena_f, sf, &prompt).unwrap();
        let mut lu = unfused.prefill_paged(&mut arena_u, su, &prompt).unwrap();
        for _ in 0..3 {
            for (a, b) in lf.iter().zip(&lu) {
                assert!((a - b).abs() < 1e-5, "fused {a} vs unfused {b}");
            }
            let next = tt_tensor::ops::argmax(&lf).unwrap() as u32;
            lf = fused.step_paged(&mut arena_f, sf, next).unwrap();
            lu = unfused.step_paged(&mut arena_u, su, next).unwrap();
        }
    }

    #[test]
    fn int8_decode_tracks_f32_within_documented_tolerance() {
        // Weight-only int8 with per-channel scales: per-GEMM relative error
        // ≤ 0.5/127 ≈ 0.4 % of the channel's max weight (see
        // docs/KERNELS.md). Through a 2-layer tiny model the logits stay
        // within 0.1 abs of f32 — and must actually differ (sidecar used).
        let cfg = GptConfig::tiny();
        let f32_model = Gpt::new_random(&cfg, 32);
        let mut q8_model = Gpt::new_random(&cfg, 32);
        q8_model.quantize_int8();
        assert!(q8_model.is_quantized());
        assert!(!f32_model.is_quantized());

        let tokens = [4u32, 9, 13, 2, 7];
        let mut st_f = f32_model.init_state();
        let mut st_q = q8_model.init_state();
        let mut max_diff = 0.0f32;
        for &t in &tokens {
            let lf = f32_model.step(&mut st_f, t);
            let lq = q8_model.step(&mut st_q, t);
            for (a, b) in lf.iter().zip(&lq) {
                max_diff = max_diff.max((a - b).abs());
            }
        }
        assert!(max_diff > 0.0, "quantized path must actually run");
        assert!(max_diff < 0.1, "int8 drift {max_diff} exceeds documented tolerance");
    }

    #[test]
    fn quantization_preserves_greedy_argmax_on_tiny() {
        // Not guaranteed in general, but on this seeded tiny model the
        // int8 logit drift is far below the argmax margin — a regression
        // here means the scale scheme broke, not that the property is deep.
        let cfg = GptConfig::tiny();
        let a = Gpt::new_random(&cfg, 33).generate_greedy(&[1, 2, 3], 6);
        let mut q = Gpt::new_random(&cfg, 33);
        q.quantize_int8();
        let b = q.generate_greedy(&[1, 2, 3], 6);
        assert_eq!(a, b);
    }
}
