//! Binding between a computation graph and a model's weights/inputs.

use tt_graph::{Graph, TensorId};

/// Which request-supplied input a graph input tensor corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputBinding {
    /// `[batch, seq]` token ids (stored as f32).
    TokenIds,
    /// `[batch, seq]` additive attention mask (0 valid, −inf padding).
    AttentionMask,
    /// `[batch, seq]` segment ids (stored as f32).
    SegmentIds,
    /// `[batch, src_seq, hidden]` encoder memory (decoder cross-attention).
    EncoderOutput,
}

/// A graph plus everything needed to execute it: which tensor ids are
/// weights (and which store index they refer to), which are inputs, and
/// which single tensor is the result.
#[derive(Debug, Clone)]
pub struct BoundGraph {
    /// The fused computation graph.
    pub graph: Graph,
    /// `(graph tensor id, weight-store index)` pairs.
    pub weights: Vec<(TensorId, usize)>,
    /// `(graph tensor id, input role)` pairs.
    pub inputs: Vec<(TensorId, InputBinding)>,
    /// The output tensor (final hidden states `[batch, seq, hidden]`).
    pub output: TensorId,
}

impl BoundGraph {
    /// The weight-store index bound to a tensor, if any.
    pub fn weight_index(&self, t: TensorId) -> Option<usize> {
        self.weights.iter().find(|(id, _)| *id == t).map(|&(_, w)| w)
    }

    /// The input role bound to a tensor, if any.
    pub fn input_role(&self, t: TensorId) -> Option<InputBinding> {
        self.inputs.iter().find(|(id, _)| *id == t).map(|&(_, r)| r)
    }

    /// Re-derive the bindings after a graph rewrite that may have remapped
    /// or dropped tensors. Matching is by tensor *name*, which rewrites
    /// preserve for inputs/weights/outputs.
    pub fn rebind(&self, rewritten: Graph) -> BoundGraph {
        let find = |name: &str| -> Option<TensorId> {
            rewritten.tensors.iter().position(|t| t.name == name)
        };
        let weights = self
            .weights
            .iter()
            .filter_map(|&(t, w)| find(&self.graph.tensors[t].name).map(|nt| (nt, w)))
            .collect();
        let inputs = self
            .inputs
            .iter()
            .filter_map(|&(t, r)| find(&self.graph.tensors[t].name).map(|nt| (nt, r)))
            .collect();
        let output = find(&self.graph.tensors[self.output].name)
            .expect("rewrites must preserve the output tensor");
        BoundGraph { graph: rewritten, weights, inputs, output }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_graph::{OpKind, TensorClass};

    fn small_bound() -> BoundGraph {
        let mut g = Graph::new();
        let ids = g.add_tensor("ids", vec![1, 4], TensorClass::Input);
        let w = g.add_tensor("w", vec![4, 4], TensorClass::Weight);
        let y = g.add_tensor("y", vec![1, 4, 4], TensorClass::Output);
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![ids, w], y);
        BoundGraph {
            graph: g,
            weights: vec![(w, 7)],
            inputs: vec![(ids, InputBinding::TokenIds)],
            output: y,
        }
    }

    #[test]
    fn lookups_work() {
        let b = small_bound();
        assert_eq!(b.weight_index(1), Some(7));
        assert_eq!(b.weight_index(0), None);
        assert_eq!(b.input_role(0), Some(InputBinding::TokenIds));
        assert_eq!(b.input_role(1), None);
    }

    #[test]
    fn rebind_follows_names_through_a_rewrite() {
        let b = small_bound();
        // A rewrite that reorders tensors.
        let mut g2 = Graph::new();
        let y = g2.add_tensor("y", vec![1, 4, 4], TensorClass::Output);
        let ids = g2.add_tensor("ids", vec![1, 4], TensorClass::Input);
        let w = g2.add_tensor("w", vec![4, 4], TensorClass::Weight);
        g2.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![ids, w], y);
        let rb = b.rebind(g2);
        assert_eq!(rb.weight_index(2), Some(7));
        assert_eq!(rb.input_role(1), Some(InputBinding::TokenIds));
        assert_eq!(rb.output, 0);
    }
}
