//! Compiled layer programs — the model-side client of the graph fusion
//! pass (paper §4.1.1).
//!
//! A [`Program`] is a small IR: the model emits one **fine-grained** op
//! sequence per layer (one node per kernel a training framework would
//! launch), [`compile`](Program::compile) runs `tt_graph::fusion::fuse`
//! over it, and execution issues the surviving (fused) nodes in
//! topological order. The forward paths of `bert.rs` / `gpt.rs` therefore
//! get their bias+GELU, bias+residual+LayerNorm and scale+mask+softmax
//! collapses from the *pass*, not from hand-wired kernel calls — and every
//! program knows exactly how many memory-bound passes the pass elided
//! ([`Program::elided_passes`]).
//!
//! GEMM nodes whose second operand is a 2-D weight consult the
//! [`WeightStore`]'s int8 sidecar ([`tt_tensor::Q8Matrix`]): when present
//! (and its layout matches the node's transpose flag), the node runs
//! through `sgemm_q8` — per-output-channel scales, f32 accumulate, a
//! quarter of the weight traffic on the bandwidth-bound decode GEMVs.

use tt_graph::{fusion, Graph, Node, NodeId, OpKind, TensorClass, TensorId};
use tt_kernels as k;
use tt_tensor::{batched_sgemm, sgemm, sgemm_q8, GemmSpec, Q8Matrix, Trans};

use crate::weights::WeightStore;

/// A fused, topologically ordered op sequence with named parameter slots.
///
/// Weights are *slots*, not store indices: the same compiled program runs
/// every layer of a model by passing a different weight-index table to
/// [`run`](Program::run) (ALBERT-style sharing falls out for free).
#[derive(Debug, Clone)]
pub struct Program {
    graph: Graph,
    order: Vec<NodeId>,
    weight_slots: Vec<TensorId>,
    input_slots: Vec<TensorId>,
    output_slots: Vec<TensorId>,
    fine_nodes: usize,
}

impl Program {
    /// Compile a fine-grained graph: run the fusion pass, re-derive the
    /// topological order, and re-locate the declared weight/input/output
    /// tensors (by name — the pass only drops anonymous intermediates).
    ///
    /// `weights`, `inputs` and `outputs` are tensor ids *in the fine
    /// graph*; their order defines the slot order `run` expects.
    pub fn compile(
        fine: &Graph,
        weights: &[TensorId],
        inputs: &[TensorId],
        outputs: &[TensorId],
    ) -> Program {
        let graph = fusion::fuse(fine);
        let relocate = |ids: &[TensorId], what: &str| -> Vec<TensorId> {
            ids.iter()
                .map(|&t| {
                    let name = &fine.tensors[t].name;
                    graph
                        .tensors
                        .iter()
                        .position(|ti| &ti.name == name)
                        .unwrap_or_else(|| panic!("{what} tensor {name} lost in fusion"))
                })
                .collect()
        };
        let weight_slots = relocate(weights, "weight");
        let input_slots = relocate(inputs, "input");
        let output_slots = relocate(outputs, "output");
        let order = graph.topo_order();
        Program {
            graph,
            order,
            weight_slots,
            input_slots,
            output_slots,
            fine_nodes: fine.nodes.len(),
        }
    }

    /// The unfused twin: every fused kernel expanded back into its
    /// fine-grained constituents (`tt_graph::fusion::decompose`). Slot
    /// bindings carry over — decomposition only *adds* intermediate
    /// tensors. This is the numerical reference the fused/unfused identity
    /// tests pin against, and the PyTorch-like baseline for benchmarks.
    pub fn decomposed(&self) -> Program {
        let graph = fusion::decompose(&self.graph);
        let order = graph.topo_order();
        Program {
            order,
            graph,
            weight_slots: self.weight_slots.clone(),
            input_slots: self.input_slots.clone(),
            output_slots: self.output_slots.clone(),
            fine_nodes: self.fine_nodes,
        }
    }

    /// Nodes issued per run (post-fusion).
    pub fn nodes(&self) -> usize {
        self.graph.nodes.len()
    }

    /// Fused custom kernels in the compiled stream.
    pub fn fused_ops(&self) -> usize {
        self.graph.nodes.iter().filter(|n| n.kind.is_fused()).count()
    }

    /// Memory-bound passes the fusion pass removed (fine-grained node
    /// count minus compiled node count).
    pub fn elided_passes(&self) -> usize {
        self.fine_nodes - self.graph.nodes.len()
    }

    /// Number of weight slots `run` expects.
    pub fn weight_slot_count(&self) -> usize {
        self.weight_slots.len()
    }

    /// Op-kind debug names in execution order (for tests and trace
    /// attribution).
    pub fn op_names(&self) -> Vec<String> {
        self.order.iter().map(|&i| format!("{:?}", self.graph.nodes[i].kind)).collect()
    }

    /// Execute the program. `weight_table[slot]` is the store index bound
    /// to weight slot `slot`; `inputs` follow the compiled input-slot
    /// order. Returns one buffer per output slot.
    pub fn run(
        &self,
        store: &WeightStore,
        weight_table: &[usize],
        inputs: &[&[f32]],
    ) -> Vec<Vec<f32>> {
        assert_eq!(weight_table.len(), self.weight_slots.len(), "weight table arity");
        assert_eq!(inputs.len(), self.input_slots.len(), "input arity");
        let widx = |t: TensorId| -> usize {
            let slot = self.weight_slots.iter().position(|&w| w == t).unwrap_or_else(|| {
                panic!("weight tensor {} has no slot", self.graph.tensors[t].name)
            });
            weight_table[slot]
        };

        let mut bufs: Vec<Option<Vec<f32>>> = vec![None; self.graph.tensors.len()];
        for &nid in &self.order {
            let node = &self.graph.nodes[nid];
            let ins: Vec<&[f32]> =
                node.inputs
                    .iter()
                    .map(|&t| match self.graph.tensors[t].class {
                        TensorClass::Weight => store.get(widx(t)).as_slice(),
                        TensorClass::Input => {
                            let pos = self.input_slots.iter().position(|&i| i == t).unwrap_or_else(
                                || panic!("unbound input {}", self.graph.tensors[t].name),
                            );
                            inputs[pos]
                        }
                        TensorClass::Activation | TensorClass::Output => {
                            bufs[t].as_deref().unwrap_or_else(|| {
                                panic!("tensor {} read before write", self.graph.tensors[t].name)
                            })
                        }
                    })
                    .collect();
            // int8 sidecar lookup for weight GEMMs.
            let quant = match &node.kind {
                OpKind::MatMul { .. }
                    if self.graph.tensors[node.inputs[1]].class == TensorClass::Weight =>
                {
                    store.quant(widx(node.inputs[1]))
                }
                _ => None,
            };
            let mut out = vec![0.0f32; self.graph.tensors[node.output].elements()];
            exec(&self.graph, node, &ins, quant, &mut out);
            drop(ins);
            bufs[node.output] = Some(out);
        }
        self.output_slots
            .iter()
            .map(|&t| {
                bufs[t].take().unwrap_or_else(|| {
                    panic!("output {} never produced", self.graph.tensors[t].name)
                })
            })
            .collect()
    }
}

/// Execute one node. Mirrors `tt-runtime`'s executor dispatch (the two are
/// kept semantically identical by the cross-checking tests in
/// `tt-runtime`), plus the int8 weight path.
fn exec(graph: &Graph, node: &Node, ins: &[&[f32]], quant: Option<&Q8Matrix>, out: &mut [f32]) {
    let shape_of = |i: usize| -> &[usize] { &graph.tensors[node.inputs[i]].shape };
    let out_shape: &[usize] = &graph.tensors[node.output].shape;

    match &node.kind {
        OpKind::MatMul { trans_b, alpha } => {
            let a = shape_of(0);
            let b = shape_of(1);
            if b.len() == 2 {
                // 2-D weight: `[k, n]`, or `[n, k]` with trans_b (the
                // tied-embedding lm head).
                let m: usize = a[..a.len() - 1].iter().product();
                let kk = a[a.len() - 1];
                let (tb, n) = if *trans_b { (Trans::Yes, b[0]) } else { (Trans::No, b[1]) };
                if let Some(q) = quant {
                    if q.trans() == tb && q.k == kk && q.n == n {
                        sgemm_q8(m, *alpha, ins[0], q, out);
                        return;
                    }
                }
                let spec = GemmSpec { m, k: kk, n, ta: Trans::No, tb, alpha: *alpha, beta: 0.0 };
                sgemm(spec, ins[0], ins[1], out);
            } else {
                let batch = a[0] * a[1];
                let (m, kk) = (a[2], a[3]);
                let (tb, n) = if *trans_b { (Trans::Yes, b[2]) } else { (Trans::No, b[3]) };
                let spec = GemmSpec { m, k: kk, n, ta: Trans::No, tb, alpha: *alpha, beta: 0.0 };
                batched_sgemm(batch, spec, ins[0], ins[1], out);
            }
        }
        OpKind::AddBias => {
            let cols = *out_shape.last().expect("rank >= 1");
            out.copy_from_slice(ins[0]);
            k::add_bias(out.len() / cols, cols, out, ins[1]);
        }
        OpKind::Gelu => {
            out.copy_from_slice(ins[0]);
            k::gelu(out);
        }
        OpKind::AddBiasGelu => {
            let cols = *out_shape.last().expect("rank >= 1");
            out.copy_from_slice(ins[0]);
            k::add_bias_gelu(out.len() / cols, cols, out, ins[1]);
        }
        OpKind::SplitHeads { heads } => {
            let (b, s) = (shape_of(0)[0], shape_of(0)[1]);
            let d = out_shape[3];
            k::split_heads(b, s, *heads, d, ins[0], out);
        }
        OpKind::AddBiasSplitHeads { heads } => {
            let (b, s) = (shape_of(0)[0], shape_of(0)[1]);
            let d = out_shape[3];
            k::add_bias_split_heads(b, s, *heads, d, ins[0], ins[1], out);
        }
        OpKind::MergeHeads => {
            let src = shape_of(0); // [b, h, s, d]
            k::merge_heads(src[0], src[2], src[1], src[3], ins[0], out);
        }
        OpKind::Scale { alpha } => {
            for (o, &x) in out.iter_mut().zip(ins[0]) {
                *o = x * alpha;
            }
        }
        OpKind::Mask => {
            // scores [b, h, sq, sk] + mask [b, sk].
            let s = shape_of(0);
            let (b, h, sq, sk) = (s[0], s[1], s[2], s[3]);
            for ((row, o_row), i_row) in
                (0..b * h * sq).zip(out.chunks_mut(sk)).zip(ins[0].chunks(sk))
            {
                let bi = row / (h * sq);
                let mrow = &ins[1][bi * sk..(bi + 1) * sk];
                for ((o, &x), &m) in o_row.iter_mut().zip(i_row).zip(mrow) {
                    *o = x + m;
                }
            }
        }
        OpKind::Softmax => {
            let len = *out_shape.last().expect("rank >= 1");
            out.copy_from_slice(ins[0]);
            k::softmax_rows(out.len() / len, len, out);
        }
        OpKind::ScaleMaskSoftmax { scale } => {
            let s = shape_of(0);
            let sk = *s.last().expect("rank >= 1");
            out.copy_from_slice(ins[0]);
            if s.len() == 4 {
                k::scale_mask_softmax(s[0], s[1], s[2], sk, *scale, ins.get(1).copied(), out);
            } else {
                assert!(ins.len() == 1, "mask requires [b, h, sq, sk] scores");
                tt_tensor::ops::scale_inplace(out, *scale);
                k::softmax_rows(out.len() / sk.max(1), sk, out);
            }
        }
        OpKind::Residual => {
            out.copy_from_slice(ins[0]);
            k::residual_add(out, ins[1]);
        }
        OpKind::LayerNorm { eps } => {
            let hidden = *out_shape.last().expect("rank >= 1");
            k::layer_norm(out.len() / hidden, hidden, ins[0], ins[1], ins[2], *eps, out);
        }
        OpKind::AddBiasResidualLayerNorm { eps } => {
            let hidden = *out_shape.last().expect("rank >= 1");
            k::add_bias_residual_layer_norm(
                out.len() / hidden,
                hidden,
                ins[0],
                ins[1],
                ins[2],
                ins[3],
                ins[4],
                *eps,
                out,
            );
        }
        OpKind::Embedding => {
            let ids_shape = shape_of(0);
            let (b, s) = (ids_shape[0], ids_shape[1]);
            let hidden = *out_shape.last().expect("rank >= 1");
            let ids: Vec<u32> = ins[0].iter().map(|&v| v as u32).collect();
            k::embed(b, s, hidden, &ids, ins[1], ins[2], None, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_graph::TensorClass::{Activation, Input, Output, Weight};
    use tt_tensor::Tensor;

    /// x·W + b → GELU, fine-grained; the pass must fuse bias+GELU.
    fn linear_gelu_program() -> (Program, Graph) {
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![3, 8], Input);
        let w = g.add_tensor("w", vec![8, 4], Weight);
        let b = g.add_tensor("b", vec![4], Weight);
        let h = g.add_tensor("h", vec![3, 4], Activation);
        let hb = g.add_tensor("hb", vec![3, 4], Activation);
        let y = g.add_tensor("y", vec![3, 4], Output);
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![x, w], h);
        g.add_node(OpKind::AddBias, vec![h, b], hb);
        g.add_node(OpKind::Gelu, vec![hb], y);
        (Program::compile(&g, &[w, b], &[x], &[y]), g)
    }

    #[test]
    fn compile_fuses_and_counts_elisions() {
        let (p, fine) = linear_gelu_program();
        assert_eq!(fine.nodes.len(), 3);
        assert_eq!(p.nodes(), 2, "MatMul + AddBiasGelu");
        assert_eq!(p.fused_ops(), 1);
        assert_eq!(p.elided_passes(), 1);
        assert!(p.op_names().iter().any(|n| n.contains("AddBiasGelu")));
    }

    #[test]
    fn run_matches_hand_called_kernels() {
        let (p, _) = linear_gelu_program();
        let mut store = WeightStore::new();
        let w = store.push(Tensor::from_fn([8, 4], |_| 0.3));
        let b = store.push(Tensor::from_fn([4], |_| -0.1));
        let x: Vec<f32> = (0..24).map(|i| (i as f32 * 0.17).sin()).collect();

        let got = p.run(&store, &[w, b], &[&x]);

        let mut want = vec![0.0f32; 12];
        sgemm(GemmSpec::nn(3, 8, 4), &x, store.get(w).as_slice(), &mut want);
        k::add_bias_gelu(3, 4, &mut want, store.get(b).as_slice());
        assert_eq!(got.len(), 1);
        for (g, w) in got[0].iter().zip(&want) {
            assert!((g - w).abs() < 1e-6, "{g} vs {w}");
        }
    }

    #[test]
    fn trans_b_weight_gemm_runs_and_quantizes() {
        // lm-head shape: x [1, 8] · embᵀ where emb is [n=5, k=8].
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![1, 8], Input);
        let e = g.add_tensor("emb", vec![5, 8], Weight);
        let y = g.add_tensor("logits", vec![1, 5], Output);
        g.add_node(OpKind::MatMul { trans_b: true, alpha: 1.0 }, vec![x, e], y);
        let p = Program::compile(&g, &[e], &[x], &[y]);

        let mut store = WeightStore::new();
        let e = store.push(Tensor::from_fn([5, 8], |i| ((i * 7 % 13) as f32 - 6.0) * 0.1));
        let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.3).cos()).collect();

        let f32_out = p.run(&store, &[e], &[&x]);
        let want: Vec<f32> = (0..5)
            .map(|v| {
                x.iter().zip(&store.get(e).as_slice()[v * 8..(v + 1) * 8]).map(|(a, b)| a * b).sum()
            })
            .collect();
        for (g, w) in f32_out[0].iter().zip(&want) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }

        // Quantize the head and re-run: within the per-channel error bound.
        store.quantize(e, Trans::Yes);
        let q8_out = p.run(&store, &[e], &[&x]);
        let q = store.quant(e).unwrap();
        for (j, (g, w)) in q8_out[0].iter().zip(&want).enumerate() {
            let bound = q.error_bound(j, &x) + 1e-6;
            assert!((g - w).abs() <= bound, "channel {j}: |{g} - {w}| > {bound}");
        }
    }

    #[test]
    fn weight_table_rebinds_slots_per_call() {
        // One program, two weight tables — the per-layer reuse BERT relies on.
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![2, 4], Input);
        let w = g.add_tensor("w", vec![4, 4], Weight);
        let y = g.add_tensor("y", vec![2, 4], Output);
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![x, w], y);
        let p = Program::compile(&g, &[w], &[x], &[y]);

        let mut store = WeightStore::new();
        let w1 = store.push(Tensor::full([4, 4], 1.0));
        let w2 = store.push(Tensor::full([4, 4], 2.0));
        let x = vec![1.0f32; 8];
        let a = p.run(&store, &[w1], &[&x]);
        let b = p.run(&store, &[w2], &[&x]);
        assert!(a[0].iter().all(|&v| (v - 4.0).abs() < 1e-6));
        assert!(b[0].iter().all(|&v| (v - 8.0).abs() < 1e-6));
    }
}
