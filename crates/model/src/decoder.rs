//! Seq2Seq transformer decoder with incremental (KV-cached) decoding and
//! beam search — the paper's third evaluation model (Table 3: 6 layers,
//! 16 heads, head dim 64, beam 4, max target length 500; applied to
//! Chinese→English translation in Figure 10c).
//!
//! Unlike the encoders, generation is inherently sequential: each target
//! token triggers one decoder forward over *all beams batched together*,
//! with per-layer key/value caches so self-attention over the generated
//! prefix costs O(t) instead of O(t²). This is exactly the workload whose
//! variable (and growing) intermediate shapes stress the paper's memory
//! allocator.

use tt_kernels as k;
use tt_tensor::{sgemm, GemmSpec, Tensor};

use crate::weights::{WeightInit, WeightStore};

/// Decoder hyper-parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Seq2SeqDecoderConfig {
    /// Decoder layers.
    pub num_layers: usize,
    /// Attention heads.
    pub num_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// FFN inner dimension.
    pub ffn_dim: usize,
    /// Target vocabulary size.
    pub vocab_size: usize,
    /// Maximum generated length.
    pub max_target_len: usize,
    /// Beam width.
    pub beam_size: usize,
    /// LayerNorm epsilon.
    pub layer_norm_eps: f32,
}

impl Seq2SeqDecoderConfig {
    /// The paper's decoder: 6 layers, 16 heads, head dim 64 (model 1024),
    /// beam 4, max target 500.
    pub fn base() -> Self {
        Seq2SeqDecoderConfig {
            num_layers: 6,
            num_heads: 16,
            head_dim: 64,
            ffn_dim: 4096,
            vocab_size: 32000,
            max_target_len: 500,
            beam_size: 4,
            layer_norm_eps: 1e-6,
        }
    }

    /// Small test config.
    pub fn tiny() -> Self {
        Seq2SeqDecoderConfig {
            num_layers: 2,
            num_heads: 2,
            head_dim: 4,
            ffn_dim: 16,
            vocab_size: 31,
            max_target_len: 16,
            beam_size: 3,
            layer_norm_eps: 1e-6,
        }
    }

    /// Model (hidden) dimension.
    pub fn model_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }
}

/// One decoder layer's weight-store indices.
#[derive(Debug, Clone, Copy)]
struct DecoderLayerWeights {
    // Self-attention.
    wq: usize,
    bq: usize,
    wk: usize,
    bk: usize,
    wv: usize,
    bv: usize,
    wo: usize,
    bo: usize,
    ln1_gamma: usize,
    ln1_beta: usize,
    // Cross-attention (queries from decoder, keys/values from encoder).
    cq: usize,
    cbq: usize,
    ck: usize,
    cbk: usize,
    cv: usize,
    cbv: usize,
    co: usize,
    cbo: usize,
    ln2_gamma: usize,
    ln2_beta: usize,
    // FFN.
    w1: usize,
    b1: usize,
    w2: usize,
    b2: usize,
    ln3_gamma: usize,
    ln3_beta: usize,
}

impl DecoderLayerWeights {
    fn create(store: &mut WeightStore, init: &mut WeightInit, h: usize, ffn: usize) -> Self {
        DecoderLayerWeights {
            wq: store.push(init.linear(h, h)),
            bq: store.push(init.bias(h)),
            wk: store.push(init.linear(h, h)),
            bk: store.push(init.bias(h)),
            wv: store.push(init.linear(h, h)),
            bv: store.push(init.bias(h)),
            wo: store.push(init.linear(h, h)),
            bo: store.push(init.bias(h)),
            ln1_gamma: store.push(init.gamma(h)),
            ln1_beta: store.push(init.beta(h)),
            cq: store.push(init.linear(h, h)),
            cbq: store.push(init.bias(h)),
            ck: store.push(init.linear(h, h)),
            cbk: store.push(init.bias(h)),
            cv: store.push(init.linear(h, h)),
            cbv: store.push(init.bias(h)),
            co: store.push(init.linear(h, h)),
            cbo: store.push(init.bias(h)),
            ln2_gamma: store.push(init.gamma(h)),
            ln2_beta: store.push(init.beta(h)),
            w1: store.push(init.linear(h, ffn)),
            b1: store.push(init.bias(ffn)),
            w2: store.push(init.linear(ffn, h)),
            b2: store.push(init.bias(h)),
            ln3_gamma: store.push(init.gamma(h)),
            ln3_beta: store.push(init.beta(h)),
        }
    }
}

/// Per-layer self-attention KV cache for all beams:
/// layout `[beam][head][t][dim]`, growing in `t`.
#[derive(Debug, Clone, Default)]
struct LayerCache {
    k: Vec<f32>,
    v: Vec<f32>,
}

/// Decoding state: caches plus the precomputed encoder K/V per layer
/// (`[head][src][dim]`, shared across beams).
#[derive(Debug, Clone)]
pub struct DecoderState {
    beams: usize,
    steps: usize,
    src_len: usize,
    caches: Vec<LayerCache>,
    enc_k: Vec<Vec<f32>>,
    enc_v: Vec<Vec<f32>>,
}

impl DecoderState {
    /// Generated length so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Reorder the caches after a beam-search shuffle: new beam `i` takes
    /// the cache of old beam `parents[i]`.
    fn reorder(&mut self, parents: &[usize], heads: usize, dim: usize) {
        let stride = heads * self.steps * dim;
        for cache in &mut self.caches {
            let old_k = cache.k.clone();
            let old_v = cache.v.clone();
            for (new_b, &old_b) in parents.iter().enumerate() {
                cache.k[new_b * stride..(new_b + 1) * stride]
                    .copy_from_slice(&old_k[old_b * stride..(old_b + 1) * stride]);
                cache.v[new_b * stride..(new_b + 1) * stride]
                    .copy_from_slice(&old_v[old_b * stride..(old_b + 1) * stride]);
            }
        }
    }
}

/// A beam-search hypothesis.
#[derive(Debug, Clone)]
pub struct Hypothesis {
    /// Generated token ids (excluding BOS).
    pub tokens: Vec<u32>,
    /// Accumulated log-probability.
    pub score: f32,
}

/// The Seq2Seq decoder model.
#[derive(Debug)]
pub struct Seq2SeqDecoder {
    /// Hyper-parameters.
    pub config: Seq2SeqDecoderConfig,
    store: WeightStore,
    tgt_emb: usize,
    pos_emb: usize,
    out_proj: usize,
    layers: Vec<DecoderLayerWeights>,
}

impl Seq2SeqDecoder {
    /// Build a decoder with seeded random weights.
    pub fn new_random(config: &Seq2SeqDecoderConfig, seed: u64) -> Self {
        let mut store = WeightStore::new();
        let mut init = WeightInit::new(seed);
        let h = config.model_dim();
        let tgt_emb = store.push(init.embedding(config.vocab_size, h));
        let pos_emb = store.push(init.embedding(config.max_target_len + 1, h));
        let out_proj = store.push(init.linear(h, config.vocab_size));
        let layers = (0..config.num_layers)
            .map(|_| DecoderLayerWeights::create(&mut store, &mut init, h, config.ffn_dim))
            .collect();
        Seq2SeqDecoder { config: config.clone(), store, tgt_emb, pos_emb, out_proj, layers }
    }

    /// Total parameter bytes.
    pub fn param_bytes(&self) -> usize {
        self.store.bytes()
    }

    /// Initialize decoding state for `beams` hypotheses against an encoder
    /// memory `[src_len, hidden]`: precomputes the cross-attention K/V.
    pub fn init_state(&self, encoder_output: &Tensor, beams: usize) -> DecoderState {
        let h = self.config.model_dim();
        let (heads, d) = (self.config.num_heads, self.config.head_dim);
        assert_eq!(encoder_output.shape().rank(), 2, "encoder memory is [src, hidden]");
        assert_eq!(encoder_output.shape().dim(1), h, "encoder hidden must match decoder");
        let src = encoder_output.shape().dim(0);

        let project = |w: usize, b: usize| -> Vec<f32> {
            let mut out = vec![0.0f32; src * h];
            sgemm(
                GemmSpec::nn(src, h, h),
                encoder_output.as_slice(),
                self.store.get(w).as_slice(),
                &mut out,
            );
            k::add_bias(src, h, &mut out, self.store.get(b).as_slice());
            let mut split = vec![0.0f32; src * h];
            k::split_heads(1, src, heads, d, &out, &mut split);
            split
        };

        let enc_k = self.layers.iter().map(|lw| project(lw.ck, lw.cbk)).collect();
        let enc_v = self.layers.iter().map(|lw| project(lw.cv, lw.cbv)).collect();
        DecoderState {
            beams,
            steps: 0,
            src_len: src,
            caches: vec![LayerCache::default(); self.layers.len()],
            enc_k,
            enc_v,
        }
    }

    /// One decoding step: feed the last token of each beam, return the
    /// `[beams, vocab]` logits and grow the caches.
    pub fn step(&self, state: &mut DecoderState, last_tokens: &[u32]) -> Tensor {
        let cfg = &self.config;
        let beams = state.beams;
        assert_eq!(last_tokens.len(), beams, "one last token per beam");
        let h = cfg.model_dim();
        let (heads, d) = (cfg.num_heads, cfg.head_dim);
        let t = state.steps; // number of cached positions
        assert!(t < cfg.max_target_len, "exceeded max_target_len");

        // Embed the current tokens (+ position t).
        let mut x = vec![0.0f32; beams * h];
        let tgt = self.store.get(self.tgt_emb).as_slice();
        let pos = self.store.get(self.pos_emb).as_slice();
        for (b, &tok) in last_tokens.iter().enumerate() {
            let w = &tgt[tok as usize * h..(tok as usize + 1) * h];
            let p = &pos[t * h..(t + 1) * h];
            for i in 0..h {
                x[b * h + i] = w[i] + p[i];
            }
        }

        let scale = 1.0 / (d as f32).sqrt();
        for (li, lw) in self.layers.iter().enumerate() {
            // ---- causal self-attention over the cache + current token ----
            let proj = |w: usize, b: usize, x: &[f32]| -> Vec<f32> {
                let mut out = vec![0.0f32; beams * h];
                sgemm(GemmSpec::nn(beams, h, h), x, self.store.get(w).as_slice(), &mut out);
                k::add_bias(beams, h, &mut out, self.store.get(b).as_slice());
                out // [beam][head*d], per-token so head split is a view
            };
            let q = proj(lw.wq, lw.bq, &x);
            let knew = proj(lw.wk, lw.bk, &x);
            let vnew = proj(lw.wv, lw.bv, &x);

            // Append to cache, converting to [beam][head][t][d].
            let cache = &mut state.caches[li];
            let new_len = t + 1;
            let mut grown_k = vec![0.0f32; beams * heads * new_len * d];
            let mut grown_v = vec![0.0f32; beams * heads * new_len * d];
            for b in 0..beams {
                for hd in 0..heads {
                    let dst_base = ((b * heads + hd) * new_len) * d;
                    let old_base = ((b * heads + hd) * t) * d;
                    grown_k[dst_base..dst_base + t * d]
                        .copy_from_slice(&cache.k[old_base..old_base + t * d]);
                    grown_v[dst_base..dst_base + t * d]
                        .copy_from_slice(&cache.v[old_base..old_base + t * d]);
                    let src = &knew[b * h + hd * d..b * h + (hd + 1) * d];
                    grown_k[dst_base + t * d..dst_base + new_len * d].copy_from_slice(src);
                    let src = &vnew[b * h + hd * d..b * h + (hd + 1) * d];
                    grown_v[dst_base + t * d..dst_base + new_len * d].copy_from_slice(src);
                }
            }
            cache.k = grown_k;
            cache.v = grown_v;

            let attn = attend(&q, &cache.k, &cache.v, beams, heads, d, new_len, scale, 1);
            let mut o = vec![0.0f32; beams * h];
            sgemm(GemmSpec::nn(beams, h, h), &attn, self.store.get(lw.wo).as_slice(), &mut o);
            k::add_bias(beams, h, &mut o, self.store.get(lw.bo).as_slice());
            k::residual_add(&mut o, &x);
            let mut x1 = vec![0.0f32; beams * h];
            k::layer_norm(
                beams,
                h,
                &o,
                self.store.get(lw.ln1_gamma).as_slice(),
                self.store.get(lw.ln1_beta).as_slice(),
                cfg.layer_norm_eps,
                &mut x1,
            );

            // ---- cross-attention over the encoder memory ----
            let qc = proj(lw.cq, lw.cbq, &x1);
            let attn_c = attend_shared(
                &qc,
                &state.enc_k[li],
                &state.enc_v[li],
                beams,
                heads,
                d,
                state.src_len,
                scale,
            );
            let mut oc = vec![0.0f32; beams * h];
            sgemm(GemmSpec::nn(beams, h, h), &attn_c, self.store.get(lw.co).as_slice(), &mut oc);
            k::add_bias(beams, h, &mut oc, self.store.get(lw.cbo).as_slice());
            k::residual_add(&mut oc, &x1);
            let mut x2 = vec![0.0f32; beams * h];
            k::layer_norm(
                beams,
                h,
                &oc,
                self.store.get(lw.ln2_gamma).as_slice(),
                self.store.get(lw.ln2_beta).as_slice(),
                cfg.layer_norm_eps,
                &mut x2,
            );

            // ---- FFN ----
            let mut inner = vec![0.0f32; beams * cfg.ffn_dim];
            sgemm(
                GemmSpec::nn(beams, h, cfg.ffn_dim),
                &x2,
                self.store.get(lw.w1).as_slice(),
                &mut inner,
            );
            k::add_bias_gelu(beams, cfg.ffn_dim, &mut inner, self.store.get(lw.b1).as_slice());
            let mut out = vec![0.0f32; beams * h];
            sgemm(
                GemmSpec::nn(beams, cfg.ffn_dim, h),
                &inner,
                self.store.get(lw.w2).as_slice(),
                &mut out,
            );
            k::add_bias(beams, h, &mut out, self.store.get(lw.b2).as_slice());
            k::residual_add(&mut out, &x2);
            let mut x3 = vec![0.0f32; beams * h];
            k::layer_norm(
                beams,
                h,
                &out,
                self.store.get(lw.ln3_gamma).as_slice(),
                self.store.get(lw.ln3_beta).as_slice(),
                cfg.layer_norm_eps,
                &mut x3,
            );
            x = x3;
        }
        state.steps += 1;

        let mut logits = vec![0.0f32; beams * cfg.vocab_size];
        sgemm(
            GemmSpec::nn(beams, h, cfg.vocab_size),
            &x,
            self.store.get(self.out_proj).as_slice(),
            &mut logits,
        );
        Tensor::from_vec([beams, cfg.vocab_size], logits).expect("sized above")
    }

    /// Beam-search decode against an encoder memory `[src, hidden]`.
    /// Generation stops at `eos` or `max_len` (clamped to the config's
    /// `max_target_len`). Returns the best hypothesis.
    pub fn beam_search(
        &self,
        encoder_output: &Tensor,
        bos: u32,
        eos: u32,
        max_len: usize,
    ) -> Hypothesis {
        let beams = self.config.beam_size;
        let vocab = self.config.vocab_size;
        let max_len = max_len.min(self.config.max_target_len);
        let mut state = self.init_state(encoder_output, beams);

        let mut tokens: Vec<Vec<u32>> = vec![Vec::new(); beams];
        let mut scores = vec![0.0f32; beams];
        let mut alive = vec![true; beams];
        let mut last = vec![bos; beams];
        let mut finished: Vec<Hypothesis> = Vec::new();

        for step in 0..max_len {
            let logits = self.step(&mut state, &last);
            // Log-softmax per beam.
            let mut cands: Vec<(f32, usize, u32)> = Vec::new(); // (score, beam, token)
            for b in 0..beams {
                if !alive[b] {
                    continue;
                }
                let row = logits.row(b);
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
                for (tok, &v) in row.iter().enumerate() {
                    cands.push((scores[b] + v - lse, b, tok as u32));
                }
                // On the first step every beam is identical; keep only beam 0's
                // candidates to avoid duplicate hypotheses.
                if step == 0 {
                    break;
                }
            }
            cands.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            cands.truncate(beams);
            if cands.is_empty() {
                break;
            }

            let parents: Vec<usize> = cands.iter().map(|&(_, b, _)| b).collect();
            state.reorder(&parents, self.config.num_heads, self.config.head_dim);

            let mut new_tokens = Vec::with_capacity(beams);
            let mut new_scores = Vec::with_capacity(beams);
            let mut new_last = Vec::with_capacity(beams);
            let mut new_alive = Vec::with_capacity(beams);
            for &(score, parent, tok) in &cands {
                let mut seq = tokens[parent].clone();
                seq.push(tok);
                if tok == eos {
                    finished.push(Hypothesis { tokens: seq.clone(), score });
                    new_alive.push(false);
                } else {
                    new_alive.push(true);
                }
                new_tokens.push(seq);
                new_scores.push(score);
                new_last.push(tok);
            }
            // Pad back to full width if fewer candidates than beams.
            while new_tokens.len() < beams {
                new_tokens.push(Vec::new());
                new_scores.push(f32::NEG_INFINITY);
                new_last.push(eos);
                new_alive.push(false);
            }
            tokens = new_tokens;
            scores = new_scores;
            last = new_last;
            alive = new_alive;
            let _ = vocab;
            if alive.iter().all(|a| !a) {
                break;
            }
        }

        for b in 0..beams {
            if alive[b] {
                finished.push(Hypothesis { tokens: tokens[b].clone(), score: scores[b] });
            }
        }
        finished
            .into_iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap_or(std::cmp::Ordering::Equal))
            .expect("at least one hypothesis survives")
    }
}

/// Single-query attention per beam/head against per-beam caches
/// (`kv`: `[beam][head][len][d]`); `q`: `[beam][head*d]`. Returns
/// `[beam][head*d]`.
#[allow(clippy::too_many_arguments)]
fn attend(
    q: &[f32],
    k_cache: &[f32],
    v_cache: &[f32],
    beams: usize,
    heads: usize,
    d: usize,
    len: usize,
    scale: f32,
    _q_len: usize,
) -> Vec<f32> {
    let h = heads * d;
    let mut out = vec![0.0f32; beams * h];
    let mut probs = vec![0.0f32; len];
    for b in 0..beams {
        for hd in 0..heads {
            let qv = &q[b * h + hd * d..b * h + (hd + 1) * d];
            let base = ((b * heads + hd) * len) * d;
            for (t, p) in probs.iter_mut().enumerate() {
                let kv = &k_cache[base + t * d..base + (t + 1) * d];
                *p = qv.iter().zip(kv).map(|(a, b)| a * b).sum::<f32>() * scale;
            }
            k::softmax_rows(1, len, &mut probs);
            let dst = &mut out[b * h + hd * d..b * h + (hd + 1) * d];
            for (t, &p) in probs.iter().enumerate() {
                let vv = &v_cache[base + t * d..base + (t + 1) * d];
                for (o, &x) in dst.iter_mut().zip(vv) {
                    *o += p * x;
                }
            }
        }
    }
    out
}

/// Like [`attend`] but the K/V (`[head][len][d]`) are shared by all beams —
/// the cross-attention case.
#[allow(clippy::too_many_arguments)]
fn attend_shared(
    q: &[f32],
    k_shared: &[f32],
    v_shared: &[f32],
    beams: usize,
    heads: usize,
    d: usize,
    len: usize,
    scale: f32,
) -> Vec<f32> {
    let h = heads * d;
    let mut out = vec![0.0f32; beams * h];
    let mut probs = vec![0.0f32; len];
    for b in 0..beams {
        for hd in 0..heads {
            let qv = &q[b * h + hd * d..b * h + (hd + 1) * d];
            let base = (hd * len) * d;
            for (t, p) in probs.iter_mut().enumerate() {
                let kv = &k_shared[base + t * d..base + (t + 1) * d];
                *p = qv.iter().zip(kv).map(|(a, b)| a * b).sum::<f32>() * scale;
            }
            k::softmax_rows(1, len, &mut probs);
            let dst = &mut out[b * h + hd * d..b * h + (hd + 1) * d];
            for (t, &p) in probs.iter().enumerate() {
                let vv = &v_shared[base + t * d..base + (t + 1) * d];
                for (o, &x) in dst.iter_mut().zip(vv) {
                    *o += p * x;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder_memory(src: usize, h: usize, seed: u64) -> Tensor {
        let mut init = WeightInit::new(seed);
        let t = init.embedding(src, h);
        t.reshape([src, h]).unwrap()
    }

    #[test]
    fn step_returns_vocab_logits_and_grows_cache() {
        let cfg = Seq2SeqDecoderConfig::tiny();
        let m = Seq2SeqDecoder::new_random(&cfg, 4);
        let enc = encoder_memory(5, cfg.model_dim(), 1);
        let mut state = m.init_state(&enc, cfg.beam_size);
        let logits = m.step(&mut state, &[1, 2, 3]);
        assert_eq!(logits.shape().dims(), &[cfg.beam_size, cfg.vocab_size]);
        assert_eq!(state.steps(), 1);
        let logits2 = m.step(&mut state, &[1, 2, 3]);
        assert_eq!(state.steps(), 2);
        assert!(logits2.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cached_decoding_is_deterministic() {
        let cfg = Seq2SeqDecoderConfig::tiny();
        let m = Seq2SeqDecoder::new_random(&cfg, 4);
        let enc = encoder_memory(4, cfg.model_dim(), 2);
        let run = || {
            let mut st = m.init_state(&enc, 2);
            let mut outs = Vec::new();
            let mut state_tokens = vec![1u32, 1];
            for _ in 0..3 {
                let l = m.step(&mut st, &state_tokens);
                state_tokens = vec![
                    tt_tensor::ops::argmax(l.row(0)).unwrap() as u32,
                    tt_tensor::ops::argmax(l.row(1)).unwrap() as u32,
                ];
                outs.push(l);
            }
            outs
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn beam_search_terminates_and_returns_tokens() {
        let cfg = Seq2SeqDecoderConfig::tiny();
        let m = Seq2SeqDecoder::new_random(&cfg, 8);
        let enc = encoder_memory(6, cfg.model_dim(), 3);
        let hyp = m.beam_search(&enc, 1, 2, 8);
        assert!(!hyp.tokens.is_empty());
        assert!(hyp.tokens.len() <= 8);
        assert!(hyp.score.is_finite());
        assert!(hyp.tokens.iter().all(|&t| (t as usize) < cfg.vocab_size));
    }

    #[test]
    fn beam_search_is_deterministic() {
        let cfg = Seq2SeqDecoderConfig::tiny();
        let m = Seq2SeqDecoder::new_random(&cfg, 8);
        let enc = encoder_memory(6, cfg.model_dim(), 3);
        let a = m.beam_search(&enc, 1, 2, 6);
        let b = m.beam_search(&enc, 1, 2, 6);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.score, b.score);
    }

    #[test]
    fn wider_beams_never_find_worse_hypotheses() {
        // Beam 1 (greedy) score ≤ beam 3 score for the same model/input.
        let cfg = Seq2SeqDecoderConfig::tiny();
        let m = Seq2SeqDecoder::new_random(&cfg, 13);
        let enc = encoder_memory(5, cfg.model_dim(), 5);
        let mut greedy_cfg = cfg.clone();
        greedy_cfg.beam_size = 1;
        let m_greedy = Seq2SeqDecoder::new_random(&greedy_cfg, 13);
        let g = m_greedy.beam_search(&enc, 1, 2, 5);
        let w = m.beam_search(&enc, 1, 2, 5);
        assert!(
            w.score >= g.score - 1e-4,
            "beam {} must not lose to greedy: {} vs {}",
            cfg.beam_size,
            w.score,
            g.score
        );
    }

    #[test]
    #[should_panic(expected = "max_target_len")]
    fn stepping_past_max_len_panics() {
        let mut cfg = Seq2SeqDecoderConfig::tiny();
        cfg.max_target_len = 2;
        let m = Seq2SeqDecoder::new_random(&cfg, 1);
        let enc = encoder_memory(3, cfg.model_dim(), 1);
        let mut st = m.init_state(&enc, 1);
        for _ in 0..3 {
            m.step(&mut st, &[1]);
        }
    }
}
