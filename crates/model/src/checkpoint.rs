//! Model checkpointing: a compact binary format for weight stores, so the
//! serving framework's model-version management has something to load.
//!
//! Format (`TTCP` magic, version 1, little-endian):
//!
//! ```text
//! "TTCP" | u32 version | u32 config_json_len | config JSON bytes
//! u32 tensor_count | per tensor: u32 rank, u32 dims…, f32 data…
//! ```
//!
//! The config JSON is the model's serde-serialized configuration; on load
//! it must equal the expected config, and every tensor's shape is
//! validated — a truncated or mismatched file fails loudly, never loads
//! garbage weights.

use std::io::{self, Read, Write};

use tt_tensor::Tensor;

use crate::bert::{Bert, BertConfig};
use crate::weights::WeightStore;

const MAGIC: &[u8; 4] = b"TTCP";
const VERSION: u32 = 1;

/// Checkpoint errors.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a checkpoint file / wrong version.
    BadHeader(String),
    /// The stored config does not match the expected one.
    ConfigMismatch {
        /// JSON of the config found in the file.
        found: String,
    },
    /// Tensor table shape/count mismatch.
    BadTensor(String),
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::BadHeader(m) => write!(f, "bad checkpoint header: {m}"),
            CheckpointError::ConfigMismatch { found } => {
                write!(f, "checkpoint config mismatch: file holds {found}")
            }
            CheckpointError::BadTensor(m) => write!(f, "bad checkpoint tensor: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Serialize a weight store with a JSON-serializable config header.
pub fn save<W: Write, C: serde::Serialize>(
    mut w: W,
    config: &C,
    store: &WeightStore,
) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    let cfg_json = serde_json::to_vec(config).expect("config serializes");
    write_u32(&mut w, cfg_json.len() as u32)?;
    w.write_all(&cfg_json)?;
    write_u32(&mut w, store.len() as u32)?;
    for i in 0..store.len() {
        let t = store.get(i);
        let dims = t.shape().dims();
        write_u32(&mut w, dims.len() as u32)?;
        for &d in dims {
            write_u32(&mut w, d as u32)?;
        }
        for &v in t.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialize a weight store, checking the config header against
/// `expected`.
pub fn load<R: Read, C: serde::Serialize + serde::de::DeserializeOwned + PartialEq>(
    mut r: R,
    expected: &C,
) -> Result<WeightStore, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadHeader(format!("magic {magic:?}")));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::BadHeader(format!("version {version}")));
    }
    let cfg_len = read_u32(&mut r)? as usize;
    if cfg_len > 1 << 20 {
        return Err(CheckpointError::BadHeader(format!("config length {cfg_len}")));
    }
    let mut cfg_bytes = vec![0u8; cfg_len];
    r.read_exact(&mut cfg_bytes)?;
    let found: C = serde_json::from_slice(&cfg_bytes)
        .map_err(|e| CheckpointError::BadHeader(format!("config JSON: {e}")))?;
    if &found != expected {
        return Err(CheckpointError::ConfigMismatch {
            found: String::from_utf8_lossy(&cfg_bytes).into_owned(),
        });
    }

    let count = read_u32(&mut r)? as usize;
    let mut store = WeightStore::new();
    for ti in 0..count {
        let rank = read_u32(&mut r)? as usize;
        if rank > 8 {
            return Err(CheckpointError::BadTensor(format!("tensor {ti} rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u32(&mut r)? as usize);
        }
        let n: usize = dims.iter().product();
        if n > (1 << 28) {
            return Err(CheckpointError::BadTensor(format!("tensor {ti} has {n} elements")));
        }
        let mut data = vec![0.0f32; n];
        let mut buf = [0u8; 4];
        for v in data.iter_mut() {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        let t = Tensor::from_vec(dims, data)
            .map_err(|e| CheckpointError::BadTensor(format!("tensor {ti}: {e}")))?;
        store.push(t);
    }
    Ok(store)
}

impl Bert {
    /// Write this model to a checkpoint stream.
    pub fn save_checkpoint<W: Write>(&self, w: W) -> Result<(), CheckpointError> {
        save(w, &self.config, self.weights())
    }

    /// Load a model from a checkpoint stream; the stored config must equal
    /// `config` and the weight layout is validated tensor by tensor.
    pub fn load_checkpoint<R: Read>(config: &BertConfig, r: R) -> Result<Bert, CheckpointError> {
        let store = load(r, config)?;
        Bert::from_store(config, store).map_err(CheckpointError::BadTensor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids_batch;

    #[test]
    fn bert_round_trips_bit_exactly() {
        let cfg = BertConfig::tiny();
        let model = Bert::new_random(&cfg, 77);
        let mut buf = Vec::new();
        model.save_checkpoint(&mut buf).unwrap();
        let loaded = Bert::load_checkpoint(&cfg, buf.as_slice()).unwrap();

        let ids = ids_batch(&[&[1, 2, 3, 4]]);
        assert_eq!(model.forward(&ids, None), loaded.forward(&ids, None));
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let cfg = BertConfig::tiny();
        let model = Bert::new_random(&cfg, 1);
        let mut buf = Vec::new();
        model.save_checkpoint(&mut buf).unwrap();
        let mut other = BertConfig::tiny();
        other.num_layers += 1;
        let err = Bert::load_checkpoint(&other, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::ConfigMismatch { .. }));
    }

    #[test]
    fn truncated_files_fail_loudly() {
        let cfg = BertConfig::tiny();
        let model = Bert::new_random(&cfg, 2);
        let mut buf = Vec::new();
        model.save_checkpoint(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Bert::load_checkpoint(&cfg, buf.as_slice()).is_err());
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let cfg = BertConfig::tiny();
        let err = Bert::load_checkpoint(&cfg, &b"NOPE...."[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::BadHeader(_)));
    }
}
