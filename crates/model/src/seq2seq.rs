//! The full encoder–decoder Seq2Seq model of paper Figure 1: a transformer
//! encoder over the source sentence feeding the cross-attention of the
//! beam-search decoder. Completes the translation pipeline the decoder
//! benchmarks (Fig. 10c) assume.

use tt_kernels as k;
use tt_tensor::Tensor;

use crate::decoder::{Hypothesis, Seq2SeqDecoder, Seq2SeqDecoderConfig};
use crate::encoder_layer::{layer_forward, EncoderDims, EncoderLayerWeights};
use crate::weights::{WeightInit, WeightStore};

/// Configuration of the full translation model. Encoder dimensions mirror
/// the decoder's (the usual symmetric transformer setup).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Seq2SeqConfig {
    /// Encoder layers.
    pub encoder_layers: usize,
    /// Source vocabulary size.
    pub src_vocab_size: usize,
    /// Maximum source length.
    pub max_source_len: usize,
    /// The decoder half (paper Table 3 values in
    /// [`Seq2SeqDecoderConfig::base`]).
    pub decoder: Seq2SeqDecoderConfig,
}

impl Seq2SeqConfig {
    /// The paper-scale translation model: 6+6 layers, model dim 1024.
    pub fn base() -> Self {
        Seq2SeqConfig {
            encoder_layers: 6,
            src_vocab_size: 32000,
            max_source_len: 512,
            decoder: Seq2SeqDecoderConfig::base(),
        }
    }

    /// Small test config.
    pub fn tiny() -> Self {
        Seq2SeqConfig {
            encoder_layers: 2,
            src_vocab_size: 53,
            max_source_len: 32,
            decoder: Seq2SeqDecoderConfig::tiny(),
        }
    }

    /// Model (hidden) dimension, shared by encoder and decoder.
    pub fn model_dim(&self) -> usize {
        self.decoder.model_dim()
    }
}

/// Encoder + decoder with all weights.
#[derive(Debug)]
pub struct TranslationModel {
    /// Hyper-parameters.
    pub config: Seq2SeqConfig,
    enc_store: WeightStore,
    src_emb: usize,
    src_pos: usize,
    enc_layers: Vec<EncoderLayerWeights>,
    decoder: Seq2SeqDecoder,
}

impl TranslationModel {
    /// Build a model with seeded random weights.
    pub fn new_random(config: &Seq2SeqConfig, seed: u64) -> Self {
        let h = config.model_dim();
        let dims = EncoderDims {
            heads: config.decoder.num_heads,
            head_dim: config.decoder.head_dim,
            ffn_dim: config.decoder.ffn_dim,
            eps: config.decoder.layer_norm_eps,
        };
        let mut enc_store = WeightStore::new();
        let mut init = WeightInit::new(seed);
        let src_emb = enc_store.push(init.embedding(config.src_vocab_size, h));
        let src_pos = enc_store.push(init.embedding(config.max_source_len, h));
        let enc_layers = (0..config.encoder_layers)
            .map(|_| EncoderLayerWeights::create(&mut enc_store, &mut init, &dims))
            .collect();
        let decoder = Seq2SeqDecoder::new_random(&config.decoder, seed ^ 0x5EED);
        TranslationModel {
            config: config.clone(),
            enc_store,
            src_emb,
            src_pos,
            enc_layers,
            decoder,
        }
    }

    /// Total parameter bytes across both halves.
    pub fn param_bytes(&self) -> usize {
        self.enc_store.bytes() + self.decoder.param_bytes()
    }

    /// The decoder half (for direct stepping).
    pub fn decoder(&self) -> &Seq2SeqDecoder {
        &self.decoder
    }

    /// Encode a source sentence: `[src_len]` token ids → `[src_len, hidden]`
    /// memory for the decoder's cross-attention.
    pub fn encode(&self, src_ids: &[u32]) -> Tensor {
        let src_len = src_ids.len();
        assert!(src_len <= self.config.max_source_len, "source too long");
        let h = self.config.model_dim();
        let mut x = vec![0.0f32; src_len * h];
        k::embed(
            1,
            src_len,
            h,
            src_ids,
            self.enc_store.get(self.src_emb).as_slice(),
            self.enc_store.get(self.src_pos).as_slice(),
            None,
            &mut x,
        );
        let dims = EncoderDims {
            heads: self.config.decoder.num_heads,
            head_dim: self.config.decoder.head_dim,
            ffn_dim: self.config.decoder.ffn_dim,
            eps: self.config.decoder.layer_norm_eps,
        };
        for lw in &self.enc_layers {
            layer_forward(&self.enc_store, lw, &dims, 1, src_len, &mut x, None);
        }
        Tensor::from_vec([src_len, h], x).expect("sized by construction")
    }

    /// Full translation: encode the source, beam-search decode the target.
    pub fn translate(&self, src_ids: &[u32], bos: u32, eos: u32, max_len: usize) -> Hypothesis {
        let memory = self.encode(src_ids);
        self.decoder.beam_search(&memory, bos, eos, max_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_produces_normalized_memory() {
        let cfg = Seq2SeqConfig::tiny();
        let m = TranslationModel::new_random(&cfg, 61);
        let mem = m.encode(&[1, 2, 3, 4, 5]);
        assert_eq!(mem.shape().dims(), &[5, cfg.model_dim()]);
        // Encoder output ends with a LayerNorm (γ=1, β=0): unit variance.
        for row in mem.as_slice().chunks(cfg.model_dim()) {
            let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
            assert!(mean.abs() < 1e-3, "mean {mean}");
        }
    }

    #[test]
    fn translate_end_to_end() {
        let cfg = Seq2SeqConfig::tiny();
        let m = TranslationModel::new_random(&cfg, 62);
        let hyp = m.translate(&[3, 1, 4, 1, 5], 1, 2, 10);
        assert!(!hyp.tokens.is_empty() && hyp.tokens.len() <= 10);
        assert!(hyp.score.is_finite());
    }

    #[test]
    fn translation_is_deterministic_and_source_sensitive() {
        let cfg = Seq2SeqConfig::tiny();
        let m = TranslationModel::new_random(&cfg, 63);
        let a = m.translate(&[5, 6, 7], 1, 2, 8);
        let b = m.translate(&[5, 6, 7], 1, 2, 8);
        assert_eq!(a.tokens, b.tokens);
        let c = m.translate(&[40, 41, 42, 43, 44, 45], 1, 2, 8);
        // Different sources shift the cross-attention; scores differ even
        // when the argmax path coincides on a random model.
        assert!(a.score != c.score || a.tokens != c.tokens);
    }

    #[test]
    #[should_panic(expected = "source too long")]
    fn over_long_source_is_rejected() {
        let cfg = Seq2SeqConfig::tiny();
        let m = TranslationModel::new_random(&cfg, 64);
        let src: Vec<u32> = (0..(cfg.max_source_len + 1) as u32).map(|i| i % 50).collect();
        m.encode(&src);
    }
}
