//! # tt-telemetry — lock-free observability for the serving stack
//!
//! The paper evaluates TurboTransformers with exactly the quantities a
//! production deployment would watch on a dashboard: per-op time shares
//! (Table 2), zero-padding waste (§4.2), scheduler runtime (Alg. 3), and
//! allocator footprint (Fig. 7). This crate makes those first-class,
//! continuously-collected metrics instead of one-off experiment printouts.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost must be a handful of nanoseconds.** Every metric
//!    primitive is a plain [`AtomicU64`](std::sync::atomic::AtomicU64) with
//!    relaxed ordering — no locks, no allocation, no syscalls on record.
//!    The serving loop batches in the hundreds of microseconds; telemetry
//!    must stay under 2% of that (the report binary measures this).
//! 2. **No global state.** A [`Registry`] is an explicit value; tests and
//!    servers create as many independent ones as they like. Hot code caches
//!    `Arc` handles to its metrics at construction and never touches the
//!    registry map again.
//! 3. **Mergeable snapshots.** [`HistogramSnapshot`]s from different
//!    threads, servers, or time windows add pointwise, so cluster-level
//!    views are a fold — exactly how Prometheus-style systems aggregate.
//!
//! ```
//! use tt_telemetry::{Registry, Timer};
//!
//! let registry = Registry::new();
//! let lat = registry.histogram(
//!     "request_nanoseconds",
//!     "End-to-end request latency",
//!     &[("stage", "demo")],
//! );
//! {
//!     let _span = Timer::start(&lat); // records on drop
//! }
//! lat.record(1_500);
//! let snap = lat.snapshot();
//! assert_eq!(snap.count(), 2);
//! assert!(registry.render_prometheus().contains("request_nanoseconds_bucket"));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod energy;
pub mod histogram;
pub mod metrics;
pub mod registry;
pub mod timer;
pub mod trace;

pub use chrome::chrome_trace_json;
pub use energy::{
    EnergyMeter, EnergyPhase, EnergySampler, EnergySamplerConfig, ModeledPowerSource, PowerReading,
    PowerSource,
};
pub use histogram::{
    bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot, BUCKETS,
};
pub use metrics::{Counter, Gauge};
pub use registry::{MetricSnapshot, Registry, RegistrySnapshot};
pub use timer::{Stopwatch, Timer};
pub use trace::{
    trace_tree_json, AttrValue, Span, SpanContext, SpanId, SpanRecord, TraceId, Tracer,
    TracerConfig,
};
