//! Request-scoped tracing: span guards, head sampling, and a bounded
//! in-memory collector.
//!
//! Aggregate counters answer "how is the fleet doing"; they cannot answer
//! "where did *this* request's 4.6 ms go". This module adds Dapper-style
//! request tracing to close that gap: every sampled request gets a
//! [`TraceId`], every stage it passes through (HTTP parse, queue wait,
//! batch decision, allocator plan, each executor op) records a
//! [`SpanRecord`] carrying `{name, start, dur, parent, attrs}`, and the
//! whole tree can be fetched back over `GET /v1/traces/<id>` or exported
//! as a Perfetto-loadable Chrome trace (see [`crate::chrome`]).
//!
//! Design constraints mirror the metrics side:
//!
//! - **The disabled path must cost nothing measurable.** A disabled or
//!   unsampled request takes one relaxed atomic increment and returns
//!   `None`; every downstream `Option<SpanContext>` check is a branch on
//!   a register. The telemetry_report harness pins this under 2%.
//! - **Bounded memory.** Finished spans land in a fixed pool of ring
//!   buffers (one per recording thread, assigned round-robin), each
//!   capped at `TT_TRACE_BUFFER` spans; the oldest spans are overwritten,
//!   never reallocated. A shard is owned by one thread at a time, so the
//!   per-shard mutex is uncontended on the hot path — recording is a
//!   push onto a pre-sized deque behind a free lock.
//! - **Head sampling.** `TT_TRACE_SAMPLE=N` keeps one request in `N`
//!   (default 64). A client can force its own request with `?trace=1`
//!   regardless of the dice roll, which is how you debug one slow call
//!   without drowning in the other 63.
//!
//! ```
//! use tt_telemetry::trace::{Tracer, TracerConfig};
//!
//! let tracer = Tracer::new(TracerConfig { sample_every: 1, ..TracerConfig::default() });
//! let trace_id = {
//!     let mut root = tracer.start_root("http", false).expect("1-in-1 sampling");
//!     root.attr_str("route", "/v1/infer");
//!     let _child = root.child("queue_wait");
//!     root.context().trace
//! };
//! let spans = tracer.spans_of(trace_id);
//! assert_eq!(spans.len(), 2);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Number of ring-buffer shards in a collector. Threads are assigned to
/// shards round-robin at first record; with a pool this size the serving
/// stack's handful of worker threads each get a shard to themselves.
const SHARDS: usize = 16;

/// Default head-sampling rate: keep one request in this many.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Default per-shard span capacity (total memory is bounded by
/// `SHARDS * capacity * sizeof(SpanRecord)` — a few MiB at most).
pub const DEFAULT_BUFFER_SPANS: usize = 4096;

/// Identifier shared by every span of one request, carried end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifier of a single span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl TraceId {
    /// Parse the 16-hex-digit form produced by `Display` (the shape that
    /// travels in the `x-tt-trace-id` header and `/v1/traces/<id>` URLs).
    pub fn parse(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().filter(|&v| v != 0).map(TraceId)
    }
}

/// The pair a request carries between stages: which trace it belongs to
/// and which span is the current parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// The request's trace.
    pub trace: TraceId,
    /// The span that children started from this context should hang under.
    pub span: SpanId,
}

/// A span attribute value. Kept as a small closed enum so records stay
/// allocation-light and export (JSON, Chrome trace) needs no reflection.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute (e.g. a shape like `"8x128x256"`).
    Str(String),
    /// An integer attribute (e.g. a batch size).
    Int(i64),
    /// A floating-point attribute (e.g. achieved GFLOP/s).
    Float(f64),
}

impl AttrValue {
    /// Render as a JSON value fragment onto `out`.
    pub fn push_json(&self, out: &mut String) {
        match self {
            AttrValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            AttrValue::Int(i) => out.push_str(&i.to_string()),
            AttrValue::Float(f) if f.is_finite() => out.push_str(&format!("{f:.6}")),
            AttrValue::Float(_) => out.push_str("null"),
        }
    }
}

/// One finished span, as stored in the collector.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The enclosing span, `None` for the root.
    pub parent: Option<SpanId>,
    /// Stage name (`"http"`, `"queue_wait"`, `"schedule"`, op names, …).
    pub name: &'static str,
    /// Start time in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Attribute key/value pairs.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Tracer construction knobs; see [`Tracer::from_env`] for the env mapping.
#[derive(Debug, Clone)]
pub struct TracerConfig {
    /// Master switch. When false every `start_root` returns `None`.
    pub enabled: bool,
    /// Head sampling: keep one root in this many. `0` disables dice-roll
    /// sampling entirely (only `force`d requests are traced).
    pub sample_every: u64,
    /// Per-shard ring capacity in spans.
    pub buffer_spans: usize,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            enabled: true,
            sample_every: DEFAULT_SAMPLE_EVERY,
            buffer_spans: DEFAULT_BUFFER_SPANS,
        }
    }
}

struct Shard {
    spans: Mutex<VecDeque<SpanRecord>>,
}

struct TracerInner {
    enabled: bool,
    sample_every: u64,
    buffer_spans: usize,
    epoch: Instant,
    /// Dice-roll state for head sampling.
    admitted: AtomicU64,
    /// Id generator; ids are sequential-nonzero, which is all uniqueness
    /// requires inside one process (no cross-host correlation here).
    next_id: AtomicU64,
    /// Round-robin shard assignment for newly-seen recording threads.
    next_shard: AtomicU64,
    shards: Vec<Shard>,
}

thread_local! {
    /// Which shard this thread records into (lazily assigned).
    static MY_SHARD: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The tracing collector: hands out sampled root spans, stores finished
/// [`SpanRecord`]s in bounded ring buffers, and answers trace queries.
///
/// Cheap to clone (`Arc` inside); every stage of the pipeline holds its
/// own handle.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.enabled)
            .field("sample_every", &self.inner.sample_every)
            .field("buffer_spans", &self.inner.buffer_spans)
            .finish()
    }
}

impl Tracer {
    /// Build a tracer from an explicit config.
    pub fn new(config: TracerConfig) -> Tracer {
        let shards = (0..SHARDS).map(|_| Shard { spans: Mutex::new(VecDeque::new()) }).collect();
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: config.enabled,
                sample_every: config.sample_every,
                buffer_spans: config.buffer_spans.max(1),
                epoch: Instant::now(),
                admitted: AtomicU64::new(0),
                next_id: AtomicU64::new(1),
                next_shard: AtomicU64::new(0),
                shards,
            }),
        }
    }

    /// Build from the environment:
    ///
    /// | variable          | meaning                              | default |
    /// |-------------------|--------------------------------------|---------|
    /// | `TT_TRACE_SAMPLE` | keep 1 root in N (`0` = forced only) | 64      |
    /// | `TT_TRACE_BUFFER` | per-shard ring capacity in spans     | 4096    |
    pub fn from_env() -> Tracer {
        let mut config = TracerConfig::default();
        if let Ok(v) = std::env::var("TT_TRACE_SAMPLE") {
            if let Ok(n) = v.trim().parse::<u64>() {
                config.sample_every = n;
            }
        }
        if let Ok(v) = std::env::var("TT_TRACE_BUFFER") {
            if let Ok(n) = v.trim().parse::<usize>() {
                config.buffer_spans = n.max(1);
            }
        }
        Tracer::new(config)
    }

    /// A tracer that samples nothing and stores nothing — the default for
    /// code paths constructed without tracing (`LiveEngine::start`,
    /// `HttpServer::start`). `start_root` always returns `None`.
    pub fn disabled() -> Tracer {
        Tracer::new(TracerConfig { enabled: false, sample_every: 0, buffer_spans: 1 })
    }

    /// Whether this tracer can ever record (used to skip building attr
    /// strings when no one is listening).
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Nanoseconds since this tracer's epoch — the time base all spans use.
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Convert an instant captured earlier (e.g. a request's submit time)
    /// into this tracer's time base.
    pub fn ns_of(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.inner.epoch).as_nanos().min(u64::MAX as u128) as u64
    }

    /// Roll the sampling dice and, if this request is kept (or `force` is
    /// set), open a root span. Returns `None` for unsampled requests —
    /// the entire per-request tracing cost in that case is one relaxed
    /// `fetch_add`.
    pub fn start_root(&self, name: &'static str, force: bool) -> Option<Span> {
        if !self.inner.enabled {
            return None;
        }
        let sampled = match self.inner.sample_every {
            0 => false,
            n => self.inner.admitted.fetch_add(1, Ordering::Relaxed).is_multiple_of(n),
        };
        if !(sampled || force) {
            return None;
        }
        let trace = TraceId(self.next_nonzero_id());
        Some(self.open(trace, None, name))
    }

    /// Open a span under an existing context (for stages that receive the
    /// context by value rather than holding the parent guard).
    pub fn span(&self, ctx: SpanContext, name: &'static str) -> Span {
        self.open(ctx.trace, Some(ctx.span), name)
    }

    /// Record a span retroactively from explicit timestamps (used for
    /// queue-wait, whose start predates the span's construction). Returns
    /// the new span's id so children can be hung under it.
    pub fn record_span(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> SpanId {
        let span = SpanId(self.next_nonzero_id());
        self.store(SpanRecord { trace, span, parent, name, start_ns, dur_ns, attrs });
        span
    }

    fn next_nonzero_id(&self) -> u64 {
        loop {
            let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
            if id != 0 {
                return id;
            }
        }
    }

    fn open(&self, trace: TraceId, parent: Option<SpanId>, name: &'static str) -> Span {
        Span {
            tracer: self.clone(),
            trace,
            span: SpanId(self.next_nonzero_id()),
            parent,
            name,
            start: Instant::now(),
            attrs: Vec::new(),
        }
    }

    fn store(&self, record: SpanRecord) {
        let shard_idx = MY_SHARD.with(|cell| match cell.get() {
            Some(i) => i,
            None => {
                let i = (self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS as u64)
                    as usize;
                cell.set(Some(i));
                i
            }
        });
        let mut shard = self.inner.shards[shard_idx].spans.lock();
        if shard.len() >= self.inner.buffer_spans {
            shard.pop_front();
        }
        shard.push_back(record);
    }

    /// All retained spans of `trace`, ordered by start time. Empty when the
    /// trace was never sampled or has been overwritten by newer spans.
    pub fn spans_of(&self, trace: TraceId) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::new();
        for shard in &self.inner.shards {
            let guard = shard.spans.lock();
            out.extend(guard.iter().filter(|r| r.trace == trace).cloned());
        }
        out.sort_by_key(|r| (r.start_ns, r.span.0));
        out
    }

    /// Every retained span across all traces, ordered by start time —
    /// the input to the Chrome trace exporter.
    pub fn all_spans(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::new();
        for shard in &self.inner.shards {
            let guard = shard.spans.lock();
            out.extend(guard.iter().cloned());
        }
        out.sort_by_key(|r| (r.trace.0, r.start_ns, r.span.0));
        out
    }
}

/// A live span: created open, records itself into the collector on drop.
///
/// Attributes are attached with the `attr_*` methods; children with
/// [`Span::child`]. The guard is deliberately not `Clone` — exactly one
/// record per span.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    trace: TraceId,
    span: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// The context downstream stages should carry (this span as parent).
    pub fn context(&self) -> SpanContext {
        SpanContext { trace: self.trace, span: self.span }
    }

    /// Open a child span of this one.
    pub fn child(&self, name: &'static str) -> Span {
        self.tracer.span(self.context(), name)
    }

    /// Attach a string attribute.
    pub fn attr_str(&mut self, key: &'static str, value: impl Into<String>) {
        self.attrs.push((key, AttrValue::Str(value.into())));
    }

    /// Attach an integer attribute.
    pub fn attr_int(&mut self, key: &'static str, value: i64) {
        self.attrs.push((key, AttrValue::Int(value)));
    }

    /// Attach a floating-point attribute.
    pub fn attr_float(&mut self, key: &'static str, value: f64) {
        self.attrs.push((key, AttrValue::Float(value)));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let start_ns = self.tracer.ns_of(self.start);
        let dur_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.tracer.store(SpanRecord {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            name: self.name,
            start_ns,
            dur_ns,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

/// Render the span tree of one trace as a JSON object — the body of
/// `GET /v1/traces/<id>`. Spans carry their ids so clients can rebuild
/// the tree; they are already sorted by start time.
pub fn trace_tree_json(trace: TraceId, spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(256 + spans.len() * 160);
    out.push_str("{\"trace_id\":\"");
    out.push_str(&trace.to_string());
    out.push_str("\",\"span_count\":");
    out.push_str(&spans.len().to_string());
    out.push_str(",\"spans\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"span_id\":\"");
        out.push_str(&s.span.to_string());
        out.push_str("\",\"parent_id\":");
        match s.parent {
            Some(p) => {
                out.push('"');
                out.push_str(&p.to_string());
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"name\":\"");
        out.push_str(s.name);
        out.push_str("\",\"start_ns\":");
        out.push_str(&s.start_ns.to_string());
        out.push_str(",\"dur_ns\":");
        out.push_str(&s.dur_ns.to_string());
        out.push_str(",\"attrs\":{");
        for (j, (k, v)) in s.attrs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(k);
            out.push_str("\":");
            v.push_json(&mut out);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always(buffer: usize) -> Tracer {
        Tracer::new(TracerConfig { enabled: true, sample_every: 1, buffer_spans: buffer })
    }

    #[test]
    fn trace_id_display_parse_roundtrip() {
        let id = TraceId(0x00ab_cdef_0123_4567);
        assert_eq!(TraceId::parse(&id.to_string()), Some(id));
        assert_eq!(TraceId::parse("zz"), None);
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("0"), None, "zero is reserved");
        assert_eq!(TraceId::parse("00000000000000010"), None, "too long");
    }

    #[test]
    fn sampling_keeps_one_in_n() {
        let t = Tracer::new(TracerConfig { enabled: true, sample_every: 4, buffer_spans: 1024 });
        let sampled = (0..100).filter(|_| t.start_root("r", false).is_some()).count();
        assert_eq!(sampled, 25);
    }

    #[test]
    fn force_overrides_the_dice() {
        let t = Tracer::new(TracerConfig { enabled: true, sample_every: 0, buffer_spans: 1024 });
        assert!(t.start_root("r", false).is_none());
        assert!(t.start_root("r", true).is_some());
    }

    #[test]
    fn disabled_tracer_never_samples() {
        let t = Tracer::disabled();
        assert!(t.start_root("r", true).is_none());
        assert!(!t.is_enabled());
    }

    #[test]
    fn spans_record_on_drop_with_parentage() {
        let t = always(1024);
        let trace = {
            let mut root = t.start_root("http", false).unwrap();
            root.attr_int("status", 200);
            {
                let mut child = root.child("queue_wait");
                child.attr_float("depth", 3.0);
            }
            root.context().trace
        };
        let spans = t.spans_of(trace);
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "http").unwrap();
        let child = spans.iter().find(|s| s.name == "queue_wait").unwrap();
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.span));
        assert!(child.start_ns >= root.start_ns);
        assert_eq!(root.attrs, vec![("status", AttrValue::Int(200))]);
    }

    #[test]
    fn retroactive_record_span() {
        let t = always(1024);
        let root = t.start_root("r", false).unwrap();
        let ctx = root.context();
        drop(root);
        let id = t.record_span(
            ctx.trace,
            Some(ctx.span),
            "queue_wait",
            5,
            10,
            vec![("n", AttrValue::Int(1))],
        );
        let spans = t.spans_of(ctx.trace);
        let q = spans.iter().find(|s| s.span == id).unwrap();
        assert_eq!(q.parent, Some(ctx.span));
        assert_eq!(q.start_ns, 5);
        assert_eq!(q.dur_ns, 10);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let t = always(8);
        let mut last_trace = None;
        for _ in 0..100 {
            let root = t.start_root("r", false).unwrap();
            last_trace = Some(root.context().trace);
        }
        // This thread maps to one shard, so retained spans ≤ capacity.
        assert!(t.all_spans().len() <= 8);
        // The newest span survives.
        assert_eq!(t.spans_of(last_trace.unwrap()).len(), 1);
    }

    #[test]
    fn trace_tree_json_is_wellformed_enough_to_reparse() {
        let t = always(64);
        let trace = {
            let mut root = t.start_root("http", false).unwrap();
            root.attr_str("route", "/v1/infer\"quoted\"");
            root.attr_float("gflops", 12.5);
            let _c = root.child("schedule");
            root.context().trace
        };
        let json = trace_tree_json(trace, &t.spans_of(trace));
        let value = serde::json::parse(&json).expect("valid JSON");
        let spans = value.get("spans").and_then(|v| v.as_array()).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            value.get("trace_id").and_then(|v| v.as_str()),
            Some(trace.to_string().as_str())
        );
    }

    #[test]
    fn attr_value_escapes_json_strings() {
        let mut out = String::new();
        AttrValue::Str("a\"b\\c\nd".into()).push_json(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
        let mut out = String::new();
        AttrValue::Float(f64::NAN).push_json(&mut out);
        assert_eq!(out, "null");
    }

    #[test]
    fn concurrent_recording_keeps_every_span_reachable() {
        let t = always(65536);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for _ in 0..200 {
                        let root = t.start_root("r", false).unwrap();
                        let _c1 = root.child("a");
                        let _c2 = root.child("b");
                        ids.push(root.context().trace);
                    }
                    ids
                })
            })
            .collect();
        for h in handles {
            for trace in h.join().unwrap() {
                assert_eq!(t.spans_of(trace).len(), 3);
            }
        }
    }
}
