//! The metric registry: named, labelled metrics with JSON snapshots and
//! Prometheus text exposition.
//!
//! A [`Registry`] is an explicit value — no global, no `lazy_static`. Hot
//! code calls [`Registry::counter`] / [`gauge`](Registry::gauge) /
//! [`histogram`](Registry::histogram) once at construction, keeps the
//! returned `Arc`, and records through it lock-free; the registry's
//! `RwLock`-guarded map is only touched at registration and scrape time.
//!
//! Exposition follows the Prometheus text format: each metric family gets
//! `# HELP` / `# TYPE` headers, histograms expand to cumulative
//! `_bucket{le="..."}` series plus `_sum` and `_count`.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::histogram::{bucket_upper, Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge};

/// Sorted label pairs; part of the metric identity.
type Labels = Vec<(String, String)>;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Labels,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    metric: Metric,
}

/// A collection of labelled metrics. Cloning shares the underlying map —
/// hand clones to every subsystem that should report into the same scrape.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RwLock<BTreeMap<Key, Entry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> Key {
        let mut labels: Labels =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        Key { name: name.to_string(), labels }
    }

    /// Get or create the counter `name{labels}`.
    ///
    /// # Panics
    /// If the same name+labels is already registered as a different type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = Self::key(name, labels);
        let mut map = self.inner.write();
        let entry = map.entry(key).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Counter(Arc::new(Counter::new())),
        });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Get or create the gauge `name{labels}`.
    ///
    /// # Panics
    /// If the same name+labels is already registered as a different type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = Self::key(name, labels);
        let mut map = self.inner.write();
        let entry = map.entry(key).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Gauge(Arc::new(Gauge::new())),
        });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// Get or create the histogram `name{labels}`.
    ///
    /// # Panics
    /// If the same name+labels is already registered as a different type.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = Self::key(name, labels);
        let mut map = self.inner.write();
        let entry = map.entry(key).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Histogram(Arc::new(Histogram::new())),
        });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            other => panic!("{name} already registered as a {}", other.type_name()),
        }
    }

    /// A point-in-time copy of every metric, serializable to JSON.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.inner.read();
        let metrics = map
            .iter()
            .map(|(key, entry)| {
                let mut snap = MetricSnapshot {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    help: entry.help.clone(),
                    kind: entry.metric.type_name().to_string(),
                    counter: None,
                    gauge: None,
                    histogram: None,
                };
                match &entry.metric {
                    Metric::Counter(c) => snap.counter = Some(c.get()),
                    Metric::Gauge(g) => snap.gauge = Some(g.get()),
                    Metric::Histogram(h) => snap.histogram = Some(h.snapshot()),
                }
                snap
            })
            .collect();
        RegistrySnapshot { metrics }
    }

    /// Render the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let map = self.inner.read();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, entry) in map.iter() {
            // HELP/TYPE once per family; BTreeMap ordering groups names.
            if last_name != Some(key.name.as_str()) {
                out.push_str(&format!("# HELP {} {}\n", key.name, entry.help));
                out.push_str(&format!("# TYPE {} {}\n", key.name, entry.metric.type_name()));
                last_name = Some(key.name.as_str());
            }
            match &entry.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        key.name,
                        render_labels(&key.labels, None),
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        key.name,
                        render_labels(&key.labels, None),
                        format_float(g.get())
                    ));
                }
                Metric::Histogram(h) => {
                    render_histogram(&mut out, &key.name, &key.labels, &h.snapshot());
                }
            }
        }
        // Tail-quantile companions: one `<name>_p999` gauge family per
        // histogram family, appended after the main families so each
        // family stays contiguous (the exposition format requires it).
        // log₂ buckets bound the estimate's error to one octave — good
        // enough to audit "tracing overhead < 2%" claims against the tail.
        let mut last_name: Option<&str> = None;
        for (key, entry) in map.iter() {
            let Metric::Histogram(h) = &entry.metric else { continue };
            if last_name != Some(key.name.as_str()) {
                out.push_str(&format!(
                    "# HELP {}_p999 99.9th-percentile estimate of {}\n",
                    key.name, key.name
                ));
                out.push_str(&format!("# TYPE {}_p999 gauge\n", key.name));
                last_name = Some(key.name.as_str());
            }
            out.push_str(&format!(
                "{}_p999{} {}\n",
                key.name,
                render_labels(&key.labels, None),
                h.snapshot().p999()
            ));
        }
        out
    }
}

/// Cumulative `_bucket` series plus `_sum` / `_count`, per the exposition
/// format. Buckets above the highest populated one collapse into `+Inf`.
fn render_histogram(out: &mut String, name: &str, labels: &Labels, snap: &HistogramSnapshot) {
    let highest = snap.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
    let mut cum = 0u64;
    for (b, &c) in snap.counts.iter().enumerate().take(highest + 1) {
        cum += c;
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            name,
            render_labels(labels, Some(&bucket_upper(b).to_string())),
            cum
        ));
    }
    out.push_str(&format!(
        "{}_bucket{} {}\n",
        name,
        render_labels(labels, Some("+Inf")),
        snap.count()
    ));
    out.push_str(&format!("{}_sum{} {}\n", name, render_labels(labels, None), snap.sum));
    out.push_str(&format!("{}_count{} {}\n", name, render_labels(labels, None), snap.count()));
}

/// `{k="v",...,le="..."}`, empty string when there is nothing to print.
fn render_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Prometheus floats: plain decimal, no exponent needed for our ranges.
fn format_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // "3" renders as "3.0" — still a valid float
    } else {
        format!("{v}")
    }
}

/// Serializable copy of a whole registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// One entry per registered metric, sorted by name then labels.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// JSON text of the snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Find a metric by name and exact label set.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        let mut want: Labels = labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        want.sort();
        self.metrics.iter().find(|m| m.name == name && m.labels == want)
    }
}

/// One metric's state. Exactly one of `counter` / `gauge` / `histogram` is
/// set, matching `kind` (a flat encoding — keeps the JSON trivially
/// consumable without tagged-union conventions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSnapshot {
    /// Metric family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Help text.
    pub help: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Counter value, when `kind == "counter"`.
    #[serde(default)]
    pub counter: Option<u64>,
    /// Gauge value, when `kind == "gauge"`.
    #[serde(default)]
    pub gauge: Option<f64>,
    /// Histogram state, when `kind == "histogram"`.
    #[serde(default)]
    pub histogram: Option<HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let r = Registry::new();
        let a = r.counter("requests_total", "Requests", &[("model", "bert")]);
        let b = r.counter("requests_total", "Requests", &[("model", "bert")]);
        a.inc();
        assert_eq!(b.get(), 1, "both handles alias one counter");
        // Different labels → different counter.
        let c = r.counter("requests_total", "Requests", &[("model", "albert")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.gauge("g", "", &[("a", "1"), ("b", "2")]);
        let b = r.gauge("g", "", &[("b", "2"), ("a", "1")]);
        a.set(5.0);
        assert_eq!(b.get(), 5.0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", "", &[]);
        r.gauge("m", "", &[]);
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let r = Registry::new();
        r.counter("c", "count", &[]).add(7);
        r.gauge("g", "gauge", &[("x", "y")]).set(1.5);
        r.histogram("h", "hist", &[]).record(100);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 3);
        assert_eq!(snap.find("c", &[]).unwrap().counter, Some(7));
        assert_eq!(snap.find("g", &[("x", "y")]).unwrap().gauge, Some(1.5));
        assert_eq!(snap.find("h", &[]).unwrap().histogram.as_ref().unwrap().count(), 1);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let r = Registry::new();
        r.counter("c", "a \"quoted\" help", &[("k", "v")]).inc();
        r.histogram("h", "", &[]).record(42);
        let snap = r.snapshot();
        let back: RegistrySnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("requests_total", "Total requests", &[("model", "bert")]).add(3);
        r.gauge("queue_depth", "Jobs waiting", &[]).set(2.0);
        let h = r.histogram("latency_nanoseconds", "Latency", &[]);
        h.record(3); // bucket 2, upper bound 3
        h.record(900); // bucket 10, upper bound 1023
        let text = r.render_prometheus();

        assert!(text.contains("# HELP requests_total Total requests\n"));
        assert!(text.contains("# TYPE requests_total counter\n"));
        assert!(text.contains("requests_total{model=\"bert\"} 3\n"));
        assert!(text.contains("queue_depth 2.0\n"));
        assert!(text.contains("# TYPE latency_nanoseconds histogram\n"));
        assert!(text.contains("latency_nanoseconds_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("latency_nanoseconds_bucket{le=\"1023\"} 2\n"));
        assert!(text.contains("latency_nanoseconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("latency_nanoseconds_sum 903\n"));
        assert!(text.contains("latency_nanoseconds_count 2\n"));
    }

    #[test]
    fn histogram_families_get_a_p999_gauge() {
        let r = Registry::new();
        let h = r.histogram("latency_nanoseconds", "Latency", &[("route", "infer")]);
        for _ in 0..990 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        r.counter("c", "", &[]).inc();
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE latency_nanoseconds_p999 gauge\n"));
        let line = text
            .lines()
            .find(|l| l.starts_with("latency_nanoseconds_p999{route=\"infer\"}"))
            .expect("p999 series present");
        let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        // The single outlier sits at the 99.9th rank: estimate must leave
        // the 100 ns bucket and land in the outlier's octave.
        assert!(v > 1_000.0, "p999 should reflect the tail, got {line}");
        assert!(!text.contains("c_p999"), "counters get no quantile family");
    }

    #[test]
    fn bucket_series_is_cumulative_and_monotone() {
        let r = Registry::new();
        let h = r.histogram("h", "", &[]);
        for v in [1u64, 1, 5, 5, 5, 200] {
            h.record(v);
        }
        let text = r.render_prometheus();
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("h_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
        assert_eq!(last, 6);
    }

    #[test]
    fn clones_share_the_map() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("c", "", &[]).inc();
        assert_eq!(r2.snapshot().find("c", &[]).unwrap().counter, Some(1));
    }
}
