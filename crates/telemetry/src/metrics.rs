//! Scalar metrics: monotone [`Counter`] and last-write-wins [`Gauge`].
//!
//! Both are single `AtomicU64`s with relaxed ordering. Relaxed is correct
//! here: metrics are statistical observations, not synchronization — readers
//! only need *some* recent value, and the final value is made visible by the
//! thread join / channel receive that ends the measured workload anyway.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count (requests served, bytes
/// requested, cache hits). Cheap enough for the innermost serving loop.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time measurement that can move both ways (resident bytes,
/// chunk count, utilisation). Stores an `f64` bit-cast into the atomic.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge at `0.0` (the bit pattern of `0.0f64` is all-zero).
    pub const fn new() -> Self {
        Gauge { bits: AtomicU64::new(0) }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (compare-and-swap loop; gauges are low-frequency).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counter_is_shared_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gauge_concurrent_adds_do_not_lose_updates() {
        let g = Gauge::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        g.add(0.5);
                    }
                });
            }
        });
        assert!((g.get() - 2_000.0).abs() < 1e-9);
    }
}
