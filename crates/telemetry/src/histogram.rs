//! Fixed-bucket log₂ latency histogram with mergeable snapshots.
//!
//! Values are non-negative integers (nanoseconds, tokens, batch rows —
//! whatever the metric counts). Bucket `b` holds values whose bit length is
//! `b`: bucket 0 holds exactly 0, bucket 1 holds 1, bucket 2 holds 2–3,
//! bucket `b` holds `[2^(b-1), 2^b)`, and the last bucket absorbs
//! everything above `2^62`. Sixty-four buckets cover the full `u64` range,
//! so there is nothing to configure and nothing to clip; relative error of
//! any quantile estimate is bounded by one octave, which is the right
//! resolution for latency work where the interesting differences are 2×,
//! not 2%.
//!
//! Recording is one `leading_zeros` plus two relaxed atomic adds; no locks,
//! no allocation. [`HistogramSnapshot`]s add pointwise, so per-thread or
//! per-server histograms fold into cluster aggregates losslessly.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Number of buckets (bit lengths 0..=63; the top bucket is open-ended).
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: its bit length, clamped to the top bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()).min(BUCKETS as u32 - 1) as usize
}

/// Smallest value in bucket `b`.
pub fn bucket_lower(b: usize) -> u64 {
    match b {
        0 => 0,
        _ => 1u64 << (b - 1),
    }
}

/// Largest value in bucket `b` (the top bucket runs to `u64::MAX`).
pub fn bucket_upper(b: usize) -> u64 {
    match b {
        0 => 0,
        _ if b >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

/// Lock-free log₂ histogram.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram { counts: [const { AtomicU64::new(0) }; BUCKETS], sum: AtomicU64::new(0) }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating far beyond any real
    /// latency — `u64` nanoseconds is ~584 years).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Time `f` and record its wall-clock nanoseconds.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let out = f();
        self.record_duration(start.elapsed());
        out
    }

    /// A point-in-time copy of the bucket counts. Individual bucket loads
    /// are relaxed, so a snapshot taken mid-record may be off by in-flight
    /// observations — fine for monitoring, and exact once writers quiesce.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable, serializable copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`BUCKETS` entries).
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { counts: vec![0; BUCKETS], sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of recorded values, 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Fold `other` into `self` pointwise. Merging snapshots from two
    /// sources yields exactly the snapshot of their combined observations.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by nearest rank, linearly
    /// interpolated inside the owning bucket. The estimate always lies in
    /// the same bucket as the true nearest-rank sample quantile, so the
    /// error is bounded by one octave (the property tests pin this down).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lo = bucket_lower(b) as f64;
                let hi = bucket_upper(b).min(1u64 << 62) as f64; // finite top
                let frac = (rank - cum) as f64 / c as f64;
                return (lo + (hi - lo) * frac) as u64;
            }
            cum += c;
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate — the tail that separates "a slow
    /// request now and then" from "tracing is costing everyone"; the
    /// exposition publishes it so overhead claims can be audited.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_consistent() {
        for b in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(b)), b, "lower bound of bucket {b}");
            assert_eq!(bucket_index(bucket_upper(b)), b, "upper bound of bucket {b}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn record_and_count() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 1_000_106);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[2], 2); // 2 and 3
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // True p50 is 500 (bucket 9: 256..511), p99 is 990 (bucket 10),
        // p999 is 1000 (also bucket 10).
        assert_eq!(bucket_index(s.p50()), bucket_index(500));
        assert_eq!(bucket_index(s.p99()), bucket_index(990));
        assert_eq!(bucket_index(s.p999()), bucket_index(1000));
        assert!(s.p999() >= s.p99());
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn merge_is_pointwise_addition() {
        let (a, b) = (Histogram::new(), Histogram::new());
        a.record(10);
        a.record(20);
        b.record(1_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum, 1_030);

        let all = Histogram::new();
        for v in [10, 20, 1_000] {
            all.record(v);
        }
        assert_eq!(m, all.snapshot());
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let h = Histogram::new();
        h.record(7);
        h.record(70_000);
        let s = h.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
