//! RAPL-style background energy sampling with per-phase attribution.
//!
//! Real deployments read joules from a hardware counter (Intel RAPL, NVML's
//! `nvmlDeviceGetTotalEnergyConsumption`). This repo serves a *simulated*
//! GPU, so the hardware counter is replaced by a model: the runtime prices
//! every executed op with the `tt-gpusim` energy model and feeds the
//! resulting microjoules into an [`EnergyMeter`]. The plumbing is split so
//! the sampler never knows the difference:
//!
//! - [`EnergyMeter`] — a lock-free per-phase microjoule accumulator the
//!   executor and engines write from the hot path (one relaxed
//!   `fetch_add`, same budget discipline as every other metric here);
//! - [`PowerSource`] — the RAPL-shaped read side: *cumulative, monotone*
//!   microjoules per phase since source creation. [`ModeledPowerSource`]
//!   implements it by combining the meter's busy energy with the device's
//!   static idle draw; a real RAPL/NVML file reader would implement the
//!   same trait and slot into the same sampler unchanged;
//! - [`EnergySampler`] — the background thread: every
//!   [`interval`](EnergySamplerConfig::interval) it reads the source and
//!   publishes to a [`Registry`]:
//!   - `energy_microjoules_total{phase=…}` — monotone integer counters
//!     (the exact currency attribution tests reconcile against);
//!   - `energy_joules_total{phase=…}` — the same energy in joules
//!     (monotone by construction; floating-point for dashboards);
//!   - `power_watts{phase=…}` + `power_watts{phase="total"}` — draw over
//!     the last sampling interval;
//!   - `energy_joules_per_request` / `energy_joules_per_token` — derived
//!     families dividing total joules by caller-supplied request/token
//!     counters;
//!   - `process_uptime_seconds` — seconds since the sampler started (the
//!     scrape-self-description satellite, updated here because the
//!     sampler is the one periodic thread the server always runs);
//!   - `energy_sampler_ticks_total` / `energy_sampler_tick_ns_total` —
//!     the sampler timing itself, so `telemetry_report` can gate its
//!     overhead below 2% without external instrumentation.
//!
//! Configuration follows the `TT_*` convention: `TT_ENERGY` (set `0`/`off`
//! to disable the sampler at the server), `TT_ENERGY_SAMPLE_MS` (sampling
//! interval, default 25 ms).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::{Counter, Gauge};
use crate::registry::Registry;

/// Which serving phase a joule is attributed to.
///
/// Full-sequence forward passes (a BERT encoder batch, a GPT prompt
/// prefill) are `Prefill`; single-token decode steps are `Decode`. Static
/// idle draw is attributed separately by the [`PowerSource`] — the meter
/// only ever sees *busy* (dynamic + launch-occupancy) energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnergyPhase {
    /// Full-sequence forward work (encoder batches, prompt prefill).
    Prefill,
    /// Single-token decode steps.
    Decode,
}

impl EnergyPhase {
    /// Metric label value.
    pub fn as_str(&self) -> &'static str {
        match self {
            EnergyPhase::Prefill => "prefill",
            EnergyPhase::Decode => "decode",
        }
    }
}

/// Lock-free accumulator of modeled busy energy, split by phase.
///
/// Writers are the executor and engine loops; the reader is the
/// [`ModeledPowerSource`]. All operations are single relaxed atomics: no
/// energy is ever lost or double-counted regardless of how many streams
/// write concurrently (pinned by a property test).
#[derive(Debug, Default)]
pub struct EnergyMeter {
    prefill_uj: AtomicU64,
    decode_uj: AtomicU64,
}

impl EnergyMeter {
    /// A meter at zero joules.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Attribute `uj` microjoules of busy energy to `phase`.
    #[inline]
    pub fn add(&self, phase: EnergyPhase, uj: u64) {
        match phase {
            EnergyPhase::Prefill => self.prefill_uj.fetch_add(uj, Ordering::Relaxed),
            EnergyPhase::Decode => self.decode_uj.fetch_add(uj, Ordering::Relaxed),
        };
    }

    /// Cumulative microjoules attributed to `phase`.
    pub fn phase_uj(&self, phase: EnergyPhase) -> u64 {
        match phase {
            EnergyPhase::Prefill => self.prefill_uj.load(Ordering::Relaxed),
            EnergyPhase::Decode => self.decode_uj.load(Ordering::Relaxed),
        }
    }

    /// Cumulative busy microjoules across all phases.
    pub fn busy_uj(&self) -> u64 {
        self.phase_uj(EnergyPhase::Prefill) + self.phase_uj(EnergyPhase::Decode)
    }
}

/// One cumulative energy reading: monotone microjoules per phase label
/// since the source was created.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PowerReading {
    /// `(phase label, cumulative microjoules)` pairs. Labels must be
    /// stable across reads; values must be monotone.
    pub phase_uj: Vec<(&'static str, u64)>,
}

impl PowerReading {
    /// Total cumulative microjoules across phases.
    pub fn total_uj(&self) -> u64 {
        self.phase_uj.iter().map(|(_, uj)| uj).sum()
    }
}

/// The RAPL-shaped read side: cumulative monotone energy.
///
/// Implementations must be cheap (a few atomic loads) — the sampler calls
/// this on every tick and its cost is gated below 2% of a core.
pub trait PowerSource: Send + Sync {
    /// Cumulative energy since source creation, attributed by phase.
    fn read(&self) -> PowerReading;
}

/// [`PowerSource`] driven by the energy model: busy joules from an
/// [`EnergyMeter`] the executor feeds, plus the device's static idle draw
/// integrated over wall time — the same decomposition a real board shows
/// (dynamic switching power on top of a constant floor).
#[derive(Debug)]
pub struct ModeledPowerSource {
    meter: Arc<EnergyMeter>,
    idle_watts: f64,
    origin: Instant,
}

impl ModeledPowerSource {
    /// A source over `meter` with a constant static draw of `idle_watts`.
    pub fn new(meter: Arc<EnergyMeter>, idle_watts: f64) -> Self {
        ModeledPowerSource { meter, idle_watts: idle_watts.max(0.0), origin: Instant::now() }
    }

    /// The meter this source integrates.
    pub fn meter(&self) -> &Arc<EnergyMeter> {
        &self.meter
    }
}

impl PowerSource for ModeledPowerSource {
    fn read(&self) -> PowerReading {
        let idle_uj = (self.origin.elapsed().as_secs_f64() * self.idle_watts * 1e6) as u64;
        PowerReading {
            phase_uj: vec![
                ("prefill", self.meter.phase_uj(EnergyPhase::Prefill)),
                ("decode", self.meter.phase_uj(EnergyPhase::Decode)),
                ("idle", idle_uj),
            ],
        }
    }
}

/// Sampler shape. [`from_env`](EnergySamplerConfig::from_env) honours
/// `TT_ENERGY_SAMPLE_MS`; invalid values fall back silently, like every
/// other `TT_*` knob.
#[derive(Debug, Clone)]
pub struct EnergySamplerConfig {
    /// Sampling interval (default 25 ms — fast enough for smooth watt
    /// curves, slow enough to be invisible in the overhead budget).
    pub interval: Duration,
    /// When set, `energy_joules_per_request` is published as total joules
    /// divided by this counter's value (e.g. `requests_total`).
    pub per_request: Option<Arc<Counter>>,
    /// When set, `energy_joules_per_token` is published as total joules
    /// divided by this counter's value (e.g. `decode_tokens_total`).
    pub per_token: Option<Arc<Counter>>,
}

impl Default for EnergySamplerConfig {
    fn default() -> Self {
        EnergySamplerConfig {
            interval: Duration::from_millis(25),
            per_request: None,
            per_token: None,
        }
    }
}

impl EnergySamplerConfig {
    /// Defaults overridden by `TT_ENERGY_SAMPLE_MS` when set and parseable.
    pub fn from_env() -> Self {
        let mut cfg = EnergySamplerConfig::default();
        if let Ok(v) = std::env::var("TT_ENERGY_SAMPLE_MS") {
            if let Ok(ms) = v.trim().parse::<u64>() {
                cfg.interval = Duration::from_millis(ms.max(1));
            }
        }
        cfg
    }

    /// Whether the server should run a sampler at all: `TT_ENERGY=0` /
    /// `off` / `false` disables it (default on).
    pub fn enabled_in_env() -> bool {
        !matches!(
            std::env::var("TT_ENERGY").as_deref().map(str::trim),
            Ok("0") | Ok("off") | Ok("false")
        )
    }
}

/// Everything one tick needs; owned by the sampler thread.
struct SamplerState {
    source: Arc<dyn PowerSource>,
    config: EnergySamplerConfig,
    registry: Registry,
    start: Instant,
    last: PowerReading,
    last_at: Instant,
    uptime: Arc<Gauge>,
    watts_total: Arc<Gauge>,
    per_request: Option<Arc<Gauge>>,
    per_token: Option<Arc<Gauge>>,
    ticks: Arc<Counter>,
    tick_ns: Arc<Counter>,
}

impl SamplerState {
    fn new(registry: &Registry, source: Arc<dyn PowerSource>, config: EnergySamplerConfig) -> Self {
        let per_request = config.per_request.as_ref().map(|_| {
            registry.gauge(
                "energy_joules_per_request",
                "Total modeled joules divided by completed requests",
                &[],
            )
        });
        let per_token = config.per_token.as_ref().map(|_| {
            registry.gauge(
                "energy_joules_per_token",
                "Total modeled joules divided by generated tokens",
                &[],
            )
        });
        let now = Instant::now();
        SamplerState {
            last: source.read(),
            source,
            config,
            registry: registry.clone(),
            start: now,
            last_at: now,
            uptime: registry.gauge(
                "process_uptime_seconds",
                "Seconds since this process's telemetry sampler started",
                &[],
            ),
            watts_total: registry.gauge(
                "power_watts",
                "Modeled board power draw over the last sampling interval",
                &[("phase", "total")],
            ),
            per_request,
            per_token,
            ticks: registry.counter(
                "energy_sampler_ticks_total",
                "Sampling-thread wakeups since start",
                &[],
            ),
            tick_ns: registry.counter(
                "energy_sampler_tick_ns_total",
                "Wall nanoseconds the sampling thread spent inside ticks",
                &[],
            ),
        }
    }

    /// One sampling tick: read the source, publish counters/gauges.
    fn tick(&mut self) {
        let t0 = Instant::now();
        let reading = self.source.read();
        let dt = self.last_at.elapsed().as_secs_f64().max(1e-9);

        let mut total_uj = 0u64;
        let mut total_delta = 0u64;
        for (phase, uj) in &reading.phase_uj {
            let prev =
                self.last.phase_uj.iter().find(|(p, _)| p == phase).map(|&(_, v)| v).unwrap_or(0);
            let delta = uj.saturating_sub(prev);
            total_uj += uj;
            total_delta += delta;
            // Get-or-create is a map lookup after the first tick; at a
            // 25 ms cadence that is noise (the overhead gate proves it).
            self.registry
                .counter(
                    "energy_microjoules_total",
                    "Cumulative modeled energy, exact integer microjoules",
                    &[("phase", phase)],
                )
                .add(delta);
            self.registry
                .gauge(
                    "energy_joules_total",
                    "Cumulative modeled energy in joules (monotone)",
                    &[("phase", phase)],
                )
                .set(*uj as f64 / 1e6);
            self.registry
                .gauge(
                    "power_watts",
                    "Modeled board power draw over the last sampling interval",
                    &[("phase", phase)],
                )
                .set(delta as f64 / 1e6 / dt);
        }
        self.watts_total.set(total_delta as f64 / 1e6 / dt);
        let total_j = total_uj as f64 / 1e6;
        if let (Some(gauge), Some(requests)) = (&self.per_request, &self.config.per_request) {
            let n = requests.get();
            if n > 0 {
                gauge.set(total_j / n as f64);
            }
        }
        if let (Some(gauge), Some(tokens)) = (&self.per_token, &self.config.per_token) {
            let n = tokens.get();
            if n > 0 {
                gauge.set(total_j / n as f64);
            }
        }
        self.uptime.set(self.start.elapsed().as_secs_f64());
        self.last = reading;
        self.last_at = t0;
        self.ticks.inc();
        self.tick_ns.add(t0.elapsed().as_nanos() as u64);
    }
}

/// The running background sampler. Stops (final tick included, so shutdown
/// never loses the tail of the energy curve) on [`stop`](Self::stop) or
/// drop.
pub struct EnergySampler {
    stop_tx: Option<Sender<()>>,
    handle: Option<JoinHandle<u64>>,
}

impl std::fmt::Debug for EnergySampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnergySampler").field("running", &self.handle.is_some()).finish()
    }
}

impl EnergySampler {
    /// Start sampling `source` into `registry` at `config.interval`.
    pub fn start(
        registry: &Registry,
        source: Arc<dyn PowerSource>,
        config: EnergySamplerConfig,
    ) -> Self {
        let interval = config.interval;
        let mut state = SamplerState::new(registry, source, config);
        let (stop_tx, stop_rx) = channel::<()>();
        let handle = std::thread::Builder::new()
            .name("tt-energy-sampler".into())
            .spawn(move || loop {
                match stop_rx.recv_timeout(interval) {
                    Err(RecvTimeoutError::Timeout) => state.tick(),
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                        state.tick();
                        return state.ticks.get();
                    }
                }
            })
            .expect("spawning the energy sampling thread");
        EnergySampler { stop_tx: Some(stop_tx), handle: Some(handle) }
    }

    /// Stop the thread after one final tick; returns total ticks taken.
    pub fn stop(mut self) -> u64 {
        self.shutdown().unwrap_or(0)
    }

    fn shutdown(&mut self) -> Option<u64> {
        self.stop_tx.take()?;
        self.handle.take().map(|h| h.join().expect("energy sampler thread exits cleanly"))
    }
}

impl Drop for EnergySampler {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_attributes_per_phase_without_loss() {
        let meter = EnergyMeter::new();
        meter.add(EnergyPhase::Prefill, 100);
        meter.add(EnergyPhase::Decode, 40);
        meter.add(EnergyPhase::Decode, 2);
        assert_eq!(meter.phase_uj(EnergyPhase::Prefill), 100);
        assert_eq!(meter.phase_uj(EnergyPhase::Decode), 42);
        assert_eq!(meter.busy_uj(), 142);
    }

    #[test]
    fn concurrent_streams_never_lose_or_double_count_energy() {
        // The accounting invariant the serving layer relies on: whatever
        // each stream believes it contributed sums exactly to the meter.
        let meter = Arc::new(EnergyMeter::new());
        let mut locals = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..8u64 {
                let meter = Arc::clone(&meter);
                handles.push(s.spawn(move || {
                    let mut local = 0u64;
                    for i in 0..5_000u64 {
                        let uj = (t * 31 + i * 7) % 97 + 1;
                        let phase =
                            if i % 3 == 0 { EnergyPhase::Prefill } else { EnergyPhase::Decode };
                        meter.add(phase, uj);
                        local += uj;
                    }
                    local
                }));
            }
            for h in handles {
                locals.push(h.join().unwrap());
            }
        });
        assert_eq!(meter.busy_uj(), locals.iter().sum::<u64>());
    }

    #[test]
    fn modeled_source_is_monotone_and_phase_labelled() {
        let meter = Arc::new(EnergyMeter::new());
        let src = ModeledPowerSource::new(Arc::clone(&meter), 10.0);
        let first = src.read();
        meter.add(EnergyPhase::Prefill, 500);
        meter.add(EnergyPhase::Decode, 300);
        std::thread::sleep(Duration::from_millis(5));
        let second = src.read();
        let labels: Vec<_> = second.phase_uj.iter().map(|(p, _)| *p).collect();
        assert_eq!(labels, vec!["prefill", "decode", "idle"]);
        for ((_, a), (_, b)) in first.phase_uj.iter().zip(&second.phase_uj) {
            assert!(b >= a, "cumulative energy must be monotone");
        }
        assert!(second.total_uj() >= first.total_uj() + 800);
        // Idle integrates wall time at 10 W: ≥ 5 ms × 10 W = 50 mJ.
        let idle = second.phase_uj.iter().find(|(p, _)| *p == "idle").unwrap().1;
        assert!(idle >= 50_000, "idle draw must integrate wall time, got {idle} µJ");
    }

    #[test]
    fn sampler_publishes_energy_power_uptime_and_derived_families() {
        let registry = Registry::new();
        let meter = Arc::new(EnergyMeter::new());
        let requests = registry.counter("test_requests_total", "requests", &[]);
        let tokens = registry.counter("test_tokens_total", "tokens", &[]);
        requests.add(4);
        tokens.add(100);
        let src = Arc::new(ModeledPowerSource::new(Arc::clone(&meter), 25.0));
        let sampler = EnergySampler::start(
            &registry,
            src,
            EnergySamplerConfig {
                interval: Duration::from_millis(2),
                per_request: Some(requests),
                per_token: Some(tokens),
            },
        );
        meter.add(EnergyPhase::Prefill, 2_000_000);
        meter.add(EnergyPhase::Decode, 1_000_000);
        std::thread::sleep(Duration::from_millis(20));
        let ticks = sampler.stop();
        assert!(ticks >= 2, "sampler must have ticked, got {ticks}");

        let snap = registry.snapshot();
        let prefill_j =
            snap.find("energy_joules_total", &[("phase", "prefill")]).unwrap().gauge.unwrap();
        assert!((prefill_j - 2.0).abs() < 1e-9);
        let decode_uj =
            snap.find("energy_microjoules_total", &[("phase", "decode")]).unwrap().counter.unwrap();
        assert_eq!(decode_uj, 1_000_000);
        let idle_uj =
            snap.find("energy_microjoules_total", &[("phase", "idle")]).unwrap().counter.unwrap();
        assert!(idle_uj > 0, "idle draw accrues with wall time");
        assert!(snap.find("power_watts", &[("phase", "total")]).unwrap().gauge.unwrap() > 0.0);
        assert!(snap.find("process_uptime_seconds", &[]).unwrap().gauge.unwrap() > 0.0);
        // Derived families: ≥ 3 J busy + idle over 4 requests / 100 tokens.
        let per_req = snap.find("energy_joules_per_request", &[]).unwrap().gauge.unwrap();
        assert!(per_req >= 3.0 / 4.0);
        let per_tok = snap.find("energy_joules_per_token", &[]).unwrap().gauge.unwrap();
        assert!(per_tok >= 3.0 / 100.0);
        // The sampler times itself for the overhead gate.
        assert!(
            snap.find("energy_sampler_tick_ns_total", &[]).unwrap().counter.unwrap() > 0,
            "sampler self-timing must be published"
        );
        assert_eq!(snap.find("energy_sampler_ticks_total", &[]).unwrap().counter, Some(ticks));
    }

    #[test]
    fn sampler_config_env_overrides() {
        std::env::set_var("TT_ENERGY_SAMPLE_MS", "7");
        let cfg = EnergySamplerConfig::from_env();
        std::env::remove_var("TT_ENERGY_SAMPLE_MS");
        assert_eq!(cfg.interval, Duration::from_millis(7));
        std::env::set_var("TT_ENERGY", "0");
        assert!(!EnergySamplerConfig::enabled_in_env());
        std::env::remove_var("TT_ENERGY");
        assert!(EnergySamplerConfig::enabled_in_env());
    }
}
