//! Chrome trace-event exporter: turn collected [`SpanRecord`]s into the
//! JSON object format that `chrome://tracing` and [Perfetto] load.
//!
//! The format is the classic trace-event JSON: a top-level object with a
//! `traceEvents` array of complete (`"ph":"X"`) events, timestamps and
//! durations in **microseconds** (fractional values carry the nanosecond
//! precision through). Each trace is mapped to its own `tid` so Perfetto
//! renders one lane per request, which is exactly the per-request timeline
//! view the scheduler work needs (compare the paper's Fig. 4 per-op
//! breakdowns).
//!
//! [Perfetto]: https://ui.perfetto.dev
//!
//! ```
//! use tt_telemetry::chrome::chrome_trace_json;
//! use tt_telemetry::trace::{Tracer, TracerConfig};
//!
//! let t = Tracer::new(TracerConfig { sample_every: 1, ..TracerConfig::default() });
//! { let _root = t.start_root("http", false); }
//! let json = chrome_trace_json(&t.all_spans());
//! assert!(json.contains("\"traceEvents\""));
//! ```

use crate::trace::SpanRecord;

/// Render spans as a Chrome trace-event JSON document.
///
/// Every span becomes one complete event; `pid` is fixed at 1 and `tid`
/// is a small per-trace lane index so concurrent requests stack instead
/// of overlapping. Span/parent/trace ids and all attributes ride along in
/// `args`, so nothing the collector knew is lost in export.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    // Assign each distinct trace a compact lane number in first-seen order.
    let mut lanes: Vec<u64> = Vec::new();
    let mut lane_of = |trace: u64| -> usize {
        match lanes.iter().position(|&t| t == trace) {
            Some(i) => i,
            None => {
                lanes.push(trace);
                lanes.len() - 1
            }
        }
    };

    let mut out = String::with_capacity(128 + spans.len() * 200);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = lane_of(s.trace.0) + 1;
        out.push_str("{\"name\":\"");
        out.push_str(s.name);
        out.push_str("\",\"cat\":\"tt\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        // Microseconds with fractional part: keeps full ns precision, so
        // child intervals still nest exactly inside parents after export.
        out.push_str(&format!(",\"ts\":{:.3},\"dur\":{:.3}", us(s.start_ns), us(s.dur_ns)));
        out.push_str(",\"args\":{\"trace_id\":\"");
        out.push_str(&s.trace.to_string());
        out.push_str("\",\"span_id\":\"");
        out.push_str(&s.span.to_string());
        out.push_str("\",\"parent_id\":");
        match s.parent {
            Some(p) => {
                out.push('"');
                out.push_str(&p.to_string());
                out.push('"');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"start_ns\":");
        out.push_str(&s.start_ns.to_string());
        out.push_str(",\"dur_ns\":");
        out.push_str(&s.dur_ns.to_string());
        for (k, v) in &s.attrs {
            out.push_str(",\"");
            out.push_str(k);
            out.push_str("\":");
            v.push_json(&mut out);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AttrValue, SpanId, SpanRecord, TraceId};

    fn record(trace: u64, span: u64, parent: Option<u64>, name: &'static str) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            span: SpanId(span),
            parent: parent.map(SpanId),
            name,
            start_ns: 1_500,
            dur_ns: 2_250,
            attrs: vec![("batch", AttrValue::Int(4))],
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_fields() {
        let spans = vec![record(7, 1, None, "http"), record(7, 2, Some(1), "schedule")];
        let json = chrome_trace_json(&spans);
        let value = serde::json::parse(&json).expect("valid JSON");
        let events = value.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert_eq!(events.len(), 2);
        let first = &events[0];
        assert_eq!(first.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(first.get("ts").and_then(|v| v.as_f64()), Some(1.5));
        assert_eq!(first.get("dur").and_then(|v| v.as_f64()), Some(2.25));
        let args = first.get("args").unwrap();
        assert_eq!(args.get("batch").and_then(|v| v.as_f64()), Some(4.0));
        assert_eq!(args.get("parent_id").map(|v| v.is_null()), Some(true));
    }

    #[test]
    fn traces_get_distinct_lanes() {
        let spans = vec![record(7, 1, None, "a"), record(9, 2, None, "b")];
        let json = chrome_trace_json(&spans);
        let value = serde::json::parse(&json).unwrap();
        let events = value.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let tid0 = events[0].get("tid").and_then(|v| v.as_f64()).unwrap();
        let tid1 = events[1].get("tid").and_then(|v| v.as_f64()).unwrap();
        assert_ne!(tid0, tid1);
    }

    #[test]
    fn empty_export_is_still_a_document() {
        let json = chrome_trace_json(&[]);
        let value = serde::json::parse(&json).unwrap();
        assert_eq!(value.get("traceEvents").and_then(|v| v.as_array()).map(|a| a.len()), Some(0));
    }
}
