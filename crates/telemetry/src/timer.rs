//! Span timing: record wall-clock durations into a [`Histogram`] with a
//! drop guard, or measure manually with a [`Stopwatch`].

use std::time::Instant;

use crate::histogram::Histogram;

/// A span guard: started against a histogram, records elapsed nanoseconds
/// when dropped (or explicitly via [`Timer::stop`]).
///
/// ```
/// use tt_telemetry::{Histogram, Timer};
/// let h = Histogram::new();
/// {
///     let _span = Timer::start(&h);
///     // ... measured work ...
/// }
/// assert_eq!(h.snapshot().count(), 1);
/// ```
#[must_use = "a dropped timer records immediately; bind it to a variable"]
pub struct Timer<'a> {
    hist: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl<'a> Timer<'a> {
    /// Start timing against `hist`.
    pub fn start(hist: &'a Histogram) -> Self {
        Timer { hist, start: Instant::now(), armed: true }
    }

    /// Stop now, record, and return the elapsed nanoseconds.
    pub fn stop(mut self) -> u64 {
        self.armed = false;
        let ns = elapsed_nanos(self.start);
        self.hist.record(ns);
        ns
    }

    /// Abandon the span without recording (e.g. the measured operation
    /// failed and would pollute the latency distribution).
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(elapsed_nanos(self.start));
        }
    }
}

/// A free-standing wall-clock stopwatch for call sites that route the
/// measurement themselves (e.g. one timed region feeding two histograms).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start now.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Nanoseconds since start.
    pub fn elapsed_nanos(&self) -> u64 {
        elapsed_nanos(self.start)
    }

    /// Nanoseconds since start, and restart (for back-to-back phases).
    pub fn lap_nanos(&mut self) -> u64 {
        let ns = elapsed_nanos(self.start);
        self.start = Instant::now();
        ns
    }
}

fn elapsed_nanos(start: Instant) -> u64 {
    start.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_on_drop() {
        let h = Histogram::new();
        {
            let _t = Timer::start(&h);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert!(s.sum >= 1_000_000, "slept >= 1ms, recorded {}", s.sum);
    }

    #[test]
    fn stop_records_once_and_returns_elapsed() {
        let h = Histogram::new();
        let t = Timer::start(&h);
        let ns = t.stop();
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum, ns);
    }

    #[test]
    fn discard_records_nothing() {
        let h = Histogram::new();
        Timer::start(&h).discard();
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn stopwatch_laps() {
        let mut w = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let first = w.lap_nanos();
        assert!(first >= 1_000_000);
        let second = w.elapsed_nanos();
        assert!(second < first, "lap restarts the clock");
    }
}
