//! Property tests of the telemetry primitives.
//!
//! Two contracts matter enough to pin down over arbitrary inputs:
//!
//! 1. **Quantile bracketing.** A log₂ histogram throws away everything but
//!    the bucket index, so its quantile estimate cannot be exact — but it
//!    must always land in the *same bucket* as the true nearest-rank
//!    sample quantile (error bounded by one octave).
//! 2. **Lossless concurrent counting.** Counters and histograms are
//!    relaxed atomics; relaxed must still mean no lost updates under
//!    arbitrary thread/increment mixes.

use proptest::prelude::*;
use tt_telemetry::{bucket_index, Counter, Histogram};

/// The true nearest-rank `q`-quantile, with the same rank convention the
/// histogram uses: the ⌈q·n⌉-th smallest sample (1-based), clamped.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn histogram_quantile_brackets_true_quantile(
        values in prop::collection::vec(0u64..=10_000_000, 1..300),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let truth = true_quantile(&sorted, q);
        let estimate = snap.quantile(q);
        prop_assert_eq!(
            bucket_index(estimate),
            bucket_index(truth),
            "estimate {} and true quantile {} must share a bucket (q={})",
            estimate,
            truth,
            q
        );
    }

    #[test]
    fn standard_percentiles_bracket_for_skewed_data(
        // Latency-shaped data: a fast mode plus a heavy tail.
        fast in prop::collection::vec(1_000u64..=50_000, 10..200),
        slow in prop::collection::vec(1_000_000u64..=80_000_000, 0..20),
    ) {
        let h = Histogram::new();
        let mut all = Vec::with_capacity(fast.len() + slow.len());
        for &v in fast.iter().chain(&slow) {
            h.record(v);
            all.push(v);
        }
        all.sort_unstable();
        let snap = h.snapshot();
        for q in [0.50, 0.95, 0.99] {
            prop_assert_eq!(
                bucket_index(snap.quantile(q)),
                bucket_index(true_quantile(&all, q)),
                "p{} must land in the true bucket",
                (q * 100.0) as u32
            );
        }
    }

    #[test]
    fn concurrent_counter_increments_are_never_lost(
        threads in 2usize..=8,
        per_thread in 1u64..=2_000,
    ) {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        prop_assert_eq!(c.get(), threads as u64 * per_thread);
    }

    #[test]
    fn concurrent_histogram_records_preserve_count_and_sum(
        threads in 2usize..=6,
        per_thread in prop::collection::vec(0u64..=1_000_000, 1..200),
    ) {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let (h, values) = (&h, &per_thread);
                s.spawn(move || {
                    for &v in values {
                        h.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        let expect_count = threads as u64 * per_thread.len() as u64;
        let expect_sum = threads as u64 * per_thread.iter().sum::<u64>();
        prop_assert_eq!(snap.count(), expect_count);
        prop_assert_eq!(snap.sum, expect_sum);
    }

    #[test]
    fn merged_snapshots_equal_combined_recording(
        a in prop::collection::vec(0u64..=1_000_000, 0..100),
        b in prop::collection::vec(0u64..=1_000_000, 0..100),
    ) {
        let (ha, hb, hall) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, hall.snapshot());
    }
}
