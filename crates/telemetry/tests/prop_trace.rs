//! Property tests of the tracing subsystem.
//!
//! The contract worth pinning over arbitrary inputs: whatever shape of
//! span tree is recorded, from however many threads at once, the
//! collector hands back *well-formed* trees — every non-root span's
//! parent exists in the same trace, child intervals nest inside their
//! parent's interval, and both exporters (span-tree JSON and Chrome
//! trace-event JSON) emit parseable JSON covering every span.

use proptest::prelude::*;
use tt_telemetry::{chrome_trace_json, trace_tree_json, SpanRecord, Tracer, TracerConfig};

/// Build one root span whose subtree shape is driven by `plan`: each
/// entry spawns a child, odd entries give that child a grandchild.
/// Returns the trace id.
fn build_tree(tracer: &Tracer, plan: &[u8]) -> tt_telemetry::TraceId {
    let mut root = tracer.start_root("root", true).expect("forced root samples");
    root.attr_int("fanout", plan.len() as i64);
    let trace = root.context().trace;
    for &v in plan {
        let mut child = root.child("child");
        child.attr_int("v", v as i64);
        if v % 2 == 1 {
            let mut grand = child.child("grandchild");
            grand.attr_str("kind", "leaf");
        }
    }
    trace
}

/// Assert the well-formedness invariants on one trace's spans.
fn assert_well_formed(spans: &[SpanRecord]) {
    assert!(!spans.is_empty());
    let roots = spans.iter().filter(|s| s.parent.is_none()).count();
    assert_eq!(roots, 1, "exactly one root per trace");
    for span in spans {
        let Some(parent_id) = span.parent else { continue };
        let parent = spans
            .iter()
            .find(|p| p.span == parent_id)
            .unwrap_or_else(|| panic!("span {} has a dangling parent", span.span));
        assert!(
            parent.start_ns <= span.start_ns
                && span.start_ns + span.dur_ns <= parent.start_ns + parent.dur_ns,
            "child [{}, +{}] must nest in parent [{}, +{}]",
            span.start_ns,
            span.dur_ns,
            parent.start_ns,
            parent.dur_ns
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concurrent recording from arbitrary thread/tree mixes yields a
    /// well-formed tree for every trace, and both exporters parse.
    #[test]
    fn concurrent_span_trees_are_well_formed(
        plans in prop::collection::vec(prop::collection::vec(0u8..=5, 0..6), 1..8),
    ) {
        // Big enough that nothing is evicted mid-test.
        let tracer = Tracer::new(TracerConfig {
            enabled: true,
            sample_every: 1,
            buffer_spans: 4096,
        });

        let traces: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = plans
                .iter()
                .map(|plan| {
                    let tracer = tracer.clone();
                    s.spawn(move || build_tree(&tracer, plan))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("tree builder")).collect()
        });

        for (trace, plan) in traces.iter().zip(&plans) {
            let spans = tracer.spans_of(*trace);
            let expected = 1 + plan.len() + plan.iter().filter(|&&v| v % 2 == 1).count();
            prop_assert_eq!(spans.len(), expected, "no span lost or leaked across traces");
            assert_well_formed(&spans);

            // Both exporters emit valid JSON that covers every span.
            let tree = serde::json::parse(&trace_tree_json(*trace, &spans))
                .expect("trace tree JSON parses");
            prop_assert_eq!(
                tree.get("span_count").and_then(|v| v.as_f64()),
                Some(spans.len() as f64)
            );
            let chrome = serde::json::parse(&chrome_trace_json(&spans))
                .expect("chrome trace JSON parses");
            let events = chrome
                .get("traceEvents")
                .and_then(|v| v.as_array())
                .expect("traceEvents array");
            prop_assert_eq!(events.len(), spans.len());
        }
    }

    /// The collector's memory stays bounded no matter how many spans are
    /// recorded: old spans are evicted, never accumulated.
    #[test]
    fn buffer_eviction_bounds_memory(
        buffer in 4usize..=32,
        extra in 1usize..=512,
    ) {
        let tracer = Tracer::new(TracerConfig {
            enabled: true,
            sample_every: 1,
            buffer_spans: buffer,
        });
        // One shard is picked per thread, so this single-threaded flood
        // lands in one shard: capacity `buffer` exactly.
        for _ in 0..(buffer + extra) {
            drop(tracer.start_root("flood", true));
        }
        let kept = tracer.all_spans().len();
        prop_assert!(kept <= buffer, "kept {kept} spans, capacity {buffer}");
        prop_assert_eq!(kept, buffer, "eviction keeps the buffer full, dropping oldest");
    }

    /// Sampling keeps exactly ⌈n/k⌉ of n sequential unforced roots —
    /// head sampling is deterministic, not probabilistic.
    #[test]
    fn head_sampling_keeps_one_in_k(
        k in 1u64..=16,
        n in 0usize..=200,
    ) {
        let tracer = Tracer::new(TracerConfig {
            enabled: true,
            sample_every: k,
            buffer_spans: 4096,
        });
        let sampled =
            (0..n).filter(|_| tracer.start_root("req", false).is_some()).count();
        prop_assert_eq!(sampled, n.div_ceil(k as usize));
    }
}
