//! # tt-chaos — fault injection for the serving stack
//!
//! A production serving system is defined less by its fast path than by
//! what happens when something on that path misbehaves. This crate plants
//! named *injection points* at the stage boundaries of the stack —
//! executor, live engine, HTTP front-end — and fires faults at them with
//! configured probabilities, so the robustness claims of the serving layer
//! (engine thread never dies, sheds stay well-formed, accounting balances)
//! can be *tested* instead of asserted. See `docs/ROBUSTNESS.md` for the
//! full taxonomy and the `chaos_suite` bench bin for the harness that
//! drives a real HTTP server through every fault class.
//!
//! ## Injection points
//!
//! | point | hook site | observable blast radius |
//! |---|---|---|
//! | [`FaultPoint::ExecutorOpPanic`] | before each operator dispatch | batch dropped, clients get `503` |
//! | [`FaultPoint::OpSlowdown`] | before each operator dispatch | latency inflation → deadline sheds |
//! | [`FaultPoint::AllocPlanFail`] | before the allocator plans a batch | batch dropped, clients get `503` |
//! | [`FaultPoint::WorkerStall`] | before an HTTP worker serves a connection | queueing delay, admission pressure |
//! | [`FaultPoint::ConnDrop`] | mid-response write | client sees a truncated response |
//! | [`FaultPoint::ConnStall`] | when a connection becomes readable | read deferred through the reactor's timer wheel — a synthetic slow peer |
//! | [`FaultPoint::KvAllocFail`] | when the paged KV arena allocates a page | sequence gets a typed error, pages reclaimed |
//! | [`FaultPoint::ReplicaPanic`] | top of a supervised engine replica's loop | replica thread dies, supervisor restarts it |
//! | [`FaultPoint::ReplicaStall`] | top of a supervised engine replica's loop | heartbeat stops, watchdog declares the replica stalled |
//! | [`FaultPoint::ReplicaSlow`] | per batch in a supervised replica | latency inflation → router degrades the replica |
//!
//! The three replica-scoped points additionally honor `replica_target`
//! (`TT_CHAOS_REPLICA`): when ≥ 0, only the replica with that index is
//! eligible to fire — the fleet bench kills exactly one of N replicas and
//! measures how the rest absorb the load.
//!
//! ## Zero cost when disabled
//!
//! All state is a process-global set of atomics. Every hook starts with a
//! single relaxed load of one `AtomicBool`; when chaos is not installed
//! (the production default) that branch is the *entire* cost, and the
//! compiler keeps it out of any loop-carried dependency. Probabilities,
//! delays, a deterministic seed and per-point fire counters live behind
//! that gate.
//!
//! ## Determinism
//!
//! Fire decisions hash `(seed, draw counter, point)` through SplitMix64,
//! so a fixed `TT_CHAOS_SEED` yields the same decision *sequence*. Across
//! threads the interleaving of draws still varies — chaos tests therefore
//! assert invariants (engine alive, accounting balanced), not exact fault
//! placements, and the seed makes observed fault *rates* reproducible.
//!
//! ## Configuration
//!
//! Programmatic via [`install`] (what tests and the `chaos_suite` bench
//! do), or from the environment via [`install_from_env`] (what the
//! `http_server` bin does at boot):
//!
//! | variable | meaning |
//! |---|---|
//! | `TT_CHAOS_EXECUTOR_PANIC` | probability an operator dispatch panics |
//! | `TT_CHAOS_OP_SLOWDOWN` | probability an operator dispatch is delayed |
//! | `TT_CHAOS_OP_SLOWDOWN_MS` | delay per fired slowdown, milliseconds |
//! | `TT_CHAOS_ALLOC_FAIL` | probability an allocator plan fails |
//! | `TT_CHAOS_WORKER_STALL` | probability an HTTP worker stalls |
//! | `TT_CHAOS_WORKER_STALL_MS` | stall length, milliseconds |
//! | `TT_CHAOS_CONN_DROP` | probability a response write is cut mid-stream |
//! | `TT_CHAOS_CONN_STALL` | probability a readable connection's processing is deferred |
//! | `TT_CHAOS_CONN_STALL_MS` | deferral length, milliseconds |
//! | `TT_CHAOS_KV_ALLOC_FAIL` | probability a paged KV page allocation fails |
//! | `TT_CHAOS_REPLICA_PANIC` | probability a supervised replica's loop panics |
//! | `TT_CHAOS_REPLICA_STALL` | probability a supervised replica's loop stalls (heartbeat stops) |
//! | `TT_CHAOS_REPLICA_STALL_MS` | stall length, milliseconds |
//! | `TT_CHAOS_REPLICA_SLOW` | probability a supervised replica's batch is delayed (heartbeat keeps ticking) |
//! | `TT_CHAOS_REPLICA_SLOW_MS` | delay per fired slowdown, milliseconds |
//! | `TT_CHAOS_REPLICA` | replica index the replica-scoped points target (-1 = all replicas) |
//! | `TT_CHAOS_SEED` | SplitMix64 seed for the fire decisions |

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// The ten fault classes the stack can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// An operator dispatch in the executor panics.
    ExecutorOpPanic,
    /// An operator dispatch is artificially delayed.
    OpSlowdown,
    /// The allocator fails to produce a plan for a batch.
    AllocPlanFail,
    /// An HTTP worker stalls before serving a connection.
    WorkerStall,
    /// A connection is dropped mid-response.
    ConnDrop,
    /// The paged KV arena fails a page allocation (exhaustion mid-decode).
    KvAllocFail,
    /// A readable connection's processing is deferred — the reactor parks
    /// it on the timer wheel as if the peer had paused mid-send.
    ConnStall,
    /// A supervised engine replica's loop panics — the whole replica
    /// thread dies (not a caught per-batch panic) and the supervisor must
    /// detect the death and restart it.
    ReplicaPanic,
    /// A supervised engine replica's loop stalls without ticking its
    /// heartbeat — a synthetic hang the watchdog's liveness deadline must
    /// catch.
    ReplicaStall,
    /// A supervised engine replica runs slow (extra per-batch latency with
    /// the heartbeat still ticking) — the degraded-but-alive mode the
    /// router's health state machine must route around.
    ReplicaSlow,
}

/// Every fault point, in declaration order (indexable by `as usize`).
pub const FAULT_POINTS: [FaultPoint; 10] = [
    FaultPoint::ExecutorOpPanic,
    FaultPoint::OpSlowdown,
    FaultPoint::AllocPlanFail,
    FaultPoint::WorkerStall,
    FaultPoint::ConnDrop,
    FaultPoint::KvAllocFail,
    FaultPoint::ConnStall,
    FaultPoint::ReplicaPanic,
    FaultPoint::ReplicaStall,
    FaultPoint::ReplicaSlow,
];

impl FaultPoint {
    /// Stable snake_case name (used in reports and panic messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::ExecutorOpPanic => "executor_op_panic",
            FaultPoint::OpSlowdown => "op_slowdown",
            FaultPoint::AllocPlanFail => "alloc_plan_fail",
            FaultPoint::WorkerStall => "worker_stall",
            FaultPoint::ConnDrop => "conn_drop",
            FaultPoint::KvAllocFail => "kv_alloc_fail",
            FaultPoint::ConnStall => "conn_stall",
            FaultPoint::ReplicaPanic => "replica_panic",
            FaultPoint::ReplicaStall => "replica_stall",
            FaultPoint::ReplicaSlow => "replica_slow",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Chaos configuration: a fire probability per point plus the two delay
/// knobs. All probabilities default to 0.0 — chaos fully disarmed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Probability an executor operator dispatch panics.
    pub executor_op_panic: f64,
    /// Probability an executor operator dispatch is delayed.
    pub op_slowdown: f64,
    /// Delay applied when an op slowdown fires.
    pub op_slowdown_ms: u64,
    /// Probability the allocator plan step fails (panics).
    pub alloc_plan_fail: f64,
    /// Probability an HTTP worker stalls before serving a connection.
    pub worker_stall: f64,
    /// Stall length when a worker stall fires.
    pub worker_stall_ms: u64,
    /// Probability a response write is cut mid-stream.
    pub conn_drop: f64,
    /// Probability a readable connection's processing is deferred.
    pub conn_stall: f64,
    /// Deferral length when a connection stall fires.
    pub conn_stall_ms: u64,
    /// Probability a paged KV arena page allocation fails.
    pub kv_alloc_fail: f64,
    /// Probability a supervised replica's engine loop panics.
    pub replica_panic: f64,
    /// Probability a supervised replica's engine loop stalls (heartbeat
    /// stops ticking for `replica_stall_ms`).
    pub replica_stall: f64,
    /// Stall length when a replica stall fires.
    pub replica_stall_ms: u64,
    /// Probability a supervised replica's batch is delayed (heartbeat
    /// keeps ticking — degraded, not dead).
    pub replica_slow: f64,
    /// Delay per fired replica slowdown.
    pub replica_slow_ms: u64,
    /// Replica index the replica-scoped points target; -1 targets all.
    pub replica_target: i64,
    /// Seed for the deterministic fire decisions.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            executor_op_panic: 0.0,
            op_slowdown: 0.0,
            op_slowdown_ms: 5,
            alloc_plan_fail: 0.0,
            worker_stall: 0.0,
            worker_stall_ms: 20,
            conn_drop: 0.0,
            conn_stall: 0.0,
            conn_stall_ms: 20,
            kv_alloc_fail: 0.0,
            replica_panic: 0.0,
            replica_stall: 0.0,
            replica_stall_ms: 200,
            replica_slow: 0.0,
            replica_slow_ms: 10,
            replica_target: -1,
            seed: 0,
        }
    }
}

impl ChaosConfig {
    /// Defaults overridden by any `TT_CHAOS_*` environment variables that
    /// are set (unparseable values fall back to the default, matching the
    /// `TT_HTTP_*` convention — a serving binary must come up even with a
    /// typo'd environment).
    pub fn from_env() -> Self {
        fn env<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        }
        let d = ChaosConfig::default();
        ChaosConfig {
            executor_op_panic: env("TT_CHAOS_EXECUTOR_PANIC", d.executor_op_panic),
            op_slowdown: env("TT_CHAOS_OP_SLOWDOWN", d.op_slowdown),
            op_slowdown_ms: env("TT_CHAOS_OP_SLOWDOWN_MS", d.op_slowdown_ms),
            alloc_plan_fail: env("TT_CHAOS_ALLOC_FAIL", d.alloc_plan_fail),
            worker_stall: env("TT_CHAOS_WORKER_STALL", d.worker_stall),
            worker_stall_ms: env("TT_CHAOS_WORKER_STALL_MS", d.worker_stall_ms),
            conn_drop: env("TT_CHAOS_CONN_DROP", d.conn_drop),
            conn_stall: env("TT_CHAOS_CONN_STALL", d.conn_stall),
            conn_stall_ms: env("TT_CHAOS_CONN_STALL_MS", d.conn_stall_ms),
            kv_alloc_fail: env("TT_CHAOS_KV_ALLOC_FAIL", d.kv_alloc_fail),
            replica_panic: env("TT_CHAOS_REPLICA_PANIC", d.replica_panic),
            replica_stall: env("TT_CHAOS_REPLICA_STALL", d.replica_stall),
            replica_stall_ms: env("TT_CHAOS_REPLICA_STALL_MS", d.replica_stall_ms),
            replica_slow: env("TT_CHAOS_REPLICA_SLOW", d.replica_slow),
            replica_slow_ms: env("TT_CHAOS_REPLICA_SLOW_MS", d.replica_slow_ms),
            replica_target: env("TT_CHAOS_REPLICA", d.replica_target),
            seed: env("TT_CHAOS_SEED", d.seed),
        }
    }

    /// Whether any point has a nonzero fire probability.
    pub fn any_armed(&self) -> bool {
        [
            self.executor_op_panic,
            self.op_slowdown,
            self.alloc_plan_fail,
            self.worker_stall,
            self.conn_drop,
            self.conn_stall,
            self.kv_alloc_fail,
            self.replica_panic,
            self.replica_stall,
            self.replica_slow,
        ]
        .iter()
        .any(|&p| p > 0.0)
    }

    fn probability(&self, point: FaultPoint) -> f64 {
        match point {
            FaultPoint::ExecutorOpPanic => self.executor_op_panic,
            FaultPoint::OpSlowdown => self.op_slowdown,
            FaultPoint::AllocPlanFail => self.alloc_plan_fail,
            FaultPoint::WorkerStall => self.worker_stall,
            FaultPoint::ConnDrop => self.conn_drop,
            FaultPoint::ConnStall => self.conn_stall,
            FaultPoint::KvAllocFail => self.kv_alloc_fail,
            FaultPoint::ReplicaPanic => self.replica_panic,
            FaultPoint::ReplicaStall => self.replica_stall,
            FaultPoint::ReplicaSlow => self.replica_slow,
        }
    }
}

/// Process-global chaos state. `armed` is the single-load fast gate every
/// hook checks first; everything else is only touched once chaos is on.
struct ChaosState {
    armed: AtomicBool,
    /// Fire threshold per point: `floor(p · 2⁶⁴)` so a uniform u64 draw
    /// `< threshold` fires with probability `p` (saturated for `p ≥ 1`).
    thresholds: [AtomicU64; 10],
    fired: [AtomicU64; 10],
    op_slowdown_ms: AtomicU64,
    worker_stall_ms: AtomicU64,
    conn_stall_ms: AtomicU64,
    replica_stall_ms: AtomicU64,
    replica_slow_ms: AtomicU64,
    replica_target: AtomicI64,
    seed: AtomicU64,
    draws: AtomicU64,
}

static STATE: ChaosState = ChaosState {
    armed: AtomicBool::new(false),
    thresholds: [const { AtomicU64::new(0) }; 10],
    fired: [const { AtomicU64::new(0) }; 10],
    op_slowdown_ms: AtomicU64::new(0),
    worker_stall_ms: AtomicU64::new(0),
    conn_stall_ms: AtomicU64::new(0),
    replica_stall_ms: AtomicU64::new(0),
    replica_slow_ms: AtomicU64::new(0),
    replica_target: AtomicI64::new(-1),
    seed: AtomicU64::new(0),
    draws: AtomicU64::new(0),
};

fn threshold(p: f64) -> u64 {
    if p <= 0.0 {
        0
    } else if p >= 1.0 {
        u64::MAX
    } else {
        (p * (u64::MAX as f64)) as u64
    }
}

/// Install a chaos configuration process-wide. Arms the hooks if any
/// probability is nonzero; resets the per-point fire counters and the
/// draw counter, so consecutive harness phases start from a clean,
/// seed-reproducible state.
pub fn install(config: ChaosConfig) {
    // Disarm first so hooks racing with the install see either the old or
    // the new complete configuration, never a half-written one.
    STATE.armed.store(false, Ordering::SeqCst);
    for point in FAULT_POINTS {
        STATE.thresholds[point.index()]
            .store(threshold(config.probability(point)), Ordering::SeqCst);
        STATE.fired[point.index()].store(0, Ordering::SeqCst);
    }
    STATE.op_slowdown_ms.store(config.op_slowdown_ms, Ordering::SeqCst);
    STATE.worker_stall_ms.store(config.worker_stall_ms, Ordering::SeqCst);
    STATE.conn_stall_ms.store(config.conn_stall_ms, Ordering::SeqCst);
    STATE.replica_stall_ms.store(config.replica_stall_ms, Ordering::SeqCst);
    STATE.replica_slow_ms.store(config.replica_slow_ms, Ordering::SeqCst);
    STATE.replica_target.store(config.replica_target, Ordering::SeqCst);
    STATE.seed.store(config.seed, Ordering::SeqCst);
    STATE.draws.store(0, Ordering::SeqCst);
    STATE.armed.store(config.any_armed(), Ordering::SeqCst);
}

/// [`install`] from `TT_CHAOS_*` environment variables. Returns the parsed
/// config so a serving binary can log what it armed.
pub fn install_from_env() -> ChaosConfig {
    let config = ChaosConfig::from_env();
    install(config);
    config
}

/// Fully disarm chaos: no point fires until the next [`install`].
pub fn disarm() {
    install(ChaosConfig::default());
}

/// Whether any injection point is currently armed.
#[inline]
pub fn armed() -> bool {
    STATE.armed.load(Ordering::Relaxed)
}

/// SplitMix64 — tiny, statistically solid, and dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decide whether `point` fires now. The fast path — chaos disarmed — is a
/// single relaxed atomic load and a branch.
#[inline]
pub fn fires(point: FaultPoint) -> bool {
    if !STATE.armed.load(Ordering::Relaxed) {
        return false;
    }
    fires_slow(point)
}

#[cold]
fn fires_slow(point: FaultPoint) -> bool {
    let threshold = STATE.thresholds[point.index()].load(Ordering::Relaxed);
    if threshold == 0 {
        return false;
    }
    let draw = STATE.draws.fetch_add(1, Ordering::Relaxed);
    let seed = STATE.seed.load(Ordering::Relaxed);
    let roll = splitmix64(seed ^ draw.wrapping_mul(0xA076_1D64_78BD_642F) ^ (point.index() as u64));
    let fire = roll < threshold;
    if fire {
        STATE.fired[point.index()].fetch_add(1, Ordering::Relaxed);
    }
    fire
}

/// Executor hook: panic if [`FaultPoint::ExecutorOpPanic`] fires. The
/// serving loop's `catch_unwind` turns this into a dropped batch, never a
/// dead engine thread.
#[inline]
pub fn executor_op_panic() {
    if fires(FaultPoint::ExecutorOpPanic) {
        panic!("tt-chaos: injected executor op panic");
    }
}

/// Executor hook: the delay to apply if [`FaultPoint::OpSlowdown`] fires.
#[inline]
pub fn op_slowdown() -> Option<Duration> {
    fires(FaultPoint::OpSlowdown)
        .then(|| Duration::from_millis(STATE.op_slowdown_ms.load(Ordering::Relaxed)))
}

/// Allocator hook: panic if [`FaultPoint::AllocPlanFail`] fires, standing
/// in for a plan that cannot be satisfied (fragmentation, exhausted
/// device memory).
#[inline]
pub fn alloc_plan_fail() {
    if fires(FaultPoint::AllocPlanFail) {
        panic!("tt-chaos: injected allocator plan failure");
    }
}

/// HTTP worker hook: the stall to apply if [`FaultPoint::WorkerStall`]
/// fires.
#[inline]
pub fn worker_stall() -> Option<Duration> {
    fires(FaultPoint::WorkerStall)
        .then(|| Duration::from_millis(STATE.worker_stall_ms.load(Ordering::Relaxed)))
}

/// HTTP write hook: whether to cut this response mid-stream.
#[inline]
pub fn conn_drop() -> bool {
    fires(FaultPoint::ConnDrop)
}

/// HTTP read hook: the deferral to apply if [`FaultPoint::ConnStall`]
/// fires. The reactor parks the readable connection on its timer wheel for
/// this long — a synthetic slow peer; the threaded driver sleeps instead.
#[inline]
pub fn conn_stall() -> Option<Duration> {
    fires(FaultPoint::ConnStall)
        .then(|| Duration::from_millis(STATE.conn_stall_ms.load(Ordering::Relaxed)))
}

/// Paged KV arena hook: whether this page allocation should fail, standing
/// in for genuine page exhaustion mid-decode. The arena surfaces the fired
/// fault as its typed out-of-pages error, so the blast radius is exactly
/// one sequence — never the engine.
#[inline]
pub fn kv_alloc_fail() -> bool {
    fires(FaultPoint::KvAllocFail)
}

/// Whether the replica-scoped points are eligible to fire on `replica`:
/// either no target is set (-1 = all replicas) or the indices match.
#[inline]
fn replica_targeted(replica: usize) -> bool {
    let target = STATE.replica_target.load(Ordering::Relaxed);
    target < 0 || target as usize == replica
}

/// [`fires`] for the replica-scoped points: same single-load fast path,
/// plus the target filter so a drill can aim at exactly one replica.
#[inline]
fn fires_replica(point: FaultPoint, replica: usize) -> bool {
    if !STATE.armed.load(Ordering::Relaxed) {
        return false;
    }
    replica_targeted(replica) && fires_slow(point)
}

/// Supervised-engine hook: panic the replica's loop thread if
/// [`FaultPoint::ReplicaPanic`] fires. Placed *outside* the per-batch
/// `catch_unwind`, so firing kills the whole replica thread — the fault
/// the supervisor's watchdog exists to detect and repair.
#[inline]
pub fn replica_panic(replica: usize) {
    if fires_replica(FaultPoint::ReplicaPanic, replica) {
        panic!("tt-chaos: injected replica panic (replica {replica})");
    }
}

/// Supervised-engine hook: the stall to apply if
/// [`FaultPoint::ReplicaStall`] fires. The loop sleeps this long *without*
/// ticking its heartbeat — a synthetic hang for the liveness deadline.
#[inline]
pub fn replica_stall(replica: usize) -> Option<Duration> {
    fires_replica(FaultPoint::ReplicaStall, replica)
        .then(|| Duration::from_millis(STATE.replica_stall_ms.load(Ordering::Relaxed)))
}

/// Supervised-engine hook: the per-batch delay to apply if
/// [`FaultPoint::ReplicaSlow`] fires. The heartbeat keeps ticking — the
/// replica is degraded, not dead, and the router must notice via latency.
#[inline]
pub fn replica_slow(replica: usize) -> Option<Duration> {
    fires_replica(FaultPoint::ReplicaSlow, replica)
        .then(|| Duration::from_millis(STATE.replica_slow_ms.load(Ordering::Relaxed)))
}

/// How many times each point has fired since the last [`install`].
pub fn fired_counts() -> [(FaultPoint, u64); 10] {
    FAULT_POINTS.map(|p| (p, STATE.fired[p.index()].load(Ordering::Relaxed)))
}

/// Total fires across all points since the last [`install`].
pub fn total_fired() -> u64 {
    fired_counts().iter().map(|(_, n)| n).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Chaos state is process-global; serialize the tests that touch it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disarmed_chaos_never_fires() {
        let _guard = locked();
        disarm();
        assert!(!armed());
        for _ in 0..10_000 {
            assert!(!fires(FaultPoint::ExecutorOpPanic));
            assert!(op_slowdown().is_none());
            assert!(!conn_drop());
        }
        assert_eq!(total_fired(), 0);
    }

    #[test]
    fn probability_one_always_fires_and_is_counted() {
        let _guard = locked();
        install(ChaosConfig { conn_drop: 1.0, seed: 7, ..ChaosConfig::default() });
        for _ in 0..100 {
            assert!(conn_drop());
        }
        // Other points stay quiet even while the state is armed.
        assert!(!fires(FaultPoint::ExecutorOpPanic));
        assert!(op_slowdown().is_none());
        let counts = fired_counts();
        assert_eq!(counts[FaultPoint::ConnDrop as usize].1, 100);
        assert_eq!(counts[FaultPoint::ExecutorOpPanic as usize].1, 0);
        disarm();
    }

    #[test]
    fn seeded_fire_sequence_is_deterministic_and_near_rate() {
        let _guard = locked();
        let run = |seed| {
            install(ChaosConfig {
                op_slowdown: 0.3,
                op_slowdown_ms: 1,
                seed,
                ..Default::default()
            });
            let seq: Vec<bool> = (0..4_000).map(|_| fires(FaultPoint::OpSlowdown)).collect();
            disarm();
            seq
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same decision sequence");
        let rate = a.iter().filter(|&&f| f).count() as f64 / a.len() as f64;
        assert!((rate - 0.3).abs() < 0.05, "empirical rate {rate} ≈ 0.3");
        let c = run(43);
        assert_ne!(a, c, "different seed, different sequence");
    }

    #[test]
    fn injected_panics_carry_the_point_name() {
        let _guard = locked();
        install(ChaosConfig { executor_op_panic: 1.0, ..Default::default() });
        let err = std::panic::catch_unwind(executor_op_panic).unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("executor op panic"), "panic message: {msg}");
        disarm();
    }

    #[test]
    fn delays_come_from_the_configured_knobs() {
        let _guard = locked();
        install(ChaosConfig {
            op_slowdown: 1.0,
            op_slowdown_ms: 3,
            worker_stall: 1.0,
            worker_stall_ms: 17,
            ..Default::default()
        });
        assert_eq!(op_slowdown(), Some(Duration::from_millis(3)));
        assert_eq!(worker_stall(), Some(Duration::from_millis(17)));
        disarm();
    }

    #[test]
    fn replica_faults_honor_the_target_filter() {
        let _guard = locked();
        install(ChaosConfig {
            replica_stall: 1.0,
            replica_stall_ms: 7,
            replica_slow: 1.0,
            replica_slow_ms: 3,
            replica_target: 1,
            ..Default::default()
        });
        assert!(replica_stall(0).is_none(), "untargeted replica never fires");
        assert!(replica_slow(2).is_none());
        assert_eq!(replica_stall(1), Some(Duration::from_millis(7)));
        assert_eq!(replica_slow(1), Some(Duration::from_millis(3)));
        let counts = fired_counts();
        assert_eq!(counts[FaultPoint::ReplicaStall as usize].1, 1);
        assert_eq!(counts[FaultPoint::ReplicaSlow as usize].1, 1);

        // Target -1 hits every replica.
        install(ChaosConfig { replica_panic: 1.0, ..Default::default() });
        for replica in 0..3 {
            let err = std::panic::catch_unwind(|| replica_panic(replica)).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains(&format!("replica {replica}")), "panic message: {msg}");
        }
        assert_eq!(fired_counts()[FaultPoint::ReplicaPanic as usize].1, 3);
        disarm();
    }

    #[test]
    fn install_resets_counters_between_phases() {
        let _guard = locked();
        install(ChaosConfig { conn_drop: 1.0, ..Default::default() });
        assert!(conn_drop());
        assert_eq!(total_fired(), 1);
        install(ChaosConfig { conn_drop: 1.0, ..Default::default() });
        assert_eq!(total_fired(), 0, "fresh phase starts from zero");
        disarm();
    }
}
