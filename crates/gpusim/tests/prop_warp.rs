//! Property tests of the simulated warp/reduction semantics: the simulated
//! kernels must compute the same values as serial oracles for arbitrary
//! inputs, and the XElem schedule must never change numerics.

use proptest::prelude::*;
use tt_gpusim::device::DeviceKind;
use tt_gpusim::pipeline::simulate;
use tt_gpusim::reduction::{
    batch_reduce_classic, batch_reduce_xelem, block_reduce_row, classic_block_trace,
    xelem_block_trace, ReduceOp, ReductionShape,
};
use tt_gpusim::warp::{
    load_lanes, shfl_xor, warp_all_reduce_sum, warp_reduce_max, warp_reduce_sum, WARP_SIZE,
};

fn lanes_strategy() -> impl Strategy<Value = [f32; WARP_SIZE]> {
    prop::collection::vec(-100.0f32..100.0, WARP_SIZE).prop_map(|v| v.try_into().expect("32 lanes"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tree warp reduction equals the serial sum (within reassociation
    /// tolerance) and max exactly.
    #[test]
    fn warp_reductions_match_serial(lanes in lanes_strategy()) {
        let sum = warp_reduce_sum(&lanes);
        let serial: f32 = lanes.iter().sum();
        prop_assert!((sum - serial).abs() < 1e-2, "{sum} vs {serial}");
        let max = warp_reduce_max(&lanes);
        let serial_max = lanes.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(max, serial_max);
    }

    /// The butterfly all-reduce puts the same total in every lane.
    #[test]
    fn all_reduce_broadcasts(lanes in lanes_strategy()) {
        let r = warp_all_reduce_sum(&lanes);
        for lane in &r {
            prop_assert!((lane - r[0]).abs() < 1e-3);
        }
        let serial: f32 = lanes.iter().sum();
        prop_assert!((r[0] - serial).abs() < 1e-2);
    }

    /// shfl_xor with any mask is an involution.
    #[test]
    fn shfl_xor_involution(lanes in lanes_strategy(), mask in 0usize..32) {
        let twice = shfl_xor(&shfl_xor(&lanes, mask), mask);
        prop_assert_eq!(twice, lanes);
    }

    /// Block reduction equals the serial sum for any row length and block
    /// width.
    #[test]
    fn block_reduce_matches_serial(
        len in 1usize..400,
        warps in 1usize..8,
        seed in 0u64..1000,
    ) {
        let row: Vec<f32> = (0..len)
            .map(|i| ((i as u64 * 31 + seed) % 23) as f32 - 11.0)
            .collect();
        let got = block_reduce_row(&row, warps * WARP_SIZE, ReduceOp::Sum);
        let want: f32 = row.iter().sum();
        prop_assert!((got - want).abs() < 1e-2 * (1.0 + want.abs()), "{got} vs {want}");
    }

    /// XElem batching never changes results, for any X.
    #[test]
    fn xelem_is_numerically_transparent(
        rows in 1usize..12,
        len in 1usize..100,
        x in 1usize..6,
        seed in 0u64..100,
    ) {
        let data: Vec<Vec<f32>> = (0..rows)
            .map(|r| (0..len).map(|i| ((r * 131 + i * 17 + seed as usize) % 19) as f32 - 9.0).collect())
            .collect();
        let classic = batch_reduce_classic(&data, 64, ReduceOp::Sum);
        let xe = batch_reduce_xelem(&data, 64, x, ReduceOp::Sum);
        prop_assert_eq!(classic, xe);
    }

    /// Timing invariants for any geometry: XElem (X≥2) never has more
    /// barriers, divergences, issue cycles or latency than classic.
    #[test]
    fn xelem_never_regresses_timing(
        row_len in 1usize..600,
        rows in 1usize..20,
        x in 2usize..8,
    ) {
        let shape = ReductionShape { row_len, rows_per_block: rows, block_threads: 128 };
        let dev = DeviceKind::V100.config();
        let classic = simulate(&dev, &classic_block_trace(&shape));
        let xe = simulate(&dev, &xelem_block_trace(&shape, x));
        prop_assert!(xe.syncs <= classic.syncs);
        prop_assert!(xe.divergences <= classic.divergences);
        prop_assert!(xe.issue_cycles <= classic.issue_cycles);
        prop_assert!(xe.latency_cycles <= classic.latency_cycles);
        prop_assert_eq!(xe.instr_count, classic.instr_count, "same work, different schedule");
    }

    /// load_lanes pads exactly the out-of-range tail.
    #[test]
    fn load_lanes_pads_tail(len in 0usize..64, start in 0usize..64) {
        let row: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
        let lanes = load_lanes(&row, start, -1.0);
        for (i, &v) in lanes.iter().enumerate() {
            if start + i < len {
                prop_assert_eq!(v, (start + i) as f32 + 1.0);
            } else {
                prop_assert_eq!(v, -1.0);
            }
        }
    }
}
