//! Grid-level kernel timing: occupancy, waves, launch overhead and the
//! bandwidth roofline.
//!
//! A kernel's cost combines four effects:
//!
//! 1. a fixed host-side **launch overhead** (the dominant term for tiny
//!    variable-length requests — the paper measures an 80.64 % idle GPU for
//!    PyTorch BERT at batch 1 / length 40);
//! 2. **SM occupancy**: blocks are distributed over SMs and execute in waves
//!    bounded by the per-SM residency limit; co-resident blocks hide each
//!    other's latencies but share issue bandwidth;
//! 3. a **memory roofline** degraded by barrier stalls — while a block sits
//!    at `__syncthreads()` it issues no loads, so heavy-sync kernels cannot
//!    keep the DRAM pipe full (this is precisely why the paper's
//!    sync-reducing XElem algorithm wins even at bandwidth-bound sizes);
//! 4. a **compute roofline** for FLOP-dominated kernels (GEMM).

use crate::device::DeviceConfig;
use crate::pipeline::TraceStats;

/// Description of one kernel launch for the timing model.
#[derive(Debug, Clone, Copy)]
pub struct KernelLaunch {
    /// Thread blocks in the grid.
    pub blocks: usize,
    /// Per-block trace cost from [`crate::pipeline::simulate`].
    pub stats: TraceStats,
    /// Total DRAM traffic of the kernel (reads + writes), bytes.
    pub bytes: u64,
    /// Total floating-point work, FLOPs.
    pub flops: u64,
}

impl KernelLaunch {
    /// Fraction of a block's issue slots consumed by barriers and divergent
    /// replays — cycles in which the block cannot feed the memory pipeline.
    pub fn stall_fraction(&self, dev: &DeviceConfig) -> f64 {
        if self.stats.issue_cycles == 0 {
            return 0.0;
        }
        let stall =
            self.stats.syncs * dev.sync_cost + self.stats.divergences * dev.divergence_penalty;
        (stall as f64 / self.stats.issue_cycles as f64).min(0.9)
    }
}

/// Time for one kernel launch, in seconds.
pub fn kernel_time(dev: &DeviceConfig, l: &KernelLaunch) -> f64 {
    if l.blocks == 0 {
        return dev.launch_overhead();
    }
    let per_sm_blocks = l.blocks.div_ceil(dev.num_sms) as u64;
    let waves = per_sm_blocks.div_ceil(dev.max_concurrent_blocks_per_sm as u64);
    // Issue bandwidth is shared among resident blocks; raw latency is hidden
    // across them, so it binds only once per wave.
    let sm_cycles = (per_sm_blocks * l.stats.issue_cycles).max(waves * l.stats.latency_cycles);
    let exec = dev.cycles_to_secs(sm_cycles);

    let mem = dev.mem_time(l.bytes) / (1.0 - l.stall_fraction(dev));
    let flop = dev.compute_time(l.flops);

    dev.launch_overhead() + exec.max(mem).max(flop)
}

/// Time for a sequence of dependent kernel launches (each pays its own
/// launch overhead — the unfused-runtime tax the paper's kernel fusion
/// removes).
pub fn sequence_time(dev: &DeviceConfig, launches: &[KernelLaunch]) -> f64 {
    launches.iter().map(|l| kernel_time(dev, l)).sum()
}

/// Ebird-style spatial sharing (paper §2.2's related work: "an elastic
/// batch scheduler based on an inference engine supporting multiple batches
/// of the same model running concurrently"): run several independent kernel
/// sequences at once by partitioning the SMs proportionally to each
/// stream's work, sharing DRAM bandwidth likewise. Returns the makespan.
///
/// Sharing pays when individual streams underfill the device (small
/// batches); at saturation it converges to serial execution — exactly the
/// trade Ebird's elastic batching navigates. Tests pin both regimes.
pub fn spatial_sharing_time(dev: &DeviceConfig, streams: &[Vec<KernelLaunch>]) -> f64 {
    if streams.is_empty() {
        return 0.0;
    }
    if streams.len() == 1 {
        return sequence_time(dev, &streams[0]);
    }
    // Work-proportional SM split (at least one SM per stream).
    let serial: Vec<f64> = streams.iter().map(|s| sequence_time(dev, s)).collect();
    let total: f64 = serial.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut makespan = 0.0f64;
    for (stream, share) in streams.iter().zip(serial.iter().map(|t| t / total)) {
        let mut sub = dev.clone();
        sub.num_sms = ((dev.num_sms as f64 * share).round() as usize).max(1);
        sub.mem_bandwidth_gbps = dev.mem_bandwidth_gbps * share.max(1.0 / dev.num_sms as f64);
        makespan = makespan.max(sequence_time(&sub, stream));
    }
    // Concurrency cannot beat the best single stream's critical path nor
    // lose to fully serial execution by construction; clamp for numeric
    // safety of the roofline approximations.
    makespan.min(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    fn stats(issue: u64, latency: u64, syncs: u64) -> TraceStats {
        TraceStats {
            latency_cycles: latency,
            issue_cycles: issue,
            syncs,
            divergences: 0,
            instr_count: issue,
        }
    }

    #[test]
    fn empty_grid_costs_one_launch() {
        let dev = DeviceKind::V100.config();
        let l = KernelLaunch { blocks: 0, stats: TraceStats::default(), bytes: 0, flops: 0 };
        assert_eq!(kernel_time(&dev, &l), dev.launch_overhead());
    }

    #[test]
    fn tiny_kernels_are_launch_bound() {
        let dev = DeviceKind::V100.config();
        let l = KernelLaunch { blocks: 1, stats: stats(100, 400, 0), bytes: 1024, flops: 1024 };
        let t = kernel_time(&dev, &l);
        assert!(t < 2.0 * dev.launch_overhead(), "tiny kernel ≈ launch overhead, got {t}");
        assert!(t > dev.launch_overhead());
    }

    #[test]
    fn more_blocks_cost_more_once_saturated() {
        let dev = DeviceKind::V100.config();
        let small =
            KernelLaunch { blocks: 1_000, stats: stats(2_000, 8_000, 0), bytes: 0, flops: 0 };
        let large =
            KernelLaunch { blocks: 10_000, stats: stats(2_000, 8_000, 0), bytes: 0, flops: 0 };
        assert!(kernel_time(&dev, &large) > 5.0 * kernel_time(&dev, &small) / 2.0);
    }

    #[test]
    fn latency_binds_when_underoccupied() {
        let dev = DeviceKind::V100.config();
        // One block: can't hide its own latency.
        let l = KernelLaunch { blocks: 1, stats: stats(100, 1_000_000, 0), bytes: 0, flops: 0 };
        let t = kernel_time(&dev, &l) - dev.launch_overhead();
        assert!((t - dev.cycles_to_secs(1_000_000)).abs() < 1e-9);
    }

    #[test]
    fn sync_heavy_kernels_lose_bandwidth() {
        let dev = DeviceKind::V100.config();
        let bytes = 500_000_000u64;
        let clean = KernelLaunch { blocks: 10_000, stats: stats(100, 400, 0), bytes, flops: 0 };
        let sync_issue = 100 + 9 * dev.sync_cost;
        let stalled = KernelLaunch {
            blocks: 10_000,
            stats: TraceStats {
                latency_cycles: 400,
                issue_cycles: sync_issue,
                syncs: 9,
                divergences: 0,
                instr_count: 100,
            },
            bytes,
            flops: 0,
        };
        let tc = kernel_time(&dev, &clean);
        let ts = kernel_time(&dev, &stalled);
        assert!(ts > 1.5 * tc, "stalls must degrade achieved bandwidth: {ts} vs {tc}");
    }

    #[test]
    fn stall_fraction_is_capped() {
        let dev = DeviceKind::V100.config();
        let l = KernelLaunch {
            blocks: 1,
            stats: TraceStats {
                latency_cycles: 1,
                issue_cycles: 100,
                syncs: 1_000,
                divergences: 0,
                instr_count: 0,
            },
            bytes: 0,
            flops: 0,
        };
        assert!(l.stall_fraction(&dev) <= 0.9);
    }

    #[test]
    fn flop_roofline_binds_for_gemm_like_kernels() {
        let dev = DeviceKind::V100.config();
        let flops = 14_000_000_000_000u64; // exactly one second at peak
        let l = KernelLaunch { blocks: 100, stats: stats(10, 10, 0), bytes: 1000, flops };
        let t = kernel_time(&dev, &l);
        assert!((t - (1.0 + dev.launch_overhead())).abs() < 1e-6);
    }

    #[test]
    fn spatial_sharing_helps_underutilized_kernels() {
        // Two small grids (each fills a fraction of the SMs): sharing
        // overlaps them almost perfectly.
        let dev = DeviceKind::V100.config();
        let small =
            vec![KernelLaunch { blocks: 40, stats: stats(5_000, 20_000, 0), bytes: 0, flops: 0 }];
        let serial = sequence_time(&dev, &small) * 2.0;
        let shared = spatial_sharing_time(&dev, &[small.clone(), small]);
        assert!(
            shared < serial * 0.85,
            "sharing should overlap small kernels: {shared} vs serial {serial}"
        );
    }

    #[test]
    fn spatial_sharing_never_beats_critical_path_or_loses_to_serial() {
        let dev = DeviceKind::V100.config();
        let big = vec![KernelLaunch {
            blocks: 100_000,
            stats: stats(2_000, 8_000, 0),
            bytes: 0,
            flops: 0,
        }];
        let tiny = vec![KernelLaunch { blocks: 10, stats: stats(100, 400, 0), bytes: 0, flops: 0 }];
        let shared = spatial_sharing_time(&dev, &[big.clone(), tiny.clone()]);
        let serial = sequence_time(&dev, &big) + sequence_time(&dev, &tiny);
        let critical = sequence_time(&dev, &big);
        assert!(shared <= serial + 1e-12);
        assert!(shared >= critical * 0.9, "shared {shared} vs critical {critical}");
    }

    #[test]
    fn spatial_sharing_degenerate_cases() {
        let dev = DeviceKind::V100.config();
        assert_eq!(spatial_sharing_time(&dev, &[]), 0.0);
        let one = vec![KernelLaunch { blocks: 10, stats: stats(100, 400, 0), bytes: 0, flops: 0 }];
        assert_eq!(
            spatial_sharing_time(&dev, std::slice::from_ref(&one)),
            sequence_time(&dev, &one)
        );
    }

    #[test]
    fn sequence_sums_launches() {
        let dev = DeviceKind::V100.config();
        let l = KernelLaunch { blocks: 1, stats: stats(10, 10, 0), bytes: 0, flops: 0 };
        let one = kernel_time(&dev, &l);
        let four = sequence_time(&dev, &[l; 4]);
        assert!((four - 4.0 * one).abs() < 1e-12);
    }
}
