//! Functional 32-lane warp semantics.
//!
//! A warp is modelled as an array of 32 lane values. The shuffle intrinsics
//! here follow the CUDA 9+ `__shfl_*_sync` definitions with a full mask, so
//! the reduction kernels built on top can be verified numerically against
//! serial oracles — the same role unit tests of the CUDA kernels play in the
//! original codebase.

/// Number of threads in a warp.
pub const WARP_SIZE: usize = 32;

/// Per-lane values of one warp.
pub type Lanes = [f32; WARP_SIZE];

/// `__shfl_down_sync(FULL_MASK, v, delta)`: lane `i` receives the value of
/// lane `i + delta`; lanes whose source is out of range keep their own value
/// (hardware leaves the destination register unchanged — reading it is only
/// meaningful for lanes `< WARP_SIZE - delta`, which is all the reduction
/// algorithms use).
pub fn shfl_down(v: &Lanes, delta: usize) -> Lanes {
    let mut out = *v;
    for i in 0..WARP_SIZE {
        if i + delta < WARP_SIZE {
            out[i] = v[i + delta];
        }
    }
    out
}

/// `__shfl_xor_sync(FULL_MASK, v, mask)`: lane `i` exchanges with lane
/// `i ^ mask`. Produces a butterfly pattern; after `log2(32)` steps every
/// lane holds the full reduction (an *all*-reduce without shared memory).
pub fn shfl_xor(v: &Lanes, mask: usize) -> Lanes {
    let mut out = *v;
    for i in 0..WARP_SIZE {
        out[i] = v[i ^ (mask & (WARP_SIZE - 1))];
    }
    out
}

/// Tree warp reduction with `shfl_down`: after 5 steps lane 0 holds the sum
/// of all 32 lanes. Mirrors the classic `warpReduceSum` from the NVIDIA
/// warp-primitives blog post the paper cites as \[16\].
pub fn warp_reduce_sum(v: &Lanes) -> f32 {
    let mut cur = *v;
    let mut delta = WARP_SIZE / 2;
    while delta >= 1 {
        let shifted = shfl_down(&cur, delta);
        for i in 0..WARP_SIZE {
            cur[i] += shifted[i];
        }
        delta /= 2;
    }
    cur[0]
}

/// Tree warp reduction for the maximum; lane 0 holds the max of all lanes.
pub fn warp_reduce_max(v: &Lanes) -> f32 {
    let mut cur = *v;
    let mut delta = WARP_SIZE / 2;
    while delta >= 1 {
        let shifted = shfl_down(&cur, delta);
        for i in 0..WARP_SIZE {
            cur[i] = cur[i].max(shifted[i]);
        }
        delta /= 2;
    }
    cur[0]
}

/// Butterfly *all*-reduce sum with `shfl_xor`: every lane ends with the full
/// sum. This is the `warpAllReduceSum` flavour the paper's `XElem` subroutine
/// batches — no shared-memory round trip is needed to broadcast the result.
pub fn warp_all_reduce_sum(v: &Lanes) -> Lanes {
    let mut cur = *v;
    let mut mask = WARP_SIZE / 2;
    while mask >= 1 {
        let swapped = shfl_xor(&cur, mask);
        for i in 0..WARP_SIZE {
            cur[i] += swapped[i];
        }
        mask /= 2;
    }
    cur
}

/// `warpAllReduceSum_XElem`: reduce `X` independent lane arrays together,
/// interleaving the shuffle steps of all `X` reductions (paper Fig. 4,
/// bottom). Functionally each array gets the same result as
/// [`warp_all_reduce_sum`]; the interleaving only matters for timing, which
/// [`crate::reduction`] prices.
pub fn warp_all_reduce_sum_xelem<const X: usize>(vals: &[Lanes; X]) -> [Lanes; X] {
    let mut cur = *vals;
    let mut mask = WARP_SIZE / 2;
    while mask >= 1 {
        // One "step": first all X shuffles (independent), then all X adds —
        // exactly the instruction order the timing model scores.
        let mut swapped = [[0.0f32; WARP_SIZE]; X];
        for (sw, c) in swapped.iter_mut().zip(cur.iter()) {
            *sw = shfl_xor(c, mask);
        }
        for (c, sw) in cur.iter_mut().zip(swapped.iter()) {
            for i in 0..WARP_SIZE {
                c[i] += sw[i];
            }
        }
        mask /= 2;
    }
    cur
}

/// Load a row chunk into lanes, padding out-of-range lanes with `pad` —
/// the boundary handling whose divergence cost the paper's merged-boundary
/// optimization targets.
pub fn load_lanes(row: &[f32], start: usize, pad: f32) -> Lanes {
    let mut lanes = [pad; WARP_SIZE];
    for (i, lane) in lanes.iter_mut().enumerate() {
        if let Some(&v) = row.get(start + i) {
            *lane = v;
        }
    }
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota() -> Lanes {
        let mut l = [0.0; WARP_SIZE];
        for (i, v) in l.iter_mut().enumerate() {
            *v = i as f32;
        }
        l
    }

    #[test]
    fn shfl_down_shifts_and_keeps_tail() {
        let v = iota();
        let s = shfl_down(&v, 16);
        assert_eq!(s[0], 16.0);
        assert_eq!(s[15], 31.0);
        assert_eq!(s[16], 16.0, "out-of-range lanes keep their own value");
        assert_eq!(s[31], 31.0);
    }

    #[test]
    fn shfl_xor_is_an_involution() {
        let v = iota();
        let once = shfl_xor(&v, 8);
        let twice = shfl_xor(&once, 8);
        assert_eq!(twice, v);
    }

    #[test]
    fn warp_reduce_sum_matches_serial() {
        let v = iota();
        let expect: f32 = (0..32).map(|i| i as f32).sum();
        assert_eq!(warp_reduce_sum(&v), expect);
    }

    #[test]
    fn warp_reduce_max_matches_serial() {
        let mut v = iota();
        v[7] = 100.0;
        assert_eq!(warp_reduce_max(&v), 100.0);
        let neg = [-3.0f32; WARP_SIZE];
        assert_eq!(warp_reduce_max(&neg), -3.0);
    }

    #[test]
    fn all_reduce_gives_every_lane_the_sum() {
        let v = iota();
        let expect: f32 = (0..32).map(|i| i as f32).sum();
        let r = warp_all_reduce_sum(&v);
        assert!(r.iter().all(|&x| x == expect));
    }

    #[test]
    fn xelem_matches_independent_all_reduces() {
        let a = iota();
        let mut b = iota();
        for v in b.iter_mut() {
            *v *= -2.0;
        }
        let [ra, rb] = warp_all_reduce_sum_xelem(&[a, b]);
        assert_eq!(ra, warp_all_reduce_sum(&a));
        assert_eq!(rb, warp_all_reduce_sum(&b));
    }

    #[test]
    fn load_lanes_pads_boundary() {
        let row = [1.0, 2.0, 3.0];
        let lanes = load_lanes(&row, 0, 0.0);
        assert_eq!(lanes[0], 1.0);
        assert_eq!(lanes[2], 3.0);
        assert_eq!(lanes[3], 0.0);
        let lanes = load_lanes(&row, 2, f32::NEG_INFINITY);
        assert_eq!(lanes[0], 3.0);
        assert_eq!(lanes[1], f32::NEG_INFINITY);
    }
}
