//! Device descriptions for the GPUs the paper evaluates on.
//!
//! Headline numbers (SM count, clock, peak FLOP/s, memory bandwidth, launch
//! overhead) come from public spec sheets; micro-latencies (shuffle, shared
//! memory, barrier) are order-of-magnitude figures from NVIDIA's
//! warp-primitives material and microbenchmarking literature. The figures
//! reproduce *relative* behaviour; see the crate docs for the calibration
//! caveat.

use serde::{Deserialize, Serialize};

/// The GPUs used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Tesla V100 (Volta): kernel study (Fig. 5, Table 2) and fixed-length
    /// runtime comparison (Fig. 11, right).
    V100,
    /// GeForce RTX 2060 (Turing): variable-length runtime (Fig. 10),
    /// fixed-length comparison (Fig. 11, left), batching gain (Fig. 8) and
    /// the serving experiments (Fig. 12, Table 4).
    RTX2060,
    /// Tesla M40 (Maxwell): the allocation-stall anecdote in §4.2.
    M40,
}

impl DeviceKind {
    /// The configuration for this device.
    pub fn config(self) -> DeviceConfig {
        match self {
            DeviceKind::V100 => DeviceConfig {
                name: "Tesla V100",
                num_sms: 80,
                clock_ghz: 1.38,
                warp_size: 32,
                max_concurrent_blocks_per_sm: 8,
                issue_width: 2,
                shfl_latency: 12,
                shfl_issue: 2,
                arith_latency: 4,
                arith_issue: 1,
                sfu_latency: 16,
                sfu_issue: 4,
                shared_latency: 24,
                shared_issue: 2,
                sync_cost: 40,
                divergence_penalty: 24,
                launch_overhead_us: 5.0,
                peak_tflops: 14.0,
                mem_bandwidth_gbps: 900.0,
                idle_watts: 40.0,
                max_watts: 300.0,
                pj_per_flop: 13.0,
                pj_per_byte: 85.0,
            },
            DeviceKind::RTX2060 => DeviceConfig {
                name: "GeForce RTX 2060",
                num_sms: 30,
                clock_ghz: 1.68,
                warp_size: 32,
                max_concurrent_blocks_per_sm: 8,
                issue_width: 2,
                shfl_latency: 14,
                shfl_issue: 2,
                arith_latency: 4,
                arith_issue: 1,
                sfu_latency: 18,
                sfu_issue: 4,
                shared_latency: 26,
                shared_issue: 2,
                sync_cost: 44,
                divergence_penalty: 26,
                launch_overhead_us: 6.0,
                peak_tflops: 6.5,
                mem_bandwidth_gbps: 336.0,
                idle_watts: 12.0,
                max_watts: 160.0,
                pj_per_flop: 16.0,
                pj_per_byte: 130.0,
            },
            DeviceKind::M40 => DeviceConfig {
                name: "Tesla M40",
                num_sms: 24,
                clock_ghz: 1.11,
                warp_size: 32,
                max_concurrent_blocks_per_sm: 6,
                issue_width: 1,
                shfl_latency: 18,
                shfl_issue: 2,
                arith_latency: 6,
                arith_issue: 1,
                sfu_latency: 22,
                sfu_issue: 4,
                shared_latency: 30,
                shared_issue: 2,
                sync_cost: 50,
                divergence_penalty: 30,
                launch_overhead_us: 7.0,
                peak_tflops: 6.8,
                mem_bandwidth_gbps: 288.0,
                idle_watts: 15.0,
                max_watts: 250.0,
                pj_per_flop: 24.0,
                pj_per_byte: 245.0,
            },
        }
    }
}

/// Timing parameters of a simulated GPU.
///
/// All latencies and issue intervals are in core clock cycles; bandwidth and
/// launch overhead are physical units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Threads per warp (32 on every NVIDIA architecture).
    pub warp_size: usize,
    /// How many thread blocks one SM can keep resident at once, bounding
    /// latency hiding across blocks.
    pub max_concurrent_blocks_per_sm: usize,
    /// Independent instructions issued per cycle per warp scheduler.
    pub issue_width: usize,
    /// Result latency of a warp shuffle (`SHFL.DOWN` etc.).
    pub shfl_latency: u64,
    /// Issue interval of a shuffle.
    pub shfl_issue: u64,
    /// Result latency of simple FP arithmetic (`FADD`, `FMUL`, `FFMA`).
    pub arith_latency: u64,
    /// Issue interval of simple FP arithmetic.
    pub arith_issue: u64,
    /// Result latency of special-function ops (`exp`, `rsqrt`).
    pub sfu_latency: u64,
    /// Issue interval of special-function ops.
    pub sfu_issue: u64,
    /// Result latency of a shared-memory access.
    pub shared_latency: u64,
    /// Issue interval of a shared-memory access.
    pub shared_issue: u64,
    /// Cost of a `__syncthreads()` barrier (drain + reconverge).
    pub sync_cost: u64,
    /// Extra cycles charged when a warp diverges on a boundary check.
    pub divergence_penalty: u64,
    /// Fixed host-side cost of launching one kernel, in microseconds.
    pub launch_overhead_us: f64,
    /// Peak single-precision throughput in TFLOP/s.
    pub peak_tflops: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Static/idle board draw in watts: what the card burns while a kernel
    /// occupies it without switching activity (leakage, fans, memory
    /// refresh). Charged for the full duration of every launch.
    pub idle_watts: f64,
    /// Board power limit (TDP) in watts. A sanity ceiling: the model's
    /// idle + peak-compute + peak-DRAM draw never exceeds it (pinned in
    /// tests), matching how real boards clock-throttle at the limit.
    pub max_watts: f64,
    /// Dynamic switching energy per single-precision FLOP, picojoules.
    pub pj_per_flop: f64,
    /// Dynamic DRAM access energy per byte moved, picojoules.
    pub pj_per_byte: f64,
}

impl DeviceConfig {
    /// Convert a cycle count on one SM into seconds.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Time to stream `bytes` through DRAM at peak bandwidth, seconds.
    pub fn mem_time(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.mem_bandwidth_gbps * 1e9)
    }

    /// Time to execute `flops` at peak compute, seconds.
    pub fn compute_time(&self, flops: u64) -> f64 {
        flops as f64 / (self.peak_tflops * 1e12)
    }

    /// Kernel launch overhead in seconds.
    pub fn launch_overhead(&self) -> f64 {
        self.launch_overhead_us * 1e-6
    }

    /// Dynamic switching energy of `flops` FLOPs, joules.
    pub fn flop_energy(&self, flops: u64) -> f64 {
        flops as f64 * self.pj_per_flop * 1e-12
    }

    /// Dynamic DRAM access energy of `bytes` of traffic, joules.
    pub fn dram_energy(&self, bytes: u64) -> f64 {
        bytes as f64 * self.pj_per_byte * 1e-12
    }

    /// Static/idle energy burned over `seconds` of occupancy, joules.
    pub fn static_energy(&self, seconds: f64) -> f64 {
        self.idle_watts * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_sane() {
        for kind in [DeviceKind::V100, DeviceKind::RTX2060, DeviceKind::M40] {
            let c = kind.config();
            assert!(c.num_sms > 0 && c.warp_size == 32);
            assert!(c.peak_tflops > 1.0 && c.mem_bandwidth_gbps > 100.0);
            assert!(c.shfl_latency > c.arith_latency, "shuffles cost more than adds");
            assert!(c.idle_watts > 0.0 && c.idle_watts < c.max_watts);
        }
        assert!(
            DeviceKind::V100.config().num_sms > DeviceKind::RTX2060.config().num_sms,
            "V100 is the bigger part"
        );
    }

    #[test]
    fn unit_conversions() {
        let c = DeviceKind::V100.config();
        let t = c.cycles_to_secs(1_380_000_000);
        assert!((t - 1.0).abs() < 1e-9);
        assert!((c.mem_time(900_000_000_000) - 1.0).abs() < 1e-9);
        assert!((c.compute_time(14_000_000_000_000) - 1.0).abs() < 1e-9);
        // Energy conversions: 1 TFLOP at 13 pJ/FLOP = 13 J; 1 GB at
        // 85 pJ/byte = 0.085 J; one second of idle = 40 J.
        assert!((c.flop_energy(1_000_000_000_000) - 13.0).abs() < 1e-9);
        assert!((c.dram_energy(1_000_000_000) - 0.085).abs() < 1e-9);
        assert!((c.static_energy(1.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn modeled_power_never_exceeds_the_board_limit() {
        // Saturating both rooflines at once (the worst case the model can
        // produce in one second: peak FLOP/s and peak DRAM bandwidth) must
        // stay under the TDP — boards clock-throttle rather than exceed it.
        for kind in [DeviceKind::V100, DeviceKind::RTX2060, DeviceKind::M40] {
            let c = kind.config();
            let worst = c.idle_watts
                + c.flop_energy((c.peak_tflops * 1e12) as u64)
                + c.dram_energy((c.mem_bandwidth_gbps * 1e9) as u64);
            assert!(
                worst <= c.max_watts,
                "{}: modeled worst-case draw {worst:.1} W exceeds TDP {} W",
                c.name,
                c.max_watts
            );
        }
    }
}
