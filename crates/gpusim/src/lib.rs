//! # tt-gpusim — a functional + timing simulator of the CUDA execution model
//!
//! The paper's first contribution is a GPU *kernel algorithm*
//! (`warpAllReduceSum_XElem`, paper §4.1.2 and Figure 4) whose advantage over
//! the classic FasterTransformer-style batch reduction comes from three
//! schedule-level properties:
//!
//! 1. fewer shared-memory synchronizations — one `__syncthreads()` per `X`
//!    rows instead of one per row;
//! 2. merged boundary handling — one divergent tail instead of `X`;
//! 3. better instruction-level parallelism — the classic kernel's
//!    `SHFL.DOWN → FADD` register dependency stalls the pipeline every step,
//!    while `X` interleaved independent reductions keep it fed.
//!
//! None of those depend on physical silicon: they are properties of the
//! instruction schedule. This crate therefore models a GPU at exactly that
//! granularity:
//!
//! - [`warp`] — *functional* 32-lane warp semantics (`shfl_down`, `shfl_xor`,
//!   warp reductions) so every kernel variant's numerics can be verified
//!   against serial oracles;
//! - [`pipeline`] — a scoreboarded in-order issue model that prices an
//!   instruction trace in cycles, reproducing dependency stalls;
//! - [`reduction`] — trace builders + functional implementations for the
//!   classic two-pass block reduction and the paper's `XElem` variant;
//! - [`kernels`] — full Softmax and LayerNorm kernel models (naive /
//!   cuDNN-like / classic / turbo) assembled from reductions;
//! - [`launch`] — grid-level scheduling: occupancy, waves, launch overhead,
//!   and a bandwidth roofline;
//! - [`gemm`] — a tiled shared-memory GEMM kernel model validating the
//!   roofline efficiency the op-level cost model assumes;
//! - [`device`] — calibrated device descriptions (Tesla V100, RTX 2060,
//!   Tesla M40);
//! - [`cost`] — the op-level cost model (`gemm`, elementwise, reductions)
//!   consumed by `tt-runtime` to timestamp simulated executions.
//!
//! Absolute cycle counts are *models*, not measurements; the reproduction
//! targets the paper's relative claims (speedup shapes, crossovers, time
//! shares), which survive any monotone recalibration of the constants.

pub mod cost;
pub mod device;
pub mod gemm;
pub mod kernels;
pub mod launch;
pub mod occupancy;
pub mod pipeline;
pub mod reduction;
pub mod warp;

pub use cost::EnergyEstimate;
pub use device::{DeviceConfig, DeviceKind};
pub use kernels::{LayerNormAlgo, SoftmaxAlgo};
pub use launch::KernelLaunch;
