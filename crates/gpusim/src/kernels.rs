//! Kernel-level models of Softmax and LayerNorm, in every variant the paper
//! compares (§4.1.2, Figure 5, Table 2).
//!
//! | variant | fusion | reduction | barriers | memory passes |
//! |---|---|---|---|---|
//! | Softmax *Naive* (PyTorch-like) | 4 separate kernels | shared-memory tree | `log₂T` per row per reduce | 6 |
//! | Softmax *CudnnLike* | 1 kernel | classic warp shuffle | 4 per row | 3 |
//! | Softmax *ClassicFused* (FasterTransformer) | 1 kernel | classic warp shuffle | 4 per row | 2 |
//! | Softmax *TurboXElem* | 1 kernel | `warpAllReduceSum_XElem` | 4 per `X` rows | 2 |
//! | LayerNorm *Naive* (PyTorch-like) | 4 separate kernels | shared-memory tree | `log₂T` per row per reduce | 6 |
//! | LayerNorm *ClassicTwoPass* (FasterTransformer) | 1 kernel | classic, `E(x−E(x))²` | 4 per row | 3 |
//! | LayerNorm *TurboOnePass* | 1 kernel | 2-elem XElem, `E(x²)−E²(x)` | 2 per row | 2 |

use crate::device::DeviceConfig;
use crate::launch::{sequence_time, KernelLaunch};
use crate::pipeline::{simulate, Instr, Op};
use crate::reduction::{warp_reduce_trace, ReductionShape, RegAlloc};

/// Softmax kernel implementations under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SoftmaxAlgo {
    /// PyTorch-like unfused path: max / subtract+exp / sum / divide as four
    /// kernels with tree reductions.
    Naive,
    /// cuDNN v7.5-like: single kernel, classic shuffle reduction, one extra
    /// memory pass (no fusion with neighbouring ops).
    CudnnLike,
    /// FasterTransformer-like: fully fused, classic per-row two-pass
    /// shuffle reduction.
    ClassicFused,
    /// The paper's kernel: fused, `X` rows reduced together.
    TurboXElem,
}

/// LayerNorm kernel implementations under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerNormAlgo {
    /// PyTorch-like unfused path: mean / centred-square / sum / normalize
    /// kernels with tree reductions.
    Naive,
    /// FasterTransformer-like fused kernel computing `E(x − E(x))²`: two
    /// dependent reductions per row.
    ClassicTwoPass,
    /// The paper's kernel: one 2-element XElem reduction computing `Σx` and
    /// `Σx²` together, variance by `E(x²) − E²(x)`.
    TurboOnePass,
}

/// `X` used by the Turbo kernels; the paper's figure draws `X = 2`, the
/// released code uses up to 4. Ablation benches sweep this.
pub const DEFAULT_X: usize = 4;

/// Effective-traffic multiplier for the naive (framework) kernels: their
/// elementwise passes run on the 4-D score tensor in whatever layout the
/// preceding op produced, so accesses are partially uncoalesced and each
/// logical pass costs about two streamed ones.
pub const UNCOALESCED: u64 = 2;

/// A batch-reduction problem: `rows` independent rows of `row_len` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchShape {
    /// Number of rows (for attention softmax: batch · heads · seq).
    pub rows: usize,
    /// Row length (for softmax: seq; for LayerNorm: hidden size).
    pub row_len: usize,
}

/// Pick the block geometry for a problem: enough blocks to fill the device,
/// rows batched per block once the grid saturates.
pub fn geometry(dev: &DeviceConfig, shape: BatchShape) -> (ReductionShape, usize) {
    let block_threads = shape.row_len.next_multiple_of(32).clamp(32, 256);
    let target_blocks = dev.num_sms * dev.max_concurrent_blocks_per_sm;
    let rows_per_block = shape.rows.div_ceil(target_blocks).clamp(1, 32);
    let blocks = shape.rows.div_ceil(rows_per_block);
    (ReductionShape { row_len: shape.row_len, rows_per_block, block_threads }, blocks)
}

// ---------------------------------------------------------------------------
// Trace fragments
// ---------------------------------------------------------------------------

/// Interleaved accumulation over `elems` per-thread elements for `x` rows:
/// one `FADD`/`FMAX` per element per row, independent across rows.
fn accum(regs: &mut RegAlloc, t: &mut Vec<Instr>, elems: usize, x: usize) -> Vec<u32> {
    let accs: Vec<u32> = (0..x).map(|_| regs.fresh()).collect();
    for _ in 0..elems {
        for &a in &accs {
            t.push(Instr::new(Op::Arith, Some(a), vec![a]));
        }
    }
    accs
}

/// Two-pass shared-memory handoff closing a block reduction of `x`
/// interleaved values: store partials, barrier, first-warp reduce, store
/// results, barrier, broadcast loads. Returns the broadcast registers.
fn reduce_finish(regs: &mut RegAlloc, t: &mut Vec<Instr>, accs: &[u32]) -> Vec<u32> {
    warp_reduce_trace(regs, t, accs);
    for &a in accs {
        t.push(Instr::new(Op::SharedStore, None, vec![a]));
    }
    t.push(Instr::new(Op::Sync, None, vec![]));
    let partials: Vec<u32> = accs
        .iter()
        .map(|_| {
            let p = regs.fresh();
            t.push(Instr::new(Op::SharedLoad, Some(p), vec![]));
            p
        })
        .collect();
    warp_reduce_trace(regs, t, &partials);
    for &p in &partials {
        t.push(Instr::new(Op::SharedStore, None, vec![p]));
    }
    t.push(Instr::new(Op::Sync, None, vec![]));
    partials
        .iter()
        .map(|_| {
            let b = regs.fresh();
            t.push(Instr::new(Op::SharedLoad, Some(b), vec![]));
            b
        })
        .collect()
}

/// Divergent boundary tails: one per row classic, one merged for XElem.
fn boundary(t: &mut Vec<Instr>, shape: &ReductionShape, x: usize, merged: bool) {
    if shape.unaligned() {
        let n = if merged { 1 } else { x };
        for _ in 0..n {
            t.push(Instr::new(Op::Diverge, None, vec![]));
        }
    }
}

/// Fused softmax over a group of `x` rows: max-reduce, exp + sum-reduce,
/// normalize. `merged` selects the XElem boundary/barrier behaviour.
fn fused_softmax_group(shape: &ReductionShape, x: usize, merged: bool) -> Vec<Instr> {
    let mut regs = RegAlloc::default();
    let mut t = Vec::new();
    let elems = shape.elems_per_thread();

    // Pass A: running max.
    let maxs = accum(&mut regs, &mut t, elems, x);
    boundary(&mut t, shape, x, merged);
    let maxs = reduce_finish(&mut regs, &mut t, &maxs);

    // Pass B: exp(x - max), accumulating the sum.
    let sums: Vec<u32> = (0..x).map(|_| regs.fresh()).collect();
    for _ in 0..elems {
        for (i, &s) in sums.iter().enumerate() {
            let sub = regs.fresh();
            t.push(Instr::new(Op::Arith, Some(sub), vec![maxs[i]]));
            let e = regs.fresh();
            t.push(Instr::new(Op::Sfu, Some(e), vec![sub]));
            t.push(Instr::new(Op::Arith, Some(s), vec![s, e]));
        }
    }
    let sums = reduce_finish(&mut regs, &mut t, &sums);

    // Pass C: multiply by 1/sum and store.
    let recips: Vec<u32> = sums
        .iter()
        .map(|&s| {
            let r = regs.fresh();
            t.push(Instr::new(Op::Sfu, Some(r), vec![s]));
            r
        })
        .collect();
    for _ in 0..elems {
        for &r in &recips {
            let o = regs.fresh();
            t.push(Instr::new(Op::Arith, Some(o), vec![r]));
        }
    }
    t
}

/// Fused LayerNorm over one row.
///
/// `one_pass = false`: classic `E(x − E(x))²` — mean reduce, then a second
/// dependent reduce of centred squares. `one_pass = true`: the paper's
/// simultaneous `Σx`/`Σx²` 2-element reduction and `E(x²) − E²(x)`.
fn fused_layernorm_row(shape: &ReductionShape, one_pass: bool) -> Vec<Instr> {
    let mut regs = RegAlloc::default();
    let mut t = Vec::new();
    let elems = shape.elems_per_thread();

    let (mean_reg, var_reg) = if one_pass {
        // Σx and Σx² interleaved: per element one FADD for x, one FMUL for
        // x², one FADD for the square accumulator — two independent chains.
        let acc_x = regs.fresh();
        let acc_x2 = regs.fresh();
        for _ in 0..elems {
            t.push(Instr::new(Op::Arith, Some(acc_x), vec![acc_x]));
            let sq = regs.fresh();
            t.push(Instr::new(Op::Arith, Some(sq), vec![]));
            t.push(Instr::new(Op::Arith, Some(acc_x2), vec![acc_x2, sq]));
        }
        boundary(&mut t, shape, 1, true);
        let b = reduce_finish(&mut regs, &mut t, &[acc_x, acc_x2]);
        // mean = Σx/n ; var = Σx²/n − mean².
        let mean = regs.fresh();
        t.push(Instr::new(Op::Arith, Some(mean), vec![b[0]]));
        let var = regs.fresh();
        t.push(Instr::new(Op::Arith, Some(var), vec![b[1], mean]));
        (mean, var)
    } else {
        // Pass 1: mean.
        let accs = accum(&mut regs, &mut t, elems, 1);
        boundary(&mut t, shape, 1, false);
        let b = reduce_finish(&mut regs, &mut t, &accs);
        let mean = regs.fresh();
        t.push(Instr::new(Op::Arith, Some(mean), vec![b[0]]));
        // Pass 2: Σ(x − mean)², dependent on the broadcast mean.
        let acc2 = regs.fresh();
        for _ in 0..elems {
            let c = regs.fresh();
            t.push(Instr::new(Op::Arith, Some(c), vec![mean]));
            let sq = regs.fresh();
            t.push(Instr::new(Op::Arith, Some(sq), vec![c, c]));
            t.push(Instr::new(Op::Arith, Some(acc2), vec![acc2, sq]));
        }
        boundary(&mut t, shape, 1, false);
        let b2 = reduce_finish(&mut regs, &mut t, &[acc2]);
        (mean, b2[0])
    };

    // rstd = rsqrt(var + eps); normalize: (x − mean)·rstd·γ + β.
    let rstd = regs.fresh();
    t.push(Instr::new(Op::Sfu, Some(rstd), vec![var_reg]));
    for _ in 0..elems {
        let c = regs.fresh();
        t.push(Instr::new(Op::Arith, Some(c), vec![mean_reg]));
        let n = regs.fresh();
        t.push(Instr::new(Op::Arith, Some(n), vec![c, rstd]));
        let g = regs.fresh();
        t.push(Instr::new(Op::Arith, Some(g), vec![n]));
        let o = regs.fresh();
        t.push(Instr::new(Op::Arith, Some(o), vec![g]));
    }
    t
}

/// One row of a naive tree-reduction kernel (no warp primitives): strided
/// accumulation then `log₂(block_threads)` shared-memory halving steps, each
/// with a barrier — the pre-shuffle reduction style of framework kernels.
fn tree_reduce_row(shape: &ReductionShape) -> Vec<Instr> {
    let mut regs = RegAlloc::default();
    let mut t = Vec::new();
    let acc = accum(&mut regs, &mut t, shape.elems_per_thread(), 1)[0];
    boundary(&mut t, shape, 1, false);
    t.push(Instr::new(Op::SharedStore, None, vec![acc]));
    t.push(Instr::new(Op::Sync, None, vec![]));
    let steps = (shape.block_threads.max(2)).ilog2() as usize;
    let mut cur = regs.fresh();
    for _ in 0..steps {
        let other = regs.fresh();
        t.push(Instr::new(Op::SharedLoad, Some(other), vec![]));
        let nxt = regs.fresh();
        t.push(Instr::new(Op::Arith, Some(nxt), vec![cur, other]));
        t.push(Instr::new(Op::SharedStore, None, vec![nxt]));
        t.push(Instr::new(Op::Sync, None, vec![]));
        cur = nxt;
    }
    t
}

/// A trivially-parallel elementwise kernel row: `ops` instructions per
/// element per thread, all independent.
fn elementwise_row(shape: &ReductionShape, ops: &[Op]) -> Vec<Instr> {
    let mut regs = RegAlloc::default();
    let mut t = Vec::new();
    for _ in 0..shape.elems_per_thread() {
        for &op in ops {
            let d = regs.fresh();
            t.push(Instr::new(op, Some(d), vec![]));
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Kernel assembly
// ---------------------------------------------------------------------------

fn repeat_rows(
    dev: &DeviceConfig,
    shape: &ReductionShape,
    row_trace: &[Instr],
) -> crate::pipeline::TraceStats {
    crate::pipeline::repeat(simulate(dev, row_trace), shape.rows_per_block as u64)
}

/// The kernel launches a softmax of the given algorithm performs.
pub fn softmax_launches(
    dev: &DeviceConfig,
    algo: SoftmaxAlgo,
    shape: BatchShape,
) -> Vec<KernelLaunch> {
    let (rs, blocks) = geometry(dev, shape);
    let elem_bytes = (shape.rows * shape.row_len * 4) as u64;
    match algo {
        SoftmaxAlgo::Naive => {
            let reduce = repeat_rows(dev, &rs, &tree_reduce_row(&rs));
            let ew2 = repeat_rows(dev, &rs, &elementwise_row(&rs, &[Op::Arith, Op::Sfu]));
            let ew1 = repeat_rows(dev, &rs, &elementwise_row(&rs, &[Op::Arith]));
            vec![
                // contiguous-layout copy the framework inserts before reducing
                KernelLaunch { blocks, stats: ew1, bytes: UNCOALESCED * 2 * elem_bytes, flops: 0 },
                KernelLaunch { blocks, stats: reduce, bytes: elem_bytes, flops: elem_bytes / 4 }, // max
                KernelLaunch {
                    blocks,
                    stats: ew2,
                    bytes: UNCOALESCED * 2 * elem_bytes,
                    flops: elem_bytes / 2,
                }, // sub+exp
                KernelLaunch { blocks, stats: reduce, bytes: elem_bytes, flops: elem_bytes / 4 }, // sum
                KernelLaunch {
                    blocks,
                    stats: ew1,
                    bytes: UNCOALESCED * 2 * elem_bytes,
                    flops: elem_bytes / 4,
                }, // div
            ]
        }
        SoftmaxAlgo::CudnnLike => {
            let stats = repeat_rows(dev, &rs, &fused_softmax_group(&rs, 1, false));
            vec![KernelLaunch { blocks, stats, bytes: 3 * elem_bytes, flops: elem_bytes }]
        }
        SoftmaxAlgo::ClassicFused => {
            let stats = repeat_rows(dev, &rs, &fused_softmax_group(&rs, 1, false));
            vec![KernelLaunch { blocks, stats, bytes: 2 * elem_bytes, flops: elem_bytes }]
        }
        SoftmaxAlgo::TurboXElem => turbo_softmax_launches(dev, shape, DEFAULT_X),
    }
}

/// The Turbo fused softmax with an explicit `X` — the ablation surface for
/// the `warpAllReduceSum_XElem` batching factor.
pub fn turbo_softmax_launches(
    dev: &DeviceConfig,
    shape: BatchShape,
    x: usize,
) -> Vec<KernelLaunch> {
    assert!(x >= 1, "X must be at least 1");
    let (rs, blocks) = geometry(dev, shape);
    let elem_bytes = (shape.rows * shape.row_len * 4) as u64;
    let x = x.min(rs.rows_per_block.max(1));
    let full_groups = rs.rows_per_block / x;
    let rem = rs.rows_per_block % x;
    let mut stats = crate::pipeline::repeat(
        simulate(dev, &fused_softmax_group(&rs, x, true)),
        full_groups as u64,
    );
    if rem > 0 {
        stats = crate::pipeline::seq(stats, simulate(dev, &fused_softmax_group(&rs, rem, true)));
    }
    vec![KernelLaunch { blocks, stats, bytes: 2 * elem_bytes, flops: elem_bytes }]
}

/// Total softmax time, seconds.
pub fn softmax_time(dev: &DeviceConfig, algo: SoftmaxAlgo, shape: BatchShape) -> f64 {
    sequence_time(dev, &softmax_launches(dev, algo, shape))
}

/// The kernel launches a LayerNorm of the given algorithm performs.
pub fn layernorm_launches(
    dev: &DeviceConfig,
    algo: LayerNormAlgo,
    shape: BatchShape,
) -> Vec<KernelLaunch> {
    let (rs, blocks) = geometry(dev, shape);
    let elem_bytes = (shape.rows * shape.row_len * 4) as u64;
    match algo {
        LayerNormAlgo::Naive => {
            let reduce = repeat_rows(dev, &rs, &tree_reduce_row(&rs));
            let ew2 = repeat_rows(dev, &rs, &elementwise_row(&rs, &[Op::Arith, Op::Arith]));
            let ew4 = repeat_rows(
                dev,
                &rs,
                &elementwise_row(&rs, &[Op::Arith, Op::Arith, Op::Arith, Op::Arith]),
            );
            vec![
                KernelLaunch { blocks, stats: reduce, bytes: elem_bytes, flops: elem_bytes / 4 }, // mean
                KernelLaunch {
                    blocks,
                    stats: ew2,
                    bytes: UNCOALESCED * 2 * elem_bytes,
                    flops: elem_bytes / 2,
                }, // (x-μ)²
                KernelLaunch { blocks, stats: reduce, bytes: elem_bytes, flops: elem_bytes / 4 }, // var
                KernelLaunch {
                    blocks,
                    stats: ew4,
                    bytes: UNCOALESCED * 2 * elem_bytes,
                    flops: elem_bytes,
                }, // normalize
            ]
        }
        LayerNormAlgo::ClassicTwoPass => {
            let stats = repeat_rows(dev, &rs, &fused_layernorm_row(&rs, false));
            vec![KernelLaunch { blocks, stats, bytes: 3 * elem_bytes, flops: 2 * elem_bytes }]
        }
        LayerNormAlgo::TurboOnePass => {
            let stats = repeat_rows(dev, &rs, &fused_layernorm_row(&rs, true));
            vec![KernelLaunch { blocks, stats, bytes: 2 * elem_bytes, flops: 2 * elem_bytes }]
        }
    }
}

/// Total LayerNorm time, seconds.
pub fn layernorm_time(dev: &DeviceConfig, algo: LayerNormAlgo, shape: BatchShape) -> f64 {
    sequence_time(dev, &layernorm_launches(dev, algo, shape))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    fn dev() -> DeviceConfig {
        DeviceKind::V100.config()
    }

    #[test]
    fn geometry_scales_rows_per_block() {
        let d = dev();
        let (small, blocks_small) = geometry(&d, BatchShape { rows: 10, row_len: 100 });
        assert_eq!(small.rows_per_block, 1);
        assert_eq!(blocks_small, 10);
        let (big, _) = geometry(&d, BatchShape { rows: 1_000_000, row_len: 100 });
        assert_eq!(big.rows_per_block, 32, "saturated grids batch rows per block");
        assert_eq!(big.block_threads, 128, "row 100 rounds to 4 warps");
    }

    #[test]
    fn turbo_softmax_beats_classic_everywhere_nontrivial() {
        let d = dev();
        for &(rows, len) in &[(120usize, 10usize), (2400, 100), (120_000, 500), (12_000, 128)] {
            let shape = BatchShape { rows, row_len: len };
            let classic = softmax_time(&d, SoftmaxAlgo::ClassicFused, shape);
            let turbo = softmax_time(&d, SoftmaxAlgo::TurboXElem, shape);
            assert!(
                turbo <= classic,
                "turbo must not lose to classic at rows={rows} len={len}: {turbo} vs {classic}"
            );
        }
    }

    #[test]
    fn naive_softmax_pays_for_launches_and_passes() {
        let d = dev();
        let shape = BatchShape { rows: 120, row_len: 40 };
        let naive = softmax_time(&d, SoftmaxAlgo::Naive, shape);
        let turbo = softmax_time(&d, SoftmaxAlgo::TurboXElem, shape);
        assert!(
            naive > 3.0 * turbo,
            "4 launches vs 1 must dominate at tiny sizes: naive={naive}, turbo={turbo}"
        );
    }

    #[test]
    fn turbo_layernorm_halves_barriers() {
        let d = dev();
        let shape = BatchShape { rows: 1000, row_len: 768 };
        let classic = layernorm_launches(&d, LayerNormAlgo::ClassicTwoPass, shape);
        let turbo = layernorm_launches(&d, LayerNormAlgo::TurboOnePass, shape);
        assert_eq!(classic.len(), 1);
        assert_eq!(turbo.len(), 1);
        assert_eq!(
            turbo[0].stats.syncs * 2,
            classic[0].stats.syncs,
            "one-pass LN has half the barriers"
        );
        assert!(
            layernorm_time(&d, LayerNormAlgo::TurboOnePass, shape)
                < layernorm_time(&d, LayerNormAlgo::ClassicTwoPass, shape)
        );
    }

    #[test]
    fn layernorm_naive_is_worst() {
        let d = dev();
        let shape = BatchShape { rows: 2560, row_len: 768 };
        let naive = layernorm_time(&d, LayerNormAlgo::Naive, shape);
        let classic = layernorm_time(&d, LayerNormAlgo::ClassicTwoPass, shape);
        assert!(naive > classic, "naive {naive} must exceed classic {classic}");
    }

    #[test]
    fn speedup_grows_with_workload() {
        // The paper's Fig. 5: larger batch/seq gives Turbo a bigger edge
        // than the smallest case.
        let d = dev();
        let small = BatchShape { rows: 12 * 10, row_len: 10 }; // batch 1, seq 10
        let large = BatchShape { rows: 20 * 12 * 500, row_len: 500 }; // batch 20, seq 500
        let sp_small = softmax_time(&d, SoftmaxAlgo::ClassicFused, small)
            / softmax_time(&d, SoftmaxAlgo::TurboXElem, small);
        let sp_large = softmax_time(&d, SoftmaxAlgo::ClassicFused, large)
            / softmax_time(&d, SoftmaxAlgo::TurboXElem, large);
        assert!(
            sp_large > sp_small.max(1.0),
            "speedup should grow with workload: small={sp_small:.3}, large={sp_large:.3}"
        );
    }

    #[test]
    fn unaligned_rows_cost_more_than_aligned() {
        let d = dev();
        let aligned =
            softmax_time(&d, SoftmaxAlgo::ClassicFused, BatchShape { rows: 1000, row_len: 128 });
        let unaligned =
            softmax_time(&d, SoftmaxAlgo::ClassicFused, BatchShape { rows: 1000, row_len: 127 });
        assert!(unaligned > aligned, "divergent tails must show up: {unaligned} vs {aligned}");
    }
}
