//! Occupancy calculation: how many thread blocks an SM can keep resident,
//! bounded by threads, registers and shared memory — the quantity the
//! launch model's `max_concurrent_blocks_per_sm` abstracts, derived here
//! from per-kernel resource usage the way `cudaOccupancyMaxActiveBlocksPerMultiprocessor`
//! does.
//!
//! Residency is what hides latency: a reduction kernel using little shared
//! memory runs 8 blocks/SM and overlaps its barrier stalls, while a tiled
//! GEMM staging two big panels may fit only 2–3 blocks and must rely on ILP
//! instead. The tests pin those regimes.

use crate::device::DeviceConfig;

/// Per-SM resource limits (identical across the modelled parts at the
/// granularity this model needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmResources {
    /// Maximum resident threads per SM.
    pub max_threads: usize,
    /// Register file size per SM (32-bit registers).
    pub registers: usize,
    /// Shared memory per SM, bytes.
    pub shared_bytes: usize,
    /// Hardware cap on resident blocks per SM.
    pub max_blocks: usize,
}

impl SmResources {
    /// The limits of the modelled Volta/Turing-class parts.
    pub fn standard() -> Self {
        SmResources {
            max_threads: 2048,
            registers: 65_536,
            shared_bytes: 96 * 1024,
            max_blocks: 32,
        }
    }
}

/// A kernel's per-block resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// Threads per block.
    pub threads: usize,
    /// Registers per thread.
    pub regs_per_thread: usize,
    /// Shared memory per block, bytes.
    pub shared_bytes: usize,
}

impl KernelResources {
    /// Typical usage of the fused reduction kernels: one warp-width row
    /// buffer of partials in shared memory, modest register tile.
    pub fn reduction(block_threads: usize) -> Self {
        KernelResources {
            threads: block_threads,
            regs_per_thread: 32,
            shared_bytes: 32 * 4 * 2, // two warp-partial arrays
        }
    }

    /// Usage of the tiled GEMM block: two operand panels in shared memory
    /// and a fat register tile.
    pub fn gemm_tile(bm: usize, bn: usize, bk: usize, threads: usize) -> Self {
        KernelResources {
            threads,
            regs_per_thread: 96,
            shared_bytes: 4 * bk * (bm + bn) * 2, // double-buffered panels
        }
    }
}

/// Resident blocks per SM for a kernel on a device: the minimum over the
/// thread, register, shared-memory and hardware-cap constraints (≥ 1 —
/// a kernel that fits no block at all would fail to launch; callers model
/// only launchable kernels).
pub fn blocks_per_sm(res: &SmResources, kernel: &KernelResources) -> usize {
    let by_threads = res.max_threads / kernel.threads.max(1);
    let by_regs = res.registers / (kernel.regs_per_thread * kernel.threads).max(1);
    let by_smem = res.shared_bytes.checked_div(kernel.shared_bytes).unwrap_or(usize::MAX);
    by_threads.min(by_regs).min(by_smem).min(res.max_blocks).max(1)
}

/// Occupancy as a fraction of the SM's thread capacity.
pub fn occupancy_fraction(res: &SmResources, kernel: &KernelResources) -> f64 {
    (blocks_per_sm(res, kernel) * kernel.threads) as f64 / res.max_threads as f64
}

/// A device config with its residency bound tightened to what `kernel`
/// actually achieves — plug into [`crate::launch::kernel_time`] for
/// kernel-specific occupancy.
pub fn with_kernel_occupancy(dev: &DeviceConfig, kernel: &KernelResources) -> DeviceConfig {
    let mut d = dev.clone();
    d.max_concurrent_blocks_per_sm =
        blocks_per_sm(&SmResources::standard(), kernel).min(d.max_concurrent_blocks_per_sm);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    #[test]
    fn reduction_kernels_achieve_high_residency() {
        let res = SmResources::standard();
        let k = KernelResources::reduction(128);
        // threads: 2048/128 = 16; regs: 65536/(32·128) = 16; smem: huge.
        assert_eq!(blocks_per_sm(&res, &k), 16);
        assert!(occupancy_fraction(&res, &k) >= 1.0);
    }

    #[test]
    fn gemm_tiles_are_shared_memory_bound() {
        let res = SmResources::standard();
        let k = KernelResources::gemm_tile(64, 64, 16, 128);
        // smem: 4·16·128·2 = 16 KiB per block → 6 blocks; regs: 65536/(96·128) = 5.
        let blocks = blocks_per_sm(&res, &k);
        assert!(blocks < 8, "fat GEMM tiles must limit residency, got {blocks}");
        assert!(blocks >= 2);
    }

    #[test]
    fn thread_bound_kernels() {
        let res = SmResources::standard();
        let k = KernelResources { threads: 1024, regs_per_thread: 16, shared_bytes: 0 };
        assert_eq!(blocks_per_sm(&res, &k), 2);
    }

    #[test]
    fn oversubscribed_kernels_still_run_one_block() {
        let res = SmResources::standard();
        let k = KernelResources { threads: 1024, regs_per_thread: 255, shared_bytes: 200 * 1024 };
        assert_eq!(blocks_per_sm(&res, &k), 1);
    }

    #[test]
    fn device_clamp_only_tightens() {
        let dev = DeviceKind::V100.config();
        let light = KernelResources::reduction(64);
        let clamped = with_kernel_occupancy(&dev, &light);
        assert_eq!(
            clamped.max_concurrent_blocks_per_sm, dev.max_concurrent_blocks_per_sm,
            "light kernels keep the device default"
        );
        let heavy = KernelResources::gemm_tile(128, 128, 32, 256);
        let clamped = with_kernel_occupancy(&dev, &heavy);
        assert!(clamped.max_concurrent_blocks_per_sm < dev.max_concurrent_blocks_per_sm);
    }
}
