//! Batch-reduction building blocks: functional semantics + instruction
//! traces for the classic (FasterTransformer-style) algorithm and the
//! paper's `warpAllReduceSum_XElem` variant.
//!
//! Terminology follows paper Figure 4:
//!
//! - *classic*: a thread block is handed `n` rows and reduces them one at a
//!   time; each row reduction is two-pass (warp reduce → shared memory →
//!   warp reduce of partials) with a barrier per pass and per-row boundary
//!   handling.
//! - *XElem*: the block reduces `X` rows *together*: thread-local
//!   accumulation, shuffle steps and boundary handling of the `X` rows are
//!   interleaved, and one barrier per pass covers all `X` rows — saving
//!   `(X-1)/X` of the synchronizations and exposing `X` independent
//!   dependency chains to the issue pipeline.

use crate::pipeline::{Instr, Op};
use crate::warp::{load_lanes, warp_reduce_max, warp_reduce_sum, Lanes, WARP_SIZE};

/// What a reduction computes. Max and sum cost the same (FADD vs FMAX);
/// the distinction only matters functionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of the row.
    Sum,
    /// Maximum of the row.
    Max,
}

/// Geometry of a block-level reduction problem.
#[derive(Debug, Clone, Copy)]
pub struct ReductionShape {
    /// Length of each 1-D row being reduced.
    pub row_len: usize,
    /// Rows assigned to one thread block (the paper's `n`).
    pub rows_per_block: usize,
    /// Threads per block; a multiple of the warp size.
    pub block_threads: usize,
}

impl ReductionShape {
    /// Elements each thread accumulates locally before the tree phase.
    pub fn elems_per_thread(&self) -> usize {
        self.row_len.div_ceil(self.block_threads).max(1)
    }

    /// Whether rows spill past a warp boundary, forcing divergent tails.
    pub fn unaligned(&self) -> bool {
        !self.row_len.is_multiple_of(WARP_SIZE)
    }

    /// Warps per block.
    pub fn warps(&self) -> usize {
        self.block_threads.div_ceil(WARP_SIZE)
    }
}

// ---------------------------------------------------------------------------
// Functional semantics
// ---------------------------------------------------------------------------

/// Reduce one row exactly the way a thread block does: strided thread-local
/// accumulation, per-warp tree reduction, then a second tree pass over the
/// per-warp partials. Used to verify that the simulated kernels compute the
/// same value as a serial oracle (up to FP reassociation).
pub fn block_reduce_row(row: &[f32], block_threads: usize, op: ReduceOp) -> f32 {
    assert!(
        block_threads.is_multiple_of(WARP_SIZE) && block_threads > 0,
        "block must be whole warps"
    );
    let identity = match op {
        ReduceOp::Sum => 0.0f32,
        ReduceOp::Max => f32::NEG_INFINITY,
    };
    // Thread-local strided accumulation.
    let mut acc = vec![identity; block_threads];
    for (i, &v) in row.iter().enumerate() {
        let t = i % block_threads;
        acc[t] = match op {
            ReduceOp::Sum => acc[t] + v,
            ReduceOp::Max => acc[t].max(v),
        };
    }
    // First pass: per-warp tree reduction.
    let mut partials = Vec::with_capacity(block_threads / WARP_SIZE);
    for warp in acc.chunks_exact(WARP_SIZE) {
        let lanes: Lanes = warp.try_into().expect("chunk is warp-sized");
        partials.push(match op {
            ReduceOp::Sum => warp_reduce_sum(&lanes),
            ReduceOp::Max => warp_reduce_max(&lanes),
        });
    }
    // Second pass: one warp reduces the partials (≤ 32 of them).
    let lanes = load_lanes(&partials, 0, identity);
    match op {
        ReduceOp::Sum => warp_reduce_sum(&lanes),
        ReduceOp::Max => warp_reduce_max(&lanes),
    }
}

/// Reduce a whole batch of rows with the classic algorithm: each block's
/// rows are processed sequentially (functionally identical to mapping
/// [`block_reduce_row`] over the rows).
pub fn batch_reduce_classic(rows: &[Vec<f32>], block_threads: usize, op: ReduceOp) -> Vec<f32> {
    rows.iter().map(|r| block_reduce_row(r, block_threads, op)).collect()
}

/// Reduce a batch with the XElem algorithm, `x` rows at a time. The
/// interleaving is a scheduling device only — each row's value must equal
/// the classic result bit-for-bit, which the tests assert.
pub fn batch_reduce_xelem(
    rows: &[Vec<f32>],
    block_threads: usize,
    x: usize,
    op: ReduceOp,
) -> Vec<f32> {
    assert!(x >= 1);
    let mut out = Vec::with_capacity(rows.len());
    for group in rows.chunks(x) {
        // The X reductions share instruction slots but not data; compute
        // each through the same two-pass machinery.
        for row in group {
            out.push(block_reduce_row(row, block_threads, op));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Instruction traces
// ---------------------------------------------------------------------------

/// Allocates abstract register ids for trace construction.
#[derive(Debug, Default)]
pub struct RegAlloc {
    next: u32,
}

impl RegAlloc {
    /// Fresh register id.
    pub fn fresh(&mut self) -> u32 {
        let r = self.next;
        self.next += 1;
        r
    }
}

/// Trace of the thread-local accumulation phase for `x` interleaved rows:
/// each thread folds `elems` values into a running register per row. The
/// accumulate of row `i` depends on its own previous accumulate only, so
/// `x` chains interleave.
///
/// Returns the accumulator registers.
pub fn accum_trace(
    regs: &mut RegAlloc,
    trace: &mut Vec<Instr>,
    elems: usize,
    x: usize,
) -> Vec<u32> {
    let accs: Vec<u32> = (0..x).map(|_| regs.fresh()).collect();
    for _ in 0..elems {
        for &acc in &accs {
            // FFMA acc <- acc, loaded element (load cost folded into the
            // kernel-level bandwidth roofline).
            trace.push(Instr::new(Op::Arith, Some(acc), vec![acc]));
        }
    }
    accs
}

/// Trace of `x` interleaved warp tree reductions over the given accumulator
/// registers: 5 steps of (x shuffles, then x adds), the paper's
/// `warpAllReduceSum_XElem` schedule.
pub fn warp_reduce_trace(regs: &mut RegAlloc, trace: &mut Vec<Instr>, accs: &[u32]) {
    let steps = WARP_SIZE.trailing_zeros(); // 5
    for _ in 0..steps {
        let tmps: Vec<u32> = accs
            .iter()
            .map(|&acc| {
                let tmp = regs.fresh();
                trace.push(Instr::new(Op::Shfl, Some(tmp), vec![acc]));
                tmp
            })
            .collect();
        for (&acc, &tmp) in accs.iter().zip(tmps.iter()) {
            trace.push(Instr::new(Op::Arith, Some(acc), vec![acc, tmp]));
        }
    }
}

/// Trace of one *two-pass block reduction* of `x` rows processed together
/// (x = 1 gives the classic per-row schedule):
///
/// 1. thread-local accumulation (`elems_per_thread` folds per row),
/// 2. optional divergent boundary tail — one per row classic, one merged
///    for the group in XElem,
/// 3. interleaved warp tree reduction,
/// 4. per-warp partials to shared memory, barrier,
/// 5. first warp reduces partials, writes the result back, barrier,
/// 6. all warps read the broadcast result.
pub fn block_reduce_group_trace(
    shape: &ReductionShape,
    x: usize,
    merged_boundary: bool,
) -> Vec<Instr> {
    let mut regs = RegAlloc::default();
    let mut trace = Vec::new();

    let accs = accum_trace(&mut regs, &mut trace, shape.elems_per_thread(), x);

    if shape.unaligned() {
        let tails = if merged_boundary { 1 } else { x };
        for _ in 0..tails {
            trace.push(Instr::new(Op::Diverge, None, vec![]));
        }
    }

    warp_reduce_trace(&mut regs, &mut trace, &accs);

    // Pass 1 → shared memory handoff: lane 0 of each warp stores x partials.
    for &acc in &accs {
        trace.push(Instr::new(Op::SharedStore, None, vec![acc]));
    }
    trace.push(Instr::new(Op::Sync, None, vec![]));

    // Pass 2: first warp loads partials and reduces them.
    let partials: Vec<u32> = (0..x)
        .map(|_| {
            let p = regs.fresh();
            trace.push(Instr::new(Op::SharedLoad, Some(p), vec![]));
            p
        })
        .collect();
    warp_reduce_trace(&mut regs, &mut trace, &partials);

    // Broadcast: results to shared memory, barrier, everyone reads.
    for &p in &partials {
        trace.push(Instr::new(Op::SharedStore, None, vec![p]));
    }
    trace.push(Instr::new(Op::Sync, None, vec![]));
    for _ in 0..x {
        let b = regs.fresh();
        trace.push(Instr::new(Op::SharedLoad, Some(b), vec![]));
    }

    trace
}

/// Full block trace for reducing all `rows_per_block` rows with the
/// *classic* algorithm: rows strictly one after another.
pub fn classic_block_trace(shape: &ReductionShape) -> Vec<Instr> {
    let mut trace = Vec::new();
    for _ in 0..shape.rows_per_block {
        trace.extend(block_reduce_group_trace(shape, 1, false));
    }
    trace
}

/// Full block trace for the *XElem* algorithm: rows in groups of `x`,
/// boundary tails merged, barriers shared across the group.
pub fn xelem_block_trace(shape: &ReductionShape, x: usize) -> Vec<Instr> {
    assert!(x >= 1, "x must be at least 1");
    let mut trace = Vec::new();
    let mut remaining = shape.rows_per_block;
    while remaining > 0 {
        let g = remaining.min(x);
        trace.extend(block_reduce_group_trace(shape, g, true));
        remaining -= g;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;
    use crate::pipeline::simulate;

    fn rows(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n).map(|r| (0..len).map(|i| ((r * 31 + i * 7) % 13) as f32 - 6.0).collect()).collect()
    }

    #[test]
    fn block_reduce_row_matches_serial_sum() {
        for len in [1, 5, 32, 33, 100, 500] {
            let row: Vec<f32> = (0..len).map(|i| (i % 9) as f32 - 4.0).collect();
            let got = block_reduce_row(&row, 128, ReduceOp::Sum);
            let want: f32 = row.iter().sum();
            assert!((got - want).abs() < 1e-3, "len={len}: got {got}, want {want}");
        }
    }

    #[test]
    fn block_reduce_row_matches_serial_max() {
        for len in [1, 31, 32, 200] {
            let row: Vec<f32> = (0..len).map(|i| ((i * 17) % 23) as f32).collect();
            let got = block_reduce_row(&row, 64, ReduceOp::Max);
            let want = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(got, want, "max is exact, no reassociation error");
        }
    }

    #[test]
    fn xelem_is_functionally_identical_to_classic() {
        let data = rows(10, 77);
        let classic = batch_reduce_classic(&data, 128, ReduceOp::Sum);
        for x in [1, 2, 4] {
            let xe = batch_reduce_xelem(&data, 128, x, ReduceOp::Sum);
            assert_eq!(classic, xe, "X={x} must not change results");
        }
    }

    #[test]
    fn xelem_trace_has_fewer_syncs() {
        let shape = ReductionShape { row_len: 128, rows_per_block: 8, block_threads: 128 };
        let dev = DeviceKind::V100.config();
        let classic = simulate(&dev, &classic_block_trace(&shape));
        let xelem = simulate(&dev, &xelem_block_trace(&shape, 4));
        assert_eq!(classic.syncs, 16, "2 barriers per row");
        assert_eq!(xelem.syncs, 4, "2 barriers per group of 4");
    }

    #[test]
    fn xelem_trace_merges_divergent_tails() {
        let shape = ReductionShape { row_len: 100, rows_per_block: 8, block_threads: 128 };
        let dev = DeviceKind::V100.config();
        let classic = simulate(&dev, &classic_block_trace(&shape));
        let xelem = simulate(&dev, &xelem_block_trace(&shape, 4));
        assert_eq!(classic.divergences, 8);
        assert_eq!(xelem.divergences, 2);
    }

    #[test]
    fn aligned_rows_do_not_diverge() {
        let shape = ReductionShape { row_len: 96, rows_per_block: 4, block_threads: 96 };
        let dev = DeviceKind::V100.config();
        let classic = simulate(&dev, &classic_block_trace(&shape));
        assert_eq!(classic.divergences, 0);
    }

    #[test]
    fn xelem_is_faster_per_row_in_latency() {
        let shape = ReductionShape { row_len: 128, rows_per_block: 8, block_threads: 128 };
        let dev = DeviceKind::V100.config();
        let classic = simulate(&dev, &classic_block_trace(&shape));
        let xelem = simulate(&dev, &xelem_block_trace(&shape, 4));
        assert!(
            xelem.latency_cycles < classic.latency_cycles,
            "XElem {} must beat classic {}",
            xelem.latency_cycles,
            classic.latency_cycles
        );
        assert!(
            xelem.issue_cycles < classic.issue_cycles,
            "fewer barriers/tails must also cut issue cost: {} vs {}",
            xelem.issue_cycles,
            classic.issue_cycles
        );
    }

    #[test]
    fn xelem_handles_row_count_not_divisible_by_x() {
        let shape = ReductionShape { row_len: 64, rows_per_block: 5, block_threads: 64 };
        let trace = xelem_block_trace(&shape, 4); // groups of 4 + 1
        let dev = DeviceKind::V100.config();
        let s = simulate(&dev, &trace);
        assert_eq!(s.syncs, 4, "two groups, 2 barriers each");
    }

    #[test]
    fn shape_helpers() {
        let s = ReductionShape { row_len: 100, rows_per_block: 2, block_threads: 32 };
        assert_eq!(s.elems_per_thread(), 4);
        assert!(s.unaligned());
        assert_eq!(s.warps(), 1);
        let s2 = ReductionShape { row_len: 64, rows_per_block: 1, block_threads: 64 };
        assert!(!s2.unaligned());
    }
}
