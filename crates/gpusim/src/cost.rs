//! Op-level GPU cost model consumed by `tt-runtime`.
//!
//! GEMMs are priced with a roofline (compute vs. DRAM traffic) plus launch
//! overhead, at a fixed fraction of peak — cuBLAS efficiency on
//! transformer shapes is flat enough that relative comparisons between
//! runtimes (which all call the same cuBLAS) are unaffected. Non-GEMM ops
//! are priced through the kernel models of [`crate::kernels`] and simple
//! bandwidth-bound launches.

use crate::device::DeviceConfig;
use crate::kernels::{layernorm_time, softmax_time, BatchShape, LayerNormAlgo, SoftmaxAlgo};
use crate::launch::{kernel_time, KernelLaunch};
use crate::pipeline::TraceStats;

/// Fraction of peak FLOP/s cuBLAS-like GEMM achieves on transformer shapes.
pub const GEMM_EFFICIENCY: f64 = 0.70;

/// Time of a (possibly strided-batched) GEMM `batch × (m×k · k×n)`,
/// including one launch.
pub fn gemm_time(dev: &DeviceConfig, batch: usize, m: usize, k: usize, n: usize) -> f64 {
    gemm_time_eff(dev, batch, m, k, n, GEMM_EFFICIENCY)
}

/// [`gemm_time`] with an explicit efficiency fraction — runtime variants
/// with autotuned GEMM backends (TensorRT) or weaker codegen (XLA) differ
/// here.
pub fn gemm_time_eff(
    dev: &DeviceConfig,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    eff: f64,
) -> f64 {
    let flops = 2.0 * batch as f64 * m as f64 * n as f64 * k as f64;
    let bytes =
        4.0 * batch as f64 * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64);
    let compute = flops / (dev.peak_tflops * 1e12 * eff);
    let mem = bytes / (dev.mem_bandwidth_gbps * 1e9);
    dev.launch_overhead() + compute.max(mem)
}

/// Time of a clean bandwidth-bound kernel moving `bytes` of DRAM traffic
/// (elementwise ops, transposes, embedding gathers), including one launch.
pub fn streaming_time(dev: &DeviceConfig, bytes: u64) -> f64 {
    let l = KernelLaunch { blocks: dev.num_sms, stats: TraceStats::default(), bytes, flops: 0 };
    kernel_time(dev, &l)
}

/// Modeled energy of one kernel launch, reported next to its latency
/// estimate.
///
/// Derived from the same roofline activity that prices time: dynamic
/// compute energy is linear in FLOPs executed, DRAM energy linear in bytes
/// moved, and the static/idle draw is charged over the launch's full wall
/// time — launch overhead included, because the board burns leakage while
/// the host sets up the grid. Constants live on
/// [`DeviceConfig`] (`pj_per_flop`,
/// `pj_per_byte`, `idle_watts`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyEstimate {
    /// Dynamic switching energy of the FLOPs, joules.
    pub compute_j: f64,
    /// Dynamic DRAM access energy of the bytes moved, joules.
    pub dram_j: f64,
    /// Static/idle draw over the launch's wall time, joules.
    pub static_j: f64,
}

impl EnergyEstimate {
    /// Total joules of the launch.
    pub fn total(&self) -> f64 {
        self.compute_j + self.dram_j + self.static_j
    }

    /// Total microjoules, rounded — the integer currency the telemetry
    /// counters and per-request attribution use (exact u64 arithmetic, so
    /// shares provably sum back to the total).
    pub fn total_uj(&self) -> u64 {
        (self.total() * 1e6).round() as u64
    }

    /// Accumulate another launch's energy into this one.
    pub fn accumulate(&mut self, other: &EnergyEstimate) {
        self.compute_j += other.compute_j;
        self.dram_j += other.dram_j;
        self.static_j += other.static_j;
    }
}

/// Energy of a kernel doing `flops` FLOPs and `bytes` of DRAM traffic over
/// `seconds` of wall time (one launch, overhead included in `seconds`).
pub fn op_energy_timed(dev: &DeviceConfig, flops: u64, bytes: u64, seconds: f64) -> EnergyEstimate {
    EnergyEstimate {
        compute_j: dev.flop_energy(flops),
        dram_j: dev.dram_energy(bytes),
        static_j: dev.static_energy(seconds.max(0.0)),
    }
}

/// Energy of a generic roofline kernel: wall time from the same
/// `launch + max(compute, mem)` model the latency estimates use.
pub fn op_energy(dev: &DeviceConfig, flops: u64, bytes: u64) -> EnergyEstimate {
    let seconds = dev.launch_overhead() + dev.compute_time(flops).max(dev.mem_time(bytes));
    op_energy_timed(dev, flops, bytes, seconds)
}

/// Energy of a (possibly strided-batched) GEMM `batch × (m×k · k×n)`,
/// including one launch — the energy column next to [`gemm_time`].
pub fn gemm_energy(
    dev: &DeviceConfig,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) -> EnergyEstimate {
    gemm_energy_eff(dev, batch, m, k, n, GEMM_EFFICIENCY)
}

/// [`gemm_energy`] with an explicit efficiency fraction. Efficiency does
/// not change the FLOPs executed (dynamic energy is invariant), but a less
/// efficient GEMM occupies the board longer and so burns more static
/// energy — exactly the lever the energy-aware scheduler trades against.
pub fn gemm_energy_eff(
    dev: &DeviceConfig,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    eff: f64,
) -> EnergyEstimate {
    let flops = 2.0 * batch as f64 * m as f64 * n as f64 * k as f64;
    let bytes =
        4.0 * batch as f64 * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64);
    EnergyEstimate {
        compute_j: flops * dev.pj_per_flop * 1e-12,
        dram_j: bytes * dev.pj_per_byte * 1e-12,
        static_j: dev.static_energy(gemm_time_eff(dev, batch, m, k, n, eff)),
    }
}

/// Energy of a clean bandwidth-bound kernel moving `bytes` — the energy
/// column next to [`streaming_time`].
pub fn streaming_energy(dev: &DeviceConfig, bytes: u64) -> EnergyEstimate {
    op_energy_timed(dev, 0, bytes, streaming_time(dev, bytes))
}

/// Per-component breakdown of one transformer attention layer (paper
/// Table 2's denominator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionBreakdown {
    /// All GEMM time (QKV projections, scores, context, output projection).
    pub gemm: f64,
    /// Softmax kernel time.
    pub softmax: f64,
    /// LayerNorm kernel time.
    pub layernorm: f64,
    /// Remaining elementwise/transpose glue.
    pub other: f64,
}

impl AttentionBreakdown {
    /// Total layer time.
    pub fn total(&self) -> f64 {
        self.gemm + self.softmax + self.layernorm + self.other
    }

    /// Softmax share of the layer.
    pub fn softmax_share(&self) -> f64 {
        self.softmax / self.total()
    }

    /// LayerNorm share of the layer.
    pub fn layernorm_share(&self) -> f64 {
        self.layernorm / self.total()
    }
}

/// Cost of one BERT-style attention layer (multi-head attention + residual
/// \+ LayerNorm) under a choice of softmax/LayerNorm kernel and fusion
/// policy.
///
/// With `fused = true` the non-GEMM glue (bias adds, transposes, scale+mask,
/// residual) collapses into three fused launches, the layout used by the
/// TurboTransformers runtime (paper Fig. 3); with `fused = false` every op
/// pays its own launch, the training-framework layout.
#[allow(clippy::too_many_arguments)]
pub fn attention_layer_time(
    dev: &DeviceConfig,
    batch: usize,
    seq: usize,
    heads: usize,
    head_dim: usize,
    softmax: SoftmaxAlgo,
    layernorm: LayerNormAlgo,
    fused: bool,
) -> AttentionBreakdown {
    let hidden = heads * head_dim;
    let tokens = batch * seq;
    let tok_bytes = (tokens * hidden * 4) as u64;
    let score_elems = batch * heads * seq * seq;

    // GEMMs: Q, K, V projections; QKᵀ scores; attn·V context; output proj.
    let gemm = gemm_time(dev, 1, tokens, hidden, hidden) * 3.0
        + gemm_time(dev, batch * heads, seq, head_dim, seq)
        + gemm_time(dev, batch * heads, seq, seq, head_dim)
        + gemm_time(dev, 1, tokens, hidden, hidden);

    // Softmax over rows of the score matrix; unfused runtimes additionally
    // pay a separate scale+mask pass over the scores.
    let mut sm = softmax_time(dev, softmax, BatchShape { rows: batch * heads * seq, row_len: seq });
    if !fused {
        sm += streaming_time(dev, (score_elems * 4 * 2) as u64);
    }

    let ln = layernorm_time(dev, layernorm, BatchShape { rows: tokens, row_len: hidden });

    // Glue: add-bias+transpose after QKV (3 tensors), transpose-back after
    // context, add-bias+residual before LN.
    let other = if fused {
        streaming_time(dev, 3 * 2 * tok_bytes) // one fused QKV bias/transpose launch
            + streaming_time(dev, 2 * tok_bytes) // fused transpose-back
            + streaming_time(dev, 3 * tok_bytes) // fused bias+residual
    } else {
        // bias ×3, transpose ×3, transpose-back, bias, residual — 9 launches.
        (0..6).map(|_| streaming_time(dev, 2 * tok_bytes)).sum::<f64>()
            + streaming_time(dev, 2 * tok_bytes)
            + streaming_time(dev, 2 * tok_bytes)
            + streaming_time(dev, 3 * tok_bytes)
    };

    AttentionBreakdown { gemm, softmax: sm, layernorm: ln, other }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    #[test]
    fn gemm_rooflines() {
        let d = DeviceKind::V100.config();
        // Large square GEMM: compute-bound, time ≈ flops / (peak · eff).
        let t = gemm_time(&d, 1, 4096, 4096, 4096);
        let ideal = 2.0 * 4096f64.powi(3) / (d.peak_tflops * 1e12 * GEMM_EFFICIENCY);
        assert!((t - ideal - d.launch_overhead()).abs() / ideal < 1e-9);
        // Skinny GEMM: memory-bound.
        let t2 = gemm_time(&d, 1, 1, 768, 768) - d.launch_overhead();
        let mem = 4.0 * (768.0 + 768.0 * 768.0 + 768.0) / (d.mem_bandwidth_gbps * 1e9);
        assert!((t2 - mem).abs() / mem < 1e-9);
    }

    #[test]
    fn streaming_is_bandwidth_plus_launch() {
        let d = DeviceKind::V100.config();
        let t = streaming_time(&d, 900_000_000);
        assert!((t - d.launch_overhead() - 0.001).abs() < 1e-5);
    }

    #[test]
    fn table2_shape_naive_softmax_dominates_large_batch() {
        // The paper's Table 2 headline: at (batch 20, seq 500) PyTorch-style
        // softmax eats the vast majority of attention time; Turbo's doesn't.
        let d = DeviceKind::V100.config();
        let before = attention_layer_time(
            &d,
            20,
            500,
            12,
            64,
            SoftmaxAlgo::Naive,
            LayerNormAlgo::TurboOnePass,
            true,
        );
        let after = attention_layer_time(
            &d,
            20,
            500,
            12,
            64,
            SoftmaxAlgo::TurboXElem,
            LayerNormAlgo::TurboOnePass,
            true,
        );
        assert!(
            before.softmax_share() > 0.45,
            "naive softmax share {:.3} should dominate the layer \
             (paper reports 90.7 %; our bandwidth model bounds how bad the \
             framework path can get — see EXPERIMENTS.md)",
            before.softmax_share()
        );
        assert!(
            after.softmax_share() < 0.25,
            "turbo softmax share {:.3} should be small",
            after.softmax_share()
        );
    }

    #[test]
    fn layernorm_share_shrinks_after_optimization() {
        let d = DeviceKind::V100.config();
        let before = attention_layer_time(
            &d,
            20,
            100,
            12,
            64,
            SoftmaxAlgo::TurboXElem,
            LayerNormAlgo::Naive,
            true,
        );
        let after = attention_layer_time(
            &d,
            20,
            100,
            12,
            64,
            SoftmaxAlgo::TurboXElem,
            LayerNormAlgo::TurboOnePass,
            true,
        );
        assert!(before.layernorm_share() > after.layernorm_share());
    }

    #[test]
    fn energy_is_monotone_in_flops_and_bytes() {
        let d = DeviceKind::V100.config();
        // More FLOPs ⇒ more joules (dynamic compute + longer occupancy).
        let mut prev = 0.0;
        for flops in [1u64 << 20, 1 << 24, 1 << 28, 1 << 32] {
            let e = op_energy(&d, flops, 1 << 20).total();
            assert!(e > prev, "energy must grow with FLOPs: {e} after {prev}");
            prev = e;
        }
        // More bytes ⇒ more joules (DRAM energy + longer occupancy).
        let mut prev = 0.0;
        for bytes in [1u64 << 20, 1 << 24, 1 << 28, 1 << 32] {
            let e = op_energy(&d, 1 << 20, bytes).total();
            assert!(e > prev, "energy must grow with bytes: {e} after {prev}");
            prev = e;
        }
        // GEMM energy is monotone in every dimension.
        let base = gemm_energy(&d, 1, 64, 256, 256).total();
        assert!(gemm_energy(&d, 2, 64, 256, 256).total() > base);
        assert!(gemm_energy(&d, 1, 128, 256, 256).total() > base);
        assert!(gemm_energy(&d, 1, 64, 512, 256).total() > base);
        assert!(gemm_energy(&d, 1, 64, 256, 512).total() > base);
    }

    #[test]
    fn fused_op_energy_is_below_the_decomposed_sum() {
        // A fused kernel executes the same FLOPs but elides the launch (one
        // static-overhead charge instead of two) and the intermediate
        // tensor's DRAM round trip. Its energy must therefore sit at or
        // below the decomposed ops' sum — the energy face of the paper's
        // fusion argument.
        let d = DeviceKind::RTX2060.config();
        let tensor_bytes = 4 * 40 * 768u64; // batch 1, seq 40, hidden 768
                                            // Decomposed: add-bias (read+write) then GELU (read+write).
        let decomposed = streaming_energy(&d, 2 * tensor_bytes).total()
            + streaming_energy(&d, 2 * tensor_bytes).total();
        // Fused add-bias+GELU: one launch, one read, one write.
        let fused = streaming_energy(&d, 2 * tensor_bytes).total();
        assert!(fused < decomposed, "fused {fused} must undercut decomposed {decomposed}");
        // And with FLOPs in play: same work split across two launches with
        // an intermediate round trip can never beat the single launch.
        let one = op_energy(&d, 2_000_000, 2 * tensor_bytes).total();
        let two = op_energy(&d, 1_000_000, 2 * tensor_bytes).total()
            + op_energy(&d, 1_000_000, 2 * tensor_bytes).total();
        assert!(one < two);
    }

    #[test]
    fn energy_estimate_accounting_is_exact() {
        let d = DeviceKind::V100.config();
        let mut sum = EnergyEstimate::default();
        sum.accumulate(&gemm_energy(&d, 1, 64, 256, 256));
        sum.accumulate(&streaming_energy(&d, 1 << 20));
        let expect =
            gemm_energy(&d, 1, 64, 256, 256).total() + streaming_energy(&d, 1 << 20).total();
        assert!((sum.total() - expect).abs() < 1e-12);
        // Microjoule rounding stays within half a microjoule.
        assert!((sum.total_uj() as f64 - sum.total() * 1e6).abs() <= 0.5);
        // Efficiency only moves the static term: dynamic energy is
        // invariant, total grows as efficiency drops.
        let eff_hi = gemm_energy_eff(&d, 1, 512, 512, 512, 0.9);
        let eff_lo = gemm_energy_eff(&d, 1, 512, 512, 512, 0.45);
        assert!((eff_hi.compute_j - eff_lo.compute_j).abs() < 1e-15);
        assert!((eff_hi.dram_j - eff_lo.dram_j).abs() < 1e-15);
        assert!(eff_lo.static_j > eff_hi.static_j);
    }

    #[test]
    fn fusion_saves_launches() {
        let d = DeviceKind::RTX2060.config();
        let fused = attention_layer_time(
            &d,
            1,
            40,
            12,
            64,
            SoftmaxAlgo::TurboXElem,
            LayerNormAlgo::TurboOnePass,
            true,
        );
        let unfused = attention_layer_time(
            &d,
            1,
            40,
            12,
            64,
            SoftmaxAlgo::TurboXElem,
            LayerNormAlgo::TurboOnePass,
            false,
        );
        assert!(unfused.other > fused.other, "unfused glue must cost more launches");
        assert!(unfused.total() > fused.total());
    }
}
