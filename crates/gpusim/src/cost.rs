//! Op-level GPU cost model consumed by `tt-runtime`.
//!
//! GEMMs are priced with a roofline (compute vs. DRAM traffic) plus launch
//! overhead, at a fixed fraction of peak — cuBLAS efficiency on
//! transformer shapes is flat enough that relative comparisons between
//! runtimes (which all call the same cuBLAS) are unaffected. Non-GEMM ops
//! are priced through the kernel models of [`crate::kernels`] and simple
//! bandwidth-bound launches.

use crate::device::DeviceConfig;
use crate::kernels::{layernorm_time, softmax_time, BatchShape, LayerNormAlgo, SoftmaxAlgo};
use crate::launch::{kernel_time, KernelLaunch};
use crate::pipeline::TraceStats;

/// Fraction of peak FLOP/s cuBLAS-like GEMM achieves on transformer shapes.
pub const GEMM_EFFICIENCY: f64 = 0.70;

/// Time of a (possibly strided-batched) GEMM `batch × (m×k · k×n)`,
/// including one launch.
pub fn gemm_time(dev: &DeviceConfig, batch: usize, m: usize, k: usize, n: usize) -> f64 {
    gemm_time_eff(dev, batch, m, k, n, GEMM_EFFICIENCY)
}

/// [`gemm_time`] with an explicit efficiency fraction — runtime variants
/// with autotuned GEMM backends (TensorRT) or weaker codegen (XLA) differ
/// here.
pub fn gemm_time_eff(
    dev: &DeviceConfig,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    eff: f64,
) -> f64 {
    let flops = 2.0 * batch as f64 * m as f64 * n as f64 * k as f64;
    let bytes =
        4.0 * batch as f64 * (m as f64 * k as f64 + k as f64 * n as f64 + m as f64 * n as f64);
    let compute = flops / (dev.peak_tflops * 1e12 * eff);
    let mem = bytes / (dev.mem_bandwidth_gbps * 1e9);
    dev.launch_overhead() + compute.max(mem)
}

/// Time of a clean bandwidth-bound kernel moving `bytes` of DRAM traffic
/// (elementwise ops, transposes, embedding gathers), including one launch.
pub fn streaming_time(dev: &DeviceConfig, bytes: u64) -> f64 {
    let l = KernelLaunch { blocks: dev.num_sms, stats: TraceStats::default(), bytes, flops: 0 };
    kernel_time(dev, &l)
}

/// Per-component breakdown of one transformer attention layer (paper
/// Table 2's denominator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionBreakdown {
    /// All GEMM time (QKV projections, scores, context, output projection).
    pub gemm: f64,
    /// Softmax kernel time.
    pub softmax: f64,
    /// LayerNorm kernel time.
    pub layernorm: f64,
    /// Remaining elementwise/transpose glue.
    pub other: f64,
}

impl AttentionBreakdown {
    /// Total layer time.
    pub fn total(&self) -> f64 {
        self.gemm + self.softmax + self.layernorm + self.other
    }

    /// Softmax share of the layer.
    pub fn softmax_share(&self) -> f64 {
        self.softmax / self.total()
    }

    /// LayerNorm share of the layer.
    pub fn layernorm_share(&self) -> f64 {
        self.layernorm / self.total()
    }
}

/// Cost of one BERT-style attention layer (multi-head attention + residual
/// \+ LayerNorm) under a choice of softmax/LayerNorm kernel and fusion
/// policy.
///
/// With `fused = true` the non-GEMM glue (bias adds, transposes, scale+mask,
/// residual) collapses into three fused launches, the layout used by the
/// TurboTransformers runtime (paper Fig. 3); with `fused = false` every op
/// pays its own launch, the training-framework layout.
#[allow(clippy::too_many_arguments)]
pub fn attention_layer_time(
    dev: &DeviceConfig,
    batch: usize,
    seq: usize,
    heads: usize,
    head_dim: usize,
    softmax: SoftmaxAlgo,
    layernorm: LayerNormAlgo,
    fused: bool,
) -> AttentionBreakdown {
    let hidden = heads * head_dim;
    let tokens = batch * seq;
    let tok_bytes = (tokens * hidden * 4) as u64;
    let score_elems = batch * heads * seq * seq;

    // GEMMs: Q, K, V projections; QKᵀ scores; attn·V context; output proj.
    let gemm = gemm_time(dev, 1, tokens, hidden, hidden) * 3.0
        + gemm_time(dev, batch * heads, seq, head_dim, seq)
        + gemm_time(dev, batch * heads, seq, seq, head_dim)
        + gemm_time(dev, 1, tokens, hidden, hidden);

    // Softmax over rows of the score matrix; unfused runtimes additionally
    // pay a separate scale+mask pass over the scores.
    let mut sm = softmax_time(dev, softmax, BatchShape { rows: batch * heads * seq, row_len: seq });
    if !fused {
        sm += streaming_time(dev, (score_elems * 4 * 2) as u64);
    }

    let ln = layernorm_time(dev, layernorm, BatchShape { rows: tokens, row_len: hidden });

    // Glue: add-bias+transpose after QKV (3 tensors), transpose-back after
    // context, add-bias+residual before LN.
    let other = if fused {
        streaming_time(dev, 3 * 2 * tok_bytes) // one fused QKV bias/transpose launch
            + streaming_time(dev, 2 * tok_bytes) // fused transpose-back
            + streaming_time(dev, 3 * tok_bytes) // fused bias+residual
    } else {
        // bias ×3, transpose ×3, transpose-back, bias, residual — 9 launches.
        (0..6).map(|_| streaming_time(dev, 2 * tok_bytes)).sum::<f64>()
            + streaming_time(dev, 2 * tok_bytes)
            + streaming_time(dev, 2 * tok_bytes)
            + streaming_time(dev, 3 * tok_bytes)
    };

    AttentionBreakdown { gemm, softmax: sm, layernorm: ln, other }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    #[test]
    fn gemm_rooflines() {
        let d = DeviceKind::V100.config();
        // Large square GEMM: compute-bound, time ≈ flops / (peak · eff).
        let t = gemm_time(&d, 1, 4096, 4096, 4096);
        let ideal = 2.0 * 4096f64.powi(3) / (d.peak_tflops * 1e12 * GEMM_EFFICIENCY);
        assert!((t - ideal - d.launch_overhead()).abs() / ideal < 1e-9);
        // Skinny GEMM: memory-bound.
        let t2 = gemm_time(&d, 1, 1, 768, 768) - d.launch_overhead();
        let mem = 4.0 * (768.0 + 768.0 * 768.0 + 768.0) / (d.mem_bandwidth_gbps * 1e9);
        assert!((t2 - mem).abs() / mem < 1e-9);
    }

    #[test]
    fn streaming_is_bandwidth_plus_launch() {
        let d = DeviceKind::V100.config();
        let t = streaming_time(&d, 900_000_000);
        assert!((t - d.launch_overhead() - 0.001).abs() < 1e-5);
    }

    #[test]
    fn table2_shape_naive_softmax_dominates_large_batch() {
        // The paper's Table 2 headline: at (batch 20, seq 500) PyTorch-style
        // softmax eats the vast majority of attention time; Turbo's doesn't.
        let d = DeviceKind::V100.config();
        let before = attention_layer_time(
            &d,
            20,
            500,
            12,
            64,
            SoftmaxAlgo::Naive,
            LayerNormAlgo::TurboOnePass,
            true,
        );
        let after = attention_layer_time(
            &d,
            20,
            500,
            12,
            64,
            SoftmaxAlgo::TurboXElem,
            LayerNormAlgo::TurboOnePass,
            true,
        );
        assert!(
            before.softmax_share() > 0.45,
            "naive softmax share {:.3} should dominate the layer \
             (paper reports 90.7 %; our bandwidth model bounds how bad the \
             framework path can get — see EXPERIMENTS.md)",
            before.softmax_share()
        );
        assert!(
            after.softmax_share() < 0.25,
            "turbo softmax share {:.3} should be small",
            after.softmax_share()
        );
    }

    #[test]
    fn layernorm_share_shrinks_after_optimization() {
        let d = DeviceKind::V100.config();
        let before = attention_layer_time(
            &d,
            20,
            100,
            12,
            64,
            SoftmaxAlgo::TurboXElem,
            LayerNormAlgo::Naive,
            true,
        );
        let after = attention_layer_time(
            &d,
            20,
            100,
            12,
            64,
            SoftmaxAlgo::TurboXElem,
            LayerNormAlgo::TurboOnePass,
            true,
        );
        assert!(before.layernorm_share() > after.layernorm_share());
    }

    #[test]
    fn fusion_saves_launches() {
        let d = DeviceKind::RTX2060.config();
        let fused = attention_layer_time(
            &d,
            1,
            40,
            12,
            64,
            SoftmaxAlgo::TurboXElem,
            LayerNormAlgo::TurboOnePass,
            true,
        );
        let unfused = attention_layer_time(
            &d,
            1,
            40,
            12,
            64,
            SoftmaxAlgo::TurboXElem,
            LayerNormAlgo::TurboOnePass,
            false,
        );
        assert!(unfused.other > fused.other, "unfused glue must cost more launches");
        assert!(unfused.total() > fused.total());
    }
}
