//! A tiled shared-memory GEMM kernel model — the cuBLAS stand-in at
//! instruction granularity.
//!
//! The op-level cost model ([`crate::cost::gemm_time`]) prices GEMM with a
//! roofline at a fixed efficiency. This module builds the actual schedule a
//! tiled SGEMM thread block executes — staged global→shared copies,
//! barriers, and FFMA inner products over register accumulators — and runs
//! it through the same pipeline scoreboard as the reduction kernels. Its
//! jobs:
//!
//! 1. **validate the roofline**: on large shapes the simulated kernel must
//!    land near the efficiency constant the cost model assumes;
//! 2. **expose the small-GEMM cliff**: tiny shapes are latency/launch-bound
//!    and fall far below peak — the regime where variable-length serving
//!    lives and batching pays (paper Fig. 8).

use crate::device::DeviceConfig;
use crate::launch::{kernel_time, KernelLaunch};
use crate::pipeline::{simulate, Instr, Op};
use crate::reduction::RegAlloc;

/// Classic tile geometry: a 128-thread block computes a 64×64 output tile,
/// staging 64×16 / 16×64 operand panels through shared memory; each thread
/// accumulates a 4×8 register tile.
#[derive(Debug, Clone, Copy)]
pub struct TileConfig {
    /// Output tile rows per block.
    pub bm: usize,
    /// Output tile cols per block.
    pub bn: usize,
    /// Contraction-panel depth per stage.
    pub bk: usize,
    /// Threads per block.
    pub threads: usize,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig { bm: 64, bn: 64, bk: 16, threads: 128 }
    }
}

impl TileConfig {
    /// Output elements (and accumulator registers) owned by each thread.
    pub fn accs_per_thread(&self) -> usize {
        (self.bm * self.bn).div_ceil(self.threads)
    }
}

/// Build the per-block instruction trace of a tiled GEMM with `k` as the
/// contraction extent.
pub fn gemm_block_trace(tile: &TileConfig, k: usize) -> Vec<Instr> {
    let mut regs = RegAlloc::default();
    let mut trace = Vec::new();
    let stages = k.div_ceil(tile.bk).max(1);
    let accs: Vec<u32> = (0..tile.accs_per_thread()).map(|_| regs.fresh()).collect();

    // Per stage: each thread copies its share of both operand panels into
    // shared memory, barriers, then runs bk FFMA sweeps over its register
    // tile (independent chains across accumulators — the ILP that makes
    // GEMM pipelines dense), and barriers again before the next stage
    // overwrites the panels.
    let copies_per_thread = ((tile.bm + tile.bn) * tile.bk).div_ceil(tile.threads);
    for _ in 0..stages {
        for _ in 0..copies_per_thread {
            let v = regs.fresh();
            trace.push(Instr::new(Op::SharedStore, Some(v), vec![]));
        }
        trace.push(Instr::new(Op::Sync, None, vec![]));
        for _ in 0..tile.bk {
            // Operand fragments come from shared memory once per sweep…
            let a = regs.fresh();
            trace.push(Instr::new(Op::SharedLoad, Some(a), vec![]));
            let b = regs.fresh();
            trace.push(Instr::new(Op::SharedLoad, Some(b), vec![]));
            // …then fan out across the accumulators.
            for &acc in &accs {
                trace.push(Instr::new(Op::Arith, Some(acc), vec![acc, a, b]));
            }
        }
        trace.push(Instr::new(Op::Sync, None, vec![]));
    }
    trace
}

/// Simulated time of a (batched) `m×k·k×n` GEMM through the tiled-kernel
/// model, seconds (one launch).
pub fn gemm_kernel_time(dev: &DeviceConfig, batch: usize, m: usize, k: usize, n: usize) -> f64 {
    let tile = TileConfig::default();
    let blocks = batch * m.div_ceil(tile.bm) * n.div_ceil(tile.bn);
    let stats = simulate(dev, &gemm_block_trace(&tile, k));
    // DRAM traffic: each block streams its operand panels once (A panel
    // bm×k + B panel k×bn) and writes its tile.
    let per_block_bytes = 4 * (tile.bm * k + k * tile.bn + tile.bm * tile.bn);
    let flops = 2 * batch * m * n * k;
    let launch = KernelLaunch {
        blocks,
        stats,
        bytes: (blocks * per_block_bytes) as u64,
        flops: flops as u64,
    };
    // GEMM tiles stage fat shared-memory panels: residency is occupancy-
    // bound, not the device default.
    let kres =
        crate::occupancy::KernelResources::gemm_tile(tile.bm, tile.bn, tile.bk, tile.threads);
    let dev = crate::occupancy::with_kernel_occupancy(dev, &kres);
    kernel_time(&dev, &launch)
}

/// Effective fraction of peak FLOP/s the simulated kernel achieves on a
/// shape — the quantity the cost model's `GEMM_EFFICIENCY` constant
/// abstracts.
pub fn effective_efficiency(dev: &DeviceConfig, batch: usize, m: usize, k: usize, n: usize) -> f64 {
    let t = gemm_kernel_time(dev, batch, m, k, n) - dev.launch_overhead();
    let flops = 2.0 * batch as f64 * m as f64 * n as f64 * k as f64;
    (flops / t) / (dev.peak_tflops * 1e12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::GEMM_EFFICIENCY;
    use crate::device::DeviceKind;

    #[test]
    fn trace_has_two_barriers_per_stage() {
        let tile = TileConfig::default();
        let dev = DeviceKind::V100.config();
        let stats = simulate(&dev, &gemm_block_trace(&tile, 64));
        assert_eq!(stats.syncs, 2 * 4, "4 stages of bk=16 for k=64");
    }

    #[test]
    fn large_gemm_lands_near_the_roofline_constant() {
        // The whole point: the instruction-level model justifies the
        // cost model's flat efficiency within a factor of ~1.5 on big
        // compute-bound shapes.
        let dev = DeviceKind::V100.config();
        let eff = effective_efficiency(&dev, 1, 2048, 2048, 2048);
        assert!(
            (GEMM_EFFICIENCY / 1.6..=1.0).contains(&eff),
            "simulated efficiency {eff:.3} should bracket the assumed {GEMM_EFFICIENCY}"
        );
    }

    #[test]
    fn small_gemms_fall_off_the_cliff() {
        let dev = DeviceKind::RTX2060.config();
        let small = effective_efficiency(&dev, 1, 16, 768, 768);
        let large = effective_efficiency(&dev, 1, 2048, 768, 768);
        assert!(small < large / 3.0, "tiny GEMMs must be far below peak: {small:.4} vs {large:.4}");
    }

    #[test]
    fn batching_small_gemms_recovers_efficiency() {
        // The Fig. 8 mechanism at kernel level: 20 batched seq-10 requests
        // beat 20 sequential ones.
        let dev = DeviceKind::RTX2060.config();
        let sequential = 20.0 * gemm_kernel_time(&dev, 1, 10, 768, 768);
        let batched = gemm_kernel_time(&dev, 1, 200, 768, 768);
        assert!(
            batched < sequential / 2.0,
            "batched {batched} should be far under sequential {sequential}"
        );
    }

    #[test]
    fn time_scales_roughly_linearly_in_flops_when_saturated() {
        let dev = DeviceKind::V100.config();
        let t1 = gemm_kernel_time(&dev, 1, 1024, 1024, 1024) - dev.launch_overhead();
        let t2 = gemm_kernel_time(&dev, 1, 2048, 1024, 1024) - dev.launch_overhead();
        let ratio = t2 / t1;
        assert!((1.7..2.3).contains(&ratio), "2× flops ⇒ ≈2× time, got {ratio:.2}");
    }
}
