//! Scoreboarded in-order issue model for warp instruction traces.
//!
//! The paper's Figure 4 argues at exactly this level: in the classic batch
//! reduction the `FADD` consuming a `SHFL.DOWN` result "can only be issued
//! until the SHFL is completely finished", while interleaving `X` independent
//! reductions lets another `SHFL.DOWN` issue immediately. This module prices
//! a per-warp instruction trace under that model and reports both:
//!
//! - `latency_cycles` — in-order issue with register-dependency stalls: the
//!   time one warp needs when nothing else hides its latency;
//! - `issue_cycles` — the pipeline-occupancy cost (issue slots + barrier
//!   drains + divergence replay): the floor that survives even at full
//!   occupancy, when co-resident blocks hide raw latencies.
//!
//! [`crate::launch`] combines the two with the grid geometry.

use crate::device::DeviceConfig;

/// Instruction classes the reduction kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Warp shuffle (`SHFL.DOWN` / `SHFL.BFLY`).
    Shfl,
    /// Simple FP arithmetic (`FADD`, `FMUL`, `FFMA`, `FMAX`).
    Arith,
    /// Special-function unit op (`MUFU.EX2` for exp, `MUFU.RSQ` for rsqrt).
    Sfu,
    /// Shared-memory load.
    SharedLoad,
    /// Shared-memory store.
    SharedStore,
    /// `__syncthreads()` barrier: waits for all outstanding results, then
    /// pays the drain/reconverge cost.
    Sync,
    /// A divergent boundary branch: the warp replays both paths.
    Diverge,
}

/// A single warp-level instruction with register dependencies.
///
/// Registers are abstract ids scoped to the trace; `dst: None` models ops
/// with no consumed result (stores, syncs).
#[derive(Debug, Clone)]
pub struct Instr {
    /// Instruction class.
    pub op: Op,
    /// Destination register, if the op produces a value.
    pub dst: Option<u32>,
    /// Source registers the op must wait for.
    pub srcs: Vec<u32>,
}

impl Instr {
    /// Convenience constructor.
    pub fn new(op: Op, dst: Option<u32>, srcs: impl Into<Vec<u32>>) -> Self {
        Instr { op, dst, srcs: srcs.into() }
    }
}

/// Aggregate cost of a simulated trace.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TraceStats {
    /// In-order completion time of the trace with dependency stalls.
    pub latency_cycles: u64,
    /// Issue-slot consumption (throughput floor at full occupancy).
    pub issue_cycles: u64,
    /// Number of barrier instructions.
    pub syncs: u64,
    /// Number of divergent boundary branches.
    pub divergences: u64,
    /// Number of instructions (excluding syncs/divergence markers).
    pub instr_count: u64,
}

fn op_issue(dev: &DeviceConfig, op: Op) -> u64 {
    match op {
        Op::Shfl => dev.shfl_issue,
        Op::Arith => dev.arith_issue,
        Op::Sfu => dev.sfu_issue,
        Op::SharedLoad | Op::SharedStore => dev.shared_issue,
        Op::Sync | Op::Diverge => 0, // priced separately
    }
}

fn op_latency(dev: &DeviceConfig, op: Op) -> u64 {
    match op {
        Op::Shfl => dev.shfl_latency,
        Op::Arith => dev.arith_latency,
        Op::Sfu => dev.sfu_latency,
        Op::SharedLoad | Op::SharedStore => dev.shared_latency,
        Op::Sync | Op::Diverge => 0,
    }
}

/// Simulate a trace on the device's warp scheduler model.
///
/// In-order issue: an instruction issues at the later of (a) the cycle the
/// issue port frees up and (b) the ready time of its sources. `issue_width`
/// independent instructions may share a cycle. A `Sync` waits for every
/// outstanding result then costs `sync_cost`; a `Diverge` marker costs
/// `divergence_penalty` issue-and-latency cycles (the warp replays the
/// branch).
pub fn simulate(dev: &DeviceConfig, trace: &[Instr]) -> TraceStats {
    let mut reg_ready: Vec<u64> = Vec::new();
    let mut clock: u64 = 0; // next issue opportunity
    let mut issued_this_cycle: usize = 0;
    let mut last_completion: u64 = 0;
    let mut stats = TraceStats::default();

    for ins in trace {
        match ins.op {
            Op::Sync => {
                clock = clock.max(last_completion) + dev.sync_cost;
                issued_this_cycle = 0;
                stats.syncs += 1;
                stats.issue_cycles += dev.sync_cost;
                continue;
            }
            Op::Diverge => {
                clock += dev.divergence_penalty;
                issued_this_cycle = 0;
                stats.divergences += 1;
                stats.issue_cycles += dev.divergence_penalty;
                continue;
            }
            _ => {}
        }

        let ready = ins
            .srcs
            .iter()
            .map(|&r| reg_ready.get(r as usize).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);

        let mut at = clock.max(ready);
        if at == clock {
            // Same-cycle dual issue for independent instructions.
            if issued_this_cycle + 1 >= dev.issue_width {
                at += op_issue(dev, ins.op).max(1);
                issued_this_cycle = 0;
            } else {
                issued_this_cycle += 1;
            }
        } else {
            issued_this_cycle = 0;
        }
        clock = clock.max(at);

        let done = at + op_latency(dev, ins.op);
        last_completion = last_completion.max(done);
        if let Some(dst) = ins.dst {
            let idx = dst as usize;
            if reg_ready.len() <= idx {
                reg_ready.resize(idx + 1, 0);
            }
            reg_ready[idx] = done;
        }

        stats.issue_cycles += op_issue(dev, ins.op);
        stats.instr_count += 1;
    }

    stats.latency_cycles = clock.max(last_completion);
    stats
}

/// Merge the stats of `n` repetitions of the same trace executed back to
/// back (e.g. a block looping over rows).
pub fn repeat(stats: TraceStats, n: u64) -> TraceStats {
    TraceStats {
        latency_cycles: stats.latency_cycles * n,
        issue_cycles: stats.issue_cycles * n,
        syncs: stats.syncs * n,
        divergences: stats.divergences * n,
        instr_count: stats.instr_count * n,
    }
}

/// Concatenate stats of two phases executed back to back.
pub fn seq(a: TraceStats, b: TraceStats) -> TraceStats {
    TraceStats {
        latency_cycles: a.latency_cycles + b.latency_cycles,
        issue_cycles: a.issue_cycles + b.issue_cycles,
        syncs: a.syncs + b.syncs,
        divergences: a.divergences + b.divergences,
        instr_count: a.instr_count + b.instr_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    fn dev() -> DeviceConfig {
        DeviceKind::V100.config()
    }

    #[test]
    fn dependent_chain_pays_full_latency() {
        let d = dev();
        // SHFL r1 <- r0 ; FADD r0 <- r0, r1 : FADD stalls on shuffle latency.
        let trace = vec![
            Instr::new(Op::Shfl, Some(1), vec![0]),
            Instr::new(Op::Arith, Some(0), vec![0, 1]),
        ];
        let s = simulate(&d, &trace);
        assert!(
            s.latency_cycles >= d.shfl_latency + d.arith_latency,
            "latency {} must include shuffle latency {}",
            s.latency_cycles,
            d.shfl_latency
        );
    }

    #[test]
    fn independent_instructions_overlap() {
        let d = dev();
        // Two independent SHFL+FADD chains, interleaved (the XElem pattern).
        let interleaved = vec![
            Instr::new(Op::Shfl, Some(2), vec![0]),
            Instr::new(Op::Shfl, Some(3), vec![1]),
            Instr::new(Op::Arith, Some(0), vec![0, 2]),
            Instr::new(Op::Arith, Some(1), vec![1, 3]),
        ];
        // The same work as two sequential dependent chains.
        let sequential = vec![
            Instr::new(Op::Shfl, Some(2), vec![0]),
            Instr::new(Op::Arith, Some(0), vec![0, 2]),
            Instr::new(Op::Shfl, Some(3), vec![1]),
            Instr::new(Op::Arith, Some(1), vec![1, 3]),
        ];
        let si = simulate(&d, &interleaved);
        let ss = simulate(&d, &sequential);
        assert!(
            si.latency_cycles < ss.latency_cycles,
            "interleaving must hide shuffle latency: {} vs {}",
            si.latency_cycles,
            ss.latency_cycles
        );
        assert_eq!(si.issue_cycles, ss.issue_cycles, "same instruction mix, same issue cost");
    }

    #[test]
    fn sync_waits_for_outstanding_results() {
        let d = dev();
        let trace =
            vec![Instr::new(Op::SharedStore, None, vec![0]), Instr::new(Op::Sync, None, vec![])];
        let s = simulate(&d, &trace);
        assert!(s.latency_cycles >= d.shared_latency + d.sync_cost);
        assert_eq!(s.syncs, 1);
    }

    #[test]
    fn divergence_adds_penalty() {
        let d = dev();
        let base = simulate(&d, &[Instr::new(Op::Arith, Some(0), vec![])]);
        let with_div = simulate(
            &d,
            &[Instr::new(Op::Diverge, None, vec![]), Instr::new(Op::Arith, Some(0), vec![])],
        );
        assert_eq!(with_div.latency_cycles, base.latency_cycles + d.divergence_penalty);
        assert_eq!(with_div.divergences, 1);
    }

    #[test]
    fn repeat_and_seq_compose_linearly() {
        let d = dev();
        let s = simulate(&d, &[Instr::new(Op::Arith, Some(0), vec![])]);
        let r = repeat(s, 3);
        assert_eq!(r.latency_cycles, 3 * s.latency_cycles);
        let q = seq(s, r);
        assert_eq!(q.instr_count, 4 * s.instr_count);
    }

    #[test]
    fn empty_trace_is_free() {
        let s = simulate(&dev(), &[]);
        assert_eq!(s, TraceStats::default());
    }
}
