//! Lifetime replay driver for *dynamic* allocators (caching, naive).
//!
//! Planner-style allocators (turbo, GSOC) see all usage records at once;
//! dynamic allocators see a malloc at each tensor's producing op and a free
//! after its last consuming op — the call pattern a framework runtime
//! generates. [`replay`] converts usage records into that event stream and
//! reports the footprint/traffic metrics Figure 7 compares.

use crate::TensorUsage;

/// The dynamic allocation interface (a `cudaMalloc`-level API).
pub trait DynamicAllocator {
    /// Allocate `size` bytes; returns an opaque block handle.
    fn malloc(&mut self, size: usize) -> usize;
    /// Release a previously allocated block.
    fn free(&mut self, block: usize);
    /// Bytes currently reserved from the device (the footprint a monitoring
    /// tool would report).
    fn reserved_bytes(&self) -> usize;
    /// Cumulative count of slow-path device allocations performed.
    fn device_alloc_calls(&self) -> usize;
    /// Cumulative bytes requested from the device.
    fn device_alloc_bytes(&self) -> usize;
}

/// Metrics of one replayed inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Peak reserved bytes observed during the replay.
    pub peak_reserved: usize,
    /// Reserved bytes at the end of the replay.
    pub final_reserved: usize,
    /// Device allocation calls issued *during this replay*.
    pub device_allocs: usize,
    /// Device bytes requested *during this replay*.
    pub device_alloc_bytes: usize,
}

/// Replay one inference's tensor lifetimes against a dynamic allocator:
/// at op `i`, allocate every tensor with `first_op == i`, then free every
/// tensor with `last_op == i`.
pub fn replay<A: DynamicAllocator>(alloc: &mut A, usages: &[TensorUsage]) -> ReplayReport {
    let calls_before = alloc.device_alloc_calls();
    let bytes_before = alloc.device_alloc_bytes();
    let max_op = usages.iter().map(|u| u.last_op).max().unwrap_or(0);

    let mut blocks: Vec<Option<usize>> = vec![None; usages.len()];
    let mut peak = alloc.reserved_bytes();
    for op in 0..=max_op {
        for (i, u) in usages.iter().enumerate() {
            if u.first_op == op {
                blocks[i] = Some(alloc.malloc(u.size));
            }
        }
        peak = peak.max(alloc.reserved_bytes());
        for (i, u) in usages.iter().enumerate() {
            if u.last_op == op {
                if let Some(b) = blocks[i].take() {
                    alloc.free(b);
                }
            }
        }
    }

    ReplayReport {
        peak_reserved: peak,
        final_reserved: alloc.reserved_bytes(),
        device_allocs: alloc.device_alloc_calls() - calls_before,
        device_alloc_bytes: alloc.device_alloc_bytes() - bytes_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveAllocator;

    #[test]
    fn replay_allocs_then_frees_in_op_order() {
        let usages = vec![TensorUsage::new(0, 0, 1, 100), TensorUsage::new(1, 1, 2, 50)];
        let mut a = NaiveAllocator::new();
        let r = replay(&mut a, &usages);
        // At op 1 both are alive: peak 150; everything freed by the end.
        assert_eq!(r.peak_reserved, 150);
        assert_eq!(r.final_reserved, 0);
        assert_eq!(r.device_allocs, 2);
        assert_eq!(r.device_alloc_bytes, 150);
    }

    #[test]
    fn replay_of_nothing_reports_zero() {
        let mut a = NaiveAllocator::new();
        let r = replay(&mut a, &[]);
        assert_eq!(r, ReplayReport::default());
    }
}
