//! A PyTorch/CUB-style caching device allocator.
//!
//! The strategy the paper describes for PyTorch and PaddlePaddle (§4.2,
//! both "inspired by the caching device allocator implemented in the
//! NVlab's cub library"): device memory is requested from the driver in
//! blocks, and freed blocks are kept in a pool and reassigned to later
//! allocations of compatible size instead of being returned.
//!
//! Because the pool has no knowledge of the computation graph, it cannot
//! share bytes between tensors whose lifetimes provably do not overlap; and
//! because block sizes are rounded and never returned, a long-running
//! variable-length service accumulates a footprint well above the live
//! working set — the ~1.1 GB PyTorch plateau of paper Figure 7 against
//! TurboTransformers' ≤ 540 MB.

use crate::sim::DynamicAllocator;

/// Allocation granularity: requests are rounded up to this multiple
/// (PyTorch uses 512-byte rounding).
pub const ROUNDING: usize = 512;

/// A freed block is reused for a request if the request fits and the block
/// is not larger than `REUSE_LIMIT_FACTOR` times the request — reusing a
/// wildly oversized block would waste it (PyTorch applies a similar
/// "best fit within bounds" rule).
pub const REUSE_LIMIT_FACTOR: usize = 2;

#[derive(Debug, Clone, Copy)]
struct Block {
    size: usize,
    in_use: bool,
}

/// Caching allocator: rounds sizes, reuses freed blocks, never returns
/// memory to the device.
#[derive(Debug, Clone, Default)]
pub struct CachingAllocator {
    blocks: Vec<Block>,
    reserved: usize,
    device_calls: usize,
    device_bytes: usize,
    /// Pool hits, for diagnostics.
    reuse_hits: usize,
}

impl CachingAllocator {
    /// Create an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many allocations were served from the pool.
    pub fn reuse_hits(&self) -> usize {
        self.reuse_hits
    }

    fn round(size: usize) -> usize {
        size.div_ceil(ROUNDING).max(1) * ROUNDING
    }
}

impl DynamicAllocator for CachingAllocator {
    fn malloc(&mut self, size: usize) -> usize {
        let want = Self::round(size);
        // Best fit among free blocks within the reuse bound.
        let mut best: Option<usize> = None;
        for (i, b) in self.blocks.iter().enumerate() {
            if !b.in_use && b.size >= want && b.size <= want * REUSE_LIMIT_FACTOR {
                match best {
                    Some(j) if self.blocks[j].size <= b.size => {}
                    _ => best = Some(i),
                }
            }
        }
        if let Some(i) = best {
            self.blocks[i].in_use = true;
            self.reuse_hits += 1;
            return i;
        }
        // Slow path: a fresh device allocation, cached forever.
        self.device_calls += 1;
        self.device_bytes += want;
        self.reserved += want;
        self.blocks.push(Block { size: want, in_use: true });
        self.blocks.len() - 1
    }

    fn free(&mut self, block: usize) {
        let b = &mut self.blocks[block];
        assert!(b.in_use, "double free of cached block");
        b.in_use = false;
        // Memory stays reserved — that is the point of the cache.
    }

    fn reserved_bytes(&self) -> usize {
        self.reserved
    }

    fn device_alloc_calls(&self) -> usize {
        self.device_calls
    }

    fn device_alloc_bytes(&self) -> usize {
        self.device_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::replay;
    use crate::TensorUsage;

    #[test]
    fn freed_blocks_are_reused() {
        let mut a = CachingAllocator::new();
        let b = a.malloc(1000);
        a.free(b);
        let _b2 = a.malloc(900); // rounds to 1024, fits block of 1024
        assert_eq!(a.device_alloc_calls(), 1, "second malloc must hit the pool");
        assert_eq!(a.reuse_hits(), 1);
        assert_eq!(a.reserved_bytes(), 1024);
    }

    #[test]
    fn oversized_blocks_are_not_wasted_on_tiny_requests() {
        let mut a = CachingAllocator::new();
        let b = a.malloc(1 << 20); // 1 MiB block
        a.free(b);
        let _tiny = a.malloc(512);
        assert_eq!(
            a.device_alloc_calls(),
            2,
            "a 1 MiB block must not be burned on a 512 B request"
        );
    }

    #[test]
    fn memory_is_never_returned() {
        let mut a = CachingAllocator::new();
        let b = a.malloc(4096);
        a.free(b);
        assert_eq!(a.reserved_bytes(), 4096, "cache retains freed memory");
    }

    #[test]
    fn rounding_is_applied() {
        let mut a = CachingAllocator::new();
        a.malloc(1);
        assert_eq!(a.reserved_bytes(), ROUNDING);
    }

    #[test]
    fn footprint_exceeds_graph_aware_reuse() {
        // Two tensors with disjoint lifetimes but different rounded sizes:
        // a graph-aware planner overlaps them; the cache cannot, so it holds
        // both. (Sizes differ by more than 2× to defeat the reuse bound.)
        let usages = vec![TensorUsage::new(0, 0, 1, 10_000), TensorUsage::new(1, 2, 3, 1_000)];
        let mut a = CachingAllocator::new();
        let r = replay(&mut a, &usages);
        assert!(r.final_reserved >= 10_240 + 1_024);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_is_detected() {
        let mut a = CachingAllocator::new();
        let b = a.malloc(64);
        a.free(b);
        a.free(b);
    }
}
