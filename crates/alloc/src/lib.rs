//! # tt-alloc — memory allocators for variable-length inference
//!
//! The paper's second contribution (§4.2): intermediate activation tensors
//! of a transformer change size with every request, so neither "plan once,
//! reuse forever" (fixed-length planners) nor "malloc/free per tensor"
//! (caching device allocators) is satisfactory. TurboTransformers re-plans
//! offsets *per request* over a persistent list of cached chunks, combining
//! graph-topology-aware space reuse with cache-style allocation efficiency.
//!
//! This crate implements the paper's allocator and every baseline it is
//! measured against:
//!
//! - [`turbo`] — the sequence-length-aware chunked allocator
//!   (paper Algorithms 1 and 2);
//! - [`gsoc`] — *Greedy-by-Size for Offset Calculation* (Pisarchyk & Lee),
//!   the near-optimal fixed-length planner the paper compares footprints
//!   against in Figure 7;
//! - [`caching`] — a PyTorch/CUB-style caching device allocator
//!   (malloc/free per tensor against a reuse pool);
//! - [`naive`] — `cudaMalloc`/`cudaFree` per tensor, the strawman whose
//!   50 % allocation-stall the paper cites on Tesla M40;
//! - [`paged`] — a paged KV-cache arena extending the chunked-reuse idea
//!   from single-graph-pass lifetimes to the multi-iteration lifetimes of
//!   autoregressive decoding (per-sequence page tables, O(1) append,
//!   immediate reclamation).
//!
//! All allocators speak [`TensorUsage`] — the `{first_op, last_op, size}`
//! records extracted from a topologically-sorted computation graph by
//! `tt-graph` — and produce either an offset [`Plan`] (planners) or an event
//! log (dynamic allocators). [`validate_plan`] checks the safety invariant:
//! tensors with overlapping lifetimes never share bytes.

pub mod caching;
pub mod gsoc;
pub mod naive;
pub mod paged;
pub mod sim;
pub mod turbo;

pub use paged::{KvError, KvSeq, PageSlot, PagedKvArena, PagedKvConfig};
pub use turbo::{AllocMetrics, TurboAllocator, TurboConfig};

/// Identifier of an activation tensor within one inference plan.
pub type TensorId = usize;

/// Lifetime + size record of one intermediate tensor, in execution order of
/// a topologically sorted graph: the tensor is produced by `first_op` and
/// last read by `last_op` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorUsage {
    /// Tensor id (index into the graph's activation table).
    pub id: TensorId,
    /// Index of the producing operator.
    pub first_op: usize,
    /// Index of the last consuming operator.
    pub last_op: usize,
    /// Size in bytes.
    pub size: usize,
}

impl TensorUsage {
    /// Create a usage record. `first_op <= last_op` is required.
    pub fn new(id: TensorId, first_op: usize, last_op: usize, size: usize) -> Self {
        assert!(first_op <= last_op, "tensor {id}: first_op {first_op} > last_op {last_op}");
        TensorUsage { id, first_op, last_op, size }
    }

    /// Whether two tensors are ever alive at the same operator.
    pub fn lifetime_overlaps(&self, other: &TensorUsage) -> bool {
        self.first_op.max(other.first_op) <= self.last_op.min(other.last_op)
    }
}

/// Placement of one tensor in chunked memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The tensor being placed.
    pub tensor: TensorId,
    /// Chunk index.
    pub chunk: usize,
    /// Byte offset within the chunk.
    pub offset: usize,
    /// Size in bytes (copied from the usage record).
    pub size: usize,
}

/// A complete offset plan for one inference.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Plan {
    /// One assignment per tensor, in the order of the input records.
    pub assignments: Vec<Assignment>,
    /// Size of each chunk, bytes. Planners that use a single unbounded
    /// region report one chunk.
    pub chunk_sizes: Vec<usize>,
}

impl Plan {
    /// Total memory footprint of the plan (sum of chunk sizes).
    pub fn footprint(&self) -> usize {
        self.chunk_sizes.iter().sum()
    }

    /// Look up the assignment of a tensor.
    pub fn assignment_of(&self, id: TensorId) -> Option<&Assignment> {
        self.assignments.iter().find(|a| a.tensor == id)
    }
}

/// Error produced by [`validate_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A tensor was not assigned.
    Missing(TensorId),
    /// An assignment runs past the end of its chunk.
    OutOfChunk(TensorId),
    /// Two simultaneously-live tensors overlap in memory.
    Overlap(TensorId, TensorId),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Missing(t) => write!(f, "tensor {t} has no assignment"),
            PlanError::OutOfChunk(t) => write!(f, "tensor {t} overruns its chunk"),
            PlanError::Overlap(a, b) => {
                write!(f, "tensors {a} and {b} are simultaneously live but share bytes")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Check the safety invariant of an offset plan: every tensor is placed,
/// fits its chunk, and no two tensors with overlapping lifetimes overlap in
/// memory. O(n²) — plans are per-request and small (hundreds of tensors).
pub fn validate_plan(usages: &[TensorUsage], plan: &Plan) -> Result<(), PlanError> {
    let by_id = |id: TensorId| plan.assignments.iter().find(|a| a.tensor == id);
    for u in usages {
        let a = by_id(u.id).ok_or(PlanError::Missing(u.id))?;
        let chunk_size = *plan.chunk_sizes.get(a.chunk).ok_or(PlanError::OutOfChunk(u.id))?;
        if a.offset + a.size > chunk_size {
            return Err(PlanError::OutOfChunk(u.id));
        }
    }
    for (i, u) in usages.iter().enumerate() {
        for v in &usages[i + 1..] {
            if !u.lifetime_overlaps(v) {
                continue;
            }
            let (a, b) = (by_id(u.id).unwrap(), by_id(v.id).unwrap());
            let mem_overlap =
                a.chunk == b.chunk && a.offset < b.offset + b.size && b.offset < a.offset + a.size;
            if mem_overlap {
                return Err(PlanError::Overlap(u.id, v.id));
            }
        }
    }
    Ok(())
}

/// Lower bound on any valid plan's footprint: the maximum number of bytes
/// simultaneously alive at any operator.
pub fn peak_live_bytes(usages: &[TensorUsage]) -> usize {
    let max_op = usages.iter().map(|u| u.last_op).max().unwrap_or(0);
    let mut delta = vec![0isize; max_op + 2];
    for u in usages {
        delta[u.first_op] += u.size as isize;
        delta[u.last_op + 1] -= u.size as isize;
    }
    let mut live = 0isize;
    let mut peak = 0isize;
    for d in delta {
        live += d;
        peak = peak.max(live);
    }
    peak as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_overlap_is_inclusive() {
        let a = TensorUsage::new(0, 0, 3, 8);
        let b = TensorUsage::new(1, 3, 5, 8);
        let c = TensorUsage::new(2, 4, 6, 8);
        assert!(a.lifetime_overlaps(&b), "sharing op 3 counts as overlap");
        assert!(!a.lifetime_overlaps(&c));
        assert!(b.lifetime_overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "first_op")]
    fn inverted_lifetime_is_rejected() {
        let _ = TensorUsage::new(0, 5, 2, 8);
    }

    #[test]
    fn validate_catches_overlap() {
        let usages = vec![TensorUsage::new(0, 0, 2, 8), TensorUsage::new(1, 1, 3, 8)];
        let bad = Plan {
            assignments: vec![
                Assignment { tensor: 0, chunk: 0, offset: 0, size: 8 },
                Assignment { tensor: 1, chunk: 0, offset: 4, size: 8 },
            ],
            chunk_sizes: vec![16],
        };
        assert_eq!(validate_plan(&usages, &bad), Err(PlanError::Overlap(0, 1)));
    }

    #[test]
    fn validate_accepts_reuse_of_dead_tensors() {
        let usages = vec![TensorUsage::new(0, 0, 1, 8), TensorUsage::new(1, 2, 3, 8)];
        let plan = Plan {
            assignments: vec![
                Assignment { tensor: 0, chunk: 0, offset: 0, size: 8 },
                Assignment { tensor: 1, chunk: 0, offset: 0, size: 8 },
            ],
            chunk_sizes: vec![8],
        };
        assert_eq!(validate_plan(&usages, &plan), Ok(()));
    }

    #[test]
    fn validate_catches_chunk_overrun_and_missing() {
        let usages = vec![TensorUsage::new(0, 0, 1, 16)];
        let overrun = Plan {
            assignments: vec![Assignment { tensor: 0, chunk: 0, offset: 4, size: 16 }],
            chunk_sizes: vec![16],
        };
        assert_eq!(validate_plan(&usages, &overrun), Err(PlanError::OutOfChunk(0)));
        let missing = Plan::default();
        assert_eq!(validate_plan(&usages, &missing), Err(PlanError::Missing(0)));
    }

    #[test]
    fn peak_live_is_a_tight_lower_bound() {
        // Two disjoint 8-byte tensors: peak 8. One overlapping both: 16.
        let usages = vec![
            TensorUsage::new(0, 0, 1, 8),
            TensorUsage::new(1, 2, 3, 8),
            TensorUsage::new(2, 0, 3, 8),
        ];
        assert_eq!(peak_live_bytes(&usages), 16);
        assert_eq!(peak_live_bytes(&[]), 0);
    }
}
