//! Paged KV-cache arena for autoregressive decoding.
//!
//! The paper's allocator (Algorithms 1 and 2, [`crate::turbo`]) reasons
//! about activation tensors whose lifetimes span *one graph pass*. A
//! generative decoder breaks that assumption: each request owns per-layer
//! key/value tensors that grow **one token slot per engine iteration** and
//! live until the request finishes — many iterations later, interleaved
//! with every other active request. Offset re-planning per request would
//! either copy the growing cache every step or fragment the chunk list
//! beyond repair.
//!
//! This module extends the chunked-reuse idea to multi-iteration lifetimes
//! the way vLLM-style serving stacks do: physical memory is a fixed arena
//! of **pages** of `page_slots` token slots each, and every sequence holds
//! a **page table** mapping its logical token positions to physical pages.
//! Appending a token is O(1) (bump the length; allocate one page from the
//! free list when crossing a page boundary), and releasing a finished or
//! expired sequence returns all of its pages to the free list *immediately*
//! — the next admission can reuse them in the same engine iteration.
//!
//! One page covers its slot range in **every** layer simultaneously: layer
//! `l`'s keys live in `k[l]`, and page `p` slot `s` addresses the same
//! token in each layer's buffer. A sequence therefore needs a single page
//! table, and the page budget (`num_pages`) is counted once, not per layer.
//!
//! Waste is observable, not hidden: [`PagedKvArena::occupancy`] reports
//! used slots over allocated slots (internal fragmentation is `1 −
//! occupancy`), and [`PagedKvArena::instrument`] publishes
//! `kv_pages_in_use` / `kv_page_occupancy` gauges plus allocation and
//! failure counters into a `tt-telemetry` registry.
//!
//! Failure is typed, not fatal: running out of pages — genuinely, or via
//! the `tt-chaos` [`kv_alloc_fail`](tt_chaos::kv_alloc_fail) injection
//! point — yields [`KvError::OutOfPages`] so the serving layer can retire
//! exactly one sequence and keep decoding everyone else.

use std::sync::Arc;

use tt_telemetry::{Counter, Gauge, Registry};

/// Shape of a paged KV arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedKvConfig {
    /// Transformer layers (one K and one V buffer each).
    pub layers: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Token slots per page. Smaller pages waste less tail capacity per
    /// sequence but grow page tables faster; 16 is a common sweet spot.
    pub page_slots: usize,
    /// Physical pages in the arena — the serving layer's admission budget.
    pub num_pages: usize,
}

impl PagedKvConfig {
    /// Floats one token slot occupies in one layer's K (or V) buffer.
    pub fn slot_floats(&self) -> usize {
        self.heads * self.head_dim
    }

    /// Total token-slot capacity of the arena.
    pub fn total_slots(&self) -> usize {
        self.num_pages * self.page_slots
    }

    /// Bytes of K+V backing storage the arena allocates up front.
    pub fn arena_bytes(&self) -> usize {
        2 * self.layers * self.total_slots() * self.slot_floats() * std::mem::size_of::<f32>()
    }

    /// Pages needed to hold `slots` token slots.
    pub fn pages_for(&self, slots: usize) -> usize {
        slots.div_ceil(self.page_slots)
    }
}

/// Handle to one sequence's cache. Carries a generation stamp so a stale
/// handle (used after [`PagedKvArena::release`]) is a typed error, never a
/// silent read of another sequence's pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KvSeq {
    index: u32,
    generation: u32,
}

/// Physical location of one logical token position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSlot {
    /// Physical page index.
    pub page: usize,
    /// Slot within the page.
    pub slot: usize,
}

/// Why the arena refused an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The free list cannot satisfy the allocation — the admission budget
    /// is spent (or the `tt-chaos` `kv_alloc_fail` point fired, which the
    /// serving layer must treat identically).
    OutOfPages {
        /// Pages the operation needed.
        requested: usize,
        /// Pages currently free.
        free: usize,
    },
    /// The handle does not name a live sequence (already released, or
    /// from another arena).
    UnknownSeq,
    /// The position is outside the sequence's written length.
    OutOfRange {
        /// The offending token position.
        pos: usize,
        /// The sequence's current length.
        len: usize,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::OutOfPages { requested, free } => {
                write!(f, "KV arena out of pages: requested {requested}, free {free}")
            }
            KvError::UnknownSeq => write!(f, "unknown or released KV sequence handle"),
            KvError::OutOfRange { pos, len } => {
                write!(f, "token position {pos} outside sequence length {len}")
            }
        }
    }
}

impl std::error::Error for KvError {}

/// Per-sequence state: the page table and the written length.
#[derive(Debug)]
struct SeqState {
    /// Physical page per logical page index (`pos / page_slots`).
    pages: Vec<u32>,
    /// Token slots written (or reserved by [`PagedKvArena::append`]).
    len: usize,
}

/// Telemetry handles, published on every allocation/release.
#[derive(Debug, Clone)]
struct KvMetrics {
    pages_in_use: Arc<Gauge>,
    occupancy: Arc<Gauge>,
    pages_allocated: Arc<Counter>,
    alloc_failures: Arc<Counter>,
}

/// The arena: per-layer K/V backing buffers, a page free list, and the
/// live sequences' page tables. Single-writer by design — the continuous
/// batching engine owns it on one thread, matching the paper's serving
/// loop; readers borrow through the engine.
pub struct PagedKvArena {
    config: PagedKvConfig,
    /// `k[layer][ (page * page_slots + slot) * heads * head_dim .. ]`.
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    free: Vec<u32>,
    seqs: Vec<Option<SeqState>>,
    generations: Vec<u32>,
    free_seq_indices: Vec<u32>,
    used_slots: usize,
    metrics: Option<KvMetrics>,
}

impl std::fmt::Debug for PagedKvArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedKvArena")
            .field("config", &self.config)
            .field("pages_in_use", &self.pages_in_use())
            .field("active_seqs", &self.active_seqs())
            .field("used_slots", &self.used_slots)
            .finish()
    }
}

impl PagedKvArena {
    /// Allocate the arena's backing storage up front ([`PagedKvConfig::arena_bytes`]).
    pub fn new(config: PagedKvConfig) -> Self {
        assert!(config.layers > 0 && config.heads > 0 && config.head_dim > 0);
        assert!(config.page_slots > 0, "pages must hold at least one token slot");
        let layer_floats = config.total_slots() * config.slot_floats();
        let k = (0..config.layers).map(|_| vec![0.0f32; layer_floats]).collect();
        let v = (0..config.layers).map(|_| vec![0.0f32; layer_floats]).collect();
        // Pop order low→high keeps early pages hot in cache.
        let free = (0..config.num_pages as u32).rev().collect();
        PagedKvArena {
            config,
            k,
            v,
            free,
            seqs: Vec::new(),
            generations: Vec::new(),
            free_seq_indices: Vec::new(),
            used_slots: 0,
            metrics: None,
        }
    }

    /// Register the `kv_*` metric family in `registry`; gauges track every
    /// subsequent allocation and release.
    pub fn instrument(&mut self, registry: &Registry) {
        self.metrics = Some(KvMetrics {
            pages_in_use: registry.gauge(
                "kv_pages_in_use",
                "Physical KV-cache pages currently assigned to live sequences",
                &[],
            ),
            occupancy: registry.gauge(
                "kv_page_occupancy",
                "Used token slots over allocated slots (1 − internal fragmentation)",
                &[],
            ),
            pages_allocated: registry.counter(
                "kv_pages_allocated_total",
                "KV-cache page allocations (cumulative)",
                &[],
            ),
            alloc_failures: registry.counter(
                "kv_alloc_failures_total",
                "KV-cache page allocations refused (exhaustion or injected fault)",
                &[],
            ),
        });
        self.publish();
    }

    /// The arena's shape.
    pub fn config(&self) -> &PagedKvConfig {
        &self.config
    }

    /// Pages currently assigned to live sequences.
    pub fn pages_in_use(&self) -> usize {
        self.config.num_pages - self.free.len()
    }

    /// Pages on the free list.
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Token slots written across all live sequences.
    pub fn used_slots(&self) -> usize {
        self.used_slots
    }

    /// Live sequences.
    pub fn active_seqs(&self) -> usize {
        self.seqs.iter().filter(|s| s.is_some()).count()
    }

    /// Used slots over allocated slots — `1.0` with no pages allocated
    /// (nothing is wasted). Internal fragmentation is `1 − occupancy`:
    /// tail slots of each sequence's last page, reserved but unwritten.
    pub fn occupancy(&self) -> f64 {
        let allocated = self.pages_in_use() * self.config.page_slots;
        if allocated == 0 {
            1.0
        } else {
            self.used_slots as f64 / allocated as f64
        }
    }

    /// Internal fragmentation: the fraction of allocated slots no token
    /// occupies.
    pub fn fragmentation(&self) -> f64 {
        1.0 - self.occupancy()
    }

    /// Whether an admission needing `slots` token slots (plus one decode
    /// slot of headroom) fits the current free list. The serving layer's
    /// page-budget admission check.
    pub fn can_admit(&self, slots: usize) -> bool {
        self.config.pages_for(slots + 1) <= self.free.len()
    }

    /// Admit a new sequence, reserving pages for `prompt_len` token slots
    /// up front (the prefill then writes them without touching the free
    /// list). The sequence starts empty: [`append`](Self::append) claims
    /// slot positions one at a time.
    pub fn admit(&mut self, prompt_len: usize) -> Result<KvSeq, KvError> {
        let needed = self.config.pages_for(prompt_len);
        let mut pages = Vec::with_capacity(needed);
        for _ in 0..needed {
            match self.alloc_page() {
                Ok(p) => pages.push(p),
                Err(e) => {
                    // Roll the partial reservation back: admission is
                    // all-or-nothing, pages never leak on the error path.
                    for p in pages {
                        self.free.push(p);
                    }
                    self.publish();
                    // Report the whole refused reservation against the
                    // *post-rollback* free count — the state the caller
                    // actually observes.
                    return Err(match e {
                        KvError::OutOfPages { .. } => {
                            KvError::OutOfPages { requested: needed, free: self.free.len() }
                        }
                        other => other,
                    });
                }
            }
        }
        let state = SeqState { pages, len: 0 };
        let index = match self.free_seq_indices.pop() {
            Some(i) => {
                self.seqs[i as usize] = Some(state);
                i
            }
            None => {
                self.seqs.push(Some(state));
                self.generations.push(0);
                (self.seqs.len() - 1) as u32
            }
        };
        self.publish();
        Ok(KvSeq { index, generation: self.generations[index as usize] })
    }

    /// Claim the next token slot of `seq`, allocating a fresh page when the
    /// position crosses a page boundary. Returns the claimed position.
    /// On [`KvError::OutOfPages`] the sequence is unchanged — the caller
    /// can retire it (releasing its pages) and keep serving others.
    pub fn append(&mut self, seq: KvSeq) -> Result<usize, KvError> {
        self.state_of(seq)?;
        let (len, have_pages) = {
            let s = self.seqs[seq.index as usize].as_ref().expect("checked live");
            (s.len, s.pages.len())
        };
        if len == have_pages * self.config.page_slots {
            let page = self.alloc_page().inspect_err(|_| self.publish())?;
            self.seqs[seq.index as usize].as_mut().expect("checked live").pages.push(page);
        }
        self.seqs[seq.index as usize].as_mut().expect("checked live").len += 1;
        self.used_slots += 1;
        self.publish();
        Ok(len)
    }

    /// Write the K/V vectors of token `pos` (each `heads * head_dim`
    /// floats) into `layer`'s buffers. `pos` must already be claimed by
    /// [`append`](Self::append).
    pub fn write(
        &mut self,
        seq: KvSeq,
        layer: usize,
        pos: usize,
        k: &[f32],
        v: &[f32],
    ) -> Result<(), KvError> {
        let sf = self.config.slot_floats();
        assert_eq!(k.len(), sf, "K vector must be heads*head_dim floats");
        assert_eq!(v.len(), sf, "V vector must be heads*head_dim floats");
        assert!(layer < self.config.layers, "layer {layer} out of range");
        let base = self.float_base(seq, pos)?;
        self.k[layer][base..base + sf].copy_from_slice(k);
        self.v[layer][base..base + sf].copy_from_slice(v);
        Ok(())
    }

    /// The K and V blocks of token `pos` in `layer`, each laid out
    /// `[head][head_dim]` contiguously.
    pub fn kv_at(&self, seq: KvSeq, layer: usize, pos: usize) -> Result<(&[f32], &[f32]), KvError> {
        assert!(layer < self.config.layers, "layer {layer} out of range");
        let sf = self.config.slot_floats();
        let base = self.float_base(seq, pos)?;
        Ok((&self.k[layer][base..base + sf], &self.v[layer][base..base + sf]))
    }

    /// Translate a logical token position to its physical page and slot.
    pub fn translate(&self, seq: KvSeq, pos: usize) -> Result<PageSlot, KvError> {
        let state = self.state_of(seq)?;
        if pos >= state.len {
            return Err(KvError::OutOfRange { pos, len: state.len });
        }
        Ok(PageSlot {
            page: state.pages[pos / self.config.page_slots] as usize,
            slot: pos % self.config.page_slots,
        })
    }

    /// Token slots written for `seq`.
    pub fn len_of(&self, seq: KvSeq) -> Result<usize, KvError> {
        Ok(self.state_of(seq)?.len)
    }

    /// Release a finished (or expired) sequence: every page returns to the
    /// free list *now*, and the handle's generation is retired so later
    /// uses are [`KvError::UnknownSeq`]. Returns the number of pages freed.
    pub fn release(&mut self, seq: KvSeq) -> Result<usize, KvError> {
        self.state_of(seq)?;
        let state = self.seqs[seq.index as usize].take().expect("checked live");
        let freed = state.pages.len();
        self.free.extend(state.pages);
        self.used_slots -= state.len;
        self.generations[seq.index as usize] = self.generations[seq.index as usize].wrapping_add(1);
        self.free_seq_indices.push(seq.index);
        self.publish();
        Ok(freed)
    }

    fn state_of(&self, seq: KvSeq) -> Result<&SeqState, KvError> {
        self.seqs
            .get(seq.index as usize)
            .and_then(|s| s.as_ref())
            .filter(|_| self.generations[seq.index as usize] == seq.generation)
            .ok_or(KvError::UnknownSeq)
    }

    /// Float offset of token `pos`'s slot within a layer buffer.
    fn float_base(&self, seq: KvSeq, pos: usize) -> Result<usize, KvError> {
        let loc = self.translate(seq, pos)?;
        Ok((loc.page * self.config.page_slots + loc.slot) * self.config.slot_floats())
    }

    /// Pop one page off the free list. The `tt-chaos` `kv_alloc_fail`
    /// injection point fires here, indistinguishable (by design) from
    /// genuine exhaustion.
    fn alloc_page(&mut self) -> Result<u32, KvError> {
        if tt_chaos::kv_alloc_fail() {
            if let Some(m) = &self.metrics {
                m.alloc_failures.inc();
            }
            return Err(KvError::OutOfPages { requested: 1, free: self.free.len() });
        }
        match self.free.pop() {
            Some(p) => {
                if let Some(m) = &self.metrics {
                    m.pages_allocated.inc();
                }
                Ok(p)
            }
            None => {
                if let Some(m) = &self.metrics {
                    m.alloc_failures.inc();
                }
                Err(KvError::OutOfPages { requested: 1, free: 0 })
            }
        }
    }

    fn publish(&self) {
        if let Some(m) = &self.metrics {
            m.pages_in_use.set(self.pages_in_use() as f64);
            m.occupancy.set(self.occupancy());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PagedKvConfig {
        PagedKvConfig { layers: 2, heads: 2, head_dim: 4, page_slots: 4, num_pages: 8 }
    }

    #[test]
    fn admit_reserves_prompt_pages_and_append_claims_positions() {
        let mut a = PagedKvArena::new(tiny());
        let seq = a.admit(5).expect("fits"); // ceil(5/4) = 2 pages
        assert_eq!(a.pages_in_use(), 2);
        assert_eq!(a.len_of(seq).unwrap(), 0);
        for expect in 0..5 {
            assert_eq!(a.append(seq).unwrap(), expect);
        }
        assert_eq!(a.pages_in_use(), 2, "prompt slots fit the reservation");
        // Slots 5..8 fill the reserved tail; slot 8 needs a third page.
        for _ in 5..8 {
            a.append(seq).unwrap();
        }
        assert_eq!(a.pages_in_use(), 2);
        a.append(seq).unwrap();
        assert_eq!(a.pages_in_use(), 3, "crossing a page boundary allocates");
    }

    #[test]
    fn write_read_round_trips_through_the_page_table() {
        let cfg = tiny();
        let sf = cfg.slot_floats();
        let mut a = PagedKvArena::new(cfg);
        let s1 = a.admit(2).unwrap();
        let s2 = a.admit(2).unwrap();
        for (tag, seq) in [(10.0f32, s1), (20.0, s2)] {
            for pos in 0..6 {
                a.append(seq).unwrap();
                for layer in 0..2 {
                    let k: Vec<f32> = (0..sf).map(|i| tag + pos as f32 + i as f32 * 0.01).collect();
                    let v: Vec<f32> = k.iter().map(|x| -x).collect();
                    a.write(seq, layer, pos, &k, &v).unwrap();
                }
            }
        }
        // Interleaved sequences read back their own data, every layer.
        for (tag, seq) in [(10.0f32, s1), (20.0, s2)] {
            for pos in 0..6 {
                for layer in 0..2 {
                    let (k, v) = a.kv_at(seq, layer, pos).unwrap();
                    assert_eq!(k[0], tag + pos as f32);
                    assert_eq!(v[0], -(tag + pos as f32));
                }
            }
        }
    }

    #[test]
    fn release_reclaims_immediately_and_retires_the_handle() {
        let mut a = PagedKvArena::new(tiny());
        let seq = a.admit(4).unwrap();
        a.append(seq).unwrap();
        assert_eq!(a.release(seq).unwrap(), 1);
        assert_eq!(a.pages_in_use(), 0);
        assert_eq!(a.used_slots(), 0);
        assert_eq!(a.append(seq), Err(KvError::UnknownSeq), "stale handle is typed");
        assert_eq!(a.release(seq), Err(KvError::UnknownSeq), "double release is typed");
        // The freed pages are reusable at once — and the recycled slot's
        // new handle does not alias the stale one.
        let seq2 = a.admit(32).expect("whole arena is free again");
        assert_ne!(seq2, seq);
        assert_eq!(a.pages_in_use(), 8);
    }

    #[test]
    fn exhaustion_is_typed_and_rolls_back_partial_reservations() {
        let mut a = PagedKvArena::new(tiny());
        let _held = a.admit(20).unwrap(); // 5 of 8 pages
        let err = a.admit(20).unwrap_err(); // needs 5, only 3 free
        assert!(matches!(err, KvError::OutOfPages { .. }));
        assert_eq!(a.free_pages(), 3, "failed admission returned its partial pages");
        assert!(a.can_admit(8), "3 pages still admit a short prompt");
        assert!(!a.can_admit(16));
    }

    #[test]
    fn occupancy_counts_only_written_slots() {
        let mut a = PagedKvArena::new(tiny());
        assert_eq!(a.occupancy(), 1.0, "empty arena wastes nothing");
        let seq = a.admit(4).unwrap();
        a.append(seq).unwrap();
        // 1 slot used of 4 allocated.
        assert!((a.occupancy() - 0.25).abs() < 1e-12);
        assert!((a.fragmentation() - 0.75).abs() < 1e-12);
        let loc = a.translate(seq, 0).unwrap();
        assert_eq!(loc.slot, 0);
        assert!(a.translate(seq, 1).is_err(), "unwritten position does not translate");
    }

    #[test]
    fn instrumented_arena_publishes_gauges() {
        let registry = Registry::new();
        let mut a = PagedKvArena::new(tiny());
        a.instrument(&registry);
        let seq = a.admit(6).unwrap();
        a.append(seq).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.find("kv_pages_in_use", &[]).unwrap().gauge, Some(2.0));
        let occ = snap.find("kv_page_occupancy", &[]).unwrap().gauge.unwrap();
        assert!((occ - 1.0 / 8.0).abs() < 1e-12);
        assert_eq!(snap.find("kv_pages_allocated_total", &[]).unwrap().counter, Some(2));
        a.release(seq).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.find("kv_pages_in_use", &[]).unwrap().gauge, Some(0.0));
    }

    #[test]
    fn injected_kv_alloc_fail_is_out_of_pages() {
        // Serialized with other chaos users via the process-global state:
        // install → probe → disarm quickly; the assertion tolerates
        // nothing racing because tests in this crate are the only users.
        tt_chaos::install(tt_chaos::ChaosConfig {
            kv_alloc_fail: 1.0,
            ..tt_chaos::ChaosConfig::default()
        });
        let mut a = PagedKvArena::new(tiny());
        let err = a.admit(1).unwrap_err();
        tt_chaos::disarm();
        assert!(matches!(err, KvError::OutOfPages { .. }));
        assert_eq!(a.free_pages(), 8, "injected failure leaks nothing");
        assert!(a.admit(1).is_ok(), "disarmed arena allocates again");
    }
}
