//! `cudaMalloc`/`cudaFree` per tensor — the strawman dynamic allocator.
//!
//! Every tensor allocation goes straight to the device driver and every
//! free returns the memory immediately. Footprint is optimal (exactly the
//! live bytes) but *every* allocation is a slow synchronizing device call —
//! the paper measures 50 % of compute idle on a Tesla M40 at
//! batch 20 / length 128 under this policy.

use crate::sim::DynamicAllocator;

/// Direct device allocator: no caching whatsoever.
#[derive(Debug, Clone, Default)]
pub struct NaiveAllocator {
    live: Vec<Option<usize>>, // size per live block handle
    reserved: usize,
    calls: usize,
    bytes: usize,
}

impl NaiveAllocator {
    /// Create an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DynamicAllocator for NaiveAllocator {
    fn malloc(&mut self, size: usize) -> usize {
        self.calls += 1;
        self.bytes += size;
        self.reserved += size;
        self.live.push(Some(size));
        self.live.len() - 1
    }

    fn free(&mut self, block: usize) {
        let size = self.live[block].take().expect("double free");
        self.reserved -= size;
    }

    fn reserved_bytes(&self) -> usize {
        self.reserved
    }

    fn device_alloc_calls(&self) -> usize {
        self.calls
    }

    fn device_alloc_bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_malloc_hits_the_device() {
        let mut a = NaiveAllocator::new();
        let b1 = a.malloc(100);
        let b2 = a.malloc(200);
        assert_eq!(a.device_alloc_calls(), 2);
        assert_eq!(a.reserved_bytes(), 300);
        a.free(b1);
        assert_eq!(a.reserved_bytes(), 200);
        a.free(b2);
        assert_eq!(a.reserved_bytes(), 0);
        // No reuse: another malloc is another device call.
        a.malloc(100);
        assert_eq!(a.device_alloc_calls(), 3);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_is_detected() {
        let mut a = NaiveAllocator::new();
        let b = a.malloc(10);
        a.free(b);
        a.free(b);
    }
}
