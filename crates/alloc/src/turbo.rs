//! The sequence-length-aware chunked allocator — paper Algorithms 1 and 2.
//!
//! Memory is organized as a persistent list of *chunks* (2 MB by default).
//! When a request of a new sequence length arrives, the runtime extracts the
//! tensor usage records for that length and calls [`TurboAllocator::plan`],
//! which assigns every tensor a `(chunk, offset)` by *Greedy-by-Size*: the
//! records are sorted by size (non-increasing) and each is placed into the
//! smallest gap — among tensors already placed in the chunk whose lifetimes
//! overlap it — that fits ([`find_gap_from_chunk`], paper Algorithm 2, a
//! restricted 2-D strip-packing heuristic running in O(n²)).
//!
//! If no existing chunk can host the tensor, a new chunk of
//! `max(DEFAULT_CHUNK_SIZE, size · K_SCALE)` is appended (paper Algorithm 1
//! line 14). After planning, chunks that received no tensor are released
//! (line 20), so the steady-state footprint tracks what recent requests
//! actually needed while allocation traffic stays near zero.
//!
//! **Paper fidelity note.** Algorithm 2's line 17 reads
//! `chunk_size − prev_offset ≤ size_t` for accepting the tail gap; taken
//! literally that accepts exactly the tensors that do *not* fit. We
//! implement the evidently intended `≥` (the worked example of paper
//! Figure 6 only comes out under `≥`), and keep a unit test documenting the
//! discrepancy.

use std::sync::Arc;

use tt_telemetry::{Counter, Gauge, Registry};

use crate::{Assignment, Plan, TensorUsage};

/// Telemetry handles for one allocator, resolved once from a
/// [`Registry`] and recorded into on every [`TurboAllocator::plan`] call.
/// All handles are atomics — attaching metrics adds a few relaxed stores
/// per plan, nothing on the per-tensor path.
#[derive(Debug, Clone)]
pub struct AllocMetrics {
    plans: Arc<Counter>,
    reuse_hits: Arc<Counter>,
    requested_bytes: Arc<Counter>,
    new_chunk_bytes: Arc<Counter>,
    new_chunks: Arc<Counter>,
    resident_bytes: Arc<Gauge>,
    chunks: Arc<Gauge>,
}

impl AllocMetrics {
    /// Register (or look up) the allocator metric family in `registry`.
    pub fn register(registry: &Registry) -> Self {
        AllocMetrics {
            plans: registry.counter("alloc_plans_total", "Planning passes run", &[]),
            reuse_hits: registry.counter(
                "alloc_reuse_hits_total",
                "Plans served entirely from cached chunks (no new device allocation)",
                &[],
            ),
            requested_bytes: registry.counter(
                "alloc_requested_bytes_total",
                "Activation bytes requested across all plans (before lifetime sharing)",
                &[],
            ),
            new_chunk_bytes: registry.counter(
                "alloc_new_chunk_bytes_total",
                "Bytes of chunk space newly allocated (slow-path device mallocs)",
                &[],
            ),
            new_chunks: registry.counter("alloc_new_chunks_total", "New chunk allocations", &[]),
            resident_bytes: registry.gauge(
                "alloc_resident_bytes",
                "Current footprint: sum of cached chunk sizes",
                &[],
            ),
            chunks: registry.gauge("alloc_chunks", "Number of cached chunks", &[]),
        }
    }

    fn observe(&self, requested: usize, stats: &PlanStats, chunk_count: usize) {
        self.plans.inc();
        if stats.new_bytes == 0 {
            self.reuse_hits.inc();
        }
        self.requested_bytes.add(requested as u64);
        self.new_chunk_bytes.add(stats.new_bytes as u64);
        self.new_chunks.add(stats.new_chunks as u64);
        self.resident_bytes.set(stats.footprint as f64);
        self.chunks.set(chunk_count as f64);
    }
}

/// Tuning knobs of the allocator, with the paper's published values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurboConfig {
    /// Minimum size of a newly created chunk. Paper: 2 MB.
    pub default_chunk_size: usize,
    /// Over-allocation factor for tensors larger than a default chunk.
    /// Paper: 1.2.
    pub k_scale: f64,
    /// Release a chunk only after this many *consecutive* plans in which no
    /// tensor landed in it. Algorithm 1 line 20 says "release unused chunk"
    /// without a policy; releasing immediately (value 1) makes every
    /// long-after-short request re-pay device allocations and would never
    /// reach the paper's measured 0.70 MB average of new allocations per
    /// request — so the default keeps idle chunks around for a few
    /// requests, trading a bounded footprint overshoot for near-zero
    /// steady-state allocation traffic.
    pub release_after_unused: usize,
}

impl Default for TurboConfig {
    fn default() -> Self {
        TurboConfig { default_chunk_size: 2 * 1024 * 1024, k_scale: 1.2, release_after_unused: 8 }
    }
}

impl TurboConfig {
    /// The literal paper Algorithm 1: unused chunks released every plan.
    pub fn eager_release() -> Self {
        TurboConfig { release_after_unused: 1, ..Self::default() }
    }
}

/// A placed record inside a chunk (or region), kept sorted by offset.
/// Public so other planners (GSOC) can reuse [`find_gap_from_chunk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapRecord {
    /// Byte offset of the placed tensor.
    pub offset: usize,
    /// Size in bytes.
    pub size: usize,
    /// Producing op index.
    pub first_op: usize,
    /// Last consuming op index.
    pub last_op: usize,
}

/// One cached memory chunk and the tensors currently planned into it.
#[derive(Debug, Clone)]
struct Chunk {
    size: usize,
    /// Records sorted by ascending offset.
    records: Vec<GapRecord>,
}

/// Statistics of one planning pass, for Figure 7-style reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Bytes of chunk space newly allocated by this plan (device mallocs).
    pub new_bytes: usize,
    /// Bytes of chunk space released after this plan.
    pub released_bytes: usize,
    /// Number of new chunk allocations (slow-path device calls).
    pub new_chunks: usize,
    /// Footprint after the plan (sum of retained chunk sizes).
    pub footprint: usize,
}

/// The sequence-length-aware allocator. Chunks persist across calls to
/// [`TurboAllocator::plan`]; assignments are recomputed per request.
#[derive(Debug, Clone)]
pub struct TurboAllocator {
    config: TurboConfig,
    chunk_sizes: Vec<usize>,
    /// Per-chunk count of consecutive plans with no tensor assigned.
    unused_streaks: Vec<usize>,
    last_stats: PlanStats,
    /// Optional telemetry sink; clones share the same handles.
    metrics: Option<AllocMetrics>,
}

impl Default for TurboAllocator {
    fn default() -> Self {
        Self::new(TurboConfig::default())
    }
}

impl TurboAllocator {
    /// Create an allocator with the given configuration.
    pub fn new(config: TurboConfig) -> Self {
        assert!(config.default_chunk_size > 0, "chunk size must be positive");
        assert!(config.k_scale >= 1.0, "K_SCALE must not shrink tensors");
        assert!(config.release_after_unused >= 1, "retention must be at least one plan");
        TurboAllocator {
            config,
            chunk_sizes: Vec::new(),
            unused_streaks: Vec::new(),
            last_stats: PlanStats::default(),
            metrics: None,
        }
    }

    /// Attach a telemetry sink; every subsequent [`plan`](Self::plan)
    /// reports chunk count, bytes requested vs resident, and reuse hits.
    pub fn attach_metrics(&mut self, metrics: AllocMetrics) {
        self.metrics = Some(metrics);
    }

    /// Statistics of the most recent planning pass.
    pub fn last_stats(&self) -> PlanStats {
        self.last_stats
    }

    /// Current footprint (sum of cached chunk sizes).
    pub fn footprint(&self) -> usize {
        self.chunk_sizes.iter().sum()
    }

    /// Paper Algorithm 1: plan offsets for one inference's usage records.
    pub fn plan(&mut self, usages: &[TensorUsage]) -> Plan {
        // Work over the persistent chunks; records are per-plan.
        let mut chunks: Vec<Chunk> =
            self.chunk_sizes.iter().map(|&size| Chunk { size, records: Vec::new() }).collect();
        let existing = chunks.len();
        let mut new_bytes = 0usize;
        let mut new_chunks = 0usize;

        // L1: sort in non-increasing order of size; ties by id keep the
        // plan deterministic.
        let mut order: Vec<&TensorUsage> = usages.iter().collect();
        order.sort_by(|a, b| b.size.cmp(&a.size).then(a.id.cmp(&b.id)));

        let mut assignments = Vec::with_capacity(usages.len());
        for t in order {
            // L4–L12: first fit across chunks, best fit within a chunk.
            let mut placed = None;
            for (ci, chunk) in chunks.iter().enumerate() {
                if let Some(offset) = find_gap_from_chunk(t, chunk.size, &chunk.records) {
                    placed = Some((ci, offset));
                    break;
                }
            }
            // L13–L18: no gap anywhere — append a fresh chunk.
            let (ci, offset) = placed.unwrap_or_else(|| {
                let size = self
                    .config
                    .default_chunk_size
                    .max((t.size as f64 * self.config.k_scale).ceil() as usize);
                chunks.push(Chunk { size, records: Vec::new() });
                new_bytes += size;
                new_chunks += 1;
                (chunks.len() - 1, 0)
            });
            let rec = GapRecord { offset, size: t.size, first_op: t.first_op, last_op: t.last_op };
            let pos = chunks[ci].records.partition_point(|r| r.offset <= offset);
            chunks[ci].records.insert(pos, rec);
            assignments.push(Assignment { tensor: t.id, chunk: ci, offset, size: t.size });
        }

        // L20: release unused chunks — but only ones idle for the last
        // `release_after_unused` consecutive plans (see TurboConfig docs).
        // Releases remap chunk indices, so rewrite the assignments.
        let mut streaks = std::mem::take(&mut self.unused_streaks);
        streaks.resize(chunks.len(), 0);
        let mut remap = vec![usize::MAX; chunks.len()];
        let mut kept_sizes = Vec::new();
        let mut kept_streaks = Vec::new();
        let mut released_bytes = 0usize;
        for (i, chunk) in chunks.iter().enumerate() {
            let used = !chunk.records.is_empty();
            let streak = if used { 0 } else { streaks[i] + 1 };
            if used || streak < self.config.release_after_unused {
                remap[i] = kept_sizes.len();
                kept_sizes.push(chunk.size);
                kept_streaks.push(streak);
            } else {
                released_bytes += chunk.size;
                if i >= existing {
                    // A chunk created and unused in the same plan is
                    // impossible (it is created to host a tensor), but keep
                    // the accounting robust.
                    new_bytes -= chunk.size;
                }
            }
        }
        let assignments: Vec<Assignment> =
            assignments.into_iter().map(|a| Assignment { chunk: remap[a.chunk], ..a }).collect();

        self.chunk_sizes = kept_sizes.clone();
        self.unused_streaks = kept_streaks;
        self.last_stats =
            PlanStats { new_bytes, released_bytes, new_chunks, footprint: self.footprint() };
        if let Some(m) = &self.metrics {
            let requested: usize = usages.iter().map(|u| u.size).sum();
            m.observe(requested, &self.last_stats, self.chunk_sizes.len());
        }
        Plan { assignments, chunk_sizes: kept_sizes }
    }
}

/// Paper Algorithm 2: find the best (smallest fitting) gap for tensor `t`
/// inside a chunk, considering only records whose lifetimes overlap `t`.
/// Records must be sorted by ascending offset. Returns the chosen offset or
/// `None` if the tensor does not fit.
pub fn find_gap_from_chunk(
    t: &TensorUsage,
    chunk_size: usize,
    records: &[GapRecord],
) -> Option<usize> {
    let mut smallest_gap = usize::MAX;
    let mut best_offset: Option<usize> = None;
    let mut prev_offset = 0usize;

    for x in records {
        // L6–L8: ignore records whose lifetime does not overlap t — the
        // space they hold is free for t.
        let max_first = t.first_op.max(x.first_op);
        let min_last = t.last_op.min(x.last_op);
        if max_first <= min_last {
            // L9–L13: candidate gap between the previous conflicting record
            // and this one; best-fit keeps the smallest that fits.
            let gap = x.offset.saturating_sub(prev_offset);
            if gap >= t.size && gap < smallest_gap {
                smallest_gap = gap;
                best_offset = Some(prev_offset);
            }
            prev_offset = prev_offset.max(x.offset + x.size);
        }
    }

    // L17–L19: the tail gap (paper writes `≤`; the intended predicate is
    // "the remaining space fits the tensor", i.e. `≥` — see module docs).
    if best_offset.is_none() && chunk_size.saturating_sub(prev_offset) >= t.size {
        best_offset = Some(prev_offset);
    }
    best_offset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{peak_live_bytes, validate_plan};

    fn cfg(chunk: usize) -> TurboConfig {
        TurboConfig { default_chunk_size: chunk, k_scale: 1.2, release_after_unused: 1 }
    }

    fn usage(id: usize, f: usize, l: usize, s: usize) -> TensorUsage {
        TensorUsage::new(id, f, l, s)
    }

    #[test]
    fn plans_are_valid_and_reuse_dead_space() {
        let mut a = TurboAllocator::new(cfg(64));
        // A chain: t0 feeds op1 which makes t1, etc. — classic reuse case.
        let usages = vec![usage(0, 0, 1, 40), usage(1, 1, 2, 40), usage(2, 2, 3, 40)];
        let plan = a.plan(&usages);
        validate_plan(&usages, &plan).unwrap();
        // t0 and t2 never coexist: a single 64-byte chunk cannot hold two
        // live 40-byte tensors, so reuse is forced and observable.
        let a0 = plan.assignment_of(0).unwrap();
        let a2 = plan.assignment_of(2).unwrap();
        assert_eq!((a0.chunk, a0.offset), (a2.chunk, a2.offset), "t2 must reuse t0's bytes");
    }

    #[test]
    fn oversized_tensor_gets_scaled_chunk() {
        let mut a = TurboAllocator::new(cfg(64));
        let usages = vec![usage(0, 0, 0, 100)];
        let plan = a.plan(&usages);
        validate_plan(&usages, &plan).unwrap();
        assert_eq!(plan.chunk_sizes, vec![120], "max(64, 100·1.2)");
        assert_eq!(a.last_stats().new_chunks, 1);
    }

    #[test]
    fn best_fit_prefers_smallest_gap() {
        // Chunk with two conflicting records leaving gaps of 16 and 8; an
        // 8-byte tensor must take the 8-byte gap.
        let records = vec![
            GapRecord { offset: 16, size: 8, first_op: 0, last_op: 9 },
            GapRecord { offset: 32, size: 8, first_op: 0, last_op: 9 },
        ];
        let t = usage(9, 0, 9, 8);
        // gap [0,16) = 16 bytes; gap [24,32) = 8 bytes → best fit 24.
        assert_eq!(find_gap_from_chunk(&t, 64, &records), Some(24));
    }

    #[test]
    fn gap_search_ignores_non_overlapping_lifetimes() {
        let records = vec![GapRecord { offset: 0, size: 64, first_op: 0, last_op: 1 }];
        let t = usage(1, 2, 3, 64);
        // The resident tensor is dead by the time t lives: whole chunk free.
        assert_eq!(find_gap_from_chunk(&t, 64, &records), Some(0));
    }

    #[test]
    fn tail_gap_requires_fit_unlike_paper_line_17() {
        // Paper line 17 literally accepts the tail when remaining ≤ size;
        // that would place a 32-byte tensor into 16 remaining bytes. Our ≥
        // correctly rejects it.
        let records = vec![GapRecord { offset: 0, size: 48, first_op: 0, last_op: 9 }];
        let t = usage(1, 0, 9, 32);
        assert_eq!(find_gap_from_chunk(&t, 64, &records), None);
        // And accepts when it does fit.
        let t2 = usage(2, 0, 9, 16);
        assert_eq!(find_gap_from_chunk(&t2, 64, &records), Some(48));
    }

    #[test]
    fn chunks_are_cached_across_plans() {
        let mut a = TurboAllocator::new(cfg(1024));
        let usages = vec![usage(0, 0, 1, 512), usage(1, 1, 2, 512)];
        let p1 = a.plan(&usages);
        validate_plan(&usages, &p1).unwrap();
        assert_eq!(a.last_stats().new_chunks, 1);
        // Same request again: zero allocation traffic.
        let p2 = a.plan(&usages);
        validate_plan(&usages, &p2).unwrap();
        assert_eq!(a.last_stats().new_chunks, 0);
        assert_eq!(a.last_stats().new_bytes, 0);
    }

    #[test]
    fn shrinking_requests_release_chunks() {
        let mut a = TurboAllocator::new(cfg(64));
        // Big request: forces several chunks.
        let big: Vec<TensorUsage> = (0..6).map(|i| usage(i, 0, 5, 60)).collect();
        let p = a.plan(&big);
        validate_plan(&big, &p).unwrap();
        assert_eq!(a.footprint(), 6 * 72, "six live 60-byte tensors at K_SCALE 1.2");
        // Tiny request afterwards: unused chunks must be released.
        let small = vec![usage(0, 0, 0, 16)];
        let p2 = a.plan(&small);
        validate_plan(&small, &p2).unwrap();
        assert_eq!(p2.chunk_sizes.len(), 1);
        assert!(a.last_stats().released_bytes > 0);
        assert!(a.footprint() < 6 * 72);
    }

    #[test]
    fn footprint_close_to_peak_live() {
        // A BERT-ish lifetime pattern: a ladder of overlapping activations.
        let mut usages = Vec::new();
        for i in 0..40 {
            usages.push(usage(i, i, i + 2, 3000));
        }
        let mut a = TurboAllocator::default();
        let plan = a.plan(&usages);
        validate_plan(&usages, &plan).unwrap();
        let lower = peak_live_bytes(&usages);
        // One default chunk (2 MB) dwarfs the demand; footprint is one chunk.
        assert_eq!(plan.footprint(), 2 * 1024 * 1024);
        assert!(lower <= plan.footprint());
    }

    #[test]
    fn equal_sizes_are_ordered_by_id() {
        let mut a = TurboAllocator::new(cfg(1024));
        let usages = vec![usage(1, 0, 1, 64), usage(0, 0, 1, 64)];
        let p1 = a.plan(&usages);
        let mut b = TurboAllocator::new(cfg(1024));
        let usages_rev = vec![usage(0, 0, 1, 64), usage(1, 0, 1, 64)];
        let p2 = b.plan(&usages_rev);
        // Determinism: same set of records, same placement, any input order.
        assert_eq!(p1.assignment_of(0), p2.assignment_of(0));
        assert_eq!(p1.assignment_of(1), p2.assignment_of(1));
    }

    #[test]
    fn metrics_track_plans_and_reuse() {
        let registry = tt_telemetry::Registry::new();
        let mut a = TurboAllocator::new(cfg(1024));
        a.attach_metrics(AllocMetrics::register(&registry));
        let usages = vec![usage(0, 0, 1, 512)];
        a.plan(&usages); // cold: allocates one chunk
        a.plan(&usages); // warm: pure reuse
        let snap = registry.snapshot();
        assert_eq!(snap.find("alloc_plans_total", &[]).unwrap().counter, Some(2));
        assert_eq!(snap.find("alloc_reuse_hits_total", &[]).unwrap().counter, Some(1));
        assert_eq!(snap.find("alloc_new_chunks_total", &[]).unwrap().counter, Some(1));
        assert_eq!(snap.find("alloc_requested_bytes_total", &[]).unwrap().counter, Some(1024));
        assert_eq!(snap.find("alloc_resident_bytes", &[]).unwrap().gauge, Some(1024.0));
        assert_eq!(snap.find("alloc_chunks", &[]).unwrap().gauge, Some(1.0));
    }

    #[test]
    fn empty_plan_releases_everything() {
        let mut a = TurboAllocator::new(cfg(64));
        a.plan(&[usage(0, 0, 0, 32)]);
        assert_eq!(a.footprint(), 64);
        let p = a.plan(&[]);
        assert_eq!(p.footprint(), 0);
        assert_eq!(a.footprint(), 0);
    }
}
