//! *Greedy-by-Size for Offset Calculation* (GSOC) — the fixed-length
//! planner of Pisarchyk & Lee (paper reference \[15\]) that TurboTransformers
//! compares against in Figure 7.
//!
//! GSOC packs all tensors into **one** contiguous region: tensors are taken
//! in non-increasing size order and each is placed at the lowest offset
//! where it fits among already-placed, lifetime-conflicting tensors
//! (best-fit gap, or appended at the end of the conflicting extent). For a
//! *fixed* input length this yields a near-optimal footprint and is planned
//! only once.
//!
//! Under *variable-length* serving the region's required size changes with
//! every request, so the backing device buffer must be reallocated whenever
//! demand grows — the allocation traffic the paper measures at 2.78 MB per
//! request on average, versus 0.70 MB for the chunked allocator.

use crate::turbo::{find_gap_from_chunk, GapRecord, PlanStats};
use crate::{Assignment, Plan, TensorUsage};

/// GSOC planner with a persistent exact-fit backing buffer.
#[derive(Debug, Clone, Default)]
pub struct GsocAllocator {
    /// Current capacity of the single backing device buffer.
    capacity: usize,
    last_stats: PlanStats,
}

impl GsocAllocator {
    /// Create an allocator with no backing buffer yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics of the most recent planning pass.
    pub fn last_stats(&self) -> PlanStats {
        self.last_stats
    }

    /// Current backing-buffer capacity.
    pub fn footprint(&self) -> usize {
        self.capacity
    }

    /// Compute offsets for one inference and adjust the backing buffer to
    /// the exact requirement (growing allocates, shrinking frees — GSOC has
    /// no notion of cached spare chunks).
    pub fn plan(&mut self, usages: &[TensorUsage]) -> Plan {
        let (assignments, required) = gsoc_offsets(usages);
        let new_bytes = required.saturating_sub(self.capacity);
        let released_bytes = self.capacity.saturating_sub(required);
        self.capacity = required;
        self.last_stats = PlanStats {
            new_bytes,
            released_bytes,
            new_chunks: usize::from(new_bytes > 0),
            footprint: self.capacity,
        };
        Plan { assignments, chunk_sizes: vec![required] }
    }
}

/// Pure GSOC offset calculation: returns assignments (all in chunk 0) and
/// the required region size.
pub fn gsoc_offsets(usages: &[TensorUsage]) -> (Vec<Assignment>, usize) {
    let mut order: Vec<&TensorUsage> = usages.iter().collect();
    order.sort_by(|a, b| b.size.cmp(&a.size).then(a.id.cmp(&b.id)));

    let mut records: Vec<GapRecord> = Vec::with_capacity(usages.len());
    let mut assignments = Vec::with_capacity(usages.len());
    let mut required = 0usize;

    for t in order {
        // An unbounded chunk: the tail branch of find_gap_from_chunk always
        // fits, so a placement is guaranteed.
        let offset = find_gap_from_chunk(t, usize::MAX, &records)
            .expect("unbounded region always has a tail gap");
        let rec = GapRecord { offset, size: t.size, first_op: t.first_op, last_op: t.last_op };
        let pos = records.partition_point(|r| r.offset <= offset);
        records.insert(pos, rec);
        required = required.max(offset + t.size);
        assignments.push(Assignment { tensor: t.id, chunk: 0, offset, size: t.size });
    }
    (assignments, required)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{peak_live_bytes, validate_plan};

    fn usage(id: usize, f: usize, l: usize, s: usize) -> TensorUsage {
        TensorUsage::new(id, f, l, s)
    }

    #[test]
    fn packs_disjoint_lifetimes_into_same_bytes() {
        let usages = vec![usage(0, 0, 1, 100), usage(1, 2, 3, 100)];
        let (assignments, required) = gsoc_offsets(&usages);
        assert_eq!(required, 100, "disjoint tensors share the region");
        assert_eq!(assignments[0].offset, 0);
        assert_eq!(assignments[1].offset, 0);
    }

    #[test]
    fn plan_is_valid_on_a_ladder() {
        let usages: Vec<TensorUsage> = (0..30).map(|i| usage(i, i, i + 3, 64 + i * 8)).collect();
        let mut g = GsocAllocator::new();
        let plan = g.plan(&usages);
        validate_plan(&usages, &plan).unwrap();
        assert!(plan.footprint() >= peak_live_bytes(&usages));
        // GSOC is near-optimal: within 2× of the live-bytes lower bound on
        // this benign pattern.
        assert!(plan.footprint() <= 2 * peak_live_bytes(&usages));
    }

    #[test]
    fn growth_and_shrink_traffic_is_tracked() {
        let mut g = GsocAllocator::new();
        g.plan(&[usage(0, 0, 0, 1000)]);
        assert_eq!(g.last_stats().new_bytes, 1000);
        assert_eq!(g.footprint(), 1000);
        // Bigger request: pays the delta.
        g.plan(&[usage(0, 0, 0, 1500)]);
        assert_eq!(g.last_stats().new_bytes, 500);
        // Smaller request: frees the difference, and a later big request
        // pays again — the thrash the chunked allocator avoids.
        g.plan(&[usage(0, 0, 0, 800)]);
        assert_eq!(g.last_stats().released_bytes, 700);
        g.plan(&[usage(0, 0, 0, 1500)]);
        assert_eq!(g.last_stats().new_bytes, 700);
    }

    #[test]
    fn empty_request_empties_the_buffer() {
        let mut g = GsocAllocator::new();
        g.plan(&[usage(0, 0, 0, 512)]);
        let p = g.plan(&[]);
        assert_eq!(p.footprint(), 0);
        assert_eq!(g.footprint(), 0);
    }
}
