//! Property-based tests of the allocator safety invariant: for arbitrary
//! tensor lifetime/size patterns, every planner must produce a plan in
//! which simultaneously-live tensors never share bytes, and chunk bounds
//! are respected.

use proptest::prelude::*;
use tt_alloc::gsoc::GsocAllocator;
use tt_alloc::turbo::{TurboAllocator, TurboConfig};
use tt_alloc::{peak_live_bytes, validate_plan, TensorUsage};

/// Arbitrary usage records: up to 60 tensors over a 40-op program, with
/// sizes up to 8 KiB so multi-chunk behaviour is exercised at small chunk
/// sizes.
fn usages_strategy() -> impl Strategy<Value = Vec<TensorUsage>> {
    prop::collection::vec((0usize..40, 0usize..12, 1usize..8192), 0..60).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(id, (first, span, size))| TensorUsage::new(id, first, first + span, size))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn turbo_plans_are_always_valid(usages in usages_strategy()) {
        let mut a = TurboAllocator::new(TurboConfig { default_chunk_size: 4096, k_scale: 1.2, release_after_unused: 1 });
        let plan = a.plan(&usages);
        prop_assert!(validate_plan(&usages, &plan).is_ok());
        prop_assert!(plan.footprint() >= peak_live_bytes(&usages).min(plan.footprint()));
    }

    #[test]
    fn turbo_plans_stay_valid_across_replans(mut usages in usages_strategy()) {
        // Replanning over cached chunks with a *different* workload must
        // still be safe — the cross-request path the paper exercises.
        let mut a = TurboAllocator::new(TurboConfig { default_chunk_size: 4096, k_scale: 1.2, release_after_unused: 1 });
        let _ = a.plan(&usages);
        usages.retain(|u| u.id % 2 == 0);
        let plan2 = a.plan(&usages);
        prop_assert!(validate_plan(&usages, &plan2).is_ok());
    }

    #[test]
    fn gsoc_plans_are_always_valid(usages in usages_strategy()) {
        let mut g = GsocAllocator::new();
        let plan = g.plan(&usages);
        prop_assert!(validate_plan(&usages, &plan).is_ok());
        // GSOC's region must at least hold the peak live bytes.
        prop_assert!(plan.footprint() >= peak_live_bytes(&usages));
    }

    #[test]
    fn gsoc_footprint_is_within_two_x_of_lower_bound(usages in usages_strategy()) {
        // Greedy-by-size is a 2-approximation-ish heuristic in practice;
        // enforce a loose factor so regressions that destroy packing are
        // caught without flaking on adversarial cases.
        prop_assume!(!usages.is_empty());
        let mut g = GsocAllocator::new();
        let plan = g.plan(&usages);
        let lb = peak_live_bytes(&usages);
        prop_assert!(plan.footprint() <= lb.saturating_mul(3).max(8192));
    }

    #[test]
    fn turbo_repeat_plan_allocates_nothing(usages in usages_strategy()) {
        let mut a = TurboAllocator::new(TurboConfig { default_chunk_size: 4096, k_scale: 1.2, release_after_unused: 1 });
        let p1 = a.plan(&usages);
        let p2 = a.plan(&usages);
        prop_assert_eq!(a.last_stats().new_bytes, 0, "identical request must be traffic-free");
        prop_assert_eq!(p1, p2, "planning is deterministic");
    }
}
