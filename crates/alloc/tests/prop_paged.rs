//! Property-based tests of the paged KV arena: under arbitrary
//! admit/append/release interleavings — including ones that exhaust the
//! page budget — the arena never leaks or double-frees a page, its
//! occupancy accounting is exact, and the page-table translation stays a
//! bijection between live logical positions and physical slots.

use std::collections::HashSet;

use proptest::prelude::*;
use tt_alloc::{KvError, KvSeq, PagedKvArena, PagedKvConfig};

/// A deliberately tiny arena (8 pages × 2 slots) so random interleavings
/// regularly hit `OutOfPages` on both the admit and append paths.
fn tiny_config() -> PagedKvConfig {
    PagedKvConfig { layers: 2, heads: 1, head_dim: 2, page_slots: 2, num_pages: 8 }
}

/// One step of the random schedule. Sequence-picking indices are reduced
/// modulo the live count at execution time.
#[derive(Debug, Clone)]
enum Op {
    Admit { prompt_len: usize },
    Append { pick: usize },
    Release { pick: usize },
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..12).prop_map(|prompt_len| Op::Admit { prompt_len }),
            (0usize..16).prop_map(|pick| Op::Append { pick }),
            (0usize..16).prop_map(|pick| Op::Release { pick }),
        ],
        0..80,
    )
}

/// The model the arena is checked against: what we believe each live
/// sequence holds.
#[derive(Debug)]
struct ModelSeq {
    seq: KvSeq,
    len: usize,
    pages: usize,
}

/// Every invariant the arena promises, checked against the model.
/// (The vendored proptest shim's `prop_assert!` panics on failure, so
/// this helper needs no `Result` plumbing.)
fn check_invariants(arena: &PagedKvArena, live: &[ModelSeq]) {
    let cfg = *arena.config();
    let model_pages: usize = live.iter().map(|s| s.pages).sum();
    let model_slots: usize = live.iter().map(|s| s.len).sum();

    prop_assert_eq!(arena.pages_in_use(), model_pages, "page accounting drifted");
    prop_assert_eq!(arena.used_slots(), model_slots, "slot accounting drifted");
    prop_assert_eq!(arena.active_seqs(), live.len());
    prop_assert_eq!(
        arena.pages_in_use() + arena.free_pages(),
        cfg.num_pages,
        "pages neither leak nor double-free: used + free is constant"
    );
    let allocated_slots = model_pages * cfg.page_slots;
    let expected_occupancy =
        if allocated_slots == 0 { 1.0 } else { model_slots as f64 / allocated_slots as f64 };
    prop_assert!((arena.occupancy() - expected_occupancy).abs() < 1e-12);

    // Translation is total over written positions, bounded, and globally
    // injective: no two live logical positions share a physical slot.
    let mut seen = HashSet::new();
    for s in live {
        prop_assert_eq!(arena.len_of(s.seq), Ok(s.len));
        for pos in 0..s.len {
            let loc = arena.translate(s.seq, pos).expect("written position translates");
            prop_assert!(loc.page < cfg.num_pages);
            prop_assert!(loc.slot < cfg.page_slots);
            prop_assert!(
                seen.insert((loc.page, loc.slot)),
                "physical slot ({}, {}) aliased by two logical positions",
                loc.page,
                loc.slot
            );
        }
        prop_assert_eq!(
            arena.translate(s.seq, s.len),
            Err(KvError::OutOfRange { pos: s.len, len: s.len }),
            "positions past the written length must not translate"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The main interleaving property: run a random schedule, checking
    /// the full invariant set after every step, then drain and require
    /// the arena back at exactly its initial state.
    #[test]
    fn random_interleavings_never_leak_or_alias_pages(ops in ops_strategy()) {
        let cfg = tiny_config();
        let mut arena = PagedKvArena::new(cfg);
        let mut live: Vec<ModelSeq> = Vec::new();

        for op in ops {
            match op {
                Op::Admit { prompt_len } => {
                    let before = arena.free_pages();
                    match arena.admit(prompt_len) {
                        Ok(seq) => {
                            let pages = cfg.pages_for(prompt_len);
                            prop_assert_eq!(arena.free_pages(), before - pages);
                            live.push(ModelSeq { seq, len: 0, pages });
                        }
                        Err(KvError::OutOfPages { requested, free }) => {
                            // All-or-nothing: a failed admission returns
                            // every partially reserved page.
                            prop_assert_eq!(arena.free_pages(), before);
                            prop_assert!(requested >= 1);
                            prop_assert_eq!(free, before);
                        }
                        Err(other) => prop_assert!(false, "unexpected admit error {other:?}"),
                    }
                }
                Op::Append { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = pick % live.len();
                    let grows_page = live[i].len == live[i].pages * cfg.page_slots;
                    match arena.append(live[i].seq) {
                        Ok(pos) => {
                            prop_assert_eq!(pos, live[i].len, "append claims positions in order");
                            live[i].len += 1;
                            if grows_page {
                                live[i].pages += 1;
                            }
                        }
                        Err(KvError::OutOfPages { .. }) => {
                            // Only a page-boundary append can fail, and a
                            // failed append leaves the sequence unchanged.
                            prop_assert!(grows_page && arena.free_pages() == 0);
                            prop_assert_eq!(arena.len_of(live[i].seq), Ok(live[i].len));
                        }
                        Err(other) => prop_assert!(false, "unexpected append error {other:?}"),
                    }
                }
                Op::Release { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let s = live.swap_remove(pick % live.len());
                    prop_assert_eq!(arena.release(s.seq), Ok(s.pages), "release frees exactly the held pages");
                    // The handle is dead: every further use is a typed error.
                    prop_assert_eq!(arena.release(s.seq), Err(KvError::UnknownSeq), "double release");
                    prop_assert_eq!(arena.append(s.seq), Err(KvError::UnknownSeq));
                    prop_assert_eq!(arena.len_of(s.seq), Err(KvError::UnknownSeq));
                }
            }
            check_invariants(&arena, &live);
        }

        // Drain: the arena must return to its pristine state bit-for-bit.
        for s in live.drain(..) {
            prop_assert_eq!(arena.release(s.seq), Ok(s.pages));
        }
        prop_assert_eq!(arena.pages_in_use(), 0);
        prop_assert_eq!(arena.used_slots(), 0);
        prop_assert_eq!(arena.free_pages(), cfg.num_pages);
        prop_assert_eq!(arena.active_seqs(), 0);
        prop_assert_eq!(arena.occupancy(), 1.0);
        prop_assert_eq!(arena.fragmentation(), 0.0);
    }

    /// Writes round-trip: data written at a logical position reads back
    /// identically after other sequences have churned pages around it.
    #[test]
    fn writes_survive_interleaved_churn(
        lens in prop::collection::vec(1usize..6, 1..4),
        churn in 0usize..6,
    ) {
        let cfg = tiny_config();
        let mut arena = PagedKvArena::new(cfg);
        let mut seqs = Vec::new();
        for (si, &len) in lens.iter().enumerate() {
            let Ok(seq) = arena.admit(len) else { continue };
            let mut wrote = 0;
            for pos in 0..len {
                if arena.append(seq).is_err() {
                    break;
                }
                let tag = (si * 100 + pos) as f32;
                for layer in 0..cfg.layers {
                    let k = vec![tag + layer as f32; cfg.heads * cfg.head_dim];
                    let v = vec![-(tag + layer as f32); cfg.heads * cfg.head_dim];
                    arena.write(seq, layer, pos, &k, &v).unwrap();
                }
                wrote += 1;
            }
            seqs.push((si, seq, wrote));
        }
        // Churn: admit/release short-lived sequences to recycle pages.
        for _ in 0..churn {
            if let Ok(s) = arena.admit(1) {
                let _ = arena.append(s);
                let _ = arena.release(s);
            }
        }
        for &(si, seq, wrote) in &seqs {
            for pos in 0..wrote {
                let tag = (si * 100 + pos) as f32;
                for layer in 0..cfg.layers {
                    let (k, v) = arena.kv_at(seq, layer, pos).unwrap();
                    prop_assert!(k.iter().all(|&x| x == tag + layer as f32));
                    prop_assert!(v.iter().all(|&x| x == -(tag + layer as f32)));
                }
            }
        }
        for (_, seq, _) in seqs {
            arena.release(seq).unwrap();
        }
        prop_assert_eq!(arena.pages_in_use(), 0);
    }

    /// `can_admit` is an exact oracle for admit-then-first-append: when it
    /// says yes, admission *and* one decode slot both succeed.
    #[test]
    fn can_admit_guarantees_room_for_prompt_plus_one(
        held in 0usize..16,
        prompt_len in 0usize..12,
    ) {
        let cfg = tiny_config();
        let mut arena = PagedKvArena::new(cfg);
        // Occupy part of the arena with appended (page-backed) slots.
        if held > 0 {
            if let Ok(s) = arena.admit(held) {
                for _ in 0..held {
                    if arena.append(s).is_err() {
                        break;
                    }
                }
            }
        }
        if arena.can_admit(prompt_len) {
            let seq = arena.admit(prompt_len).expect("can_admit promised room");
            for _ in 0..=prompt_len {
                arena.append(seq).expect("prompt slots plus one decode slot fit");
            }
        } else {
            // The refusal is honest too: prompt + one decode slot cannot
            // all be appended without tripping OutOfPages.
            let free_before = arena.free_pages();
            if let Ok(seq) = arena.admit(prompt_len) {
                let mut failed = false;
                for _ in 0..=prompt_len {
                    if arena.append(seq).is_err() {
                        failed = true;
                        break;
                    }
                }
                prop_assert!(failed, "can_admit said no but prompt+1 appends all fit");
                arena.release(seq).unwrap();
                prop_assert_eq!(arena.free_pages(), free_before);
            }
        }
    }
}
