//! Kernel fusion — paper §4.1.1 and Figure 3.
//!
//! [`fuse`] rewrites a fine-grained graph so that every chain of non-GEMM
//! kernels between two GEMMs becomes one fused kernel; [`decompose`] is the
//! exact inverse, producing the per-op graph a training framework executes
//! (one kernel launch per node — the PyTorch-like baseline of the paper's
//! evaluation). The two passes are mutual inverses up to tensor naming,
//! which the tests assert structurally.
//!
//! Fusion patterns (all require the intermediate tensors to be
//! single-consumer activations):
//!
//! - `AddBias → SplitHeads`            ⇒ `AddBiasSplitHeads`
//! - `AddBias → Gelu`                  ⇒ `AddBiasGelu`
//! - `Scale → [Mask] → Softmax`        ⇒ `ScaleMaskSoftmax`
//! - `AddBias → Residual → LayerNorm`  ⇒ `AddBiasResidualLayerNorm`

use crate::{Graph, Node, OpKind, TensorClass, TensorId};

/// Expand every fused kernel into its constituent fine-grained ops.
pub fn decompose(graph: &Graph) -> Graph {
    let mut g = graph.clone();
    let mut nodes = Vec::with_capacity(g.nodes.len() * 2);
    let old_nodes = std::mem::take(&mut g.nodes);

    for node in old_nodes {
        match node.kind {
            OpKind::AddBiasSplitHeads { heads } => {
                let x = node.inputs[0];
                let tmp = mid(&mut g, x, "bias");
                nodes.push(Node {
                    kind: OpKind::AddBias,
                    inputs: vec![x, node.inputs[1]],
                    output: tmp,
                });
                nodes.push(Node {
                    kind: OpKind::SplitHeads { heads },
                    inputs: vec![tmp],
                    output: node.output,
                });
            }
            OpKind::AddBiasGelu => {
                let x = node.inputs[0];
                let tmp = mid(&mut g, x, "bias");
                nodes.push(Node {
                    kind: OpKind::AddBias,
                    inputs: vec![x, node.inputs[1]],
                    output: tmp,
                });
                nodes.push(Node { kind: OpKind::Gelu, inputs: vec![tmp], output: node.output });
            }
            OpKind::ScaleMaskSoftmax { scale } => {
                let x = node.inputs[0];
                let scaled = mid(&mut g, x, "scaled");
                nodes.push(Node {
                    kind: OpKind::Scale { alpha: scale },
                    inputs: vec![x],
                    output: scaled,
                });
                let pre_softmax = if let Some(&mask) = node.inputs.get(1) {
                    let masked = mid(&mut g, x, "masked");
                    nodes.push(Node {
                        kind: OpKind::Mask,
                        inputs: vec![scaled, mask],
                        output: masked,
                    });
                    masked
                } else {
                    scaled
                };
                nodes.push(Node {
                    kind: OpKind::Softmax,
                    inputs: vec![pre_softmax],
                    output: node.output,
                });
            }
            OpKind::AddBiasResidualLayerNorm { eps } => {
                let (x, bias, residual, gamma, beta) = (
                    node.inputs[0],
                    node.inputs[1],
                    node.inputs[2],
                    node.inputs[3],
                    node.inputs[4],
                );
                let t1 = mid(&mut g, x, "biased");
                let t2 = mid(&mut g, x, "residual");
                nodes.push(Node { kind: OpKind::AddBias, inputs: vec![x, bias], output: t1 });
                nodes.push(Node { kind: OpKind::Residual, inputs: vec![t1, residual], output: t2 });
                nodes.push(Node {
                    kind: OpKind::LayerNorm { eps },
                    inputs: vec![t2, gamma, beta],
                    output: node.output,
                });
            }
            _ => nodes.push(node),
        }
    }
    g.nodes = nodes;
    g
}

/// New intermediate activation shaped like tensor `like`.
fn mid(g: &mut Graph, like: TensorId, suffix: &str) -> TensorId {
    let name = format!("{}.{suffix}", g.tensors[like].name);
    let shape = g.tensors[like].shape.clone();
    g.add_tensor(name, shape, TensorClass::Activation)
}

/// Fuse non-GEMM chains into the custom kernels of paper Figure 3.
pub fn fuse(graph: &Graph) -> Graph {
    let mut g = graph.clone();
    let order = g.topo_order();
    let mut fused_away = vec![false; g.nodes.len()];
    let mut new_nodes: Vec<Node> = Vec::with_capacity(g.nodes.len());

    // A tensor is a fusible link if it is an activation with exactly one
    // consumer — removing it cannot change any other op's inputs.
    let fusible = |g: &Graph, t: TensorId| {
        g.tensors[t].class == TensorClass::Activation && g.consumers(t).len() == 1
    };
    // The single consumer of tensor t.
    let consumer = |g: &Graph, t: TensorId| g.consumers(t)[0];

    for &id in &order {
        if fused_away[id] {
            continue;
        }
        let node = g.nodes[id].clone();
        match node.kind {
            OpKind::AddBias if fusible(&g, node.output) => {
                let next_id = consumer(&g, node.output);
                let next = g.nodes[next_id].clone();
                match next.kind {
                    OpKind::SplitHeads { heads } => {
                        fused_away[next_id] = true;
                        new_nodes.push(Node {
                            kind: OpKind::AddBiasSplitHeads { heads },
                            inputs: node.inputs,
                            output: next.output,
                        });
                        continue;
                    }
                    OpKind::Gelu => {
                        fused_away[next_id] = true;
                        new_nodes.push(Node {
                            kind: OpKind::AddBiasGelu,
                            inputs: node.inputs,
                            output: next.output,
                        });
                        continue;
                    }
                    OpKind::Residual if fusible(&g, next.output) => {
                        let ln_id = consumer(&g, next.output);
                        let ln = g.nodes[ln_id].clone();
                        if let OpKind::LayerNorm { eps } = ln.kind {
                            // The residual's *other* operand.
                            let residual_in = if next.inputs[0] == node.output {
                                next.inputs[1]
                            } else {
                                next.inputs[0]
                            };
                            fused_away[next_id] = true;
                            fused_away[ln_id] = true;
                            new_nodes.push(Node {
                                kind: OpKind::AddBiasResidualLayerNorm { eps },
                                inputs: vec![
                                    node.inputs[0],
                                    node.inputs[1],
                                    residual_in,
                                    ln.inputs[1],
                                    ln.inputs[2],
                                ],
                                output: ln.output,
                            });
                            continue;
                        }
                        new_nodes.push(node);
                        continue;
                    }
                    _ => {
                        new_nodes.push(node);
                        continue;
                    }
                }
            }
            OpKind::Scale { alpha } if fusible(&g, node.output) => {
                let next_id = consumer(&g, node.output);
                let next = g.nodes[next_id].clone();
                match next.kind {
                    OpKind::Softmax => {
                        fused_away[next_id] = true;
                        new_nodes.push(Node {
                            kind: OpKind::ScaleMaskSoftmax { scale: alpha },
                            inputs: vec![node.inputs[0]],
                            output: next.output,
                        });
                        continue;
                    }
                    OpKind::Mask if fusible(&g, next.output) => {
                        let sm_id = consumer(&g, next.output);
                        let sm = g.nodes[sm_id].clone();
                        if matches!(sm.kind, OpKind::Softmax) {
                            fused_away[next_id] = true;
                            fused_away[sm_id] = true;
                            new_nodes.push(Node {
                                kind: OpKind::ScaleMaskSoftmax { scale: alpha },
                                inputs: vec![node.inputs[0], next.inputs[1]],
                                output: sm.output,
                            });
                            continue;
                        }
                        new_nodes.push(node);
                        continue;
                    }
                    _ => {
                        new_nodes.push(node);
                        continue;
                    }
                }
            }
            _ => new_nodes.push(node),
        }
    }

    g.nodes = new_nodes;
    g.gc_tensors();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorClass::{Activation, Input, Output, Weight};

    /// A miniature attention epilogue exercising all four patterns:
    /// matmul → bias+split, scale+mask+softmax, matmul → bias+gelu,
    /// matmul → bias+residual+layernorm.
    fn fused_reference() -> Graph {
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![2, 8, 16], Input);
        let mask = g.add_tensor("mask", vec![2, 8], Input);
        let wq = g.add_tensor("wq", vec![16, 16], Weight);
        let bq = g.add_tensor("bq", vec![16], Weight);
        let w2 = g.add_tensor("w2", vec![16, 16], Weight);
        let b2 = g.add_tensor("b2", vec![16], Weight);
        let gamma = g.add_tensor("gamma", vec![16], Weight);
        let beta = g.add_tensor("beta", vec![16], Weight);

        let q0 = g.add_tensor("q0", vec![2, 8, 16], Activation);
        let q = g.add_tensor("q", vec![2, 4, 8, 4], Activation);
        let scores = g.add_tensor("scores", vec![2, 4, 8, 8], Activation);
        let probs = g.add_tensor("probs", vec![2, 4, 8, 8], Activation);
        let ctx = g.add_tensor("ctx", vec![2, 4, 8, 4], Activation);
        let merged = g.add_tensor("merged", vec![2, 8, 16], Activation);
        let proj = g.add_tensor("proj", vec![2, 8, 16], Activation);
        let ffn = g.add_tensor("ffn", vec![2, 8, 16], Activation);
        let act = g.add_tensor("act", vec![2, 8, 16], Activation);
        let y = g.add_tensor("y", vec![2, 8, 16], Output);

        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![x, wq], q0);
        g.add_node(OpKind::AddBiasSplitHeads { heads: 4 }, vec![q0, bq], q);
        g.add_node(OpKind::MatMul { trans_b: true, alpha: 1.0 }, vec![q, q], scores);
        g.add_node(OpKind::ScaleMaskSoftmax { scale: 0.5 }, vec![scores, mask], probs);
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![probs, q], ctx);
        g.add_node(OpKind::MergeHeads, vec![ctx], merged);
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![merged, w2], proj);
        g.add_node(OpKind::AddBiasGelu, vec![proj, b2], ffn);
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![ffn, w2], act);
        g.add_node(
            OpKind::AddBiasResidualLayerNorm { eps: 1e-5 },
            vec![act, b2, x, gamma, beta],
            y,
        );
        g
    }

    #[test]
    fn decompose_expands_every_fused_kernel() {
        let g = fused_reference();
        let d = decompose(&g);
        assert!(d.nodes.iter().all(|n| !n.kind.is_fused()), "no fused ops survive");
        // 4 fused nodes expand: +1 (bias/split) +2 (scale/mask/softmax)
        // +1 (bias/gelu) +2 (bias/residual/ln) = 6 extra nodes.
        assert_eq!(d.nodes.len(), g.nodes.len() + 6);
        d.topo_order(); // still a DAG
    }

    #[test]
    fn fuse_recovers_the_reference() {
        let g = fused_reference();
        let mut round = fuse(&decompose(&g));
        // Structural equivalence: same op-kind multiset in topo order and
        // same node count (names of intermediates differ).
        assert_eq!(round.nodes.len(), g.nodes.len());
        let kinds = |g: &Graph| {
            g.topo_order().into_iter().map(|i| format!("{:?}", g.nodes[i].kind)).collect::<Vec<_>>()
        };
        assert_eq!(kinds(&round), kinds(&g));
        round.gc_tensors();
        assert_eq!(round.stats().activations, g.stats().activations);
    }

    #[test]
    fn fusion_reduces_launches_and_activation_bytes() {
        let g = fused_reference();
        let d = decompose(&g);
        let f = fuse(&d);
        assert!(f.stats().non_gemm_nodes < d.stats().non_gemm_nodes);
        assert!(
            f.stats().activation_bytes < d.stats().activation_bytes,
            "fused graphs materialize fewer intermediates"
        );
    }

    #[test]
    fn scale_softmax_without_mask_fuses() {
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![4, 4], Input);
        let s = g.add_tensor("s", vec![4, 4], Activation);
        let y = g.add_tensor("y", vec![4, 4], Output);
        g.add_node(OpKind::Scale { alpha: 0.25 }, vec![x], s);
        g.add_node(OpKind::Softmax, vec![s], y);
        let f = fuse(&g);
        assert_eq!(f.nodes.len(), 1);
        assert_eq!(f.nodes[0].kind, OpKind::ScaleMaskSoftmax { scale: 0.25 });
        assert_eq!(f.nodes[0].inputs.len(), 1, "no mask input");
    }

    #[test]
    fn multi_consumer_intermediates_block_fusion() {
        // The bias output feeds both a Gelu and a Residual: fusing
        // AddBias+Gelu would orphan the second consumer.
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![4], Input);
        let b = g.add_tensor("b", vec![4], Weight);
        let biased = g.add_tensor("biased", vec![4], Activation);
        let gelu = g.add_tensor("gelu", vec![4], Activation);
        let y = g.add_tensor("y", vec![4], Output);
        g.add_node(OpKind::AddBias, vec![x, b], biased);
        g.add_node(OpKind::Gelu, vec![biased], gelu);
        g.add_node(OpKind::Residual, vec![gelu, biased], y);
        let f = fuse(&g);
        assert_eq!(f.nodes.len(), 3, "nothing must fuse");
        assert!(f.nodes.iter().all(|n| !n.kind.is_fused()));
    }

    #[test]
    fn residual_operand_order_is_handled() {
        // AddBias output as *second* residual operand.
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![4], Input);
        let skip = g.add_tensor("skip", vec![4], Input);
        let b = g.add_tensor("b", vec![4], Weight);
        let gamma = g.add_tensor("gamma", vec![4], Weight);
        let beta = g.add_tensor("beta", vec![4], Weight);
        let biased = g.add_tensor("biased", vec![4], Activation);
        let summed = g.add_tensor("summed", vec![4], Activation);
        let y = g.add_tensor("y", vec![4], Output);
        g.add_node(OpKind::AddBias, vec![x, b], biased);
        g.add_node(OpKind::Residual, vec![skip, biased], summed);
        g.add_node(OpKind::LayerNorm { eps: 1e-5 }, vec![summed, gamma, beta], y);
        let f = fuse(&g);
        assert_eq!(f.nodes.len(), 1);
        assert_eq!(f.nodes[0].inputs, vec![x, b, skip, gamma, beta]);
    }

    #[test]
    fn decompose_handles_maskless_softmax() {
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![4, 4], Input);
        let y = g.add_tensor("y", vec![4, 4], Output);
        g.add_node(OpKind::ScaleMaskSoftmax { scale: 0.1 }, vec![x], y);
        let d = decompose(&g);
        assert_eq!(d.nodes.len(), 2, "scale + softmax, no mask node");
        assert!(matches!(d.nodes[0].kind, OpKind::Scale { .. }));
        assert!(matches!(d.nodes[1].kind, OpKind::Softmax));
    }
}
