//! # tt-graph — the computation graph of the inference runtime
//!
//! "Similar to many popular frameworks … our runtime represents the DNN
//! forward propagation by constructing a *computation graph*, in which nodes
//! are operators and edges are tensors" (paper §4.1.1). The graph serves
//! three masters:
//!
//! 1. **Kernel fusion** ([`fusion`]) — the paper's Figure 3 rewrite: all
//!    non-GEMM kernels between two GEMMs collapse into single fused kernels
//!    (`AddBias+SplitHeads`, `Scale+Mask+Softmax`,
//!    `AddBias+Residual+LayerNorm`, `AddBias+GELU`). The inverse
//!    ([`fusion::decompose`]) produces the fine-grained graph a training
//!    framework would run — the PyTorch-like baseline.
//! 2. **Lifetime analysis** ([`lifetime`]) — each activation's
//!    `{first_op, last_op, size}` record in topological execution order,
//!    the input of `tt-alloc`'s planners.
//! 3. **Execution & costing** — `tt-runtime` interprets the graph node by
//!    node (numerics via `tt-kernels`, simulated GPU time via `tt-gpusim`).
//!
//! Operators are the concrete transformer ops of the paper's models, not a
//! generic op set: that keeps every node executable and costable.

pub mod dot;
pub mod fusion;
pub mod lifetime;

/// Index of a tensor within a [`Graph`].
pub type TensorId = usize;
/// Index of a node within a [`Graph`].
pub type NodeId = usize;

/// What kind of storage a tensor lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorClass {
    /// Provided by the caller per request (token ids, masks).
    Input,
    /// Model parameter, resident for the life of the model.
    Weight,
    /// Intermediate activation — planned into the chunked arena.
    Activation,
    /// Final result, copied out to the caller.
    Output,
}

/// A tensor (edge) of the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorInfo {
    /// Human-readable name (`"layer3.attn.scores"`).
    pub name: String,
    /// Logical shape; element count is the product.
    pub shape: Vec<usize>,
    /// Storage class.
    pub class: TensorClass,
}

impl TensorInfo {
    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.shape.iter().product()
    }

    /// Size in bytes (f32 storage).
    pub fn bytes(&self) -> usize {
        self.elements() * 4
    }
}

/// The operator vocabulary: every op of the paper's BERT / ALBERT / decoder
/// graphs, in both fused and fine-grained form.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// GEMM `C = alpha · A · op(B)`; batched when A has rank > 2. `B` is a
    /// `[k, n]` weight, or with `trans_b` an activation `[.., n, k]`
    /// (attention `Q·Kᵀ`).
    MatMul {
        /// Transpose the second operand.
        trans_b: bool,
        /// Scale folded into the product (attention `1/√d`).
        alpha: f32,
    },
    /// Add a `[n]` bias over the last dimension.
    AddBias,
    /// GELU activation (tanh approximation, as in BERT).
    Gelu,
    /// Fused bias + GELU — the FFN inner kernel.
    AddBiasGelu,
    /// `[b, s, h·d] → [b, h, s, d]` head split (a strided transpose).
    SplitHeads {
        /// Number of attention heads.
        heads: usize,
    },
    /// Fused bias + head split — "no such API to combine matrix addition
    /// and transpose in a single CUDA kernel" (paper §4.1.1), so it is a
    /// custom kernel.
    AddBiasSplitHeads {
        /// Number of attention heads.
        heads: usize,
    },
    /// `[b, h, s, d] → [b, s, h·d]` inverse of the head split.
    MergeHeads,
    /// Multiply by a scalar.
    Scale {
        /// The factor.
        alpha: f32,
    },
    /// Add a broadcast attention mask (`-inf` outside the valid length).
    Mask,
    /// Row softmax over the last dimension.
    Softmax,
    /// Fused scale + mask + softmax over attention scores; the mask input
    /// is optional (absent for unpadded single requests).
    ScaleMaskSoftmax {
        /// Score scale (`1/√d`).
        scale: f32,
    },
    /// Elementwise add of two equal-shape tensors (residual connection).
    Residual,
    /// Layer normalization over the last dimension, with `gamma`/`beta`.
    LayerNorm {
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// Fused bias + residual + LayerNorm — the transformer block epilogue.
    AddBiasResidualLayerNorm {
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// Gather rows of an embedding table by token id and sum with position
    /// (and optionally segment) embeddings.
    Embedding,
}

impl OpKind {
    /// Whether this is a GEMM (the fusion boundaries of paper Fig. 3).
    pub fn is_gemm(&self) -> bool {
        matches!(self, OpKind::MatMul { .. })
    }

    /// Whether this op is one of the fused custom kernels.
    pub fn is_fused(&self) -> bool {
        matches!(
            self,
            OpKind::AddBiasGelu
                | OpKind::AddBiasSplitHeads { .. }
                | OpKind::ScaleMaskSoftmax { .. }
                | OpKind::AddBiasResidualLayerNorm { .. }
        )
    }
}

/// A node (operator) of the graph: inputs, one output, a kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Operator kind and attributes.
    pub kind: OpKind,
    /// Input tensors, in kind-specific order.
    pub inputs: Vec<TensorId>,
    /// The single output tensor.
    pub output: TensorId,
}

/// The computation graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    /// All tensors (edges).
    pub tensors: Vec<TensorInfo>,
    /// All nodes, in the order they were added (builders append in
    /// executable order; [`Graph::topo_order`] re-derives it defensively).
    pub nodes: Vec<Node>,
}

/// Summary statistics used by reports and the fusion tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Total node count.
    pub nodes: usize,
    /// GEMM node count.
    pub gemm_nodes: usize,
    /// Non-GEMM node count (each is one kernel launch at runtime).
    pub non_gemm_nodes: usize,
    /// Number of activation tensors.
    pub activations: usize,
    /// Total activation bytes (no reuse).
    pub activation_bytes: usize,
}

impl Graph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Add a tensor; returns its id.
    pub fn add_tensor(
        &mut self,
        name: impl Into<String>,
        shape: impl Into<Vec<usize>>,
        class: TensorClass,
    ) -> TensorId {
        self.tensors.push(TensorInfo { name: name.into(), shape: shape.into(), class });
        self.tensors.len() - 1
    }

    /// Add a node; all tensor ids must exist. Returns the node id.
    pub fn add_node(&mut self, kind: OpKind, inputs: Vec<TensorId>, output: TensorId) -> NodeId {
        for &t in inputs.iter().chain(std::iter::once(&output)) {
            assert!(t < self.tensors.len(), "node references unknown tensor {t}");
        }
        self.nodes.push(Node { kind, inputs, output });
        self.nodes.len() - 1
    }

    /// Producer node of a tensor, if any.
    pub fn producer(&self, t: TensorId) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.output == t)
    }

    /// All nodes reading a tensor.
    pub fn consumers(&self, t: TensorId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&t))
            .map(|(i, _)| i)
            .collect()
    }

    /// Topological order of the nodes (Kahn's algorithm over tensor
    /// dependencies). Panics if the graph has a cycle or an activation is
    /// consumed but never produced — both are builder bugs.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let producer: Vec<Option<NodeId>> =
            (0..self.tensors.len()).map(|t| self.producer(t)).collect();
        let mut indegree = vec![0usize; self.nodes.len()];
        let mut dependents: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &t in &n.inputs {
                match (self.tensors[t].class, producer[t]) {
                    (TensorClass::Input | TensorClass::Weight, _) => {}
                    (_, Some(p)) => {
                        indegree[i] += 1;
                        dependents[p].push(i);
                    }
                    (TensorClass::Activation | TensorClass::Output, None) => {
                        panic!("tensor {} consumed but never produced", self.tensors[t].name)
                    }
                }
            }
        }
        let mut queue: std::collections::VecDeque<NodeId> =
            (0..self.nodes.len()).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        assert_eq!(order.len(), self.nodes.len(), "graph has a cycle");
        order
    }

    /// Summary statistics.
    pub fn stats(&self) -> GraphStats {
        let gemm_nodes = self.nodes.iter().filter(|n| n.kind.is_gemm()).count();
        let acts: Vec<&TensorInfo> =
            self.tensors.iter().filter(|t| t.class == TensorClass::Activation).collect();
        GraphStats {
            nodes: self.nodes.len(),
            gemm_nodes,
            non_gemm_nodes: self.nodes.len() - gemm_nodes,
            activations: acts.len(),
            activation_bytes: acts.iter().map(|t| t.bytes()).sum(),
        }
    }

    /// Drop tensors referenced by no node, remapping ids. Used after graph
    /// rewrites, which orphan the intermediates of fused patterns.
    pub fn gc_tensors(&mut self) {
        let mut used = vec![false; self.tensors.len()];
        for n in &self.nodes {
            for &t in &n.inputs {
                used[t] = true;
            }
            used[n.output] = true;
        }
        let mut remap = vec![usize::MAX; self.tensors.len()];
        let mut kept = Vec::new();
        for (i, t) in self.tensors.iter().enumerate() {
            if used[i] {
                remap[i] = kept.len();
                kept.push(t.clone());
            }
        }
        self.tensors = kept;
        for n in &mut self.nodes {
            for t in &mut n.inputs {
                *t = remap[*t];
            }
            n.output = remap[n.output];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![2, 4], TensorClass::Input);
        let w = g.add_tensor("w", vec![4, 4], TensorClass::Weight);
        let b = g.add_tensor("b", vec![4], TensorClass::Weight);
        let h = g.add_tensor("h", vec![2, 4], TensorClass::Activation);
        let y = g.add_tensor("y", vec![2, 4], TensorClass::Output);
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![x, w], h);
        g.add_node(OpKind::AddBias, vec![h, b], y);
        g
    }

    #[test]
    fn builder_and_lookups() {
        let g = tiny_graph();
        assert_eq!(g.producer(3), Some(0));
        assert_eq!(g.producer(0), None);
        assert_eq!(g.consumers(3), vec![1]);
        assert_eq!(g.tensors[3].bytes(), 2 * 4 * 4);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        // Add nodes in reverse and check the order is fixed up.
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![4], TensorClass::Input);
        let a = g.add_tensor("a", vec![4], TensorClass::Activation);
        let y = g.add_tensor("y", vec![4], TensorClass::Output);
        let n_late = g.add_node(OpKind::Gelu, vec![a], y); // consumes a
        let n_early = g.add_node(OpKind::Scale { alpha: 2.0 }, vec![x], a); // produces a
        let order = g.topo_order();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(n_early) < pos(n_late));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_are_rejected() {
        let mut g = Graph::new();
        let a = g.add_tensor("a", vec![4], TensorClass::Activation);
        let b = g.add_tensor("b", vec![4], TensorClass::Activation);
        g.add_node(OpKind::Gelu, vec![a], b);
        g.add_node(OpKind::Gelu, vec![b], a);
        g.topo_order();
    }

    #[test]
    #[should_panic(expected = "never produced")]
    fn dangling_activation_is_rejected() {
        let mut g = Graph::new();
        let a = g.add_tensor("a", vec![4], TensorClass::Activation);
        let y = g.add_tensor("y", vec![4], TensorClass::Output);
        g.add_node(OpKind::Gelu, vec![a], y);
        g.topo_order();
    }

    #[test]
    fn stats_count_gemms() {
        let g = tiny_graph();
        let s = g.stats();
        assert_eq!(s.nodes, 2);
        assert_eq!(s.gemm_nodes, 1);
        assert_eq!(s.non_gemm_nodes, 1);
        assert_eq!(s.activations, 1);
    }

    #[test]
    fn gc_drops_orphans_and_remaps() {
        let mut g = tiny_graph();
        g.add_tensor("orphan", vec![1000], TensorClass::Activation);
        let before = g.tensors.len();
        g.gc_tensors();
        assert_eq!(g.tensors.len(), before - 1);
        // Graph still valid.
        g.topo_order();
    }

    #[test]
    #[should_panic(expected = "unknown tensor")]
    fn add_node_validates_ids() {
        let mut g = Graph::new();
        g.add_node(OpKind::Gelu, vec![0], 1);
    }
}
