//! Graphviz (DOT) export of computation graphs — the debugging view of the
//! fusion pass: render a graph before and after `fuse`/`decompose` and
//! diff the shapes visually.

use crate::{Graph, OpKind, TensorClass};

/// Render the graph as a Graphviz `digraph`. Operator nodes are boxes
/// (fused kernels shaded), tensors are ellipses colored by class; edges
/// follow dataflow.
pub fn to_dot(graph: &Graph, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{name}\" {{\n"));
    out.push_str("  rankdir=TB;\n  node [fontsize=10];\n");

    for (i, t) in graph.tensors.iter().enumerate() {
        let (color, style) = match t.class {
            TensorClass::Input => ("lightblue", "filled"),
            TensorClass::Weight => ("lightgray", "filled"),
            TensorClass::Activation => ("white", "solid"),
            TensorClass::Output => ("palegreen", "filled"),
        };
        let dims: Vec<String> = t.shape.iter().map(|d| d.to_string()).collect();
        out.push_str(&format!(
            "  t{i} [label=\"{}\\n[{}]\" shape=ellipse style={style} fillcolor={color}];\n",
            escape(&t.name),
            dims.join("x"),
        ));
    }

    for (i, n) in graph.nodes.iter().enumerate() {
        let fill = if n.kind.is_fused() {
            "gold"
        } else if n.kind.is_gemm() {
            "salmon"
        } else {
            "white"
        };
        out.push_str(&format!(
            "  op{i} [label=\"{}\" shape=box style=filled fillcolor={fill}];\n",
            escape(&kind_label(&n.kind)),
        ));
        for &t in &n.inputs {
            out.push_str(&format!("  t{t} -> op{i};\n"));
        }
        out.push_str(&format!("  op{i} -> t{};\n", n.output));
    }
    out.push_str("}\n");
    out
}

fn kind_label(kind: &OpKind) -> String {
    match kind {
        OpKind::MatMul { trans_b, .. } => {
            if *trans_b {
                "MatMul (Bᵀ)".into()
            } else {
                "MatMul".into()
            }
        }
        OpKind::ScaleMaskSoftmax { .. } => "ScaleMaskSoftmax".into(),
        OpKind::AddBiasResidualLayerNorm { .. } => "AddBiasResidualLayerNorm".into(),
        OpKind::AddBiasSplitHeads { heads } => format!("AddBiasSplitHeads (h={heads})"),
        OpKind::SplitHeads { heads } => format!("SplitHeads (h={heads})"),
        OpKind::LayerNorm { .. } => "LayerNorm".into(),
        OpKind::Scale { alpha } => format!("Scale ({alpha:.3})"),
        other => format!("{other:?}"),
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorClass::{Activation, Input, Output, Weight};

    fn sample() -> Graph {
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![2, 4], Input);
        let w = g.add_tensor("w\"quoted\"", vec![4, 4], Weight);
        let h = g.add_tensor("h", vec![2, 4], Activation);
        let b = g.add_tensor("b", vec![4], Weight);
        let y = g.add_tensor("y", vec![2, 4], Output);
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![x, w], h);
        g.add_node(OpKind::AddBiasGelu, vec![h, b], y);
        g
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let dot = to_dot(&sample(), "test");
        assert!(dot.starts_with("digraph \"test\" {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("MatMul"));
        assert!(dot.contains("AddBiasGelu"));
        assert!(dot.contains("t0 -> op0"));
        assert!(dot.contains("op1 -> t4"));
        // One tensor node per tensor, one op node per op.
        assert_eq!(dot.matches("shape=ellipse").count(), 5);
        assert_eq!(dot.matches("shape=box").count(), 2);
    }

    #[test]
    fn classes_are_color_coded_and_quotes_escaped() {
        let dot = to_dot(&sample(), "g");
        assert!(dot.contains("lightblue"), "inputs colored");
        assert!(dot.contains("palegreen"), "outputs colored");
        assert!(dot.contains("salmon"), "GEMMs shaded");
        assert!(dot.contains("gold"), "fused kernels shaded");
        assert!(dot.contains("w\\\"quoted\\\""), "quotes escaped");
    }
}
