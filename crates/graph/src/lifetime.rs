//! Activation lifetime analysis: the bridge from graph topology to the
//! sequence-length-aware allocator.
//!
//! "It utilizes the computation graph to know the life cycle of each
//! intermediate tensor in advance, and calculates the offset of each tensor
//! within a specific chunk as soon as it recognizes the sequence length of
//! the new arrival request" (paper §4.2). This module produces the
//! `{first_op, last_op, size}` records of paper Algorithm 1 from a graph.

use crate::{Graph, TensorClass, TensorId};
use tt_alloc::TensorUsage;

/// Extract allocation records for every **activation** tensor, with op
/// indices in topological execution order.
///
/// `first_op` is the producing node's position; `last_op` is the position of
/// the last consumer (or the producer itself for dead stores, which keeps
/// dangling intermediates safe rather than silently unallocated).
/// Inputs, weights and outputs are externally owned and excluded.
///
/// Returns the records and the execution order they are indexed against.
pub fn activation_lifetimes(graph: &Graph) -> (Vec<TensorUsage>, Vec<usize>) {
    let order = graph.topo_order();
    let mut position = vec![0usize; order.len()];
    for (pos, &node) in order.iter().enumerate() {
        position[node] = pos;
    }

    let mut first: Vec<Option<usize>> = vec![None; graph.tensors.len()];
    let mut last: Vec<Option<usize>> = vec![None; graph.tensors.len()];
    for (node_id, node) in graph.nodes.iter().enumerate() {
        let pos = position[node_id];
        let f = &mut first[node.output];
        *f = Some(f.map_or(pos, |p: usize| p.min(pos)));
        for &t in &node.inputs {
            let l = &mut last[t];
            *l = Some(l.map_or(pos, |p: usize| p.max(pos)));
        }
    }

    let usages = graph
        .tensors
        .iter()
        .enumerate()
        .filter(|(_, t)| t.class == TensorClass::Activation)
        .map(|(id, t)| {
            let f = first[id].unwrap_or_else(|| panic!("activation {} has no producer", t.name));
            let l = last[id].map_or(f, |l| l.max(f));
            TensorUsage::new(id as TensorId, f, l, t.bytes())
        })
        .collect();
    (usages, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpKind, TensorClass};

    /// x --matmul--> a --gelu--> b --matmul--> y, with a also feeding a
    /// residual at the end: a must stay alive until the residual.
    fn chain_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_tensor("x", vec![8, 8], TensorClass::Input);
        let w = g.add_tensor("w", vec![8, 8], TensorClass::Weight);
        let a = g.add_tensor("a", vec![8, 8], TensorClass::Activation);
        let b = g.add_tensor("b", vec![8, 8], TensorClass::Activation);
        let c = g.add_tensor("c", vec![8, 8], TensorClass::Activation);
        let y = g.add_tensor("y", vec![8, 8], TensorClass::Output);
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![x, w], a); // op 0
        g.add_node(OpKind::Gelu, vec![a], b); // op 1
        g.add_node(OpKind::MatMul { trans_b: false, alpha: 1.0 }, vec![b, w], c); // op 2
        g.add_node(OpKind::Residual, vec![c, a], y); // op 3 — a read again here
        g
    }

    #[test]
    fn lifetimes_span_producer_to_last_consumer() {
        let g = chain_graph();
        let (usages, _) = activation_lifetimes(&g);
        let by_id = |id: usize| usages.iter().find(|u| u.id == id).unwrap();
        assert_eq!((by_id(2).first_op, by_id(2).last_op), (0, 3), "a lives to the residual");
        assert_eq!((by_id(3).first_op, by_id(3).last_op), (1, 2), "b dies at the 2nd matmul");
        assert_eq!((by_id(4).first_op, by_id(4).last_op), (2, 3));
        assert_eq!(usages.len(), 3, "inputs/weights/outputs excluded");
    }

    #[test]
    fn sizes_are_bytes() {
        let g = chain_graph();
        let (usages, _) = activation_lifetimes(&g);
        assert!(usages.iter().all(|u| u.size == 8 * 8 * 4));
    }

    #[test]
    fn dead_store_gets_point_lifetime() {
        let mut g = chain_graph();
        let d = g.add_tensor("dead", vec![4], TensorClass::Activation);
        let x = 0; // input tensor
        g.add_node(OpKind::Gelu, vec![x], d);
        let (usages, _) = activation_lifetimes(&g);
        let dead = usages.iter().find(|u| u.id == d).unwrap();
        assert_eq!(dead.first_op, dead.last_op);
    }

    #[test]
    fn plan_from_lifetimes_is_valid() {
        let g = chain_graph();
        let (usages, _) = activation_lifetimes(&g);
        let mut alloc = tt_alloc::TurboAllocator::default();
        let plan = alloc.plan(&usages);
        tt_alloc::validate_plan(&usages, &plan).unwrap();
    }
}
