//! Random-graph fuzzing of the executor + fusion pipeline: build arbitrary
//! valid op chains, execute them through the planned arena, and check that
//! `fuse` and `decompose` never change the numerics — the property behind
//! the paper's claim that its graph rewrite is free.

use proptest::prelude::*;

use tt_alloc::TurboAllocator;
use tt_graph::fusion::{decompose, fuse};
use tt_graph::{Graph, OpKind, TensorClass};
use tt_model::bound::{BoundGraph, InputBinding};
use tt_model::weights::{WeightInit, WeightStore};
use tt_runtime::executor::execute;
use tt_tensor::storage::Arena;
use tt_tensor::Tensor;

/// Ops the generator may append (all preserve the [rows, hidden] shape).
#[derive(Debug, Clone, Copy)]
enum GenOp {
    AddBias,
    Gelu,
    AddBiasGelu,
    Scale,
    Softmax,
    LayerNorm,
    ResidualWithInput,
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        Just(GenOp::AddBias),
        Just(GenOp::Gelu),
        Just(GenOp::AddBiasGelu),
        Just(GenOp::Scale),
        Just(GenOp::Softmax),
        Just(GenOp::LayerNorm),
        Just(GenOp::ResidualWithInput),
    ]
}

/// Build a random but valid bound graph over a `[rows, hidden]` input,
/// plus the weight store backing it.
fn build(ops: &[GenOp], rows: usize, hidden: usize, seed: u64) -> (BoundGraph, WeightStore) {
    let mut g = Graph::new();
    let mut store = WeightStore::new();
    let mut init = WeightInit::new(seed);
    let mut bindings = Vec::new();

    let input = g.add_tensor("x", vec![rows, hidden], TensorClass::Input);
    let mut cur = input;
    let mut weight = |g: &mut Graph, store: &mut WeightStore, t: Tensor, name: String| {
        let shape = t.shape().dims().to_vec();
        let idx = store.push(t);
        let tid = g.add_tensor(name, shape, TensorClass::Weight);
        bindings.push((tid, idx));
        tid
    };

    for (i, op) in ops.iter().enumerate() {
        let out = g.add_tensor(format!("t{i}"), vec![rows, hidden], TensorClass::Activation);
        match op {
            GenOp::AddBias => {
                let b = weight(
                    &mut g,
                    &mut store,
                    init.linear(1, hidden).reshape([hidden]).unwrap(),
                    format!("b{i}"),
                );
                g.add_node(OpKind::AddBias, vec![cur, b], out);
            }
            GenOp::Gelu => {
                g.add_node(OpKind::Gelu, vec![cur], out);
            }
            GenOp::AddBiasGelu => {
                let b = weight(
                    &mut g,
                    &mut store,
                    init.linear(1, hidden).reshape([hidden]).unwrap(),
                    format!("b{i}"),
                );
                g.add_node(OpKind::AddBiasGelu, vec![cur, b], out);
            }
            GenOp::Scale => {
                g.add_node(OpKind::Scale { alpha: 0.5 + (i % 3) as f32 * 0.25 }, vec![cur], out);
            }
            GenOp::Softmax => {
                g.add_node(OpKind::Softmax, vec![cur], out);
            }
            GenOp::LayerNorm => {
                let gamma =
                    weight(&mut g, &mut store, Tensor::full([hidden], 1.1), format!("g{i}"));
                let beta =
                    weight(&mut g, &mut store, Tensor::full([hidden], -0.05), format!("be{i}"));
                g.add_node(OpKind::LayerNorm { eps: 1e-5 }, vec![cur, gamma, beta], out);
            }
            GenOp::ResidualWithInput => {
                g.add_node(OpKind::Residual, vec![cur, input], out);
            }
        }
        cur = out;
    }
    g.tensors[cur].class = TensorClass::Output;
    (
        BoundGraph {
            graph: g,
            weights: bindings,
            inputs: vec![(input, InputBinding::TokenIds)],
            output: cur,
        },
        store,
    )
}

fn run(bound: &BoundGraph, store: &WeightStore, x: &Tensor) -> Tensor {
    let mut alloc = TurboAllocator::default();
    let mut arena = Arena::new();
    execute(bound, store, &[(InputBinding::TokenIds, x)], &mut alloc, &mut arena).output
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Executing a random chain, its fused form and its decomposed form all
    /// yield the same numbers.
    #[test]
    fn fusion_rewrites_preserve_numerics(
        ops in prop::collection::vec(op_strategy(), 1..10),
        rows in 1usize..5,
        hidden in 2usize..24,
        seed in 0u64..500,
    ) {
        let (bound, store) = build(&ops, rows, hidden, seed);
        let x = Tensor::from_fn([rows, hidden], |i| ((i as u64 * 29 + seed) % 13) as f32 * 0.3 - 1.5);

        let base = run(&bound, &store, &x);
        prop_assert!(base.as_slice().iter().all(|v| v.is_finite()));

        let fused = bound.rebind(fuse(&bound.graph));
        let f = run(&fused, &store, &x);
        prop_assert!(base.approx_eq(&f, 1e-4), "fuse changed numerics (diff {})",
            base.max_abs_diff(&f).unwrap());

        let decomposed = bound.rebind(decompose(&bound.graph));
        let d = run(&decomposed, &store, &x);
        prop_assert!(base.approx_eq(&d, 1e-4), "decompose changed numerics (diff {})",
            base.max_abs_diff(&d).unwrap());

        // And the round trip.
        let round = bound.rebind(fuse(&decompose(&bound.graph)));
        let rt = run(&round, &store, &x);
        prop_assert!(base.approx_eq(&rt, 1e-4));
    }

    /// The allocator invariant holds on every random chain: plans validate
    /// and repeated execution with a warm arena is deterministic.
    #[test]
    fn warm_arena_execution_is_deterministic(
        ops in prop::collection::vec(op_strategy(), 1..8),
        seed in 0u64..200,
    ) {
        let (bound, store) = build(&ops, 3, 8, seed);
        let x = Tensor::from_fn([3, 8], |i| (i as f32 * 0.17).sin());
        let mut alloc = TurboAllocator::default();
        let mut arena = Arena::new();
        let a = execute(&bound, &store, &[(InputBinding::TokenIds, &x)], &mut alloc, &mut arena).output;
        let b = execute(&bound, &store, &[(InputBinding::TokenIds, &x)], &mut alloc, &mut arena).output;
        prop_assert_eq!(a, b);
    }
}
