//! Runtime variants: TurboTransformers plus every baseline of the paper's
//! evaluation, expressed as configurations of one shared substrate.
//!
//! Each competitor in paper Table 1 / Figures 10–11 differs from Turbo
//! along identifiable axes — kernel fusion, reduction-kernel algorithm,
//! allocator policy, shape pretuning, launch batching. Encoding those axes
//! as a [`VariantProfile`] turns the paper's cross-runtime comparison into
//! a controlled ablation; see DESIGN.md §2 for why this substitution
//! preserves the comparisons.

use tt_gpusim::kernels::{LayerNormAlgo, SoftmaxAlgo};

/// The runtimes under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RuntimeKind {
    /// TurboTransformers: fused graph, XElem reduction kernels,
    /// sequence-length-aware chunked allocator, no pretuning.
    Turbo,
    /// PyTorch 1.5-like training framework: fine-grained per-op launches,
    /// framework reduction kernels, caching device allocator.
    PyTorchLike,
    /// onnxruntime 1.3-like with dynamic axes: fused attention, classic
    /// shuffle kernels, caching allocator.
    OnnxRuntimeLike,
    /// FasterTransformer-like: fused custom kernels (classic reductions),
    /// no own allocator, shape-specialized (pretuned).
    FasterTransformerLike,
    /// TensorRT-like: fully pretuned engine, CUDA-graph-style launch
    /// elimination, autotuned GEMMs, classic reduction kernels.
    TensorRTLike,
    /// TensorFlow-XLA-like: compiled per shape, coarse elementwise fusion,
    /// moderate GEMM codegen.
    XlaLike,
}

impl RuntimeKind {
    /// All variants, in the order the paper's figures list them.
    pub fn all() -> [RuntimeKind; 6] {
        [
            RuntimeKind::Turbo,
            RuntimeKind::PyTorchLike,
            RuntimeKind::OnnxRuntimeLike,
            RuntimeKind::FasterTransformerLike,
            RuntimeKind::TensorRTLike,
            RuntimeKind::XlaLike,
        ]
    }

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            RuntimeKind::Turbo => "Turbo",
            RuntimeKind::PyTorchLike => "PyTorch",
            RuntimeKind::OnnxRuntimeLike => "onnxruntime",
            RuntimeKind::FasterTransformerLike => "FasterTransformers",
            RuntimeKind::TensorRTLike => "TensorRT",
            RuntimeKind::XlaLike => "TensorFlow-XLA",
        }
    }

    /// The profile of this variant.
    pub fn profile(&self) -> VariantProfile {
        match self {
            RuntimeKind::Turbo => VariantProfile {
                kind: *self,
                fusion: FusionLevel::Fused,
                softmax: SoftmaxAlgo::TurboXElem,
                layernorm: LayerNormAlgo::TurboOnePass,
                gemm_efficiency: 0.70,
                launch_scale: 0.5,
                allocator: AllocPolicy::TurboChunks,
                fixed_shape_only: false,
                pretune_seconds: 0.0,
                per_infer_overhead: 0.8e-3,
                precision: Precision::Fp32,
            },
            RuntimeKind::PyTorchLike => VariantProfile {
                kind: *self,
                fusion: FusionLevel::Decomposed,
                softmax: SoftmaxAlgo::Naive,
                layernorm: LayerNormAlgo::Naive,
                gemm_efficiency: 0.70,
                launch_scale: 0.5,
                allocator: AllocPolicy::CachingPool,
                fixed_shape_only: false,
                pretune_seconds: 0.0,
                per_infer_overhead: 1.0e-3,
                precision: Precision::Fp32,
            },
            RuntimeKind::OnnxRuntimeLike => VariantProfile {
                kind: *self,
                fusion: FusionLevel::Fused,
                softmax: SoftmaxAlgo::ClassicFused,
                layernorm: LayerNormAlgo::ClassicTwoPass,
                gemm_efficiency: 0.70,
                launch_scale: 0.5,
                allocator: AllocPolicy::CachingPool,
                fixed_shape_only: false,
                pretune_seconds: 0.0,
                per_infer_overhead: 0.8e-3,
                precision: Precision::Fp32,
            },
            RuntimeKind::FasterTransformerLike => VariantProfile {
                kind: *self,
                fusion: FusionLevel::Fused,
                softmax: SoftmaxAlgo::ClassicFused,
                layernorm: LayerNormAlgo::ClassicTwoPass,
                gemm_efficiency: 0.70,
                launch_scale: 0.5,
                allocator: AllocPolicy::CachingPool,
                fixed_shape_only: true,
                pretune_seconds: 5.0,
                per_infer_overhead: 0.7e-3,
                precision: Precision::Fp32,
            },
            RuntimeKind::TensorRTLike => VariantProfile {
                kind: *self,
                fusion: FusionLevel::Fused,
                softmax: SoftmaxAlgo::ClassicFused,
                layernorm: LayerNormAlgo::ClassicTwoPass,
                // Same cuBLAS-class GEMM as everyone; TensorRT's edge is
                // the CUDA-graph launch elimination (launch_scale), its
                // weakness the classic reduction kernels — reproducing the
                // paper's light-vs-heavy crossover on V100.
                gemm_efficiency: 0.70,
                launch_scale: 0.25,
                allocator: AllocPolicy::StaticExactFit,
                fixed_shape_only: true,
                pretune_seconds: 60.0,
                per_infer_overhead: 0.5e-3,
                precision: Precision::Fp32,
            },
            RuntimeKind::XlaLike => VariantProfile {
                kind: *self,
                fusion: FusionLevel::Decomposed,
                softmax: SoftmaxAlgo::ClassicFused,
                layernorm: LayerNormAlgo::ClassicTwoPass,
                gemm_efficiency: 0.65,
                launch_scale: 0.35,
                allocator: AllocPolicy::StaticExactFit,
                fixed_shape_only: true,
                pretune_seconds: 30.0,
                per_infer_overhead: 0.8e-3,
                precision: Precision::Fp32,
            },
        }
    }
}

/// Numeric precision of the modelled execution. The paper evaluates FP32;
/// FP16 is the follow-on feature of the released TurboTransformers (and of
/// FasterTransformer), modelled here as halved memory traffic and
/// tensor-core GEMM throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// 32-bit floats (the paper's evaluation).
    Fp32,
    /// 16-bit floats on tensor cores.
    Fp16,
}

impl Precision {
    /// Multiplier on DRAM traffic relative to FP32.
    pub fn bytes_scale(&self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => 0.5,
        }
    }

    /// Multiplier on GEMM throughput relative to FP32 cores
    /// (tensor cores deliver far more, but real kernels keep only part of
    /// it — 4× is the conservative end of measured BERT speedups).
    pub fn gemm_throughput_scale(&self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => 4.0,
        }
    }
}

/// How much of paper Fig. 3's fusion the runtime applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionLevel {
    /// The fully fused graph (custom kernels between GEMMs).
    Fused,
    /// Fine-grained per-op graph (one launch per op).
    Decomposed,
}

/// Activation-memory policy, for the allocator-overhead component of the
/// cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Paper Algorithm 1/2 over cached chunks, re-planned per request.
    TurboChunks,
    /// PyTorch/CUB-style caching pool: per-tensor malloc/free with reuse.
    CachingPool,
    /// Offsets precomputed for the (fixed) shape: zero per-request cost.
    StaticExactFit,
}

/// Complete description of a runtime variant for the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantProfile {
    /// Which runtime this is.
    pub kind: RuntimeKind,
    /// Graph form executed.
    pub fusion: FusionLevel,
    /// Softmax kernel algorithm.
    pub softmax: SoftmaxAlgo,
    /// LayerNorm kernel algorithm.
    pub layernorm: LayerNormAlgo,
    /// Fraction of peak FLOP/s the GEMM backend achieves.
    pub gemm_efficiency: f64,
    /// Scale on the device's kernel-launch overhead (async pipelining /
    /// CUDA-graph capture reduce the effective per-kernel gap).
    pub launch_scale: f64,
    /// Activation allocator policy.
    pub allocator: AllocPolicy,
    /// Whether the runtime must be specialized per input shape (cannot
    /// serve variable-length without repaying `pretune_seconds`).
    pub fixed_shape_only: bool,
    /// One-time tuning cost for a new shape.
    pub pretune_seconds: f64,
    /// Fixed per-inference overhead (H2D/D2H transfers, service glue).
    pub per_infer_overhead: f64,
    /// Numeric precision (FP32 in every paper experiment).
    pub precision: Precision,
}

impl VariantProfile {
    /// This profile at FP16 — the released TurboTransformers' half-precision
    /// mode, for the `fp16_ablation` extension experiment.
    pub fn with_fp16(mut self) -> Self {
        self.precision = Precision::Fp16;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_profile() {
        for kind in RuntimeKind::all() {
            let p = kind.profile();
            assert_eq!(p.kind, kind);
            assert!(p.gemm_efficiency > 0.0 && p.gemm_efficiency <= 1.0);
            assert!(p.launch_scale > 0.0 && p.launch_scale <= 1.0);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn table1_axes_are_encoded() {
        // Paper Table 1: Preprocess column — XLA/TensorRT/FT: Yes, Turbo/
        // PyTorch: No; Variable-Len — Turbo/PyTorch/ORT: Yes.
        assert!(!RuntimeKind::Turbo.profile().fixed_shape_only);
        assert!(!RuntimeKind::PyTorchLike.profile().fixed_shape_only);
        assert!(!RuntimeKind::OnnxRuntimeLike.profile().fixed_shape_only);
        assert!(RuntimeKind::TensorRTLike.profile().fixed_shape_only);
        assert!(RuntimeKind::FasterTransformerLike.profile().fixed_shape_only);
        assert!(RuntimeKind::XlaLike.profile().fixed_shape_only);
    }

    #[test]
    fn only_turbo_uses_the_chunked_allocator() {
        for kind in RuntimeKind::all() {
            let expect = kind == RuntimeKind::Turbo;
            assert_eq!(kind.profile().allocator == AllocPolicy::TurboChunks, expect, "{kind:?}");
        }
    }
}
