//! The simulated-GPU cost model: prices a computation graph (or a decoding
//! run) node by node under a [`VariantProfile`], using the kernel and
//! roofline models of `tt-gpusim`.

use tt_gpusim::cost::{
    gemm_energy_eff, gemm_time_eff, op_energy_timed, streaming_energy, streaming_time,
    EnergyEstimate,
};
use tt_gpusim::device::DeviceConfig;
use tt_gpusim::kernels::{layernorm_launches, softmax_launches, BatchShape};
use tt_gpusim::launch::{kernel_time, sequence_time, KernelLaunch};
use tt_graph::{Graph, Node, OpKind};
use tt_model::decoder::Seq2SeqDecoderConfig;

use crate::variants::VariantProfile;

/// Per-component cost of one simulated inference.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// GEMM kernels.
    pub gemm: f64,
    /// Softmax kernels (incl. fused scale/mask).
    pub softmax: f64,
    /// LayerNorm kernels (incl. fused bias/residual).
    pub layernorm: f64,
    /// Remaining elementwise/transpose/embedding kernels.
    pub other: f64,
    /// Allocator overhead (plan time, device mallocs). Filled by the
    /// runtime, not by [`graph_cost`].
    pub alloc: f64,
    /// Fixed per-inference overhead (transfers, glue). Filled by the
    /// runtime.
    pub overhead: f64,
    /// Kernel launches issued (including launches internal to unfused
    /// softmax/LayerNorm).
    pub launches: usize,
}

impl CostBreakdown {
    /// Total simulated seconds.
    pub fn total(&self) -> f64 {
        self.gemm + self.softmax + self.layernorm + self.other + self.alloc + self.overhead
    }
}

/// Scale a device for a variant: launch overhead (async pipelining /
/// CUDA-graph capture shrink the effective per-kernel gap) and precision
/// (FP16 halves DRAM traffic and runs GEMM on tensor cores).
pub fn scaled_device(device: &DeviceConfig, profile: &VariantProfile) -> DeviceConfig {
    let mut dev = device.clone();
    dev.launch_overhead_us *= profile.launch_scale;
    dev.mem_bandwidth_gbps /= profile.precision.bytes_scale();
    dev.peak_tflops *= profile.precision.gemm_throughput_scale();
    dev
}

/// Price one node. Returns `(seconds, component, launches)` where component
/// indexes into the breakdown: 0 = gemm, 1 = softmax, 2 = layernorm,
/// 3 = other.
fn node_cost(
    dev: &DeviceConfig,
    profile: &VariantProfile,
    graph: &Graph,
    node: &Node,
) -> (f64, usize, usize) {
    let shape_of = |t: usize| -> &[usize] { &graph.tensors[t].shape };
    let elems_of = |t: usize| -> usize { graph.tensors[t].elements() };
    let out_shape = shape_of(node.output);

    match &node.kind {
        OpKind::MatMul { trans_b, .. } => {
            let a = shape_of(node.inputs[0]);
            let b = shape_of(node.inputs[1]);
            let (batch, m, k, n) = if b.len() == 2 {
                let m: usize = a[..a.len() - 1].iter().product();
                (1, m, a[a.len() - 1], b[1])
            } else {
                // Batched per-head product: a = [b, h, m, k].
                let batch = a[0] * a[1];
                let (m, k) = (a[2], a[3]);
                let n = if *trans_b { b[2] } else { b[3] };
                (batch, m, k, n)
            };
            (gemm_time_eff(dev, batch, m, k, n, profile.gemm_efficiency), 0, 1)
        }
        OpKind::Softmax | OpKind::ScaleMaskSoftmax { .. } => {
            let row_len = *out_shape.last().expect("softmax output has rank >= 1");
            let rows = elems_of(node.output) / row_len.max(1);
            let launches = softmax_launches(dev, profile.softmax, BatchShape { rows, row_len });
            (sequence_time(dev, &launches), 1, launches.len())
        }
        OpKind::LayerNorm { .. } | OpKind::AddBiasResidualLayerNorm { .. } => {
            let row_len = *out_shape.last().expect("layernorm output has rank >= 1");
            let rows = elems_of(node.output) / row_len.max(1);
            let launches = layernorm_launches(dev, profile.layernorm, BatchShape { rows, row_len });
            (sequence_time(dev, &launches), 2, launches.len())
        }
        OpKind::Embedding => {
            // Gather: read the rows it touches, write the output.
            let bytes = (2 * elems_of(node.output) * 4) as u64;
            (streaming_time(dev, bytes), 3, 1)
        }
        _ => {
            // Elementwise / transpose glue: stream all inputs + the output.
            let reads: usize = node.inputs.iter().map(|&t| elems_of(t)).sum();
            let bytes = ((reads + elems_of(node.output)) * 4) as u64;
            (streaming_time(dev, bytes), 3, 1)
        }
    }
}

/// Energy of a sequence of kernel launches: each launch's dynamic
/// flops/bytes energy plus static draw over its own kernel time.
fn launches_energy(dev: &DeviceConfig, launches: &[KernelLaunch]) -> EnergyEstimate {
    let mut e = EnergyEstimate::default();
    for l in launches {
        e.accumulate(&op_energy_timed(dev, l.flops, l.bytes, kernel_time(dev, l)));
    }
    e
}

/// Price one node's energy — the joules column next to [`node_cost`]'s
/// seconds, derived from the identical roofline activity (GEMM
/// flops/bytes, kernel-model launches, streaming traffic).
fn node_energy(
    dev: &DeviceConfig,
    profile: &VariantProfile,
    graph: &Graph,
    node: &Node,
) -> EnergyEstimate {
    let shape_of = |t: usize| -> &[usize] { &graph.tensors[t].shape };
    let elems_of = |t: usize| -> usize { graph.tensors[t].elements() };
    let out_shape = shape_of(node.output);

    match &node.kind {
        OpKind::MatMul { trans_b, .. } => {
            let a = shape_of(node.inputs[0]);
            let b = shape_of(node.inputs[1]);
            let (batch, m, k, n) = if b.len() == 2 {
                let m: usize = a[..a.len() - 1].iter().product();
                (1, m, a[a.len() - 1], b[1])
            } else {
                let batch = a[0] * a[1];
                let (m, k) = (a[2], a[3]);
                let n = if *trans_b { b[2] } else { b[3] };
                (batch, m, k, n)
            };
            gemm_energy_eff(dev, batch, m, k, n, profile.gemm_efficiency)
        }
        OpKind::Softmax | OpKind::ScaleMaskSoftmax { .. } => {
            let row_len = *out_shape.last().expect("softmax output has rank >= 1");
            let rows = elems_of(node.output) / row_len.max(1);
            let launches = softmax_launches(dev, profile.softmax, BatchShape { rows, row_len });
            launches_energy(dev, &launches)
        }
        OpKind::LayerNorm { .. } | OpKind::AddBiasResidualLayerNorm { .. } => {
            let row_len = *out_shape.last().expect("layernorm output has rank >= 1");
            let rows = elems_of(node.output) / row_len.max(1);
            let launches = layernorm_launches(dev, profile.layernorm, BatchShape { rows, row_len });
            launches_energy(dev, &launches)
        }
        OpKind::Embedding => {
            let bytes = (2 * elems_of(node.output) * 4) as u64;
            streaming_energy(dev, bytes)
        }
        _ => {
            let reads: usize = node.inputs.iter().map(|&t| elems_of(t)).sum();
            let bytes = ((reads + elems_of(node.output)) * 4) as u64;
            streaming_energy(dev, bytes)
        }
    }
}

/// Per-node modeled joules of a graph, indexed by node id — the vector the
/// executor threads into per-op trace spans (`energy_uj` attribute) and
/// whose sum the engines attribute to the energy meter.
pub fn node_energies(device: &DeviceConfig, profile: &VariantProfile, graph: &Graph) -> Vec<f64> {
    let dev = scaled_device(device, profile);
    graph.nodes.iter().map(|n| node_energy(&dev, profile, graph, n).total()).collect()
}

/// Total kernel energy of a graph under a profile (allocator and fixed
/// overheads are the runtime's responsibility, as with [`graph_cost`]).
pub fn graph_energy(
    device: &DeviceConfig,
    profile: &VariantProfile,
    graph: &Graph,
) -> EnergyEstimate {
    let dev = scaled_device(device, profile);
    let mut e = EnergyEstimate::default();
    for node in &graph.nodes {
        e.accumulate(&node_energy(&dev, profile, graph, node));
    }
    e
}

/// Energy of one GPT decode step at cache length `t` (the `t`-th token
/// overall, 1-based), mirroring [`gpt_cost`]'s per-step work; `sample`
/// adds the vocabulary projection. This is what the generative runtime
/// attributes to the meter per executed step.
pub fn gpt_step_energy(
    device: &DeviceConfig,
    profile: &VariantProfile,
    cfg: &tt_model::gpt::GptConfig,
    t: usize,
    sample: bool,
) -> EnergyEstimate {
    let dev = scaled_device(device, profile);
    let h = cfg.model_dim();
    let (heads, d) = (cfg.num_heads, cfg.head_dim);
    let eff = profile.gemm_efficiency;
    let t = t.clamp(1, cfg.max_position);
    let mut e = EnergyEstimate::default();
    for _ in 0..cfg.num_layers {
        e.accumulate(&gemm_energy_eff(&dev, 1, 1, h, h, eff));
        e.accumulate(&gemm_energy_eff(&dev, 1, 1, h, h, eff));
        e.accumulate(&gemm_energy_eff(&dev, 1, 1, h, h, eff));
        e.accumulate(&gemm_energy_eff(&dev, 1, 1, h, h, eff));
        e.accumulate(&gemm_energy_eff(&dev, heads, 1, d, t, eff));
        e.accumulate(&gemm_energy_eff(&dev, heads, 1, t, d, eff));
        let sm = softmax_launches(&dev, profile.softmax, BatchShape { rows: heads, row_len: t });
        e.accumulate(&launches_energy(&dev, &sm));
        let ln = layernorm_launches(&dev, profile.layernorm, BatchShape { rows: 1, row_len: h });
        let ln_e = launches_energy(&dev, &ln);
        e.accumulate(&ln_e);
        e.accumulate(&ln_e);
        e.accumulate(&gemm_energy_eff(&dev, 1, 1, h, cfg.ffn_dim, eff));
        e.accumulate(&gemm_energy_eff(&dev, 1, 1, cfg.ffn_dim, h, eff));
    }
    if sample {
        e.accumulate(&gemm_energy_eff(&dev, 1, 1, h, cfg.vocab_size, eff));
    }
    e
}

/// Energy of prefetching a whole prompt through the KV cache: the sum of
/// the per-position step energies, sampling only at the last position —
/// the decomposition [`gpt_cost`] uses for its timing.
pub fn gpt_prefill_energy(
    device: &DeviceConfig,
    profile: &VariantProfile,
    cfg: &tt_model::gpt::GptConfig,
    prompt_len: usize,
) -> EnergyEstimate {
    let total = prompt_len.min(cfg.max_position).max(1);
    let mut e = EnergyEstimate::default();
    for t in 1..=total {
        e.accumulate(&gpt_step_energy(device, profile, cfg, t, t == total));
    }
    e
}

/// Price a whole graph under a profile (kernel time only — allocator and
/// fixed overheads are the runtime's responsibility).
pub fn graph_cost(device: &DeviceConfig, profile: &VariantProfile, graph: &Graph) -> CostBreakdown {
    let dev = scaled_device(device, profile);
    let mut cb = CostBreakdown::default();
    for node in &graph.nodes {
        let (t, component, launches) = node_cost(&dev, profile, graph, node);
        match component {
            0 => cb.gemm += t,
            1 => cb.softmax += t,
            2 => cb.layernorm += t,
            _ => cb.other += t,
        }
        cb.launches += launches;
    }
    cb
}

/// One line of a per-operator profile.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfileLine {
    /// Operator kind label (e.g. `"MatMul"`).
    pub kind: String,
    /// Number of nodes of this kind.
    pub count: usize,
    /// Kernel launches these nodes issue.
    pub launches: usize,
    /// Total simulated seconds.
    pub seconds: f64,
}

/// Per-operator-kind breakdown of a graph's simulated time, sorted by
/// descending cost — the profiler view behind the paper's §4.1.1
/// motivation numbers (61.8 % GEMM at batch 20 / seq 128; 80.6 % idle at
/// batch 1 / seq 40).
pub fn profile_graph(
    device: &DeviceConfig,
    profile: &VariantProfile,
    graph: &Graph,
) -> Vec<OpProfileLine> {
    let dev = scaled_device(device, profile);
    let mut lines: Vec<OpProfileLine> = Vec::new();
    for node in &graph.nodes {
        let (t, _, launches) = node_cost(&dev, profile, graph, node);
        let kind = op_label(&node.kind);
        match lines.iter_mut().find(|l| l.kind == kind) {
            Some(l) => {
                l.count += 1;
                l.launches += launches;
                l.seconds += t;
            }
            None => lines.push(OpProfileLine { kind, count: 1, launches, seconds: t }),
        }
    }
    lines.sort_by(|a, b| b.seconds.partial_cmp(&a.seconds).expect("finite times"));
    lines
}

fn op_label(kind: &OpKind) -> String {
    match kind {
        OpKind::MatMul { .. } => "MatMul".into(),
        OpKind::ScaleMaskSoftmax { .. } => "ScaleMaskSoftmax".into(),
        OpKind::AddBiasResidualLayerNorm { .. } => "AddBiasResidualLayerNorm".into(),
        OpKind::AddBiasSplitHeads { .. } => "AddBiasSplitHeads".into(),
        OpKind::SplitHeads { .. } => "SplitHeads".into(),
        OpKind::LayerNorm { .. } => "LayerNorm".into(),
        OpKind::Scale { .. } => "Scale".into(),
        other => format!("{other:?}"),
    }
}

/// Price a full beam-search decoding run: `tgt_len` incremental steps of a
/// [`Seq2SeqDecoderConfig`] decoder over an encoder memory of `src_len`
/// (paper Fig. 10c's workload). Includes the one-time cross-attention K/V
/// projection but not the encoder itself.
pub fn decoder_cost(
    device: &DeviceConfig,
    profile: &VariantProfile,
    cfg: &Seq2SeqDecoderConfig,
    src_len: usize,
    tgt_len: usize,
) -> CostBreakdown {
    let dev = scaled_device(device, profile);
    let h = cfg.model_dim();
    let beams = cfg.beam_size;
    let heads = cfg.num_heads;
    let d = cfg.head_dim;
    let eff = profile.gemm_efficiency;
    let mut cb = CostBreakdown::default();

    // Cross-attention K/V projections, once per layer.
    for _ in 0..cfg.num_layers {
        cb.gemm += 2.0 * gemm_time_eff(&dev, 1, src_len, h, h, eff);
        cb.launches += 2;
    }

    for t in 1..=tgt_len.min(cfg.max_target_len) {
        for _ in 0..cfg.num_layers {
            // Self-attention: Q/K/V/O projections for the current token.
            cb.gemm += 4.0 * gemm_time_eff(&dev, 1, beams, h, h, eff);
            // Attend over t cached keys and back over values.
            cb.gemm += gemm_time_eff(&dev, beams * heads, 1, d, t, eff);
            cb.gemm += gemm_time_eff(&dev, beams * heads, 1, t, d, eff);
            cb.launches += 6;
            let sm = softmax_launches(
                &dev,
                profile.softmax,
                BatchShape { rows: beams * heads, row_len: t },
            );
            cb.softmax += sequence_time(&dev, &sm);
            cb.launches += sm.len();

            // Cross-attention: Q and O projections + attend over src_len.
            cb.gemm += 2.0 * gemm_time_eff(&dev, 1, beams, h, h, eff);
            cb.gemm += gemm_time_eff(&dev, beams * heads, 1, d, src_len, eff);
            cb.gemm += gemm_time_eff(&dev, beams * heads, 1, src_len, d, eff);
            cb.launches += 4;
            let smc = softmax_launches(
                &dev,
                profile.softmax,
                BatchShape { rows: beams * heads, row_len: src_len },
            );
            cb.softmax += sequence_time(&dev, &smc);
            cb.launches += smc.len();

            // FFN.
            cb.gemm += gemm_time_eff(&dev, 1, beams, h, cfg.ffn_dim, eff);
            cb.gemm += gemm_time_eff(&dev, 1, beams, cfg.ffn_dim, h, eff);
            cb.launches += 2;

            // Three LayerNorms.
            let ln =
                layernorm_launches(&dev, profile.layernorm, BatchShape { rows: beams, row_len: h });
            cb.layernorm += 3.0 * sequence_time(&dev, &ln);
            cb.launches += 3 * ln.len();
        }
        // Vocabulary projection.
        cb.gemm += gemm_time_eff(&dev, 1, beams, h, cfg.vocab_size, eff);
        cb.launches += 1;
    }
    // Fine-grained (framework) runtimes drive the generation loop from the
    // host language — PyTorch's beam search pays Python dispatch every
    // step, while the fused C++ runtimes pay it once per request.
    cb.overhead = match profile.fusion {
        crate::variants::FusionLevel::Decomposed => {
            profile.per_infer_overhead * tgt_len.max(1) as f64
        }
        crate::variants::FusionLevel::Fused => profile.per_infer_overhead,
    };
    cb
}

/// Price a GPT-style decoder-only generation: `prompt_len` cached prefill
/// steps plus `gen_len` generated tokens, single sequence. Pre-LN blocks
/// have no fused bias+residual+LN epilogue, so both variants pay plain
/// LayerNorms; the fusion axis shows up only in launch counts and the
/// per-step host overhead.
pub fn gpt_cost(
    device: &DeviceConfig,
    profile: &VariantProfile,
    cfg: &tt_model::gpt::GptConfig,
    prompt_len: usize,
    gen_len: usize,
) -> CostBreakdown {
    let dev = scaled_device(device, profile);
    let h = cfg.model_dim();
    let (heads, d) = (cfg.num_heads, cfg.head_dim);
    let eff = profile.gemm_efficiency;
    let mut cb = CostBreakdown::default();

    let total = (prompt_len + gen_len).min(cfg.max_position);
    for t in 1..=total {
        for _ in 0..cfg.num_layers {
            // QKV + output projections for one token.
            cb.gemm += 4.0 * gemm_time_eff(&dev, 1, 1, h, h, eff);
            // Attend over the causal cache of length t.
            cb.gemm += gemm_time_eff(&dev, heads, 1, d, t, eff);
            cb.gemm += gemm_time_eff(&dev, heads, 1, t, d, eff);
            cb.launches += 6;
            let sm =
                softmax_launches(&dev, profile.softmax, BatchShape { rows: heads, row_len: t });
            cb.softmax += sequence_time(&dev, &sm);
            cb.launches += sm.len();
            // Two pre-LN LayerNorms + FFN.
            let ln =
                layernorm_launches(&dev, profile.layernorm, BatchShape { rows: 1, row_len: h });
            cb.layernorm += 2.0 * sequence_time(&dev, &ln);
            cb.launches += 2 * ln.len();
            cb.gemm += gemm_time_eff(&dev, 1, 1, h, cfg.ffn_dim, eff);
            cb.gemm += gemm_time_eff(&dev, 1, 1, cfg.ffn_dim, h, eff);
            cb.launches += 2;
        }
        // Final LN + tied-embedding logits (only needed where a token is
        // actually sampled, i.e. from the last prompt position onward).
        if t >= prompt_len {
            cb.gemm += gemm_time_eff(&dev, 1, 1, h, cfg.vocab_size, eff);
            cb.launches += 1;
        }
    }
    cb.overhead = match profile.fusion {
        crate::variants::FusionLevel::Decomposed => {
            profile.per_infer_overhead * total.max(1) as f64
        }
        crate::variants::FusionLevel::Fused => profile.per_infer_overhead,
    };
    cb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::RuntimeKind;
    use tt_gpusim::device::DeviceKind;
    use tt_model::bert::{graph_skeleton, BertConfig};

    fn dev() -> DeviceConfig {
        DeviceKind::RTX2060.config()
    }

    #[test]
    fn turbo_beats_pytorch_on_bert_and_gap_grows_with_length() {
        let d = dev();
        let cfg = BertConfig::base();
        let cost = |kind: RuntimeKind, seq: usize| {
            let bg = graph_skeleton(&cfg, 1, seq, false);
            let profile = kind.profile();
            let graph = match profile.fusion {
                crate::variants::FusionLevel::Fused => bg.graph,
                crate::variants::FusionLevel::Decomposed => tt_graph::fusion::decompose(&bg.graph),
            };
            graph_cost(&d, &profile, &graph).total()
        };
        let sp_short = cost(RuntimeKind::PyTorchLike, 10) / cost(RuntimeKind::Turbo, 10);
        let sp_long = cost(RuntimeKind::PyTorchLike, 500) / cost(RuntimeKind::Turbo, 500);
        assert!(sp_short > 1.0, "turbo must win at short: {sp_short:.3}");
        assert!(sp_long > sp_short, "speedup grows with length: {sp_short:.3} vs {sp_long:.3}");
        assert!(
            (1.0..4.0).contains(&sp_short) && (1.3..6.0).contains(&sp_long),
            "speedups in a plausible band (paper: 1.10–2.58): {sp_short:.2}, {sp_long:.2}"
        );
    }

    #[test]
    fn decomposed_graphs_launch_more_kernels() {
        let d = dev();
        let cfg = BertConfig::base();
        let bg = graph_skeleton(&cfg, 1, 40, false);
        let turbo = RuntimeKind::Turbo.profile();
        let pt = RuntimeKind::PyTorchLike.profile();
        let fused = graph_cost(&d, &turbo, &bg.graph);
        let decomposed = graph_cost(&d, &pt, &tt_graph::fusion::decompose(&bg.graph));
        assert!(
            decomposed.launches > 2 * fused.launches,
            "decomposed {} vs fused {}",
            decomposed.launches,
            fused.launches
        );
    }

    #[test]
    fn gemm_dominates_fused_runtime_at_large_batch() {
        // Paper §4.1.1: with fused kernels, GEMM is ~60+ % of time at
        // batch 20 / seq 128.
        let d = DeviceKind::V100.config();
        let cfg = BertConfig::base();
        let bg = graph_skeleton(&cfg, 20, 128, false);
        let cb = graph_cost(&d, &RuntimeKind::Turbo.profile(), &bg.graph);
        let share = cb.gemm / cb.total();
        assert!(share > 0.5, "GEMM share should dominate the fused runtime: {share:.3}");
    }

    #[test]
    fn decoder_cost_scales_superlinearly_with_target_length() {
        let d = dev();
        let cfg = Seq2SeqDecoderConfig::base();
        let p = RuntimeKind::Turbo.profile();
        let short = decoder_cost(&d, &p, &cfg, 50, 20).total();
        let long = decoder_cost(&d, &p, &cfg, 50, 80).total();
        assert!(long > 3.5 * short, "4× steps ≥ ~4× cost: {short} vs {long}");
    }

    #[test]
    fn decoder_turbo_beats_pytorch() {
        // Paper Fig. 10c: 1.85–2.51× over PyTorch.
        let d = dev();
        let cfg = Seq2SeqDecoderConfig::base();
        let t = decoder_cost(&d, &RuntimeKind::Turbo.profile(), &cfg, 100, 50).total();
        let p = decoder_cost(&d, &RuntimeKind::PyTorchLike.profile(), &cfg, 100, 50).total();
        let sp = p / t;
        assert!((1.3..4.0).contains(&sp), "decoder speedup {sp:.2} plausible");
    }

    #[test]
    fn node_energies_sum_to_graph_energy_and_grow_with_batch() {
        let d = dev();
        let cfg = BertConfig::base();
        let p = RuntimeKind::Turbo.profile();
        let small = graph_skeleton(&cfg, 1, 40, false);
        let per_node = node_energies(&d, &p, &small.graph);
        assert_eq!(per_node.len(), small.graph.nodes.len());
        assert!(per_node.iter().all(|&j| j > 0.0), "every op consumes energy");
        let total: f64 = per_node.iter().sum();
        let ge = graph_energy(&d, &p, &small.graph);
        assert!((total - ge.total()).abs() < 1e-9 * ge.total().max(1.0));
        let big = graph_skeleton(&cfg, 8, 40, false);
        assert!(graph_energy(&d, &p, &big.graph).total() > 4.0 * ge.total());
    }

    #[test]
    fn fused_graph_spends_fewer_joules_than_decomposed() {
        // Fusion removes intermediate DRAM round-trips and launches, so its
        // energy must undercut the decomposed form of the same math.
        let d = dev();
        let cfg = BertConfig::base();
        let bg = graph_skeleton(&cfg, 1, 40, false);
        let p = RuntimeKind::Turbo.profile();
        let fused = graph_energy(&d, &p, &bg.graph).total();
        let decomposed = graph_energy(&d, &p, &tt_graph::fusion::decompose(&bg.graph)).total();
        assert!(fused < decomposed, "fused {fused} vs decomposed {decomposed}");
    }

    #[test]
    fn gpt_step_energy_grows_with_context_and_prefill_sums_steps() {
        let d = dev();
        let cfg = tt_model::gpt::GptConfig::tiny();
        let p = RuntimeKind::Turbo.profile();
        let early = gpt_step_energy(&d, &p, &cfg, 2, true).total();
        let late = gpt_step_energy(&d, &p, &cfg, 30, true).total();
        assert!(early > 0.0 && late > early, "longer prefix costs more: {early} vs {late}");
        let prefill = gpt_prefill_energy(&d, &p, &cfg, 8).total();
        assert!(prefill > gpt_step_energy(&d, &p, &cfg, 8, true).total());
    }
}
