//! # tt-runtime — the TurboTransformers inference runtime
//!
//! Ties together everything below it, exactly as the paper's "inference
//! runtime" box (Fig. 2) does:
//!
//! - builds/receives a fused computation graph (`tt-graph`, `tt-model`);
//! - plans activation memory per request with the sequence-length-aware
//!   allocator (`tt-alloc`) and executes the real numerics over the shared
//!   chunk arena ([`executor`]);
//! - prices the same execution on a simulated GPU (`tt-gpusim`) so
//!   experiments can reason about device time without physical hardware
//!   ([`cost`]);
//! - and exposes every baseline runtime of the paper's evaluation as a
//!   [`RuntimeKind`] variant of the same substrate ([`variants`]).
//!
//! ```
//! use tt_model::bert::{Bert, BertConfig};
//! use tt_model::ids_batch;
//! use tt_runtime::{RuntimeConfig, TurboRuntime};
//! use tt_gpusim::device::DeviceKind;
//!
//! let model = Bert::new_random(&BertConfig::tiny(), 7);
//! let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
//! let out = rt.run_bert(&model, &ids_batch(&[&[1, 2, 3]])).unwrap();
//! assert_eq!(out.encoder_output.shape().dims(), &[1, 3, 16]);
//! assert!(out.sim_time > 0.0);
//! ```

pub mod cost;
pub mod decode;
pub mod executor;
pub mod variants;

use std::collections::{HashMap, HashSet};

use parking_lot::Mutex;

use tt_alloc::caching::CachingAllocator;
use tt_alloc::sim::replay;
use tt_alloc::TurboAllocator;
use tt_gpusim::device::{DeviceConfig, DeviceKind};
use tt_graph::lifetime::activation_lifetimes;
use tt_model::albert::{Albert, AlbertConfig};
use tt_model::bert::{Bert, BertConfig};
use tt_model::bound::{BoundGraph, InputBinding};
use tt_model::decoder::Seq2SeqDecoderConfig;
use tt_tensor::storage::Arena;
use tt_tensor::Tensor;

pub use cost::CostBreakdown;
pub use variants::{AllocPolicy, FusionLevel, Precision, RuntimeKind, VariantProfile};

/// Simulated cost of one slow-path device allocation (`cudaMalloc`).
pub const DEVICE_MALLOC_SECONDS: f64 = 60e-6;
/// Simulated CPU cost of one offset-plan pass (paper: "lightweight").
pub const PLAN_BASE_SECONDS: f64 = 10e-6;
/// Simulated per-tensor cost of planning / pool lookups.
pub const PER_TENSOR_SECONDS: f64 = 0.3e-6;

/// Runtime construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Which runtime variant to emulate.
    pub kind: RuntimeKind,
    /// Which GPU to model.
    pub device: DeviceKind,
    /// Charge shape-pretuning time for fixed-shape runtimes when a new
    /// shape arrives (paper Fig. 10 semantics). When `false` (default, the
    /// paper's Fig. 11 semantics) shapes are assumed pre-tuned.
    pub include_pretune: bool,
    /// Numeric precision to model (FP32 in every paper experiment; FP16 is
    /// the released TurboTransformers' half-precision mode).
    pub precision: Precision,
}

impl RuntimeConfig {
    /// A runtime of the given kind on the given device.
    pub fn new(kind: RuntimeKind, device: DeviceKind) -> Self {
        RuntimeConfig { kind, device, include_pretune: false, precision: Precision::Fp32 }
    }

    /// Model FP16 execution (tensor-core GEMM, halved traffic).
    pub fn fp16(mut self) -> Self {
        self.precision = Precision::Fp16;
        self
    }

    /// The TurboTransformers runtime.
    pub fn turbo(device: DeviceKind) -> Self {
        Self::new(RuntimeKind::Turbo, device)
    }
}

/// Errors surfaced to callers of the run APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The request's sequence length exceeds the model's position table.
    SequenceTooLong {
        /// Requested length.
        got: usize,
        /// Model maximum.
        max: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::SequenceTooLong { got, max } => {
                write!(f, "sequence length {got} exceeds the model maximum {max}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Result of one runtime inference: real numerics plus simulated timing.
#[derive(Debug)]
pub struct EncoderRun {
    /// Final hidden states `[batch, seq, hidden]`.
    pub encoder_output: Tensor,
    /// Simulated device seconds for this inference under the variant.
    pub sim_time: f64,
    /// Component breakdown of `sim_time`.
    pub breakdown: CostBreakdown,
    /// Modeled energy of this inference in integer microjoules (kernel
    /// dynamic + static energy, plus idle draw over the allocator/overhead
    /// time). The same value is attributed to the attached
    /// [`EnergyMeter`](tt_telemetry::EnergyMeter) under the prefill phase,
    /// so per-request shares of this number reconcile exactly against the
    /// meter.
    pub energy_uj: u64,
    /// Allocator statistics of this inference's plan.
    pub plan_stats: tt_alloc::turbo::PlanStats,
}

#[derive(Debug)]
struct State {
    allocator: TurboAllocator,
    arena: Arena,
    /// Warm caching pool used to price `AllocPolicy::CachingPool` variants.
    caching_for_cost: CachingAllocator,
    /// Turbo allocator replica used to price `AllocPolicy::TurboChunks`.
    turbo_for_cost: TurboAllocator,
    tuned_shapes: HashSet<(usize, usize)>,
    bert_cost_cache: HashMap<CostKey, (CostBreakdown, f64)>,
    /// Per-op-kind timing sink, set by [`TurboRuntime::instrument`].
    exec_metrics: Option<executor::ExecutorMetrics>,
    /// Memory-bound passes removed by the fusion pass, per executed graph.
    fusion_elided: Option<std::sync::Arc<tt_telemetry::Counter>>,
    /// Busy-energy sink, set by [`TurboRuntime::instrument_energy`]. Every
    /// executed inference attributes its modeled joules here under the
    /// prefill phase.
    energy_meter: Option<std::sync::Arc<tt_telemetry::EnergyMeter>>,
}

#[derive(Debug, PartialEq, Eq, Hash, Clone, Copy)]
struct CostKey {
    layers: usize,
    heads: usize,
    head_dim: usize,
    ffn: usize,
    batch: usize,
    seq: usize,
    masked: bool,
    albert: bool,
}

/// The runtime. Cheap to share behind a reference; interior state (chunk
/// cache, cost caches, tuned-shape set) is mutex-protected.
#[derive(Debug)]
pub struct TurboRuntime {
    config: RuntimeConfig,
    profile: VariantProfile,
    device: DeviceConfig,
    state: Mutex<State>,
}

impl TurboRuntime {
    /// Create a runtime.
    pub fn new(config: RuntimeConfig) -> Self {
        let mut profile = config.kind.profile();
        profile.precision = config.precision;
        TurboRuntime {
            profile,
            device: config.device.config(),
            config,
            state: Mutex::new(State {
                allocator: TurboAllocator::default(),
                arena: Arena::new(),
                caching_for_cost: CachingAllocator::new(),
                turbo_for_cost: TurboAllocator::default(),
                tuned_shapes: HashSet::new(),
                bert_cost_cache: HashMap::new(),
                exec_metrics: None,
                fusion_elided: None,
                energy_meter: None,
            }),
        }
    }

    /// Attach telemetry: per-op-kind execution timing (paper Table 2) and
    /// allocator chunk/byte metrics report into `registry` from every
    /// subsequent inference. Idempotent per registry — handles are
    /// get-or-create by name.
    pub fn instrument(&self, registry: &tt_telemetry::Registry) {
        let mut state = self.state.lock();
        state.exec_metrics = Some(executor::ExecutorMetrics::register(registry));
        state.fusion_elided = Some(registry.counter(
            "fusion_elided_passes_total",
            "Memory-bound kernel passes the graph fusion pass removed before execution",
            &[],
        ));
        state.allocator.attach_metrics(tt_alloc::AllocMetrics::register(registry));
    }

    /// Attach an energy meter: every subsequent inference adds its modeled
    /// microjoules (the same value returned in [`EncoderRun::energy_uj`])
    /// under [`tt_telemetry::EnergyPhase::Prefill`] — full-sequence encoder
    /// forwards are the prefill-shaped work in this stack. The sampler in
    /// `tt_telemetry::energy` turns the meter into `power_watts` /
    /// `energy_joules_total` metric families.
    pub fn instrument_energy(&self, meter: std::sync::Arc<tt_telemetry::EnergyMeter>) {
        self.state.lock().energy_meter = Some(meter);
    }

    /// The variant this runtime emulates.
    pub fn kind(&self) -> RuntimeKind {
        self.config.kind
    }

    /// The variant profile.
    pub fn profile(&self) -> &VariantProfile {
        &self.profile
    }

    /// The modelled device.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Apply the variant's graph form (fused models de-fuse for
    /// fine-grained variants).
    fn transform(&self, bound: &BoundGraph) -> BoundGraph {
        match self.profile.fusion {
            FusionLevel::Fused => bound.clone(),
            FusionLevel::Decomposed => bound.rebind(tt_graph::fusion::decompose(&bound.graph)),
        }
    }

    /// Allocator-overhead seconds for executing `bound` once, advancing the
    /// warm allocator replicas.
    fn alloc_overhead(&self, state: &mut State, bound: &BoundGraph) -> f64 {
        let (usages, _) = activation_lifetimes(&bound.graph);
        match self.profile.allocator {
            AllocPolicy::TurboChunks => {
                let _ = state.turbo_for_cost.plan(&usages);
                let st = state.turbo_for_cost.last_stats();
                PLAN_BASE_SECONDS
                    + usages.len() as f64 * PER_TENSOR_SECONDS
                    + st.new_chunks as f64 * DEVICE_MALLOC_SECONDS
            }
            AllocPolicy::CachingPool => {
                let report = replay(&mut state.caching_for_cost, &usages);
                report.device_allocs as f64 * DEVICE_MALLOC_SECONDS
                    + usages.len() as f64 * PER_TENSOR_SECONDS
            }
            AllocPolicy::StaticExactFit => 0.0,
        }
    }

    /// Pretuning seconds owed for this shape (and mark it tuned).
    fn pretune_cost(&self, state: &mut State, batch: usize, seq: usize) -> f64 {
        if self.config.include_pretune
            && self.profile.fixed_shape_only
            && state.tuned_shapes.insert((batch, seq))
        {
            self.profile.pretune_seconds
        } else {
            0.0
        }
    }

    /// Price one bound graph under this runtime (no numerics). Advances the
    /// warm allocator/tuning state exactly as a real execution would.
    pub fn cost_bound(&self, bound: &BoundGraph, batch: usize, seq: usize) -> CostBreakdown {
        self.priced_bound(bound, batch, seq).0
    }

    /// Time and energy for one bound graph: the cost breakdown plus modeled
    /// *steady-state* joules — dynamic kernel energy plus idle draw over
    /// the per-inference framework overhead. Cold allocator / pretune
    /// windows are deliberately excluded from the energy: they depend on
    /// warm-up order, and the scheduler's energy table needs shapes to be
    /// comparable regardless of the order they were priced in.
    fn priced_bound(&self, bound: &BoundGraph, batch: usize, seq: usize) -> (CostBreakdown, f64) {
        let transformed = self.transform(bound);
        let mut cb = cost::graph_cost(&self.device, &self.profile, &transformed.graph);
        let mut state = self.state.lock();
        cb.alloc = self.alloc_overhead(&mut state, &transformed);
        cb.overhead = self.profile.per_infer_overhead + self.pretune_cost(&mut state, batch, seq);
        let joules = cost::graph_energy(&self.device, &self.profile, &transformed.graph).total()
            + self.device.static_energy(self.profile.per_infer_overhead);
        (cb, joules)
    }

    /// Cached BERT `(cost breakdown, joules)` for a `(batch, seq)` shape.
    fn bert_priced(
        &self,
        cfg: &BertConfig,
        batch: usize,
        seq: usize,
        masked: bool,
    ) -> (CostBreakdown, f64) {
        let key = CostKey {
            layers: cfg.num_layers,
            heads: cfg.num_heads,
            head_dim: cfg.head_dim,
            ffn: cfg.ffn_dim,
            batch,
            seq,
            masked,
            albert: false,
        };
        if let Some(entry) = self.state.lock().bert_cost_cache.get(&key) {
            return *entry;
        }
        let bound = tt_model::bert::graph_skeleton(cfg, batch, seq, masked);
        let entry = self.priced_bound(&bound, batch, seq);
        self.state.lock().bert_cost_cache.insert(key, entry);
        entry
    }

    /// Cached BERT inference cost for a `(batch, seq)` shape — the
    /// building block of the serving framework's `cached_cost` table.
    pub fn bert_cost(&self, cfg: &BertConfig, batch: usize, seq: usize, masked: bool) -> f64 {
        self.bert_priced(cfg, batch, seq, masked).0.total()
    }

    /// Cached modeled BERT inference energy in joules for a `(batch, seq)`
    /// shape — the building block of the serving framework's energy table
    /// when scheduling under `TT_SCHED_OBJECTIVE=energy`. Shares the cache
    /// (and the warm allocator replica advance) with
    /// [`bert_cost`](Self::bert_cost).
    pub fn bert_energy(&self, cfg: &BertConfig, batch: usize, seq: usize, masked: bool) -> f64 {
        self.bert_priced(cfg, batch, seq, masked).1
    }

    /// Cached ALBERT inference cost.
    pub fn albert_cost(&self, cfg: &AlbertConfig, batch: usize, seq: usize, masked: bool) -> f64 {
        let key = CostKey {
            layers: cfg.num_layers,
            heads: cfg.num_heads,
            head_dim: cfg.head_dim,
            ffn: cfg.ffn_dim,
            batch,
            seq,
            masked,
            albert: true,
        };
        if let Some(entry) = self.state.lock().bert_cost_cache.get(&key) {
            return entry.0.total();
        }
        let bound = tt_model::albert::graph_skeleton(cfg, batch, seq, masked);
        let entry = self.priced_bound(&bound, batch, seq);
        self.state.lock().bert_cost_cache.insert(key, entry);
        entry.0.total()
    }

    /// Beam-search decoding cost (paper Fig. 10c's workload).
    pub fn decoder_cost(&self, cfg: &Seq2SeqDecoderConfig, src_len: usize, tgt_len: usize) -> f64 {
        cost::decoder_cost(&self.device, &self.profile, cfg, src_len, tgt_len).total()
    }

    /// GPT-style decoder-only generation cost (prompt prefill + `gen_len`
    /// sampled tokens) — the extension model beyond the paper's set.
    pub fn gpt_cost(
        &self,
        cfg: &tt_model::gpt::GptConfig,
        prompt_len: usize,
        gen_len: usize,
    ) -> f64 {
        cost::gpt_cost(&self.device, &self.profile, cfg, prompt_len, gen_len).total()
    }

    fn run_encoder(
        &self,
        bound: &BoundGraph,
        store: &tt_model::weights::WeightStore,
        inputs: &[(InputBinding, &Tensor)],
        batch: usize,
        seq: usize,
        trace: Option<executor::TraceHook<'_>>,
    ) -> EncoderRun {
        let transformed = self.transform(bound);
        let mut cb = cost::graph_cost(&self.device, &self.profile, &transformed.graph);
        let mut state = self.state.lock();
        cb.alloc = self.alloc_overhead(&mut state, &transformed);
        cb.overhead = self.profile.per_infer_overhead + self.pretune_cost(&mut state, batch, seq);
        if let Some(counter) = &state.fusion_elided {
            // How many fine-grained passes this graph would have issued
            // unfused. Zero for `FusionLevel::Decomposed` by construction.
            let elided = tt_graph::fusion::decompose(&transformed.graph).nodes.len()
                - transformed.graph.nodes.len();
            counter.add(elided as u64);
        }
        // Per-node joules under this variant's profile, indexed like
        // `transformed.graph.nodes` — the executor stamps them onto per-op
        // spans, and their sum (plus idle draw over the allocator/overhead
        // windows) is what the energy meter and the caller both see, as one
        // integer, so attribution reconciles exactly.
        let energies = cost::node_energies(&self.device, &self.profile, &transformed.graph);
        let dynamic: f64 = energies.iter().sum();
        let energy_uj =
            ((dynamic + self.device.static_energy(cb.alloc + cb.overhead)) * 1e6).round() as u64;
        if let Some(meter) = &state.energy_meter {
            meter.add(tt_telemetry::EnergyPhase::Prefill, energy_uj);
        }
        let State { allocator, arena, exec_metrics, .. } = &mut *state;
        let exec = executor::execute_traced(
            &transformed,
            store,
            inputs,
            allocator,
            arena,
            exec_metrics.as_ref(),
            trace,
            Some(&energies),
        );
        EncoderRun {
            encoder_output: exec.output,
            sim_time: cb.total(),
            breakdown: cb,
            energy_uj,
            plan_stats: exec.plan_stats,
        }
    }

    /// Run BERT on unpadded `[batch, seq]` token ids.
    pub fn run_bert(&self, model: &Bert, ids: &Tensor) -> Result<EncoderRun, RunError> {
        self.run_bert_traced(model, ids, None)
    }

    /// [`run_bert`](Self::run_bert), recording allocator-plan and per-op
    /// spans under every parent context in `trace`.
    pub fn run_bert_traced(
        &self,
        model: &Bert,
        ids: &Tensor,
        trace: Option<executor::TraceHook<'_>>,
    ) -> Result<EncoderRun, RunError> {
        let (batch, seq) = (ids.shape().dim(0), ids.shape().dim(1));
        if seq > model.config.max_position {
            return Err(RunError::SequenceTooLong { got: seq, max: model.config.max_position });
        }
        let bound = model.build_graph(batch, seq, false);
        Ok(self.run_encoder(
            &bound,
            model.weights(),
            &[(InputBinding::TokenIds, ids)],
            batch,
            seq,
            trace,
        ))
    }

    /// Run BERT on a zero-padded batch with an additive attention mask
    /// (see [`tt_model::pad_batch`]).
    pub fn run_bert_masked(
        &self,
        model: &Bert,
        ids: &Tensor,
        mask: &Tensor,
    ) -> Result<EncoderRun, RunError> {
        self.run_bert_masked_traced(model, ids, mask, None)
    }

    /// [`run_bert_masked`](Self::run_bert_masked), recording allocator-plan
    /// and per-op spans under every parent context in `trace`.
    pub fn run_bert_masked_traced(
        &self,
        model: &Bert,
        ids: &Tensor,
        mask: &Tensor,
        trace: Option<executor::TraceHook<'_>>,
    ) -> Result<EncoderRun, RunError> {
        let (batch, seq) = (ids.shape().dim(0), ids.shape().dim(1));
        if seq > model.config.max_position {
            return Err(RunError::SequenceTooLong { got: seq, max: model.config.max_position });
        }
        let bound = model.build_graph(batch, seq, true);
        Ok(self.run_encoder(
            &bound,
            model.weights(),
            &[(InputBinding::TokenIds, ids), (InputBinding::AttentionMask, mask)],
            batch,
            seq,
            trace,
        ))
    }

    /// Run ALBERT on unpadded `[batch, seq]` token ids.
    pub fn run_albert(&self, model: &Albert, ids: &Tensor) -> Result<EncoderRun, RunError> {
        let (batch, seq) = (ids.shape().dim(0), ids.shape().dim(1));
        if seq > model.config.max_position {
            return Err(RunError::SequenceTooLong { got: seq, max: model.config.max_position });
        }
        let bound = model.build_graph(batch, seq, false);
        Ok(self.run_encoder(
            &bound,
            model.weights(),
            &[(InputBinding::TokenIds, ids)],
            batch,
            seq,
            None,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_model::ids_batch;

    #[test]
    fn run_bert_produces_output_and_time() {
        let model = Bert::new_random(&BertConfig::tiny(), 1);
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        let out = rt.run_bert(&model, &ids_batch(&[&[1, 2, 3, 4]])).unwrap();
        assert_eq!(out.encoder_output.shape().dims(), &[1, 4, 16]);
        assert!(out.sim_time > 0.0);
        assert!(out.breakdown.gemm > 0.0);
    }

    #[test]
    fn instrumented_runtime_reports_op_and_alloc_metrics() {
        let model = Bert::new_random(&BertConfig::tiny(), 3);
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        let registry = tt_telemetry::Registry::new();
        rt.instrument(&registry);
        rt.run_bert(&model, &ids_batch(&[&[1, 2, 3, 4]])).unwrap();
        let snap = registry.snapshot();
        let matmul = snap.find("executor_op_nanoseconds", &[("op", "matmul")]).unwrap();
        let h = matmul.histogram.as_ref().unwrap();
        assert!(h.count() > 0, "a BERT layer must dispatch GEMMs");
        assert!(h.sum > 0, "GEMM time must be nonzero");
        assert_eq!(snap.find("alloc_plans_total", &[]).unwrap().counter, Some(1));
        assert!(snap.find("alloc_resident_bytes", &[]).unwrap().gauge.unwrap() > 0.0);
    }

    #[test]
    fn fusion_counters_report_fused_ops_and_elided_passes() {
        let cfg = BertConfig::tiny();
        let model = Bert::new_random(&cfg, 5);
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        let registry = tt_telemetry::Registry::new();
        rt.instrument(&registry);
        rt.run_bert(&model, &ids_batch(&[&[1, 2, 3, 4]])).unwrap();
        let snap = registry.snapshot();
        // 7 fused kernels per encoder layer (3 bias+split-heads,
        // scale+softmax, bias+GELU, 2 bias+residual+LN).
        let fused = snap.find("executor_fused_ops_total", &[]).unwrap().counter.unwrap();
        assert_eq!(fused, 7 * cfg.num_layers as u64);
        // Each maskless layer elides 9 memory-bound passes.
        let elided = snap.find("fusion_elided_passes_total", &[]).unwrap().counter.unwrap();
        assert_eq!(elided, 9 * cfg.num_layers as u64);

        // A decomposed (PyTorch-like) runtime fuses nothing.
        let rt_pt =
            TurboRuntime::new(RuntimeConfig::new(RuntimeKind::PyTorchLike, DeviceKind::RTX2060));
        let reg_pt = tt_telemetry::Registry::new();
        rt_pt.instrument(&reg_pt);
        rt_pt.run_bert(&model, &ids_batch(&[&[1, 2, 3, 4]])).unwrap();
        let snap_pt = reg_pt.snapshot();
        assert_eq!(snap_pt.find("executor_fused_ops_total", &[]).unwrap().counter, Some(0));
        assert_eq!(snap_pt.find("fusion_elided_passes_total", &[]).unwrap().counter, Some(0));
    }

    #[test]
    fn encoder_runs_report_energy_and_reconcile_with_the_meter() {
        use tt_telemetry::{EnergyMeter, EnergyPhase};
        let model = Bert::new_random(&BertConfig::tiny(), 4);
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        // Warm the allocator first: cold chunk mallocs draw static power
        // that would otherwise swamp a tiny model's dynamic joules.
        rt.run_bert(&model, &ids_batch(&[&[1, 2, 3, 4], &[5, 6, 7, 8]])).unwrap();
        let meter = std::sync::Arc::new(EnergyMeter::new());
        rt.instrument_energy(std::sync::Arc::clone(&meter));
        let a = rt.run_bert(&model, &ids_batch(&[&[1, 2, 3, 4]])).unwrap();
        let b = rt.run_bert(&model, &ids_batch(&[&[1, 2, 3, 4], &[5, 6, 7, 8]])).unwrap();
        assert!(a.energy_uj > 0, "a forward pass must consume modeled energy");
        assert!(b.energy_uj > a.energy_uj, "a bigger batch costs more joules");
        // Exact reconciliation: the meter's prefill phase holds precisely
        // the microjoules the two runs reported — no rounding drift.
        assert_eq!(meter.phase_uj(EnergyPhase::Prefill), a.energy_uj + b.energy_uj);
        assert_eq!(meter.phase_uj(EnergyPhase::Decode), 0);
    }

    #[test]
    fn bert_energy_is_cached_and_consistent_with_cost() {
        let cfg = BertConfig::tiny();
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::V100));
        let e1 = rt.bert_energy(&cfg, 2, 16, false);
        assert!(e1 > 0.0);
        assert_eq!(rt.state.lock().bert_cost_cache.len(), 1);
        // Cost lookup for the same shape reuses the entry; repeated energy
        // lookups are stable.
        let _ = rt.bert_cost(&cfg, 2, 16, false);
        assert_eq!(rt.state.lock().bert_cost_cache.len(), 1);
        assert_eq!(rt.bert_energy(&cfg, 2, 16, false), e1);
        // More work, more joules.
        assert!(rt.bert_energy(&cfg, 4, 16, false) > e1);
    }

    #[test]
    fn quantized_bert_executes_within_int8_tolerance() {
        // The executor's int8 GEMM path: same graph, sidecar-quantized
        // weights, output within the weight-only-quantization budget.
        let cfg = BertConfig::tiny();
        let mut model = Bert::new_random(&cfg, 6);
        let ids = ids_batch(&[&[2, 4, 6, 8]]);
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        let f32_out = rt.run_bert(&model, &ids).unwrap().encoder_output;
        model.quantize_int8();
        let q8_out = rt.run_bert(&model, &ids).unwrap().encoder_output;
        let diff = q8_out.max_abs_diff(&f32_out).unwrap();
        assert!(diff > 0.0, "int8 path must actually run");
        assert!(diff < 0.1, "int8 drift {diff} exceeds the documented budget");
    }

    #[test]
    fn traced_run_records_alloc_plan_and_per_op_spans() {
        use tt_telemetry::{Tracer, TracerConfig};
        let model = Bert::new_random(&BertConfig::tiny(), 3);
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        let tracer = Tracer::new(TracerConfig { sample_every: 1, ..TracerConfig::default() });
        let root = tracer.start_root("execute", false).unwrap();
        let ctx = root.context();
        rt.run_bert_traced(&model, &ids_batch(&[&[1, 2, 3, 4]]), Some((&tracer, &[ctx]))).unwrap();
        drop(root);

        let spans = tracer.spans_of(ctx.trace);
        let plan = spans.iter().find(|s| s.name == "alloc_plan").expect("alloc_plan span");
        assert_eq!(plan.parent, Some(ctx.span));
        assert!(plan.attrs.iter().any(|(k, _)| *k == "chunks"));
        assert!(plan.attrs.iter().any(|(k, _)| *k == "reused_bytes"));
        let matmul = spans.iter().find(|s| s.name == "matmul").expect("matmul op span");
        assert_eq!(matmul.parent, Some(ctx.span));
        let shape = matmul.attrs.iter().find(|(k, _)| *k == "shape").expect("shape attr");
        assert!(matches!(&shape.1, tt_telemetry::AttrValue::Str(s) if s.contains('x')));
        let gflops = matmul.attrs.iter().find(|(k, _)| *k == "gflops").expect("gflops attr");
        assert!(matches!(&gflops.1, tt_telemetry::AttrValue::Float(v) if *v > 0.0));
        let energy = matmul.attrs.iter().find(|(k, _)| *k == "energy_uj").expect("energy attr");
        assert!(matches!(&energy.1, tt_telemetry::AttrValue::Int(v) if *v > 0));
        // Every recorded span nests inside the root's interval.
        let root_span = spans.iter().find(|s| s.name == "execute").unwrap();
        for s in &spans {
            assert!(s.start_ns >= root_span.start_ns);
            assert!(
                s.start_ns + s.dur_ns <= root_span.start_ns + root_span.dur_ns,
                "span {} must end within its root",
                s.name
            );
        }
    }

    #[test]
    fn sequence_too_long_is_an_error() {
        let model = Bert::new_random(&BertConfig::tiny(), 1);
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        let long: Vec<u32> = (0..100).collect();
        let err = rt.run_bert(&model, &ids_batch(&[&long])).unwrap_err();
        assert!(matches!(err, RunError::SequenceTooLong { got: 100, max: 64 }));
    }

    #[test]
    fn all_variants_compute_identical_numerics() {
        let model = Bert::new_random(&BertConfig::tiny(), 2);
        let ids = ids_batch(&[&[7, 8, 9]]);
        let reference = model.forward(&ids, None);
        for kind in RuntimeKind::all() {
            let rt = TurboRuntime::new(RuntimeConfig::new(kind, DeviceKind::RTX2060));
            let out = rt.run_bert(&model, &ids).unwrap();
            assert!(
                out.encoder_output.approx_eq(&reference, 1e-4),
                "{kind:?} diverged numerically"
            );
        }
    }

    #[test]
    fn turbo_is_fastest_variant_on_long_input() {
        let cfg = BertConfig::base();
        let turbo = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        let turbo_cost = turbo.bert_cost(&cfg, 1, 400, false);
        for kind in [RuntimeKind::PyTorchLike, RuntimeKind::OnnxRuntimeLike, RuntimeKind::XlaLike] {
            let rt = TurboRuntime::new(RuntimeConfig::new(kind, DeviceKind::RTX2060));
            let c = rt.bert_cost(&cfg, 1, 400, false);
            assert!(turbo_cost < c, "turbo {turbo_cost} must beat {kind:?} {c} at length 400");
        }
    }

    #[test]
    fn bert_cost_is_cached() {
        let cfg = BertConfig::base();
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        let a = rt.bert_cost(&cfg, 4, 64, true);
        let b = rt.bert_cost(&cfg, 4, 64, true);
        assert_eq!(a, b);
        assert_eq!(rt.state.lock().bert_cost_cache.len(), 1);
    }

    #[test]
    fn pretune_is_charged_once_per_shape_when_enabled() {
        let cfg = BertConfig::base();
        let mut rc = RuntimeConfig::new(RuntimeKind::TensorRTLike, DeviceKind::V100);
        rc.include_pretune = true;
        let rt = TurboRuntime::new(rc);
        let bound = tt_model::bert::graph_skeleton(&cfg, 1, 64, false);
        let first = rt.cost_bound(&bound, 1, 64);
        let second = rt.cost_bound(&bound, 1, 64);
        assert!(
            first.total() > second.total() + 1.0,
            "first sight of a shape pays tuning: {} vs {}",
            first.total(),
            second.total()
        );
    }

    #[test]
    fn caching_pool_warms_up() {
        // A PyTorch-like runtime pays device mallocs on the first request
        // of a given size, then serves from the pool.
        let cfg = BertConfig::base();
        let rt =
            TurboRuntime::new(RuntimeConfig::new(RuntimeKind::PyTorchLike, DeviceKind::RTX2060));
        let bound = tt_model::bert::graph_skeleton(&cfg, 1, 128, false);
        let cold = rt.cost_bound(&bound, 1, 128);
        let warm = rt.cost_bound(&bound, 1, 128);
        assert!(cold.alloc > warm.alloc, "pool must warm up: {} vs {}", cold.alloc, warm.alloc);
    }

    #[test]
    fn albert_and_decoder_costs_are_positive() {
        let rt = TurboRuntime::new(RuntimeConfig::turbo(DeviceKind::RTX2060));
        assert!(rt.albert_cost(&AlbertConfig::base(), 1, 64, false) > 0.0);
        assert!(rt.decoder_cost(&Seq2SeqDecoderConfig::base(), 60, 30) > 0.0);
    }
}
